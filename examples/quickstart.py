#!/usr/bin/env python3
"""Quickstart: the Figure 2 scenario of the paper.

Four uncertain objects A–D surround a query point q.  A plain PNN
returns every object's qualification probability; a C-PNN with
threshold P = 0.3 and tolerance Δ = 0.02 returns just the confident
answers — in the paper's example, B (41%) certainly qualifies and
D (29%) may be returned because it is within the 2% tolerance of the
threshold.

Run:  python examples/quickstart.py
"""

from repro import CPNNQuery, UncertainEngine, UncertainObject


def main() -> None:
    # Four 1-D uncertain objects roughly mimicking Figure 2's layout:
    # intervals placed so their qualification probabilities come out
    # near the paper's 20% / 41% / 10% / 29%.
    objects = [
        UncertainObject.uniform("A", 2.2, 5.4),
        UncertainObject.uniform("B", 1.0, 3.6),
        UncertainObject.uniform("C", 3.1, 7.5),
        UncertainObject.gaussian("D", 0.2, 3.8),
    ]
    q = 2.0
    engine = UncertainEngine(objects)

    print("=== PNN: exact qualification probabilities ===")
    for key, p in sorted(engine.pnn(q).items()):
        print(f"  {key}: {p:6.1%}")

    print()
    print("=== C-PNN: threshold P = 0.3, tolerance Δ = 0.02 ===")
    result = engine.execute(CPNNQuery(q, threshold=0.3, tolerance=0.02))
    print(f"  answers: {sorted(result.answers)}")
    for record in sorted(result.records, key=lambda r: str(r.key)):
        print(
            f"  {record.key}: label={record.label.value:8s} "
            f"bound=[{record.lower:.3f}, {record.upper:.3f}]"
        )

    print()
    print("=== How the query was answered ===")
    print(f"  filtering radius f_min      : {result.fmin:.3f}")
    print(f"  unknown after each verifier : {result.unknown_after_verifier}")
    print(f"  finished after verification : {result.finished_after_verification}")
    print(f"  objects needing refinement  : {result.refined_objects}")
    timings = result.timings
    print(
        "  time (ms): filter={:.3f} init={:.3f} verify={:.3f} refine={:.3f}".format(
            1e3 * timings.filtering,
            1e3 * timings.initialization,
            1e3 * timings.verification,
            1e3 * timings.refinement,
        )
    )


if __name__ == "__main__":
    main()
