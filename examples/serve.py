#!/usr/bin/env python3
"""Serving C-PNN queries under deadlines, overload, and faults.

A fleet of clients fires ad-hoc single-point probes at one uncertain
dataset.  Instead of handing each probe its own ``execute`` call, a
``QueryService`` (DESIGN.md §14) coalesces concurrent submissions into
micro-batches — so the engine's batch amortisation serves traffic that
never held a batch — and wraps every request in the failure machinery
a real service needs:

* deadlines that propagate into the executor substrate as cancellation,
* ε-early answers: a request that opts in gets a *bound-certified*
  approximate answer when its deadline lapses, never a silent guess,
* bounded admission with typed load-shedding,
* mutations as barriers: a probe after an insert always sees it.

The last act scripts a deterministic fault — the shared-memory segment
vanishing before a worker pool attaches — and shows the service
absorbing it without a wrong bit.

Run:  python examples/serve.py
"""

import asyncio
import time

import numpy as np

from repro import CPNNQuery, UncertainEngine, UncertainObject
from repro.service import (
    DeadlineExceeded,
    QueryService,
    QueueFull,
    ServiceConfig,
)

N_SENSORS = 2_000
N_PROBES = 64
THRESHOLD = 0.3
DOMAIN = 10_000.0


def build_sensors(rng: np.random.Generator) -> list[UncertainObject]:
    centers = rng.uniform(0.0, DOMAIN, size=N_SENSORS)
    widths = rng.uniform(2.0, 18.0, size=N_SENSORS)
    return [
        UncertainObject.uniform(i, c - w / 2, c + w / 2)
        for i, (c, w) in enumerate(zip(centers, widths))
    ]


async def serve_burst(service: QueryService, points) -> list:
    """One burst of concurrent single-query submissions."""
    return await asyncio.gather(
        *[
            service.submit(CPNNQuery(float(q), threshold=THRESHOLD))
            for q in points
        ]
    )


async def main() -> None:
    rng = np.random.default_rng(20080407)
    sensors = build_sensors(rng)
    probes = rng.uniform(0.0, DOMAIN, size=N_PROBES)

    with UncertainEngine(sensors) as engine:
        config = ServiceConfig(coalesce_window_s=0.002, max_batch=32)
        async with QueryService(engine, config) as service:
            # -- coalescing: a burst rides micro-batches ---------------
            tick = time.perf_counter()
            replies = await serve_burst(service, probes)
            wall = time.perf_counter() - tick
            stats = service.stats()
            print(
                f"burst of {len(replies)} probes -> {stats['batches']} "
                f"engine batches (mean {stats['mean_batch']:.1f} "
                f"queries/batch), {wall * 1e3:.0f} ms, "
                f"{len(replies) / wall:.0f} qps"
            )

            # -- mutations are barriers --------------------------------
            roving = UncertainObject.uniform(N_SENSORS, 4_999.5, 5_000.5)
            before = await service.submit(
                CPNNQuery(5_000.0, threshold=THRESHOLD)
            )
            await service.insert(roving)
            after = await service.submit(
                CPNNQuery(5_000.0, threshold=THRESHOLD)
            )
            print(
                f"insert as barrier: sensor {roving.key} in the answer "
                f"before={roving.key in before.result.answers}, "
                f"after={roving.key in after.result.answers}"
            )

            # -- deadlines: exact-or-fail vs ε-early -------------------
            q = float(probes[0])
            try:
                await service.submit(
                    CPNNQuery(q, threshold=THRESHOLD), deadline_s=0.0
                )
                print("deadline_s=0.0 answered (engine was instant)")
            except DeadlineExceeded:
                print("deadline_s=0.0, epsilon=0 -> DeadlineExceeded (typed)")
            reply = await service.submit(
                CPNNQuery(q, threshold=THRESHOLD),
                deadline_s=0.0,
                epsilon=0.15,
            )
            print(
                f"deadline_s=0.0, epsilon=0.15 -> approximate="
                f"{reply.approximate}, certified against tolerance "
                f"{reply.result.diagnostics['approximate']['certified_tolerance']}"
                if reply.approximate
                else "epsilon request answered exactly in time"
            )

            # -- admission control: overload sheds typed ---------------
            tiny = ServiceConfig(
                coalesce_window_s=0.005, max_batch=4, max_queue=8
            )
            async with QueryService(engine, tiny) as throttled:
                outcomes = await asyncio.gather(
                    *[
                        throttled.submit(
                            CPNNQuery(float(p), threshold=THRESHOLD)
                        )
                        for p in probes
                    ],
                    return_exceptions=True,
                )
                shed = sum(1 for o in outcomes if isinstance(o, QueueFull))
                print(
                    f"overload: {len(outcomes) - shed} served, "
                    f"{shed} shed with QueueFull"
                )

    # -- deterministic fault injection -----------------------------------
    # Script "the shared column segment vanishes before the pool
    # attaches": every worker falls back to building its filter
    # locally, and the answers do not move by a bit.
    from repro.core.engine import EngineConfig, ShardedEngine
    from repro.service.faults import FaultPlan, unlink_segment

    spec = CPNNQuery(float(probes[1]), threshold=THRESHOLD)
    want = UncertainEngine(list(sensors)).execute(spec).answers
    plan = FaultPlan().script("process.attach", unlink_segment, at=1)
    with ShardedEngine(
        sensors,
        EngineConfig(process_min_batch=0),
        n_shards=2,
        max_workers=2,
        executor="process",
    ) as sharded:
        with plan:
            got = sharded.execute(spec).answers
        executor = sharded.stats()["executor"]
        print(
            f"injected attach failure: {executor['shm_fallbacks']} workers "
            f"fell back locally, answers identical: {got == want}"
        )
    assert got == want


if __name__ == "__main__":
    asyncio.run(main())
