#!/usr/bin/env python3
"""Moving objects with dead-reckoning updates (Section I's LBS setting).

Under the dead-reckoning policy a vehicle reports its position only
when it drifts more than a threshold from the last report, so between
reports the database's uncertainty region *grows*; on a report, it
*shrinks* back.  This example runs a small monitoring loop over a 1-D
road: each tick some vehicles move, their uncertainty widens, a few
report in and get replaced in the engine through the dynamic
``insert`` / ``remove`` API (no index rebuild), and a C-PNN finds who
is probably nearest the incident point.

Run:  python examples/moving_objects.py
"""

import numpy as np

from repro import CPNNQuery, UncertainEngine, UncertainObject


class Vehicle:
    """True position + what the database currently believes."""

    def __init__(self, key: str, position: float, report_threshold: float):
        self.key = key
        self.position = position
        self.last_report = position
        self.report_threshold = report_threshold

    def drive(self, rng: np.random.Generator) -> None:
        self.position += float(rng.normal(0.0, 1.5))

    def must_report(self) -> bool:
        return abs(self.position - self.last_report) > self.report_threshold

    def database_object(self) -> UncertainObject:
        """Uncertainty region: last report ± report threshold."""
        return UncertainObject.uniform(
            self.key,
            self.last_report - self.report_threshold,
            self.last_report + self.report_threshold,
        )


def main() -> None:
    rng = np.random.default_rng(3)
    vehicles = [
        Vehicle(f"car-{i:02d}", float(rng.uniform(0, 200)), report_threshold=4.0)
        for i in range(30)
    ]
    engine = UncertainEngine([v.database_object() for v in vehicles])
    incident = 100.0

    print(f"=== Monitoring incident at x = {incident} over 5 ticks ===")
    for tick in range(1, 6):
        reports = 0
        for vehicle in vehicles:
            vehicle.drive(rng)
            if vehicle.must_report():
                # Dead-reckoning update: replace the stale region.
                engine.remove(vehicle.key)
                vehicle.last_report = vehicle.position
                engine.insert(vehicle.database_object())
                reports += 1
        result = engine.execute(CPNNQuery(incident, threshold=0.4, tolerance=0.05))
        nearest = ", ".join(str(k) for k in result.answers) or "(nobody ≥ 40%)"
        top = max(engine.pnn(incident).items(), key=lambda kv: kv[1])
        print(
            f"  tick {tick}: {reports:2d} reports | confident nearest: {nearest:14s}"
            f" | best candidate {top[0]} at {top[1]:.1%}"
        )

    print()
    print("=== Why updates are cheap ===")
    print("  the R-tree absorbs insert/remove without rebuilding;")
    print(f"  engine still holds {len(engine)} objects and answers in")
    timings = engine.execute(CPNNQuery(incident, threshold=0.4, tolerance=0.05)).timings
    print(f"  {1e3 * timings.total:.2f} ms end-to-end.")


if __name__ == "__main__":
    main()
