#!/usr/bin/env python3
"""Moving objects with dead-reckoning updates (Section I's LBS setting).

Under the dead-reckoning policy a vehicle reports its position only
when it drifts from the last report, so the database's uncertainty
region is ``last report ± threshold``.  ``StreamingWorkload``
(``repro.experiments.workloads``) packages that whole setting as a
deterministic stream: every tick the vehicles drift, a fraction report
in and are replaced, and a fixed set of monitoring specs is answered.

Two ways to monitor the same stream:

1. **Re-submit every tick** (the baseline loop): the engine maintains
   its index substrate incrementally — the R-tree absorbs each
   replacement, the whole-batch MBR filter appends/masks one
   coordinate row, and cached subregion tables survive unless the
   moved object overlaps their candidate set.  Watch the ``warm
   tables`` column: most of the batch is served from cache every tick.

2. **Register once, tick cheaply** (the continuous tier,
   DESIGN.md §17): ``ContinuousMonitor`` memoises each query's answer
   together with a *safe region* derived from its ``f_min`` filter
   bound.  A tick re-enters the pipeline only for queries whose
   certificate a report actually invalidated — the rest are not even
   visited.  Watch the ``re-ran`` column: it tracks the disturbance,
   not the fleet size, and the answers are bit-identical to the
   baseline loop's.

Run:  python examples/moving_objects.py
"""

from repro import CPNNQuery
from repro.continuous import ContinuousMonitor
from repro.experiments.workloads import StreamingWorkload


def make_workload() -> StreamingWorkload:
    return StreamingWorkload(
        n_objects=30,
        churn=0.2,
        n_queries=8,
        domain=(0.0, 200.0),
        halfwidth=4.0,
        drift_sigma=1.5,
        threshold=0.4,
        tolerance=0.05,
        spec_factory=lambda q: CPNNQuery(q, threshold=0.4, tolerance=0.05),
        seed=3,
    )


def main() -> None:
    incident = 100.0
    workload = make_workload()
    engine = workload.make_engine()
    monitor_specs = [CPNNQuery(incident, threshold=0.4, tolerance=0.05)] + list(
        workload.specs
    )

    print(f"=== Baseline: re-submit the batch every tick (x = {incident}) ===")
    baseline_answers = []
    for tick_index in range(5):
        tick = workload.tick(tick_index)
        workload.apply(engine, tick)
        batch = engine.execute_batch(monitor_specs)
        baseline_answers.append([r.answers for r in batch.results])
        nearest = ", ".join(str(k) for k in batch[0].answers) or "(nobody ≥ 40%)"
        top = max(engine.pnn(incident).items(), key=lambda kv: kv[1])
        print(
            f"  tick {tick.index + 1}: {len(tick.replacements):2d} reports"
            f" | warm tables {batch.table_hits:2d}/{len(monitor_specs)}"
            f" | confident nearest: {nearest:14s}"
            f" | best candidate {top[0]} at {top[1]:.1%}"
        )

    print()
    print("=== Continuous tier: register once, tick cheaply ===")
    # A fresh engine over the same (memoised) stream, fronted by the
    # continuous monitor.  Dead-reckoning reports flow through
    # monitor.replace so their MBRs certify the safe regions.
    continuous_engine = workload.make_engine()
    monitor = ContinuousMonitor(continuous_engine)
    handles = monitor.register_many(monitor_specs)
    for tick_index in range(5):
        tick = workload.tick(tick_index)
        for key, obj in tick.replacements:
            monitor.replace(key, obj)
        report = monitor.tick()
        answers = [handle.answers for handle in handles]
        assert answers == baseline_answers[tick_index], "replay must be exact"
        nearest = ", ".join(str(k) for k in handles[0].answers) or "(nobody ≥ 40%)"
        print(
            f"  tick {report.index}: {len(tick.replacements):2d} reports"
            f" | re-ran {len(report.reexecuted):2d}/{report.registered}"
            f" (replayed {report.replayed})"
            f" | changed {len(report.changed)}"
            f" | confident nearest: {nearest}"
        )

    stats = monitor.stats()
    print()
    print("=== Why ticks are sublinear ===")
    print("  every registered query carries a safe region: a ball around its")
    print("  point whose radius is the f_min filter bound of its memoised")
    print("  answer.  A report whose box misses the ball provably cannot")
    print("  change that answer (DESIGN.md §17), so the tick replays the")
    print("  snapshot without visiting the query at all.")
    print(
        f"  over {stats['ticks']} ticks: {stats['reexecuted']} re-executions vs"
        f" {stats['replayed']} certified replays"
        f" (hit rate {stats['hit_rate']:.0%});"
        f" answers stayed bit-identical to the baseline loop."
    )


if __name__ == "__main__":
    main()
