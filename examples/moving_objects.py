#!/usr/bin/env python3
"""Moving objects with dead-reckoning updates (Section I's LBS setting).

Under the dead-reckoning policy a vehicle reports its position only
when it drifts from the last report, so the database's uncertainty
region is ``last report ± threshold``.  ``StreamingWorkload``
(``repro.experiments.workloads``) packages that whole setting as a
deterministic stream: every tick the vehicles drift, a fraction report
in and are replaced through the dynamic ``remove`` / ``insert`` API,
and a fixed set of monitoring specs is answered with
``execute_batch``.

The point of this example is what the updates *don't* do: the engine
maintains its index substrate incrementally — the R-tree absorbs each
replacement, the whole-batch MBR filter appends/masks one coordinate
row, and only the monitoring points whose candidate set the moved
object can affect lose their cached subregion tables.  Watch the
``warm tables`` column: most of the batch is served from cache every
tick even while 20% of the fleet churns.

Run:  python examples/moving_objects.py
"""

from repro import CPNNQuery
from repro.experiments.workloads import StreamingWorkload


def main() -> None:
    incident = 100.0
    workload = StreamingWorkload(
        n_objects=30,
        churn=0.2,
        n_queries=8,
        domain=(0.0, 200.0),
        halfwidth=4.0,
        drift_sigma=1.5,
        threshold=0.4,
        tolerance=0.05,
        spec_factory=lambda q: CPNNQuery(q, threshold=0.4, tolerance=0.05),
        seed=3,
    )
    engine = workload.make_engine()
    monitor = [CPNNQuery(incident, threshold=0.4, tolerance=0.05)] + list(
        workload.specs
    )

    print(f"=== Monitoring incident at x = {incident} over 5 ticks ===")
    for tick_index in range(5):
        tick = workload.tick(tick_index)
        workload.apply(engine, tick)
        batch = engine.execute_batch(monitor)
        nearest = ", ".join(str(k) for k in batch[0].answers) or "(nobody ≥ 40%)"
        top = max(engine.pnn(incident).items(), key=lambda kv: kv[1])
        print(
            f"  tick {tick.index + 1}: {len(tick.replacements):2d} reports"
            f" | warm tables {batch.table_hits:2d}/{len(monitor)}"
            f" | confident nearest: {nearest:14s}"
            f" | best candidate {top[0]} at {top[1]:.1%}"
        )

    print()
    print("=== Why updates are cheap ===")
    print("  nothing is rebuilt: the R-tree absorbs each replacement,")
    print("  the batch MBR filter appends/masks single coordinate rows,")
    print("  and cached subregion tables survive unless the moved object")
    print("  overlaps their candidate set (DESIGN.md §11).")
    timings = engine.execute_batch(monitor).timings
    print(
        f"  engine still holds {len(engine)} objects and answers the"
        f" {len(monitor)}-spec batch in {1e3 * timings.total:.2f} ms."
    )


if __name__ == "__main__":
    main()
