#!/usr/bin/env python3
"""Location-based services with 2-D uncertainty.

Section I motivates two sources of 2-D location uncertainty:

* *dead-reckoning*: a moving object only reports its position when it
  drifts far enough, so the database knows it only up to a disk;
* *location privacy* (the Casper system, reference [7]): users
  deliberately blur their position into a region before sending it.

Here a dispatcher asks three questions about the same fleet, all
through the one ``execute`` façade: "which courier is nearest to this
pickup point, with at least 40% confidence?" (C-PNN), "who are the
best two candidates?" (k-NN), and "who is certainly close by?"
(range).  Couriers are disks (dead reckoning), privacy-conscious
users are rectangles (cloaked regions), and one is a segment
(constrained to a road).

Run:  python examples/location_privacy.py
"""

from repro import (
    CKNNQuery,
    CPNNQuery,
    CRangeQuery,
    UncertainDisk,
    UncertainEngine,
    UncertainRectangle,
    UncertainSegment,
)


def main() -> None:
    couriers = [
        # Dead-reckoned couriers: disk = last report + max drift.
        UncertainDisk("bike-7", center=(2.0, 3.0), radius=1.2),
        UncertainDisk("bike-9", center=(5.5, 4.5), radius=0.8),
        # Privacy-cloaked couriers: rectangle of deliberate blur.
        UncertainRectangle.from_bounds("van-2", 3.0, 0.5, 6.0, 2.5),
        UncertainRectangle.from_bounds("van-5", 7.0, 6.0, 9.5, 8.0),
        # A courier on a fixed road segment.
        UncertainSegment("cargo-1", a=(0.0, 6.0), b=(4.0, 6.5)),
    ]
    pickup = (4.0, 3.5)
    engine = UncertainEngine(couriers)

    print(f"=== Exact PNN probabilities for pickup at {pickup} ===")
    probabilities = engine.pnn(pickup)
    for key, p in sorted(probabilities.items(), key=lambda kv: -kv[1]):
        print(f"  {key:8s}: {p:6.1%}")

    print()
    print("=== C-PNN: who is nearest with ≥40% confidence (Δ = 0.05)? ===")
    result = engine.execute(CPNNQuery(pickup, threshold=0.4, tolerance=0.05))
    if result.answers:
        for key in result.answers:
            record = result.record_for(key)
            print(
                f"  dispatch {key}: probability bound "
                f"[{record.lower:.3f}, {record.upper:.3f}]"
            )
    else:
        print("  nobody clears the confidence bar; widen the threshold")

    print()
    print("=== Why verification pays off ===")
    print(f"  candidates after filtering : {len(result.records)}")
    print(f"  unknown after each verifier: {result.unknown_after_verifier}")
    print(f"  refined objects            : {result.refined_objects}")

    print()
    print("=== Same engine, k-NN spec: best 2 couriers ===")
    knn = engine.execute(CKNNQuery(pickup, threshold=0.5, k=2))
    ordered = sorted(
        knn.records, key=lambda r: -(r.exact if r.exact is not None else r.upper)
    )
    for record in ordered:
        marker = "*" if record.key in knn.answers else " "
        if record.exact is not None:
            shown = f"{record.exact:.1%}"
        else:
            shown = f"in [{record.lower:.1%}, {record.upper:.1%}] (verifier only)"
        print(f" {marker} {record.key:8s}: P[in top-2] = {shown}")

    print()
    print("=== Same engine, range spec: within 3 km of the pickup (P ≥ 0.9) ===")
    nearby = engine.execute(CRangeQuery(pickup, threshold=0.9, radius=3.0))
    for key in nearby.answers:
        record = nearby.record_for(key)
        certainty = "certain" if record.exact is None else f"{record.lower:.1%}"
        print(f"  {key:8s}: {certainty}")
    print(
        f"  ({nearby.refined_objects} couriers needed a cdf evaluation; "
        "bounding boxes decided the rest)"
    )

    print()
    print("=== What would run, before running it ===")
    print(engine.explain(CKNNQuery(pickup, threshold=0.5, k=2)).describe())


if __name__ == "__main__":
    main()
