#!/usr/bin/env python3
"""Biometric identification with Gaussian feature uncertainty.

Section I cites biometric databases ([4], the Gauss-tree) where stored
feature values are Gaussian-distributed around their enrollment
measurement.  Identification then asks: given a probe measurement,
which enrolled identities are probably the nearest match?

This example enrolls identities with truncated-Gaussian uncertainty on
a 1-D feature, then runs — all through the one ``execute`` façade:

* a C-PNN spec ("who is the single best match with ≥50% confidence?"),
* a k-NN spec ("which identities are in the top 3?"), and
* a comparison of all three evaluation strategies, echoing the paper's
  Figure 14 observation that verifiers help *most* on Gaussian pdfs.

Run:  python examples/biometric_knn.py
"""

import time

import numpy as np

from repro import CKNNQuery, CPNNQuery, Strategy, UncertainEngine, UncertainObject


def enroll_population(rng: np.random.Generator, n: int = 40):
    """Identities with Gaussian-uncertain feature values (paper's
    setting: mean at interval centre, sigma = width / 6, 300 bars)."""
    identities = []
    for i in range(n):
        center = rng.uniform(0.0, 100.0)
        width = rng.uniform(3.0, 9.0)
        identities.append(
            UncertainObject.gaussian(
                f"id-{i:03d}", center - width / 2, center + width / 2, bars=300
            )
        )
    return identities


def main() -> None:
    rng = np.random.default_rng(42)
    identities = enroll_population(rng)
    engine = UncertainEngine(identities)
    probe = 47.3

    print(f"=== Probe measurement: {probe} ===")
    result = engine.execute(CPNNQuery(probe, threshold=0.5, tolerance=0.01))
    if result.answers:
        print(f"  confident identification: {result.answers}")
    else:
        print("  no identity clears 50% — reporting the top candidates:")
        probabilities = engine.pnn(probe)
        for key, p in sorted(probabilities.items(), key=lambda kv: -kv[1])[:3]:
            print(f"    {key}: {p:6.1%}")

    print()
    print("=== Top-3 candidate identities (probabilistic 3-NN) ===")
    knn = engine.execute(CKNNQuery(probe, threshold=0.5, k=3))
    scored = [r for r in knn.records if r.exact is not None]
    for record in sorted(scored, key=lambda r: -r.exact)[:5]:
        marker = "*" if record.key in knn.answers else " "
        print(f" {marker} {record.key}: P[in top-3] = {record.exact:6.1%}")
    print(
        f"  ({len(engine)} identities, {len(engine) - knn.refined_objects} "
        "settled without exact integration)"
    )

    print()
    print("=== Strategy comparison on the Gaussian workload ===")
    spec = CPNNQuery(probe, threshold=0.5, tolerance=0.01)
    for strategy in Strategy.ALL:
        tick = time.perf_counter()
        res = engine.execute(spec, strategy=strategy)
        elapsed = 1e3 * (time.perf_counter() - tick)
        print(
            f"  {strategy:6s}: {elapsed:7.2f} ms, answers={list(res.answers)}, "
            f"refined={res.refined_objects}"
        )
    print("  (the paper's Figure 14: verifiers avoid expensive Gaussian")
    print("   integrations, so VR wins by more than in the uniform case)")


if __name__ == "__main__":
    main()
