#!/usr/bin/env python3
"""Sensor monitoring: the paper's habitat-monitoring motivation.

A field of temperature sensors reports noisy readings (Section I,
Figure 1(b)): each sensor's true temperature is modelled as a
histogram pdf over an uncertainty interval.  Two analyses from the
paper's introduction:

1. *Closest-to-centroid*: which district's temperature is closest to a
   cluster centroid (a C-PNN with q = centroid)?
2. *Minimum query*: which sensor currently reads the minimum
   temperature?  "A minimum (maximum) query is essentially a special
   case of PNN, since it can be characterized as a PNN by setting q to
   a value of −∞ (∞)."

Run:  python examples/sensor_monitoring.py
"""

import numpy as np

from repro import CPNNQuery, CRangeQuery, Histogram, UncertainEngine, UncertainObject


def build_sensor_field(rng: np.random.Generator, n_sensors: int = 24):
    """Sensors with histogram pdfs built from a week of noisy readings."""
    sensors = []
    for i in range(n_sensors):
        true_temp = rng.uniform(8.0, 24.0)
        # A week of noisy hourly readings -> empirical histogram pdf.
        readings = true_temp + rng.normal(0.0, 0.8, 7 * 24)
        lo, hi = readings.min(), readings.max()
        counts, edges = np.histogram(readings, bins=12, range=(lo, hi))
        histogram = Histogram.from_masses(edges, counts / counts.sum())
        sensors.append(UncertainObject.from_histogram(f"sensor-{i:02d}", histogram))
    return sensors


def main() -> None:
    rng = np.random.default_rng(7)
    sensors = build_sensor_field(rng)
    engine = UncertainEngine(sensors)

    centroid = 15.0
    print(f"=== Which sensor is closest to the {centroid}°C centroid? ===")
    result = engine.execute(CPNNQuery(centroid, threshold=0.25, tolerance=0.01))
    print(f"  confident answers (P ≥ 0.25): {sorted(result.answers)}")
    probabilities = engine.pnn(centroid)
    top = sorted(probabilities.items(), key=lambda kv: -kv[1])[:5]
    for key, p in top:
        print(f"  {key}: {p:6.1%}")

    print()
    print("=== Which sensors read within 2°C of the centroid (P ≥ 0.8)? ===")
    in_band = engine.execute(CRangeQuery(centroid, threshold=0.8, radius=2.0))
    print(f"  {len(in_band.answers)} sensors: {sorted(in_band.answers)}")
    print(
        f"  ({in_band.refined_objects} needed a cdf evaluation; the rest "
        "were decided by their bounding boxes alone)"
    )

    print()
    print("=== Minimum-temperature query (PNN with q → −∞) ===")
    far_left = min(s.lo for s in sensors) - 1e6
    minimum = engine.pnn(far_left)
    top = sorted(minimum.items(), key=lambda kv: -kv[1])[:5]
    for key, p in top:
        print(f"  {key}: {p:6.1%} chance of being the coldest")
    print(f"  (probabilities over all sensors sum to {sum(minimum.values()):.6f})")

    print()
    print("=== Maximum-temperature query (PNN with q → +∞) ===")
    far_right = max(s.hi for s in sensors) + 1e6
    maximum = engine.pnn(far_right)
    best = max(maximum, key=maximum.get)
    print(f"  most likely hottest sensor: {best} ({maximum[best]:.1%})")


if __name__ == "__main__":
    main()
