#!/usr/bin/env python3
"""Batch workload: many moving clients probing one uncertain dataset.

A fleet of clients moves along a corridor, each issuing a C-PNN probe
at every step ("which sensors could be nearest to me, with ≥ 30%
probability?").  The same points get probed again and again as clients
revisit locations, which is exactly the workload
``UncertainEngine.execute_batch`` amortises:

* filtering runs once per batch as a vectorised MBR sweep,
* distance distributions and whole subregion tables are LRU-cached
  across probes of the same point,
* the verifier chain runs as flat sweeps over all candidates of all
  queries at once.

Run:  python examples/batch_workload.py
"""

import time

import numpy as np

from repro import CPNNQuery, UncertainEngine, UncertainObject

N_SENSORS = 1_500
N_CLIENTS = 40
N_STEPS = 5
THRESHOLD = 0.3
DOMAIN = 10_000.0


def build_sensors(rng: np.random.Generator) -> list[UncertainObject]:
    """Sensors with uncertain 1-D positions (reading imprecision)."""
    centers = rng.uniform(0.0, DOMAIN, size=N_SENSORS)
    widths = rng.uniform(2.0, 18.0, size=N_SENSORS)
    return [
        UncertainObject.uniform(i, c - w / 2, c + w / 2)
        for i, (c, w) in enumerate(zip(centers, widths))
    ]


def client_trace(rng: np.random.Generator) -> list[list[float]]:
    """Per-step probe points; clients snap to a coarse waypoint grid,
    so different clients (and different steps) repeat points."""
    waypoints = np.linspace(0.0, DOMAIN, 200)
    steps = []
    position = rng.integers(0, waypoints.size, size=N_CLIENTS)
    for _ in range(N_STEPS):
        position = np.clip(
            position + rng.integers(-3, 4, size=N_CLIENTS), 0, waypoints.size - 1
        )
        steps.append([float(waypoints[p]) for p in position])
    return steps


def main() -> None:
    rng = np.random.default_rng(42)
    engine = UncertainEngine(build_sensors(rng))
    steps = client_trace(rng)

    print(f"{N_SENSORS} uncertain sensors, {N_CLIENTS} clients, {N_STEPS} steps")
    print()
    total_batch = total_seq = 0.0
    for step, points in enumerate(steps):
        specs = [CPNNQuery(q, threshold=THRESHOLD, tolerance=0.0) for q in points]

        tick = time.perf_counter()
        batch = engine.execute_batch(specs)
        batch_time = time.perf_counter() - tick

        tick = time.perf_counter()
        sequential = [engine.execute(spec) for spec in specs]
        seq_time = time.perf_counter() - tick

        assert all(
            set(b.answers) == set(s.answers)
            for b, s in zip(batch, sequential)
        ), "batch and sequential answers must agree"

        total_batch += batch_time
        total_seq += seq_time
        answered = sum(1 for r in batch if r.answers)
        print(
            f"step {step}: {len(points)} probes, {answered} with answers | "
            f"batch {batch_time * 1e3:6.1f} ms vs loop {seq_time * 1e3:6.1f} ms | "
            f"table cache {batch.table_hits} hits / {batch.table_misses} misses"
        )

    print()
    print(
        f"total: batch {total_batch * 1e3:.1f} ms vs sequential loop "
        f"{total_seq * 1e3:.1f} ms  ({total_seq / total_batch:.1f}x)"
    )


if __name__ == "__main__":
    main()
