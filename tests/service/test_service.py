"""Behavioural tests for the async query service (DESIGN.md §14).

Coalescing, mutation barriers, admission control, deadlines, and the
ε-early-answer policy — all against the bit-identity yardstick: a
sequential ``execute`` loop on a replica engine.
"""

import asyncio

import numpy as np
import pytest

from repro.core.engine import ShardedEngine, UncertainEngine
from repro.core.types import CKNNQuery, CPNNQuery, CRangeQuery
from repro.service import (
    DeadlineExceeded,
    QueryService,
    QueueFull,
    ServiceClosed,
    ServiceConfig,
)
from repro.service.faults import FaultPlan, delay
from tests.conftest import make_random_objects
from tests.core.test_sharded import assert_results_identical


def run(coro):
    return asyncio.run(coro)


def specs_for(points):
    return [CPNNQuery(float(q), threshold=0.3, tolerance=0.01) for q in points]


@pytest.fixture
def engines(rng):
    objects = make_random_objects(rng, 20)
    sharded = ShardedEngine(objects, n_shards=2, executor="serial")
    yield sharded, UncertainEngine(list(objects))
    sharded.close()


class TestCoalescing:
    def test_concurrent_submissions_ride_one_batch(self, engines):
        engine, single = engines
        specs = specs_for(np.linspace(2.0, 58.0, 12))
        want = [single.execute(spec) for spec in specs]

        async def main():
            config = ServiceConfig(coalesce_window_s=0.02, max_batch=64)
            async with QueryService(engine, config) as service:
                replies = await asyncio.gather(
                    *[service.submit(spec) for spec in specs]
                )
                return replies, service.stats()

        replies, stats = run(main())
        for reply, expected in zip(replies, want):
            assert_results_identical(reply.result, expected)
        # All 12 submissions coalesced far below one-batch-per-query.
        assert stats["batches"] < len(specs)
        assert any(reply.coalesced > 1 for reply in replies)

    def test_zero_window_ships_queries_alone(self, engines):
        engine, single = engines
        specs = specs_for((7.0, 31.0, 48.0))

        async def main():
            config = ServiceConfig(coalesce_window_s=0.0)
            async with QueryService(engine, config) as service:
                for spec in specs:
                    reply = await service.submit(spec)
                    assert_results_identical(reply.result, single.execute(spec))
                return service.stats()

        stats = run(main())
        assert stats["batches"] == len(specs)

    def test_mixed_families(self, engines):
        engine, single = engines
        specs = [
            CPNNQuery(12.0, threshold=0.3),
            CKNNQuery(25.0, threshold=0.4, k=2),
            CRangeQuery(40.0, threshold=0.5, radius=6.0),
        ]

        async def main():
            async with QueryService(engine, ServiceConfig()) as service:
                return await asyncio.gather(
                    *[service.submit(spec) for spec in specs]
                )

        for reply, spec in zip(run(main()), specs):
            assert_results_identical(reply.result, single.execute(spec))


class TestMutationBarriers:
    def test_queries_after_a_mutation_see_its_effect(self, rng, engines):
        engine, single = engines
        fresh = make_random_objects(rng, 25)[-1]  # key 24: no collision
        spec = CPNNQuery(15.0, threshold=0.3)

        async def main():
            async with QueryService(engine, ServiceConfig()) as service:
                before = await service.submit(spec)
                await service.insert(fresh)
                after = await service.submit(spec)
                removed = await service.remove(fresh.key)
                final = await service.submit(spec)
                return before, after, removed, final

        before, after, removed, final = run(main())
        assert_results_identical(before.result, single.execute(spec))
        single.insert(fresh)
        assert_results_identical(after.result, single.execute(spec))
        assert removed is True
        single.remove(fresh.key)
        assert_results_identical(final.result, single.execute(spec))

    def test_interleaved_submissions_and_mutations_stay_exact(
        self, rng, engines
    ):
        engine, single = engines
        extras = make_random_objects(rng, 30)[20:]  # keys 20-29
        spec_points = (5.0, 18.0, 33.0, 47.0)

        async def main():
            async with QueryService(
                engine, ServiceConfig(coalesce_window_s=0.005)
            ) as service:
                replies = []
                for i, obj in enumerate(extras):
                    batch = await asyncio.gather(
                        *[
                            service.submit(CPNNQuery(q, threshold=0.3))
                            for q in spec_points
                        ]
                    )
                    replies.append(batch)
                    await service.insert(obj)
                tail = await asyncio.gather(
                    *[
                        service.submit(CPNNQuery(q, threshold=0.3))
                        for q in spec_points
                    ]
                )
                replies.append(tail)
                return replies

        replies = run(main())
        for i, batch in enumerate(replies):
            for reply, q in zip(batch, spec_points):
                assert_results_identical(
                    reply.result, single.execute(CPNNQuery(q, threshold=0.3))
                )
            if i < len(extras):
                single.insert(extras[i])


class TestAdmissionControl:
    def test_overload_sheds_with_queue_full(self, engines):
        engine, single = engines
        config = ServiceConfig(
            coalesce_window_s=0.005, max_batch=4, max_queue=6
        )
        total = 24

        async def main():
            async with QueryService(engine, config) as service:
                # All submit coroutines take their first step (spec →
                # offer) before the dispatcher's wakeup callback runs,
                # so the burst hits the admission queue as one wave:
                # max_queue admitted, the rest shed deterministically.
                tasks = [
                    asyncio.ensure_future(
                        service.submit(CPNNQuery(float(3 + i), threshold=0.3))
                    )
                    for i in range(total)
                ]
                results = await asyncio.gather(*tasks, return_exceptions=True)
                return results, service.stats()

        results, stats = run(main())
        shed = [r for r in results if isinstance(r, QueueFull)]
        served = [r for r in results if not isinstance(r, BaseException)]
        assert shed, "overload never shed anything"
        assert stats["shed"] == len(shed)
        assert len(served) + len(shed) == total
        # Everything admitted was answered exactly.
        for reply in served:
            assert_results_identical(
                reply.result, single.execute(reply.result.spec)
            )
        rejection = shed[0]
        assert rejection.limit == 6
        assert rejection.depth >= rejection.limit

    def test_closed_service_rejects_submissions(self, engines):
        engine, _ = engines

        async def main():
            service = QueryService(engine, ServiceConfig())
            async with service:
                await service.submit(CPNNQuery(10.0, threshold=0.3))
            with pytest.raises(ServiceClosed):
                await service.submit(CPNNQuery(10.0, threshold=0.3))

        run(main())


class TestDeadlines:
    def test_generous_deadline_answers_exactly(self, engines):
        engine, single = engines
        spec = CPNNQuery(22.0, threshold=0.3)

        async def main():
            async with QueryService(engine, ServiceConfig()) as service:
                return await service.submit(spec, deadline_s=30.0)

        reply = run(main())
        assert reply.approximate is False
        assert_results_identical(reply.result, single.execute(spec))

    def test_expired_deadline_without_epsilon_is_typed(self, engines):
        engine, _ = engines
        plan = FaultPlan().script("service.batch", delay(0.05), at=1)

        async def main():
            async with QueryService(
                engine, ServiceConfig(coalesce_window_s=0.0)
            ) as service:
                with pytest.raises(DeadlineExceeded):
                    await service.submit(
                        CPNNQuery(22.0, threshold=0.3), deadline_s=0.01
                    )
                return service.stats()

        with plan:
            stats = run(main())
        assert plan.fired
        assert stats["deadline_misses"] == 1
        assert stats["approximate"] == 0


class TestEpsilonEarlyAnswers:
    def test_epsilon_answer_is_bound_certified(self, engines):
        engine, single = engines
        spec = CPNNQuery(22.0, threshold=0.3, tolerance=0.01)
        epsilon = 0.2
        plan = FaultPlan().script("service.batch", delay(0.05), at=1)

        async def main():
            async with QueryService(
                engine, ServiceConfig(coalesce_window_s=0.0)
            ) as service:
                reply = await service.submit(
                    spec, deadline_s=0.01, epsilon=epsilon
                )
                return reply, service.stats()

        with plan:
            reply, stats = run(main())
        assert reply.approximate is True
        assert reply.epsilon == epsilon
        assert stats["approximate"] == 1
        note = reply.result.diagnostics["approximate"]
        assert note["reason"] == "deadline"
        assert note["certified_tolerance"] == max(spec.tolerance, epsilon)
        # The C-PNN contract with the widened tolerance:
        # {p >= P} ⊆ answers ⊆ {p >= P - max(Δ, ε)}.
        exact = single.pnn(spec.q)
        answers = set(reply.result.answers)
        must_have = {k for k, p in exact.items() if p >= spec.threshold}
        may_have = {
            k
            for k, p in exact.items()
            if p >= spec.threshold - max(spec.tolerance, epsilon)
        }
        assert must_have <= answers <= may_have

    def test_epsilon_zero_preserves_exactness(self, engines):
        """With ε=0 a lapsed deadline is always a typed error — the
        service never silently loosens an answer."""
        engine, single = engines
        spec = CPNNQuery(22.0, threshold=0.3)
        plan = FaultPlan().script("service.batch", delay(0.05), at=1)

        async def main():
            async with QueryService(
                engine, ServiceConfig(coalesce_window_s=0.0)
            ) as service:
                with pytest.raises(DeadlineExceeded):
                    await service.submit(spec, deadline_s=0.01, epsilon=0.0)
                # The service keeps answering exactly afterwards.
                reply = await service.submit(spec)
                return reply

        with plan:
            reply = run(main())
        assert reply.approximate is False
        assert_results_identical(reply.result, single.execute(spec))


class TestStats:
    def test_stats_expose_service_and_executor_counters(self, engines):
        engine, _ = engines

        async def main():
            async with QueryService(engine, ServiceConfig()) as service:
                await service.submit(CPNNQuery(12.0, threshold=0.3))
                await service.insert(
                    make_random_objects(np.random.default_rng(7), 30)[-1]
                )
                return service.stats()

        stats = run(main())
        assert stats["submitted"] == 1
        assert stats["mutations"] == 1
        assert stats["batches"] == 1
        assert stats["executor"]["backend"] == "serial"
        assert "breaker" in stats["executor"]
