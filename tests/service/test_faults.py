"""Scripted failure modes for the service + executor substrate.

Each test drives a real process-backed engine through a
:class:`~repro.service.faults.FaultPlan` that injects one specific
fault at one specific point — worker SIGKILL mid-batch, a reply delay
that lapses a deadline, admission-queue saturation, a poison spec that
kills two workers, a shared-memory attach failure — and asserts the
C-PNN robustness contract (DESIGN.md §14): every delivered answer is
bit-identical to the sequential reference or explicitly bound-certified
approximate, and the pool heals afterwards.
"""

import asyncio

import pytest

from repro.core.engine import EngineConfig, ShardedEngine, UncertainEngine
from repro.core.engine.executors.base import ExecutionTimeout
from repro.core.types import CKNNQuery, CPNNQuery, CRangeQuery
from repro.service import (
    DeadlineExceeded,
    QueryService,
    QueueFull,
    ServiceConfig,
)
from repro.service.faults import FaultPlan, delay, kill_worker, unlink_segment
from tests.conftest import make_random_objects
from tests.core.test_sharded import assert_results_identical

PROCESS_CONFIG = EngineConfig(process_min_batch=0)


def run(coro):
    return asyncio.run(coro)


def make_pair(rng, n=20):
    """A process-backed sharded engine plus its sequential reference."""
    objects = make_random_objects(rng, n)
    sharded = ShardedEngine(
        objects,
        PROCESS_CONFIG,
        n_shards=2,
        max_workers=2,
        executor="process",
    )
    return sharded, UncertainEngine(list(objects))


def assert_pool_healed(executor_stats: dict) -> None:
    assert executor_stats["alive"] == executor_stats["workers"]


class TestWorkerKillMidBatch:
    def test_sigkill_between_send_and_reply_is_absorbed(self, rng):
        """Fault: SIGKILL the worker a C-PNN item is being sent to.
        Contract: the batch still answers bit-identically (inline
        retry) and the pool respawns for the next batch."""
        engine, single = make_pair(rng)
        specs = [CPNNQuery(q, threshold=0.3) for q in (6.0, 26.0, 46.0)]
        want = [single.execute(s) for s in specs]
        plan = FaultPlan().script(
            "process.send", kill_worker, at=1, match={"kind": "pnn"}
        )

        async def main():
            config = ServiceConfig(coalesce_window_s=0.02)
            async with QueryService(engine, config) as service:
                first = await asyncio.gather(
                    *[service.submit(s) for s in specs]
                )
                second = await asyncio.gather(
                    *[service.submit(s) for s in specs]
                )
                return first, second, service.stats()

        try:
            with plan:
                first, second, stats = run(main())
        finally:
            engine.close()
        assert plan.fired == [("process.send", 1, "kill_worker")]
        for reply, expected in zip(first, want):
            assert_results_identical(reply.result, expected)
        for reply, expected in zip(second, want):
            assert_results_identical(reply.result, expected)
        executor = stats["executor"]
        assert executor["worker_failures"] >= 1
        assert executor["in_process_retries"] >= 1
        assert executor["respawns"] >= 1
        assert_pool_healed(executor)


class TestReplyTimeout:
    def test_delayed_reply_lapses_deadline_into_typed_error(self, rng):
        """Fault: hold the first pool reply past the request deadline.
        With ε=0 the request fails typed; the service keeps answering
        exactly afterwards on a healed pool."""
        engine, single = make_pair(rng)
        spec = CPNNQuery(26.0, threshold=0.3)
        engine.execute(spec)  # warm the pool: replies now route via shm
        plan = FaultPlan().script("process.recv", delay(0.4), at=1)

        async def main():
            config = ServiceConfig(coalesce_window_s=0.0)
            async with QueryService(engine, config) as service:
                with pytest.raises(DeadlineExceeded):
                    await service.submit(spec, deadline_s=0.1)
                late = await service.submit(spec)
                return late, service.stats()

        try:
            with plan:
                late, stats = run(main())
        finally:
            engine.close()
        assert plan.fired
        assert stats["deadline_misses"] == 1
        assert stats["approximate"] == 0
        assert_results_identical(late.result, single.execute(spec))
        assert_pool_healed(stats["executor"])

    def test_delayed_reply_with_epsilon_returns_certified_answer(self, rng):
        """Same fault, but the request opted into ε-early answers: the
        reply is approximate, explicitly marked, and bound-certified
        against the widened tolerance."""
        engine, single = make_pair(rng)
        spec = CPNNQuery(26.0, threshold=0.3, tolerance=0.01)
        epsilon = 0.25
        engine.execute(spec)
        plan = FaultPlan().script("process.recv", delay(0.4), at=1)

        async def main():
            config = ServiceConfig(coalesce_window_s=0.0)
            async with QueryService(engine, config) as service:
                reply = await service.submit(
                    spec, deadline_s=0.1, epsilon=epsilon
                )
                exact = await service.submit(spec)
                return reply, exact, service.stats()

        try:
            with plan:
                reply, exact, stats = run(main())
        finally:
            engine.close()
        assert plan.fired
        assert reply.approximate is True
        assert stats["approximate"] == 1
        note = reply.result.diagnostics["approximate"]
        assert note["certified_tolerance"] == epsilon
        # Bound certification against the reference probabilities:
        # {p >= P} ⊆ answers ⊆ {p >= P - ε}.
        probabilities = single.pnn(spec.q)
        answers = set(reply.result.answers)
        must = {k for k, p in probabilities.items() if p >= spec.threshold}
        may = {
            k
            for k, p in probabilities.items()
            if p >= spec.threshold - epsilon
        }
        assert must <= answers <= may
        # Once the fault passes, the service is exact again.
        assert exact.approximate is False
        assert_results_identical(exact.result, single.execute(spec))
        assert_pool_healed(stats["executor"])


class TestQueueSaturation:
    def test_burst_beyond_queue_sheds_typed_and_serves_the_rest(self, rng):
        """Fault: a burst far beyond the admission limit while the
        backend is held slow.  Excess load sheds with QueueFull; every
        admitted request still answers bit-identically."""
        engine, single = make_pair(rng)
        config = ServiceConfig(
            coalesce_window_s=0.005, max_batch=4, max_queue=6
        )
        total = 24
        plan = FaultPlan().script(
            "executor.dispatch", delay(0.05), at=(1, 2)
        )

        async def main():
            async with QueryService(engine, config) as service:
                tasks = [
                    asyncio.ensure_future(
                        service.submit(
                            CPNNQuery(float(3 + 2 * i), threshold=0.3)
                        )
                    )
                    for i in range(total)
                ]
                outcomes = await asyncio.gather(
                    *tasks, return_exceptions=True
                )
                # The queue has drained: admission works again.
                extra = await service.submit(CPNNQuery(30.0, threshold=0.3))
                return outcomes, extra, service.stats()

        try:
            with plan:
                outcomes, extra, stats = run(main())
        finally:
            engine.close()
        assert plan.fired
        shed = [o for o in outcomes if isinstance(o, QueueFull)]
        served = [o for o in outcomes if not isinstance(o, BaseException)]
        assert len(shed) == total - config.max_queue
        assert stats["shed"] == len(shed)
        for reply in served:
            assert_results_identical(
                reply.result, single.execute(reply.result.spec)
            )
        assert_results_identical(
            extra.result, single.execute(CPNNQuery(30.0, threshold=0.3))
        )
        assert_pool_healed(stats["executor"])


class TestPoisonQuarantine:
    def test_double_killer_spec_runs_inline_forever_after(self, rng):
        """Fault: the same spec SIGKILLs a worker on its first two
        dispatches.  The quarantine ledger must route its third run
        in-process — no third kill — and every run answers
        bit-identically."""
        engine, single = make_pair(rng)
        spec = CPNNQuery(33.0, threshold=0.3)
        want = single.execute(spec)
        plan = FaultPlan().script(
            "process.send", kill_worker, at=(1, 2), match={"kind": "pnn"}
        )

        async def main():
            config = ServiceConfig(coalesce_window_s=0.0)
            async with QueryService(engine, config) as service:
                replies = []
                for _ in range(4):
                    replies.append(await service.submit(spec))
                return replies, service.stats()

        try:
            with plan:
                replies, stats = run(main())
        finally:
            engine.close()
        assert len(plan.fired) == 2
        for reply in replies:
            assert_results_identical(reply.result, want)
        executor = stats["executor"]
        assert executor["worker_failures"] == 2
        assert executor["quarantined"] == 1
        assert executor["quarantine_hits"] >= 1
        assert_pool_healed(executor)


class TestShmAttachFailure:
    def test_worker_attach_failure_falls_back_to_local_build(self, rng):
        """Fault: the shared column segment vanishes before the workers
        attach at spawn.  Every worker must fall back to building its
        filter locally — same floats, bit-identical answers."""
        engine, single = make_pair(rng)
        specs = [CPNNQuery(q, threshold=0.3) for q in (8.0, 30.0, 52.0)]
        want = [single.execute(s) for s in specs]
        plan = FaultPlan().script("process.attach", unlink_segment, at=1)

        async def main():
            async with QueryService(engine, ServiceConfig()) as service:
                replies = await asyncio.gather(
                    *[service.submit(s) for s in specs]
                )
                return replies, service.stats()

        try:
            with plan:
                replies, stats = run(main())
        finally:
            engine.close()
        assert plan.fired == [("process.attach", 1, "unlink_segment")]
        for reply, expected in zip(replies, want):
            assert_results_identical(reply.result, expected)
        executor = stats["executor"]
        assert executor["shm_fallbacks"] == executor["workers"]
        assert_pool_healed(executor)

    def test_sweep_readback_attach_failure_recomputes_inline(self, rng):
        """Fault: the per-batch sweep output segment vanishes before
        the parent reads it back.  The columns recompute inline — same
        arithmetic — and the answers stay bit-identical.

        Sweeps ride the pool for the k-NN/range families (C-PNN
        filtering runs lane-side), so the batch mixes those.
        """
        engine, single = make_pair(rng)
        specs = [
            CKNNQuery(8.0, threshold=0.4, k=2),
            CRangeQuery(30.0, threshold=0.5, radius=6.0),
            CKNNQuery(52.0, threshold=0.4, k=2),
        ]
        want = [single.execute(s) for s in specs]
        # Warm: a C-PNN dispatch spawns the pool, so the batch under
        # the plan routes its sweeps through shared memory.
        engine.execute(CPNNQuery(8.0, threshold=0.3))
        plan = FaultPlan().script("shm.attach", unlink_segment, at=1)

        async def main():
            config = ServiceConfig(coalesce_window_s=0.02)
            async with QueryService(engine, config) as service:
                replies = await asyncio.gather(
                    *[service.submit(s) for s in specs]
                )
                return replies, service.stats()

        try:
            with plan:
                replies, stats = run(main())
        finally:
            engine.close()
        assert plan.fired
        for reply, expected in zip(replies, want):
            assert_results_identical(reply.result, expected)
        executor = stats["executor"]
        assert executor["shm_fallbacks"] >= 1
        assert executor["in_process_retries"] >= 1
        assert_pool_healed(executor)


class TestDeadlineCancellation:
    def test_expired_deadline_terminates_inflight_workers(self, rng):
        """Engine-level: a worker that will never reply (killed before
        its message landed) plus a lapsed deadline must surface as
        ExecutionTimeout with the straggler *terminated*, not awaited —
        and the pool respawns on the next dispatch."""
        engine, single = make_pair(rng)
        spec = CPNNQuery(26.0, threshold=0.3)
        engine.execute(spec)  # warm pool
        plan = (
            FaultPlan()
            .script(
                "process.send", kill_worker, at=1, match={"kind": "pnn"}
            )
            .script(
                "process.send", delay(0.3), at=1, match={"kind": "pnn"}
            )
        )
        try:
            with plan:
                with pytest.raises(ExecutionTimeout):
                    with engine.deadline(0.1):
                        engine.execute(spec)
            executor = engine.stats()["executor"]
            assert executor["timeouts"] + executor["worker_failures"] >= 1
            # Next dispatch heals the pool and answers exactly.
            result = engine.execute(spec)
            assert_results_identical(result, single.execute(spec))
            assert_pool_healed(engine.stats()["executor"])
        finally:
            engine.close()
        assert len(plan.fired) == 2
