"""Behavioural tests for service subscriptions (DESIGN.md §17).

``QueryService.subscribe`` installs a spec on a service-owned
continuous monitor; every mutation barrier then ticks the monitor and
pushes fresh snapshots only to subscriptions whose answer actually
changed.  The yardstick is the usual one: the pushed snapshot must be
bit-identical to submitting the same spec through the service after
the mutation.
"""

import asyncio

import pytest

from repro.core.engine import ShardedEngine, UncertainEngine
from repro.core.types import CKNNQuery, CPNNQuery, CRangeQuery
from repro.service import QueryService, Subscription
from repro.uncertainty.objects import UncertainObject


def run(coro):
    return asyncio.run(coro)


def uniform(key, lo, hi):
    return UncertainObject.uniform(key, lo, hi)


def make_objects():
    return [uniform(i, 10.0 * i, 10.0 * i + 4.0) for i in range(12)]


def test_subscribe_initial_answer_matches_submit():
    async def scenario():
        engine = UncertainEngine(make_objects())
        async with QueryService(engine) as service:
            spec = CPNNQuery(21.0, threshold=0.3)
            subscription = await service.subscribe(spec)
            assert isinstance(subscription, Subscription)
            reply = await service.submit(spec)
            assert subscription.initial.answers == reply.result.answers
            assert subscription.updates.empty()

    run(scenario())


def test_far_mutation_pushes_nothing():
    async def scenario():
        engine = UncertainEngine(make_objects())
        async with QueryService(engine) as service:
            subscription = await service.subscribe(CPNNQuery(21.0, threshold=0.3))
            await service.replace(11, uniform(11, 300.0, 304.0))
            assert subscription.updates.empty()
            stats = service.stats()
            assert stats["subscriptions"] == 1
            assert stats["notifications"] == 0

    run(scenario())


def test_answer_change_pushes_exact_snapshot():
    async def scenario():
        engine = UncertainEngine(make_objects())
        async with QueryService(engine) as service:
            spec = CPNNQuery(21.0, threshold=0.3)
            subscription = await service.subscribe(spec)
            # Yank the nearest object far away: the answer must change.
            await service.replace(2, uniform(2, 300.0, 304.0))
            pushed = await asyncio.wait_for(subscription.updates.get(), 2)
            assert pushed.answers != subscription.initial.answers
            reply = await service.submit(spec)
            assert pushed.answers == reply.result.answers
            assert [
                (r.key, r.label, r.lower, r.upper, r.exact) for r in pushed.records
            ] == [
                (r.key, r.label, r.lower, r.upper, r.exact)
                for r in reply.result.records
            ]

    run(scenario())


def test_structural_mutation_recheck_for_knn_and_range():
    async def scenario():
        engine = UncertainEngine(make_objects())
        async with QueryService(engine) as service:
            knn = await service.subscribe(CKNNQuery(50.0, k=2, threshold=0.4))
            rng = await service.subscribe(
                CRangeQuery(50.0, radius=8.0, threshold=0.5)
            )
            await service.insert(uniform("new", 49.0, 53.0))
            changed = await asyncio.wait_for(rng.updates.get(), 2)
            assert "new" in changed.answers
            # The k-NN answer may or may not change; if it did, the
            # pushed snapshot must match a fresh submit.
            if not knn.updates.empty():
                pushed = knn.updates.get_nowait()
                reply = await service.submit(CKNNQuery(50.0, k=2, threshold=0.4))
                assert pushed.answers == reply.result.answers

    run(scenario())


def test_unsubscribe_stops_the_stream():
    async def scenario():
        engine = UncertainEngine(make_objects())
        async with QueryService(engine) as service:
            subscription = await service.subscribe(CPNNQuery(21.0, threshold=0.3))
            assert await service.unsubscribe(subscription) is True
            assert await service.unsubscribe(subscription) is False
            await service.replace(2, uniform(2, 300.0, 304.0))
            assert subscription.updates.empty()
            assert service.stats()["subscriptions"] == 0

    run(scenario())


def test_subscription_observes_prior_mutations():
    async def scenario():
        engine = UncertainEngine(make_objects())
        async with QueryService(engine) as service:
            # The barrier contract: a subscribe submitted after a
            # mutation sees its effect in the initial answer.
            await service.replace(2, uniform(2, 300.0, 304.0))
            subscription = await service.subscribe(CPNNQuery(21.0, threshold=0.3))
            reply = await service.submit(CPNNQuery(21.0, threshold=0.3))
            assert subscription.initial.answers == reply.result.answers

    run(scenario())


def test_multiple_subscriptions_fan_out_independently():
    async def scenario():
        engine = UncertainEngine(make_objects())
        async with QueryService(engine) as service:
            near = await service.subscribe(CPNNQuery(21.0, threshold=0.3))
            far = await service.subscribe(CPNNQuery(101.0, threshold=0.3))
            await service.replace(2, uniform(2, 300.0, 304.0))
            await asyncio.wait_for(near.updates.get(), 2)
            assert far.updates.empty()

    run(scenario())


def test_subscribe_over_sharded_engine():
    async def scenario(engine):
        async with QueryService(engine) as service:
            spec = CPNNQuery(21.0, threshold=0.3)
            subscription = await service.subscribe(spec)
            await service.replace(2, uniform(2, 300.0, 304.0))
            pushed = await asyncio.wait_for(subscription.updates.get(), 2)
            reply = await service.submit(spec)
            assert pushed.answers == reply.result.answers

    engine = ShardedEngine(make_objects(), n_shards=2, executor="serial")
    try:
        run(scenario(engine))
    finally:
        engine.close()


def test_queries_do_not_tick_the_monitor():
    async def scenario():
        engine = UncertainEngine(make_objects())
        async with QueryService(engine) as service:
            await service.subscribe(CPNNQuery(21.0, threshold=0.3))
            for q in (5.0, 45.0, 85.0):
                await service.submit(CPNNQuery(q, threshold=0.3))
            stats = engine.stats()["continuous"]
            assert stats["ticks"] == 0  # only mutation barriers tick

    run(scenario())


def test_mutations_without_subscriptions_bypass_monitor():
    async def scenario():
        engine = UncertainEngine(make_objects())
        async with QueryService(engine) as service:
            sub = await service.subscribe(CPNNQuery(21.0, threshold=0.3))
            await service.unsubscribe(sub)
            await service.replace(2, uniform(2, 300.0, 304.0))
            # No live subscriptions: the mutation goes straight to the
            # engine, no tick is paid.
            assert engine.stats()["continuous"]["ticks"] == 0
            reply = await service.submit(CPNNQuery(21.0, threshold=0.3))
            fresh = UncertainEngine(list(engine.objects))
            assert reply.result.answers == fresh.execute(
                CPNNQuery(21.0, threshold=0.3)
            ).answers

    run(scenario())


def test_remove_resolves_engine_contract_value():
    async def scenario():
        engine = UncertainEngine(make_objects())
        async with QueryService(engine) as service:
            await service.subscribe(CPNNQuery(21.0, threshold=0.3))
            assert await service.remove(11) is True
            assert await service.remove("no-such-key") is False

    run(scenario())


@pytest.mark.parametrize("family", ["pnn", "knn", "range"])
def test_pushed_snapshots_match_replica_engine(family):
    """Drive a mutation stream; every pushed snapshot must equal a
    fresh engine over the same object state at push time."""

    specs = {
        "pnn": CPNNQuery(25.0, threshold=0.25, tolerance=0.0),
        "knn": CKNNQuery(25.0, k=2, threshold=0.3),
        "range": CRangeQuery(25.0, radius=7.0, threshold=0.4),
    }

    async def scenario():
        engine = UncertainEngine(make_objects())
        async with QueryService(engine) as service:
            subscription = await service.subscribe(specs[family])
            moves = [
                (2, uniform(2, 23.0, 27.0)),
                (3, uniform(3, 200.0, 204.0)),
                (2, uniform(2, 400.0, 404.0)),
                (4, uniform(4, 24.0, 28.0)),
            ]
            for key, obj in moves:
                await service.replace(key, obj)
                if not subscription.updates.empty():
                    pushed = subscription.updates.get_nowait()
                    replica = UncertainEngine(list(engine.objects))
                    want = replica.execute(specs[family])
                    assert pushed.answers == want.answers

    run(scenario())
