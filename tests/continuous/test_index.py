"""Unit tests for the grouped dominance index.

The contract: :meth:`DominanceIndex.hit_by_boxes` may prune whole
groups but may never miss a handle whose exact
(:meth:`SafeRegion.hit_by`) test would fire — the group summary's
mindist is a lower bound and its max radius dominates every member.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.continuous.index import DominanceIndex
from repro.continuous.region import SafeRegion


def exact_hits(entries, lows, highs):
    """Brute-force reference: per-handle SafeRegion tests."""
    hits = set()
    for handle_id, (center, radius, structural) in entries.items():
        region = SafeRegion(
            center=np.asarray(center, dtype=float),
            radius=radius,
            structural=structural,
        )
        for lo, hi in zip(lows, highs):
            if region.hit_by(lo, hi):
                hits.add(handle_id)
                break
    return hits


class TestMaintenance:
    def test_put_discard_and_structural_ids(self):
        index = DominanceIndex(group_size=2)
        index.put(1, [0.0], 1.0, False)
        index.put(2, [5.0], 1.0, True)
        index.put(3, [9.0], 1.0, True)
        assert len(index) == 3
        assert index.structural_ids() == {2, 3}
        index.put(2, [5.0], 1.0, False)  # refresh flips the flag
        assert index.structural_ids() == {3}
        index.discard(3)
        index.discard(3)  # idempotent
        assert len(index) == 2
        assert index.structural_ids() == set()

    def test_group_size_validation(self):
        try:
            DominanceIndex(group_size=0)
        except ValueError:
            pass
        else:
            raise AssertionError("group_size=0 must be rejected")


class TestQueries:
    def test_empty_index(self):
        index = DominanceIndex()
        assert index.hit_by_boxes(np.array([[0.0]]), np.array([[1.0]])) == set()

    def test_exact_boundary_agreement(self):
        index = DominanceIndex(group_size=2)
        index.put(1, [10.0], 3.0, False)
        index.put(2, [20.0], 3.0, False)
        # Box at gap exactly 3 from handle 1, far from handle 2.
        hits = index.hit_by_boxes(np.array([[13.0]]), np.array([[14.0]]))
        assert hits == {1}

    def test_group_pruning_counts(self):
        index = DominanceIndex(group_size=4)
        for i in range(16):
            index.put(i, [float(100 * i)], 1.0, False)
        index.hit_by_boxes(np.array([[0.0]]), np.array([[0.5]]))
        stats = index.stats()
        assert stats["groups"] == 4
        assert stats["groups_pruned"] >= 3  # only handle 0's group descends
        assert stats["handle_tests"] <= 4

    def test_dimension_mismatch_returns_group_as_hits(self):
        index = DominanceIndex()
        index.put(1, [0.0], 0.5, False)
        index.put(2, [0.0, 0.0], 0.5, False)
        hits = index.hit_by_boxes(np.array([[50.0]]), np.array([[51.0]]))
        assert 2 in hits  # 2-D handle vs 1-D box: conservative hit
        assert 1 not in hits

    def test_infinite_radius_always_hits(self):
        index = DominanceIndex()
        index.put(1, [0.0], float("inf"), True)
        hits = index.hit_by_boxes(np.array([[1e15]]), np.array([[1e15 + 1]]))
        assert hits == {1}


@given(
    entries=st.lists(
        st.tuples(
            st.floats(min_value=-50.0, max_value=50.0),
            st.floats(min_value=0.0, max_value=20.0),
        ),
        min_size=0,
        max_size=40,
    ),
    boxes=st.lists(
        st.tuples(
            st.floats(min_value=-60.0, max_value=60.0),
            st.floats(min_value=0.0, max_value=10.0),
        ),
        min_size=1,
        max_size=6,
    ),
    group_size=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=80, deadline=None)
def test_never_misses_an_exact_hit(entries, boxes, group_size):
    """Property: the grouped sweep equals the brute-force per-handle
    test exactly — pruning is invisible in the result set."""
    index = DominanceIndex(group_size=group_size)
    table = {}
    for handle_id, (center, radius) in enumerate(entries):
        index.put(handle_id, [center], radius, False)
        table[handle_id] = (np.array([center]), radius, False)
    lows = np.array([[lo] for lo, _ in boxes])
    highs = np.array([[lo + width] for lo, width in boxes])
    assert index.hit_by_boxes(lows, highs) == exact_hits(table, lows, highs)
