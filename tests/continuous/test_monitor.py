"""Unit tests for the continuous monitor.

The replay contract: after any monitored mutation stream, every
registered handle's snapshot equals a fresh execution — replayed
handles because their certificate proves nothing changed, re-executed
handles because they just ran.  These tests pin the API (register /
unregister / tick / mutation front), the invalidation triggers per
family, query motion, out-of-band ``moved_keys``, and the stats /
explain wiring on both engines.
"""

import pytest

from repro.continuous import ContinuousMonitor
from repro.core.engine import ShardedEngine, UncertainEngine
from repro.core.types import CKNNQuery, CPNNQuery, CRangeQuery
from repro.uncertainty.objects import UncertainObject


def uniform(key, lo, hi):
    return UncertainObject.uniform(key, lo, hi)


def make_objects():
    # Clusters near 0-10 and 40-50 with a straggler at 90.
    return [
        uniform(0, 0.0, 2.0),
        uniform(1, 4.0, 6.0),
        uniform(2, 8.0, 10.0),
        uniform(3, 40.0, 42.0),
        uniform(4, 44.0, 46.0),
        uniform(5, 90.0, 92.0),
    ]


def make_specs():
    return [
        CPNNQuery(5.0, threshold=0.3, tolerance=0.0),
        CPNNQuery(43.0, threshold=0.3, tolerance=0.0),
        CKNNQuery(5.0, k=2, threshold=0.4),
        CRangeQuery(43.0, radius=4.0, threshold=0.4),
    ]


def assert_snapshot_fresh(handle, engine_objects):
    fresh = UncertainEngine(list(engine_objects))
    want = fresh.execute(handle.spec)
    got = handle.snapshot()
    assert got.answers == want.answers
    assert [(r.key, r.label, r.lower, r.upper, r.exact) for r in got.records] == [
        (r.key, r.label, r.lower, r.upper, r.exact) for r in want.records
    ]


class TestRegistration:
    def test_register_returns_live_handle(self):
        engine = UncertainEngine(make_objects())
        monitor = ContinuousMonitor(engine)
        handle = monitor.register(CPNNQuery(5.0, threshold=0.3))
        assert handle.answers == engine.execute(CPNNQuery(5.0, threshold=0.3)).answers
        assert handle.region is not None
        assert len(monitor) == 1
        assert monitor.handles == (handle,)

    def test_register_many_one_batch(self):
        engine = UncertainEngine(make_objects())
        monitor = ContinuousMonitor(engine)
        handles = monitor.register_many(make_specs())
        assert len(handles) == 4
        assert len({h.id for h in handles}) == 4
        for handle in handles:
            assert_snapshot_fresh(handle, engine.objects)

    def test_unregister_by_handle_and_id(self):
        engine = UncertainEngine(make_objects())
        monitor = ContinuousMonitor(engine)
        a, b = monitor.register_many(make_specs()[:2])
        assert monitor.unregister(a) is True
        assert monitor.unregister(a) is False
        assert monitor.unregister(b.id) is True
        assert len(monitor) == 0
        report = monitor.tick()
        assert report.registered == 0

    def test_bare_point_registers_as_cpnn(self):
        engine = UncertainEngine(make_objects())
        monitor = ContinuousMonitor(engine)
        handle = monitor.register(5.0)
        assert isinstance(handle.spec, CPNNQuery)

    def test_monitor_attaches_to_engine(self):
        engine = UncertainEngine(make_objects())
        monitor = ContinuousMonitor(engine)
        assert engine._continuous is monitor
        stats = engine.stats()["continuous"]
        assert stats["attached"] is True
        assert stats["registered"] == 0


class TestTicks:
    def test_noop_tick_replays_everything(self):
        engine = UncertainEngine(make_objects())
        monitor = ContinuousMonitor(engine)
        handles = monitor.register_many(make_specs())
        report = monitor.tick()
        assert report.reexecuted == ()
        assert report.replayed == len(handles)
        assert report.changed == {}
        assert report.escape_rate == 0.0

    def test_far_replace_replays_all_nonstructural_families(self):
        engine = UncertainEngine(make_objects())
        monitor = ContinuousMonitor(engine)
        handles = monitor.register_many(make_specs())
        monitor.replace(5, uniform(5, 120.0, 122.0))
        report = monitor.tick()
        # The straggler is far outside every certificate ball; only the
        # structural certificate could have fired, and an in-place
        # replace is non-structural.
        assert report.reexecuted == ()
        assert report.replayed == len(handles)
        for handle in handles:
            assert_snapshot_fresh(handle, engine.objects)

    def test_near_replace_invalidates_affected_only(self):
        engine = UncertainEngine(make_objects())
        monitor = ContinuousMonitor(engine)
        handles = monitor.register_many(make_specs())
        # Perturb inside the 40-50 cluster: the q=5 C-PNN certificate is
        # untouched, the q=43 C-PNN and the in-place-replace-tested
        # structural handles near 43 re-run.
        monitor.replace(4, uniform(4, 45.0, 47.0))
        report = monitor.tick()
        rerun = set(report.reexecuted)
        assert handles[0].id not in rerun  # q=5 C-PNN replayed
        assert handles[1].id in rerun  # q=43 C-PNN re-ran
        for handle in handles:
            assert_snapshot_fresh(handle, engine.objects)

    def test_insert_and_remove_invalidate_structural_handles(self):
        engine = UncertainEngine(make_objects())
        monitor = ContinuousMonitor(engine)
        handles = monitor.register_many(make_specs())
        monitor.insert(uniform("new", 200.0, 202.0))
        report = monitor.tick()
        rerun = set(report.reexecuted)
        # Census change: both structural handles re-run no matter how
        # far the insert landed; the C-PNN certificates are distance
        # tested and survive.
        assert handles[2].id in rerun and handles[3].id in rerun
        assert handles[0].id not in rerun and handles[1].id not in rerun
        monitor.remove("new")
        report = monitor.tick()
        rerun = set(report.reexecuted)
        assert handles[2].id in rerun and handles[3].id in rerun
        for handle in handles:
            assert_snapshot_fresh(handle, engine.objects)

    def test_remove_missing_key_is_not_a_mutation(self):
        engine = UncertainEngine(make_objects())
        monitor = ContinuousMonitor(engine)
        monitor.register_many(make_specs())
        assert monitor.remove("no-such-key") is False
        report = monitor.tick()
        assert report.mutations == 0
        assert report.reexecuted == ()

    def test_changed_carries_only_real_changes(self):
        engine = UncertainEngine(make_objects())
        monitor = ContinuousMonitor(engine)
        handle = monitor.register(CPNNQuery(5.0, threshold=0.3, tolerance=0.0))
        before = handle.answers
        # Crowd the q=5 neighbourhood so the answer set actually moves.
        monitor.replace(3, uniform(3, 4.5, 6.5))
        report = monitor.tick()
        assert handle.id in report.reexecuted
        if handle.answers != before:
            assert report.changed.keys() == {handle.id}
            assert report.changed[handle.id].answers == handle.answers
        else:
            assert report.changed == {}

    def test_query_move_reexecutes_only_the_mover(self):
        engine = UncertainEngine(make_objects())
        monitor = ContinuousMonitor(engine)
        handles = monitor.register_many(make_specs())
        mover = handles[0]
        report = monitor.tick(query_moves={mover: 43.0})
        assert report.reexecuted == (mover.id,)
        assert report.escaped == (mover.id,)
        assert mover.spec.q == 43.0
        assert_snapshot_fresh(mover, engine.objects)

    def test_stationary_query_report_replays(self):
        engine = UncertainEngine(make_objects())
        monitor = ContinuousMonitor(engine)
        handle = monitor.register(CPNNQuery(5.0, threshold=0.3))
        report = monitor.tick(query_moves={handle: 5.0})
        assert report.reexecuted == ()
        assert report.escaped == ()

    def test_query_move_unknown_handle_raises(self):
        engine = UncertainEngine(make_objects())
        monitor = ContinuousMonitor(engine)
        monitor.register(CPNNQuery(5.0, threshold=0.3))
        with pytest.raises(KeyError):
            monitor.tick(query_moves={999: 1.0})

    def test_out_of_band_moved_keys(self):
        engine = UncertainEngine(make_objects())
        monitor = ContinuousMonitor(engine)
        handles = monitor.register_many(make_specs())
        # Mutate the engine directly (no monitor front), then declare.
        engine.replace(1, uniform(1, 4.0, 7.0))
        report = monitor.tick(moved_keys=[1])
        rerun = set(report.reexecuted)
        # Key 1 was a candidate of the q=5 C-PNN; structural handles
        # degrade to full invalidation (old MBR unknown).
        assert handles[0].id in rerun
        assert handles[2].id in rerun and handles[3].id in rerun
        for handle in handles:
            assert_snapshot_fresh(handle, engine.objects)

    def test_undeclared_mutations_are_callers_problem(self):
        # Document the contract's sharp edge: a mutation applied behind
        # the monitor's back silently invalidates nothing.
        engine = UncertainEngine(make_objects())
        monitor = ContinuousMonitor(engine)
        monitor.register(CPNNQuery(5.0, threshold=0.3))
        engine.replace(1, uniform(1, 60.0, 62.0))
        report = monitor.tick()
        assert report.reexecuted == ()  # the stale snapshot stands


class TestObservability:
    def test_stats_counters(self):
        engine = UncertainEngine(make_objects())
        monitor = ContinuousMonitor(engine)
        monitor.register_many(make_specs())
        monitor.tick()
        monitor.replace(4, uniform(4, 45.0, 47.0))
        monitor.tick()
        stats = monitor.stats()
        assert stats["registered"] == 4
        assert stats["ticks"] == 2
        assert stats["reexecuted"] + stats["replayed"] == 8
        assert 0.0 <= stats["hit_rate"] <= 1.0
        assert stats["index"]["handles"] == 4

    def test_engine_stats_and_explain_report_the_tier(self):
        engine = UncertainEngine(make_objects())
        monitor = ContinuousMonitor(engine)
        monitor.register_many(make_specs())
        monitor.tick()
        stats = engine.stats()["continuous"]
        assert stats["attached"] is True
        assert stats["registered"] == 4
        plan = engine.explain(CPNNQuery(5.0, threshold=0.3))
        assert plan.continuous["attached"] is True
        assert "continuous" in plan.describe()

    def test_detached_engine_reports_unattached(self):
        engine = UncertainEngine(make_objects())
        assert engine.stats()["continuous"] == {"attached": False}
        plan = engine.explain(CPNNQuery(5.0, threshold=0.3))
        assert plan.continuous == {"attached": False}
        assert "continuous" not in plan.describe()


class TestShardedEngine:
    def test_monitor_over_sharded_engine_matches_single(self):
        objects = make_objects()
        sharded = ShardedEngine(list(objects), n_shards=3, max_workers=2)
        try:
            monitor = ContinuousMonitor(sharded)
            handles = monitor.register_many(make_specs())
            monitor.replace(4, uniform(4, 45.0, 47.0))
            monitor.insert(uniform("new", 7.0, 9.0))
            report = monitor.tick()
            assert report.registered == 4
            for handle in handles:
                assert_snapshot_fresh(handle, sharded.objects)
            assert sharded.stats()["continuous"]["attached"] is True
        finally:
            sharded.close()
