"""Unit tests for the safe-region certificate (DESIGN.md §17).

The soundness anchor: a mutation MBR that does *not* hit a query's
region may never change that query's answer.  These tests pin the
geometry (the ``TableCache.invalidate_boxes`` arithmetic), the
per-family radius/structural derivation, and the exact-point semantics
of query motion.
"""

import math

import numpy as np

from repro.continuous.region import SafeRegion
from repro.core.engine import UncertainEngine
from repro.core.types import CKNNQuery, CPNNQuery, CRangeQuery
from repro.uncertainty.objects import UncertainObject


def uniform(key, lo, hi):
    return UncertainObject.uniform(key, lo, hi)


def region_for(spec, objects):
    engine = UncertainEngine(list(objects))
    return SafeRegion.from_result(spec, engine.execute(spec))


class TestDerivation:
    def test_cpnn_radius_is_fmin_and_nonstructural(self):
        objects = [uniform(0, 0.0, 2.0), uniform(1, 10.0, 12.0)]
        spec = CPNNQuery(1.0, threshold=0.3)
        engine = UncertainEngine(objects)
        result = engine.execute(spec)
        region = SafeRegion.from_result(spec, result)
        assert region.radius == float(result.fmin)
        assert math.isfinite(region.radius)
        assert not region.structural
        assert region.center.tolist() == [1.0]

    def test_knn_and_range_are_structural(self):
        objects = [uniform(i, 3.0 * i, 3.0 * i + 1.0) for i in range(4)]
        knn = region_for(CKNNQuery(2.0, k=2, threshold=0.4), objects)
        rng = region_for(CRangeQuery(2.0, radius=5.0, threshold=0.4), objects)
        assert knn.structural
        assert rng.structural
        # The range certificate is the query radius itself.
        assert rng.radius == 5.0

    def test_nonfinite_fmin_normalises_to_inf(self):
        # k >= n: fmin is +inf; empty engine: fmin is NaN.  Both become
        # the unbounded certificate (always invalidated, always sound).
        objects = [uniform(0, 0.0, 1.0)]
        trivial = region_for(CKNNQuery(0.5, k=5, threshold=0.3), objects)
        assert trivial.radius == float("inf")
        engine = UncertainEngine([])
        spec = CPNNQuery(0.5, threshold=0.3)
        empty = SafeRegion.from_result(spec, engine.execute(spec))
        assert empty.radius == float("inf")
        assert empty.hit_by([1e12], [1e12 + 1.0])


class TestGeometry:
    def test_hit_by_matches_clamped_gap_arithmetic(self):
        region = SafeRegion(center=np.array([10.0]), radius=3.0, structural=False)
        assert region.hit_by([12.0], [14.0])  # gap 2 <= 3
        assert region.hit_by([13.0], [14.0])  # boundary: gap 3 <= 3
        assert not region.hit_by([13.5], [14.0])  # gap 3.5 > 3
        assert region.hit_by([9.0], [11.0])  # box containing the center

    def test_hit_by_multidim(self):
        region = SafeRegion(
            center=np.array([0.0, 0.0]), radius=5.0, structural=False
        )
        # Corner gap (3, 4) -> distance 5, on the boundary.
        assert region.hit_by([3.0, 4.0], [6.0, 7.0])
        assert not region.hit_by([3.0, 4.1], [6.0, 7.0])

    def test_dimension_mismatch_is_conservative(self):
        region = SafeRegion(center=np.array([0.0]), radius=1.0, structural=False)
        assert region.hit_by([50.0, 50.0], [51.0, 51.0])

    def test_contains_point_is_exact_equality(self):
        region = SafeRegion(center=np.array([2.5]), radius=9.0, structural=False)
        assert region.contains_point(2.5)
        assert not region.contains_point(2.5 + 1e-12)
        assert not region.contains_point([2.5, 2.5])


class TestSoundness:
    """The certificate argument, checked against the engine itself:
    mutations whose MBR misses the region never change the answer."""

    def test_miss_preserves_cpnn_result(self):
        objects = [uniform(0, 0.0, 2.0), uniform(1, 5.0, 7.0), uniform(2, 40.0, 42.0)]
        spec = CPNNQuery(1.0, threshold=0.2, tolerance=0.0)
        engine = UncertainEngine(list(objects))
        before = engine.execute(spec)
        region = SafeRegion.from_result(spec, before)
        # Move the far object around, always outside the ball.
        for lo in (60.0, 80.0, 100.0):
            replacement = uniform(2, lo, lo + 2.0)
            mbr = replacement.mbr
            assert not region.hit_by(mbr.lows, mbr.highs)
            old = engine.object_for(2).mbr
            assert not region.hit_by(old.lows, old.highs)
            engine.replace(2, replacement)
            after = engine.execute(spec)
            assert after.answers == before.answers
            assert after.fmin == before.fmin
            assert [(r.key, r.label, r.lower, r.upper) for r in after.records] == [
                (r.key, r.label, r.lower, r.upper) for r in before.records
            ]

    def test_miss_preserves_inplace_knn_and_range(self):
        objects = [uniform(i, 4.0 * i, 4.0 * i + 1.0) for i in range(6)]
        specs = [
            CKNNQuery(2.0, k=2, threshold=0.4),
            CRangeQuery(2.0, radius=3.0, threshold=0.4),
        ]
        engine = UncertainEngine(list(objects))
        for spec in specs:
            before = engine.execute(spec)
            region = SafeRegion.from_result(spec, before)
            replacement = uniform(5, 90.0, 91.0)
            new = replacement.mbr
            old = engine.object_for(5).mbr
            assert not region.hit_by(new.lows, new.highs)
            assert not region.hit_by(old.lows, old.highs)
            engine.replace(5, replacement)
            after = engine.execute(spec)
            assert after.answers == before.answers
            engine.replace(5, objects[5])  # restore for the next family
