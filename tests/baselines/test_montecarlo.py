"""Tests for the Monte-Carlo baseline ([9])."""

import numpy as np
import pytest

from repro.baselines.montecarlo import (
    monte_carlo_knn_probabilities,
    monte_carlo_pnn_probabilities,
)
from repro.uncertainty.twod import UncertainDisk
from tests.conftest import make_random_objects, two_object_textbook_case


class TestMonteCarloPnn:
    def test_textbook_case(self, rng):
        objects, q = two_object_textbook_case()
        probs = monte_carlo_pnn_probabilities(objects, q, trials=200_000, rng=rng)
        assert probs["A"] == pytest.approx(0.875, abs=5e-3)
        assert probs["B"] == pytest.approx(0.125, abs=5e-3)

    def test_probabilities_sum_to_one(self, rng):
        objects = make_random_objects(rng, 8)
        probs = monte_carlo_pnn_probabilities(objects, 30.0, trials=10_000, rng=rng)
        assert sum(probs.values()) == pytest.approx(1.0, abs=1e-12)

    def test_batching_matches_single_pass(self):
        objects, q = two_object_textbook_case()
        a = monte_carlo_pnn_probabilities(
            objects, q, trials=60_000, rng=np.random.default_rng(5)
        )
        b = monte_carlo_pnn_probabilities(
            objects, q, trials=60_000, rng=np.random.default_rng(5)
        )
        assert a == b  # deterministic given the seed

    def test_2d_objects(self, rng):
        disks = [
            UncertainDisk("near", (0.0, 0.0), 1.0),
            UncertainDisk("far", (10.0, 0.0), 1.0),
        ]
        probs = monte_carlo_pnn_probabilities(disks, (1.0, 0.0), trials=5_000, rng=rng)
        assert probs["near"] == pytest.approx(1.0)
        assert probs["far"] == pytest.approx(0.0)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            monte_carlo_pnn_probabilities([], 0.0, trials=0)


class TestMonteCarloKnn:
    def test_sums_to_k(self, rng):
        objects = make_random_objects(rng, 6)
        probs = monte_carlo_knn_probabilities(objects, 30.0, k=2, trials=20_000, rng=rng)
        assert sum(probs.values()) == pytest.approx(2.0, abs=1e-9)

    def test_k_covers_all(self, rng):
        objects = make_random_objects(rng, 4)
        probs = monte_carlo_knn_probabilities(objects, 0.0, k=4, trials=100, rng=rng)
        assert all(p == 1.0 for p in probs.values())

    def test_validation(self, rng):
        objects = make_random_objects(rng, 3)
        with pytest.raises(ValueError):
            monte_carlo_knn_probabilities(objects, 0.0, k=0)
