"""Tests for the Simpson-rule Basic baseline (independent of the
engine's Gauss–Legendre path, so the two cross-validate)."""

import pytest

from repro.baselines.basic import basic_pnn_probabilities
from repro.core.refinement import Refiner
from repro.core.subregions import SubregionTable
from tests.conftest import make_random_objects, two_object_textbook_case


class TestBasicBaseline:
    def test_textbook_case(self):
        objects, q = two_object_textbook_case()
        probs = basic_pnn_probabilities(objects, q, subdivisions=16)
        assert probs["A"] == pytest.approx(0.875, abs=1e-9)
        assert probs["B"] == pytest.approx(0.125, abs=1e-9)

    def test_single_object(self):
        from repro.uncertainty.objects import UncertainObject

        probs = basic_pnn_probabilities([UncertainObject.uniform("x", 0, 1)], 5.0)
        assert probs["x"] == 1.0

    def test_agrees_with_gauss_legendre(self, rng):
        for _ in range(6):
            objects = make_random_objects(rng, int(rng.integers(2, 12)))
            q = float(rng.uniform(0, 60))
            simpson = basic_pnn_probabilities(objects, q, subdivisions=12)
            table = SubregionTable([o.distance_distribution(q) for o in objects])
            exact = Refiner(table).exact_all()
            for i, dist in enumerate(table.distributions):
                assert simpson[dist.key] == pytest.approx(exact[i], abs=5e-6)

    def test_accuracy_improves_with_subdivisions(self, rng):
        objects = make_random_objects(rng, 8, families=("gaussian",))
        q = 30.0
        table = SubregionTable([o.distance_distribution(q) for o in objects])
        exact = {d.key: p for d, p in zip(table.distributions, Refiner(table).exact_all())}
        def error(subdivisions):
            approx = basic_pnn_probabilities(objects, q, subdivisions=subdivisions)
            return max(abs(approx[k] - exact[k]) for k in exact)
        assert error(8) <= error(1) + 1e-12

    def test_sums_to_one(self, rng):
        objects = make_random_objects(rng, 10)
        probs = basic_pnn_probabilities(objects, 30.0, subdivisions=12)
        assert sum(probs.values()) == pytest.approx(1.0, abs=1e-6)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            basic_pnn_probabilities([], 0.0)
        with pytest.raises(ValueError):
            basic_pnn_probabilities(make_random_objects(rng, 3), 0.0, subdivisions=0)
