"""Tests for distance pdf/cdf derivation — Figure 6 of the paper."""

import numpy as np
import pytest

from repro.uncertainty.distance import DistanceDistribution
from repro.uncertainty.histogram import Histogram, HistogramError
from repro.uncertainty.objects import UncertainObject


class TestFigureSix:
    """The worked example of Figure 6: X1 uniform on [l, u]."""

    L, U = 2.0, 10.0

    def object(self) -> UncertainObject:
        return UncertainObject.uniform("X1", self.L, self.U)

    def test_query_inside_q1(self):
        # Figure 6(b): q1 in (l, u); n1 = 0, f1 = u - q1.
        q1 = 5.0
        dist = self.object().distance_distribution(q1)
        assert dist.near == pytest.approx(0.0)
        assert dist.far == pytest.approx(self.U - q1)
        width = self.U - self.L
        # [0, q1 - l]: both sides fold, density 2/(u - l).
        assert dist.pdf(1.0) == pytest.approx(2.0 / width)
        # (q1 - l, u - q1]: one side only, density 1/(u - l).
        assert dist.pdf(4.0) == pytest.approx(1.0 / width)
        assert dist.cdf(dist.far) == pytest.approx(1.0)

    def test_query_outside_q2(self):
        # Figure 6(c): q2 < l; support shifts to [l - q2, u - q2].
        q2 = 1.0
        dist = self.object().distance_distribution(q2)
        assert dist.near == pytest.approx(self.L - q2)
        assert dist.far == pytest.approx(self.U - q2)
        assert dist.pdf(5.0) == pytest.approx(1.0 / (self.U - self.L))

    def test_interval_property(self):
        dist = self.object().distance_distribution(5.0)
        assert dist.interval == (dist.near, dist.far)


class TestDistanceDistribution:
    def test_normalises_and_trims(self):
        h = Histogram([0, 1, 2, 3], [0.0, 2.0, 0.0])
        dist = DistanceDistribution(h, key="k")
        assert dist.key == "k"
        assert dist.near == pytest.approx(1.0)
        assert dist.far == pytest.approx(2.0)
        assert dist.cdf(1.5) == pytest.approx(0.5)

    def test_rejects_zero_mass(self):
        with pytest.raises(HistogramError):
            DistanceDistribution(Histogram([0, 1], [0.0]))

    def test_rejects_negative_support(self):
        with pytest.raises(HistogramError):
            DistanceDistribution(Histogram([-1.0, 1.0], [0.5]))

    def test_sf_is_one_minus_cdf(self):
        dist = UncertainObject.uniform("a", 0, 4).distance_distribution(1.0)
        rs = np.linspace(0, 3, 7)
        assert np.allclose(
            np.asarray(dist.sf(rs)) + np.asarray(dist.cdf(rs)), 1.0
        )

    def test_mass_between_is_subregion_probability(self):
        dist = UncertainObject.uniform("a", 0, 4).distance_distribution(0.0)
        assert dist.mass_between(1.0, 2.0) == pytest.approx(0.25)

    def test_overlaps_uses_open_interval(self):
        dist = UncertainObject.uniform("a", 2, 4).distance_distribution(0.0)
        assert dist.overlaps(1.0, 3.0)
        assert not dist.overlaps(4.0, 5.0)
        # Touching only at the boundary is not overlap.
        assert not dist.overlaps(0.0, 2.0)

    def test_from_cdf_matches_at_edges(self):
        dist = DistanceDistribution.from_cdf(
            lambda r: min(max(r / 2.0, 0.0), 1.0), 0.0, 2.0, bins=8
        )
        assert dist.cdf(1.0) == pytest.approx(0.5)

    def test_from_cdf_needs_positive_width(self):
        with pytest.raises(HistogramError):
            DistanceDistribution.from_cdf(lambda r: 1.0, 1.0, 1.0, bins=4)

    def test_sampling_agrees_with_cdf(self, rng):
        dist = UncertainObject.gaussian("g", 0, 6, bars=30).distance_distribution(2.0)
        samples = dist.sample(rng, 100_000)
        for r in (0.5, 1.5, 3.0):
            assert np.mean(samples <= r) == pytest.approx(dist.cdf(r), abs=6e-3)

    def test_gaussian_fold_preserves_mass(self):
        obj = UncertainObject.gaussian("g", 0, 6, bars=120)
        for q in (-1.0, 0.0, 2.0, 3.0, 6.0, 8.5):
            dist = obj.distance_distribution(q)
            assert dist.cdf(dist.far + 1.0) == pytest.approx(1.0, abs=1e-12)
