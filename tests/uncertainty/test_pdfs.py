"""Unit tests for the pdf families."""

import numpy as np
import pytest
from scipy import stats

from repro.uncertainty.histogram import HistogramError
from repro.uncertainty.pdfs import (
    HistogramPdf,
    MixturePdf,
    TriangularPdf,
    TruncatedGaussianPdf,
    UniformPdf,
)


class TestUniformPdf:
    def test_histogram_form_is_exact(self):
        pdf = UniformPdf(1.0, 3.0)
        h = pdf.to_histogram()
        assert h.nbins == 1
        assert h.pdf(2.0) == pytest.approx(0.5)

    def test_explicit_bins(self):
        h = UniformPdf(0.0, 1.0).to_histogram(bins=4)
        assert h.nbins == 4
        assert h.total_mass == pytest.approx(1.0)

    def test_rejects_empty_interval(self):
        with pytest.raises(HistogramError):
            UniformPdf(1.0, 1.0)

    def test_cdf_delegates(self):
        assert UniformPdf(0.0, 2.0).cdf(1.0) == pytest.approx(0.5)


class TestTruncatedGaussianPdf:
    def test_paper_defaults(self):
        # Section V: mean at centre, sigma = width / 6, 300 bars.
        pdf = TruncatedGaussianPdf(0.0, 6.0)
        assert pdf.mean_parameter == pytest.approx(3.0)
        assert pdf.sigma == pytest.approx(1.0)
        assert pdf.bars == 300

    def test_histogram_mass_and_edges_match_phi(self):
        pdf = TruncatedGaussianPdf(0.0, 6.0, bars=50)
        h = pdf.to_histogram()
        assert h.total_mass == pytest.approx(1.0)
        # cdf at interval midpoint must equal the truncated Phi value.
        z = stats.norm.cdf
        expected = (z(0.0) - z(-3.0)) / (z(3.0) - z(-3.0))
        assert h.cdf(3.0) == pytest.approx(expected, abs=1e-12)

    def test_symmetry(self):
        h = TruncatedGaussianPdf(-2.0, 2.0, bars=40).to_histogram()
        assert h.cdf(0.0) == pytest.approx(0.5)
        assert h.pdf(-1.0) == pytest.approx(h.pdf(1.0 - 1e-9), rel=1e-6)

    def test_rejects_bad_sigma(self):
        with pytest.raises(HistogramError):
            TruncatedGaussianPdf(0.0, 1.0, sigma=0.0)

    def test_rejects_bad_bars(self):
        with pytest.raises(HistogramError):
            TruncatedGaussianPdf(0.0, 1.0, bars=0)


class TestHistogramPdf:
    def test_masses_are_normalised(self):
        pdf = HistogramPdf([0, 1, 2], [2.0, 6.0])
        h = pdf.to_histogram()
        assert h.total_mass == pytest.approx(1.0)
        assert h.cdf(1.0) == pytest.approx(0.25)

    def test_densities_mode(self):
        pdf = HistogramPdf([0, 1, 2], [0.5, 0.5], as_masses=False)
        assert pdf.to_histogram().total_mass == pytest.approx(1.0)

    def test_zero_mass_rejected(self):
        with pytest.raises(HistogramError):
            HistogramPdf([0, 1], [0.0])


class TestTriangularPdf:
    def test_cdf_at_mode(self):
        pdf = TriangularPdf(0.0, 2.0, mode=1.0, bars=64)
        h = pdf.to_histogram()
        assert h.cdf(1.0) == pytest.approx(0.5, abs=1e-9)
        assert h.total_mass == pytest.approx(1.0)

    def test_asymmetric_mode(self):
        pdf = TriangularPdf(0.0, 4.0, mode=1.0, bars=128)
        h = pdf.to_histogram()
        # P(X <= mode) = (mode - lo) / (hi - lo)
        assert h.cdf(1.0) == pytest.approx(0.25, abs=1e-9)

    def test_mode_outside_rejected(self):
        with pytest.raises(HistogramError):
            TriangularPdf(0.0, 1.0, mode=2.0)


class TestMixturePdf:
    def test_bimodal_mixture(self):
        mix = MixturePdf([UniformPdf(0.0, 1.0), UniformPdf(3.0, 4.0)], [0.3, 0.7])
        h = mix.to_histogram()
        assert h.total_mass == pytest.approx(1.0)
        assert h.cdf(2.0) == pytest.approx(0.3)
        assert mix.lo == 0.0 and mix.hi == 4.0

    def test_interior_zero_density(self):
        # Mixtures create the interior-gap pdfs our verifier products
        # must remain sound for (DESIGN.md §5).
        mix = MixturePdf([UniformPdf(0.0, 1.0), UniformPdf(3.0, 4.0)])
        h = mix.to_histogram()
        assert h.pdf(2.0) == 0.0

    def test_weight_validation(self):
        with pytest.raises(HistogramError):
            MixturePdf([UniformPdf(0, 1)], [-1.0])
        with pytest.raises(HistogramError):
            MixturePdf([], None)

    def test_sampling_respects_weights(self, rng):
        mix = MixturePdf([UniformPdf(0.0, 1.0), UniformPdf(3.0, 4.0)], [0.2, 0.8])
        samples = mix.sample(rng, 20_000)
        assert np.mean(samples < 2.0) == pytest.approx(0.2, abs=0.02)
