"""Tests for 2-D uncertainty regions and their distance distributions."""

import math

import numpy as np
import pytest

from repro.index.geometry import Rect
from repro.uncertainty.twod import (
    UncertainDisk,
    UncertainRectangle,
    UncertainSegment,
    circle_circle_intersection_area,
    disk_rect_intersection_area,
)


class TestCircleCircleArea:
    def test_disjoint(self):
        assert circle_circle_intersection_area(5.0, 1.0, 2.0) == 0.0

    def test_contained(self):
        assert circle_circle_intersection_area(0.5, 3.0, 1.0) == pytest.approx(
            math.pi
        )

    def test_identical(self):
        assert circle_circle_intersection_area(0.0, 2.0, 2.0) == pytest.approx(
            4 * math.pi
        )

    def test_half_overlap_symmetry(self):
        a = circle_circle_intersection_area(1.5, 1.0, 2.0)
        b = circle_circle_intersection_area(1.5, 2.0, 1.0)
        assert a == pytest.approx(b)

    def test_monte_carlo_agreement(self, rng):
        d, r1, r2 = 1.2, 1.0, 1.5
        pts = rng.uniform(-3, 3, size=(200_000, 2))
        inside = (np.linalg.norm(pts, axis=1) <= r1) & (
            np.linalg.norm(pts - np.asarray([d, 0.0]), axis=1) <= r2
        )
        mc = inside.mean() * 36.0
        assert circle_circle_intersection_area(d, r1, r2) == pytest.approx(
            mc, rel=0.02
        )

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            circle_circle_intersection_area(-1.0, 1.0, 1.0)


class TestDiskRectArea:
    def test_rect_inside_circle(self):
        rect = Rect([0.0, 0.0], [1.0, 1.0])
        assert disk_rect_intersection_area((0.5, 0.5), 10.0, rect) == pytest.approx(
            1.0
        )

    def test_circle_inside_rect(self):
        rect = Rect([-5.0, -5.0], [5.0, 5.0])
        assert disk_rect_intersection_area((0.0, 0.0), 1.0, rect) == pytest.approx(
            math.pi, abs=1e-9
        )

    def test_disjoint(self):
        rect = Rect([10.0, 10.0], [11.0, 11.0])
        assert disk_rect_intersection_area((0.0, 0.0), 1.0, rect) == 0.0

    def test_quarter_circle(self):
        rect = Rect([0.0, 0.0], [10.0, 10.0])
        assert disk_rect_intersection_area((0.0, 0.0), 2.0, rect) == pytest.approx(
            math.pi, abs=1e-9
        )

    def test_monte_carlo_agreement(self, rng):
        rect = Rect([0.0, 0.0], [2.0, 1.0])
        q, r = (0.5, 0.75), 0.9
        pts = rng.uniform(0, 2, size=(300_000, 2))
        pts[:, 1] /= 2.0
        inside = np.linalg.norm(pts - np.asarray(q), axis=1) <= r
        mc = inside.mean() * 2.0
        assert disk_rect_intersection_area(q, r, rect) == pytest.approx(mc, rel=0.02)


class TestUncertainDisk:
    def test_min_max_dist(self):
        disk = UncertainDisk("d", (3.0, 4.0), 2.0)
        assert disk.mindist((0.0, 0.0)) == pytest.approx(3.0)
        assert disk.maxdist((0.0, 0.0)) == pytest.approx(7.0)
        assert disk.mindist((3.0, 4.5)) == 0.0

    def test_distance_cdf_query_at_center(self):
        disk = UncertainDisk("d", (0.0, 0.0), 2.0)
        # P(R <= r) = r^2 / R^2 for uniform disk with q at the centre.
        assert disk.distance_cdf((0.0, 0.0), 1.0) == pytest.approx(0.25)
        assert disk.distance_cdf((0.0, 0.0), 2.0) == pytest.approx(1.0)

    def test_distance_distribution_vs_sampling(self, rng):
        disk = UncertainDisk("d", (1.0, 1.0), 1.5, distance_bins=128)
        q = (3.0, 0.0)
        dist = disk.distance_distribution(q)
        samples = disk.sample(rng, 150_000)
        ds = np.linalg.norm(samples - np.asarray(q), axis=1)
        for r in np.linspace(dist.near + 0.1, dist.far - 0.1, 5):
            assert dist.cdf(r) == pytest.approx(np.mean(ds <= r), abs=7e-3)

    def test_mbr(self):
        disk = UncertainDisk("d", (1.0, 2.0), 0.5)
        assert disk.mbr == Rect([0.5, 1.5], [1.5, 2.5])

    def test_rejects_bad_radius(self):
        with pytest.raises(ValueError):
            UncertainDisk("d", (0, 0), 0.0)


class TestUncertainSegment:
    def test_distance_cdf_exact_simple(self):
        # Horizontal segment, query above its midpoint.
        seg = UncertainSegment("s", (0.0, 0.0), (2.0, 0.0))
        q = (1.0, 1.0)
        # R(t) = sqrt((2t-1)^2 + 1); P(R <= sqrt(2)) covers t in [0, 1].
        assert seg.distance_cdf(q, math.sqrt(2.0)) == pytest.approx(1.0)
        # P(R <= sqrt(1.25)): |2t - 1| <= 0.5 -> t in [0.25, 0.75].
        assert seg.distance_cdf(q, math.sqrt(1.25)) == pytest.approx(0.5)

    def test_min_max_dist_perpendicular_foot(self):
        seg = UncertainSegment("s", (0.0, 0.0), (4.0, 0.0))
        assert seg.mindist((2.0, 3.0)) == pytest.approx(3.0)
        assert seg.maxdist((2.0, 3.0)) == pytest.approx(math.sqrt(4 + 9))

    def test_min_dist_beyond_endpoint(self):
        seg = UncertainSegment("s", (0.0, 0.0), (4.0, 0.0))
        assert seg.mindist((6.0, 0.0)) == pytest.approx(2.0)

    def test_distance_distribution_vs_sampling(self, rng):
        seg = UncertainSegment("s", (0.0, 0.0), (3.0, 2.0), distance_bins=128)
        q = (1.0, 2.0)
        dist = seg.distance_distribution(q)
        samples = seg.sample(rng, 150_000)
        ds = np.linalg.norm(samples - np.asarray(q), axis=1)
        for r in np.linspace(dist.near + 0.05, dist.far - 0.05, 5):
            assert dist.cdf(r) == pytest.approx(np.mean(ds <= r), abs=7e-3)

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            UncertainSegment("s", (1.0, 1.0), (1.0, 1.0))


class TestUncertainRectangle:
    def test_distance_distribution_vs_sampling(self, rng):
        rect = UncertainRectangle.from_bounds("r", 0, 0, 2, 1, distance_bins=128)
        q = (2.5, 0.5)
        dist = rect.distance_distribution(q)
        samples = rect.sample(rng, 150_000)
        ds = np.linalg.norm(samples - np.asarray(q), axis=1)
        for r in np.linspace(dist.near + 0.05, dist.far - 0.05, 5):
            assert dist.cdf(r) == pytest.approx(np.mean(ds <= r), abs=7e-3)

    def test_query_inside(self):
        rect = UncertainRectangle.from_bounds("r", 0, 0, 4, 4)
        assert rect.mindist((1.0, 1.0)) == 0.0
        dist = rect.distance_distribution((2.0, 2.0))
        assert dist.near == pytest.approx(0.0)
        assert dist.far == pytest.approx(math.sqrt(8.0))

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            UncertainRectangle("r", Rect([0.0], [1.0]))

    def test_rejects_zero_area(self):
        with pytest.raises(ValueError):
            UncertainRectangle("r", Rect([0.0, 0.0], [1.0, 0.0]))


class TestDegenerateFloatInputs:
    def test_subnormal_center_distance(self):
        # Regression: d = 5e-324 slips past the containment guard when
        # r1 == r2 and used to divide by an underflowed denominator.
        import math

        area = circle_circle_intersection_area(5e-324, 1.0, 1.0)
        assert area == pytest.approx(math.pi)

    def test_tiny_but_normal_distance(self):
        import math

        area = circle_circle_intersection_area(1e-12, 2.0, 2.0)
        assert area == pytest.approx(4 * math.pi, rel=1e-9)
