"""Unit tests for the histogram calculus."""

import numpy as np
import pytest

from repro.uncertainty.histogram import Histogram, HistogramError


class TestConstruction:
    def test_uniform_has_unit_mass(self):
        h = Histogram.uniform(2.0, 6.0)
        assert h.total_mass == pytest.approx(1.0)
        assert h.lo == 2.0 and h.hi == 6.0
        assert h.nbins == 1

    def test_uniform_requires_positive_width(self):
        with pytest.raises(HistogramError):
            Histogram.uniform(3.0, 3.0)

    def test_from_masses(self):
        h = Histogram.from_masses([0, 1, 3], [0.25, 0.75])
        assert h.densities[0] == pytest.approx(0.25)
        assert h.densities[1] == pytest.approx(0.375)
        assert h.total_mass == pytest.approx(1.0)

    def test_rejects_decreasing_edges(self):
        with pytest.raises(HistogramError):
            Histogram([0, 2, 1], [0.5, 0.5])

    def test_rejects_negative_density(self):
        with pytest.raises(HistogramError):
            Histogram([0, 1, 2], [0.5, -0.1])

    def test_rejects_wrong_density_count(self):
        with pytest.raises(HistogramError):
            Histogram([0, 1, 2], [1.0])

    def test_rejects_nonfinite(self):
        with pytest.raises(HistogramError):
            Histogram([0, np.inf], [1.0])
        with pytest.raises(HistogramError):
            Histogram([0, 1], [np.nan])

    def test_from_cdf_matches_at_edges(self):
        h = Histogram.from_cdf(lambda x: min(max(x, 0.0), 1.0), 0.0, 1.0, bins=10)
        assert h.cdf(0.5) == pytest.approx(0.5)
        assert h.total_mass == pytest.approx(1.0)


class TestEvaluation:
    def test_pdf_inside_and_outside(self):
        h = Histogram.uniform(0.0, 2.0)
        assert h.pdf(1.0) == pytest.approx(0.5)
        assert h.pdf(-0.1) == 0.0
        assert h.pdf(2.1) == 0.0

    def test_pdf_uses_right_bin_at_breakpoint(self):
        h = Histogram([0, 1, 2], [0.25, 0.75])
        assert h.pdf(1.0) == pytest.approx(0.75)
        assert h.pdf(2.0) == pytest.approx(0.75)

    def test_cdf_is_piecewise_linear(self):
        h = Histogram([0, 1, 3], [0.5, 0.25])
        assert h.cdf(0.5) == pytest.approx(0.25)
        assert h.cdf(1.0) == pytest.approx(0.5)
        assert h.cdf(2.0) == pytest.approx(0.75)
        assert h.cdf(-1) == 0.0
        assert h.cdf(10) == pytest.approx(1.0)

    def test_sf_complements_cdf(self):
        h = Histogram.uniform(0.0, 4.0)
        xs = np.linspace(-1, 5, 13)
        assert np.allclose(np.asarray(h.sf(xs)) + np.asarray(h.cdf(xs)), 1.0)

    def test_ppf_inverts_cdf(self):
        h = Histogram([0, 1, 3], [0.5, 0.25])
        for u in (0.0, 0.1, 0.5, 0.75, 1.0):
            assert h.cdf(h.ppf(u)) == pytest.approx(u, abs=1e-12)

    def test_ppf_rejects_out_of_range(self):
        h = Histogram.uniform(0.0, 1.0)
        with pytest.raises(HistogramError):
            h.ppf(1.5)

    def test_mean_and_variance_uniform(self):
        h = Histogram.uniform(2.0, 6.0)
        assert h.mean() == pytest.approx(4.0)
        assert h.variance() == pytest.approx(16.0 / 12.0)

    def test_mass_between(self):
        h = Histogram.uniform(0.0, 10.0)
        assert h.mass_between(2.0, 7.0) == pytest.approx(0.5)
        with pytest.raises(HistogramError):
            h.mass_between(7.0, 2.0)

    def test_sample_within_support(self, rng):
        h = Histogram([0, 1, 5], [0.8, 0.05])
        samples = h.sample(rng, 500)
        assert samples.min() >= 0.0
        assert samples.max() <= 5.0


class TestTransformations:
    def test_normalized(self):
        h = Histogram([0, 2], [2.0]).normalized()
        assert h.total_mass == pytest.approx(1.0)

    def test_scaled_and_shifted(self):
        h = Histogram.uniform(0.0, 1.0).scaled(3.0).shifted(5.0)
        assert h.total_mass == pytest.approx(3.0)
        assert h.lo == pytest.approx(5.0)

    def test_reflected(self):
        h = Histogram([0, 1, 3], [0.5, 0.25]).reflected()
        assert h.lo == -3.0 and h.hi == 0.0
        assert h.pdf(-2.0) == pytest.approx(0.25)
        assert h.pdf(-0.5) == pytest.approx(0.5)

    def test_trimmed_removes_zero_margins(self):
        h = Histogram([0, 1, 2, 3, 4], [0.0, 0.5, 0.5, 0.0]).trimmed()
        assert h.lo == 1.0 and h.hi == 3.0

    def test_trimmed_zero_mass_raises(self):
        with pytest.raises(HistogramError):
            Histogram([0, 1], [0.0]).trimmed()

    def test_with_breakpoints_preserves_function(self):
        h = Histogram([0, 2], [0.5])
        refined = h.with_breakpoints([0.5, 1.7, 5.0])
        assert refined.nbins == 3
        xs = np.linspace(0, 2, 21)
        assert np.allclose(refined.cdf(xs), h.cdf(xs))

    def test_restricted(self):
        h = Histogram.uniform(0.0, 10.0)
        r = h.restricted(2.0, 5.0)
        assert r.total_mass == pytest.approx(0.3)
        assert r.lo == pytest.approx(2.0) and r.hi == pytest.approx(5.0)

    def test_restricted_outside_support_raises(self):
        with pytest.raises(HistogramError):
            Histogram.uniform(0.0, 1.0).restricted(5.0, 6.0)

    def test_rebinned_preserves_mass(self):
        h = Histogram([0, 1, 3], [0.5, 0.25])
        r = h.rebinned([0, 0.5, 1.5, 3.0])
        assert r.total_mass == pytest.approx(1.0)
        assert r.cdf(1.5) == pytest.approx(h.cdf(1.5))

    def test_rebinned_must_cover_support(self):
        with pytest.raises(HistogramError):
            Histogram.uniform(0.0, 2.0).rebinned([0.5, 2.0])

    def test_mixture(self):
        a = Histogram.uniform(0.0, 1.0)
        b = Histogram.uniform(1.0, 2.0)
        m = Histogram.mixture([a, b], [0.25, 0.75])
        assert m.total_mass == pytest.approx(1.0)
        assert m.cdf(1.0) == pytest.approx(0.25)


class TestFoldAbs:
    def test_query_left_of_support(self):
        h = Histogram.uniform(2.0, 4.0)
        folded = h.fold_abs(1.0)
        assert folded.lo == pytest.approx(1.0)
        assert folded.hi == pytest.approx(3.0)
        assert folded.total_mass == pytest.approx(1.0)
        assert folded.pdf(2.0) == pytest.approx(0.5)

    def test_query_right_of_support(self):
        h = Histogram.uniform(2.0, 4.0)
        folded = h.fold_abs(6.0)
        assert folded.lo == pytest.approx(2.0)
        assert folded.hi == pytest.approx(4.0)
        assert folded.total_mass == pytest.approx(1.0)

    def test_query_inside_doubles_density(self):
        # Figure 6(b): q inside, the near side folds onto the far side.
        h = Histogram.uniform(0.0, 4.0)
        folded = h.fold_abs(1.0)
        assert folded.lo == pytest.approx(0.0)
        assert folded.hi == pytest.approx(3.0)
        assert folded.pdf(0.5) == pytest.approx(0.5)  # both sides: 2 * 1/4
        assert folded.pdf(2.0) == pytest.approx(0.25)
        assert folded.total_mass == pytest.approx(1.0)

    def test_query_at_center(self):
        h = Histogram.uniform(-1.0, 1.0)
        folded = h.fold_abs(0.0)
        assert folded.hi == pytest.approx(1.0)
        assert folded.pdf(0.5) == pytest.approx(1.0)
        assert folded.total_mass == pytest.approx(1.0)

    def test_fold_multi_bin_matches_sampling(self, rng):
        h = Histogram.from_masses([0, 1, 2, 4], [0.2, 0.5, 0.3])
        q = 1.5
        folded = h.fold_abs(q)
        samples = np.abs(h.sample(rng, 200_000) - q)
        for r in (0.2, 0.5, 1.0, 2.0):
            assert folded.cdf(r) == pytest.approx(
                np.mean(samples <= r), abs=5e-3
            )

    def test_fold_fast_path_matches_generic(self, rng):
        for _ in range(50):
            lo = float(rng.uniform(-5, 5))
            hi = lo + float(rng.uniform(0.2, 6))
            q = float(rng.uniform(-8, 8))
            fast = Histogram.uniform(lo, hi).fold_abs(q)
            generic = Histogram(
                [lo, (lo + hi) / 2, hi], [1 / (hi - lo)] * 2
            ).fold_abs(q)
            xs = np.linspace(0, generic.hi, 37)
            assert np.allclose(fast.cdf(xs), generic.cdf(xs), atol=1e-12)


class TestEquality:
    def test_eq_and_hash(self):
        a = Histogram.uniform(0.0, 1.0)
        b = Histogram.uniform(0.0, 1.0)
        assert a == b
        assert hash(a) == hash(b)
        assert a != Histogram.uniform(0.0, 2.0)

    def test_is_close(self):
        a = Histogram.uniform(0.0, 2.0)
        b = a.with_breakpoints([1.0])
        assert a.is_close(b)
