"""Property tests: columnar kernels agree with per-object calls to the last ulp.

The whole point of :class:`DistributionPack` is that it is a pure
performance substrate: ``cdf_many`` / ``sf_many`` / ``mass_between_many``
must reproduce per-object :class:`Histogram` evaluation **bit for bit**
(exact float equality, not ``allclose``) so the engine's answers are
unchanged by the columnar rewrite.  These tests enforce that across

* 1-D distance folds of uniform / Gaussian / histogram pdfs,
* 2-D disks, segments, and rectangles,
* mixture histograms,

for sorted, unsorted, duplicated, edge-exact, and out-of-support
evaluation points — and separately for each of the pack's three
internal kernels (run-length batched, row-interp fallback, blocked).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.uncertainty.columnar as columnar_module
from repro.uncertainty.columnar import DistributionPack
from repro.uncertainty.histogram import Histogram
from repro.uncertainty.twod import (
    UncertainDisk,
    UncertainRectangle,
    UncertainSegment,
)
from tests.conftest import make_random_objects


def one_d_distributions(rng, n=12, q=None):
    q = float(rng.uniform(0.0, 60.0)) if q is None else q
    objects = make_random_objects(rng, n)
    return [obj.distance_distribution(q) for obj in objects]


def two_d_distributions(rng, q=(3.0, -2.0)):
    objects = [
        UncertainDisk("disk", rng.uniform(-5, 5, 2), float(rng.uniform(0.5, 3.0))),
        UncertainSegment(
            "segment", rng.uniform(-5, 5, 2), rng.uniform(5.5, 9.0, 2)
        ),
        UncertainRectangle.from_bounds("rect", -4.0, -3.0, 1.5, 2.5),
        UncertainDisk("disk2", rng.uniform(-9, 9, 2), float(rng.uniform(0.2, 1.0))),
    ]
    return [obj.distance_distribution(np.asarray(q)) for obj in objects]


def mixture_histograms(rng, n=6):
    histograms = []
    for _ in range(n):
        parts = [
            Histogram.uniform(
                float(lo), float(lo) + float(rng.uniform(0.5, 4.0))
            )
            for lo in rng.uniform(0.0, 20.0, int(rng.integers(2, 5)))
        ]
        weights = rng.uniform(0.2, 1.0, len(parts))
        histograms.append(
            Histogram.mixture(parts, weights / weights.sum())
        )
    return histograms


def probe_points(rng, dists):
    """Evaluation points stressing every branch of the kernels."""
    edges = np.concatenate(
        [np.asarray(getattr(d, "breakpoints", getattr(d, "edges", None))) for d in dists]
    )
    return np.concatenate(
        [
            rng.uniform(edges.min() - 3.0, edges.max() + 3.0, 60),
            edges,  # exact breakpoint hits
            edges,  # duplicates
            [edges.min() - 100.0, edges.max() + 100.0, 0.0],
        ]
    )


def reference_cdf(dists, xs):
    return np.vstack([np.asarray(d.cdf(xs)) for d in dists])


def assert_last_ulp_equal(pack, dists, xs):
    for probe in (np.sort(xs), xs, xs[::-1].copy()):
        assert np.array_equal(pack.cdf_many(probe), reference_cdf(dists, probe))
        assert np.array_equal(
            pack.sf_many(probe),
            np.vstack([np.asarray(1.0 - np.asarray(d.cdf(probe))) for d in dists]),
        )
    # scalar input
    x = float(xs[0])
    assert np.array_equal(
        pack.cdf_many(x), np.asarray([float(d.cdf(x)) for d in dists])
    )
    # interval masses
    a, b = np.sort(xs)[:2]
    expected = np.asarray(
        [float(d.cdf(float(b))) - float(d.cdf(float(a))) for d in dists]
    )
    assert np.array_equal(pack.mass_between_many(float(a), float(b)), expected)


KERNELS = ["batched", "row-interp", "blocked"]


@pytest.fixture(params=KERNELS)
def kernel(request, monkeypatch):
    """Force each of the pack's internal kernel paths in turn."""
    if request.param == "batched":
        monkeypatch.setattr(columnar_module, "_SMALL_PACK", 0)
        monkeypatch.setattr(columnar_module, "_WIDE_EVAL", 10**9)
        monkeypatch.setattr(columnar_module, "_MAX_CELLS", 1 << 40)
    elif request.param == "row-interp":
        monkeypatch.setattr(columnar_module, "_SMALL_PACK", 10**9)
    else:  # blocked: tiny block size forces many column blocks
        monkeypatch.setattr(columnar_module, "_SMALL_PACK", 0)
        monkeypatch.setattr(columnar_module, "_WIDE_EVAL", 10**9)
        monkeypatch.setattr(columnar_module, "_MAX_CELLS", 8)
    return request.param


class TestBitIdentity:
    def test_one_d_folds(self, rng, kernel):
        for _ in range(6):
            dists = one_d_distributions(rng, n=int(rng.integers(1, 14)))
            assert_last_ulp_equal(
                DistributionPack(dists), dists, probe_points(rng, dists)
            )

    def test_two_d_regions(self, rng, kernel):
        dists = two_d_distributions(rng)
        assert_last_ulp_equal(
            DistributionPack(dists), dists, probe_points(rng, dists)
        )

    def test_mixture_histograms(self, rng, kernel):
        histograms = mixture_histograms(rng)
        pack = DistributionPack(histograms)
        xs = probe_points(rng, histograms)
        for probe in (np.sort(xs), xs):
            assert np.array_equal(
                pack.cdf_many(probe),
                np.vstack([np.asarray(h.cdf(probe)) for h in histograms]),
            )

    def test_non_finite_points_match_interp(self, rng):
        dists = one_d_distributions(rng, n=12)
        pack = DistributionPack(dists)
        xs = np.asarray([-np.inf, 0.0, 1.0, np.inf])
        assert np.array_equal(pack.cdf_many(xs), reference_cdf(dists, xs))


class TestPackStructure:
    def test_row_alignment_and_columns(self, rng):
        dists = one_d_distributions(rng, n=9)
        pack = DistributionPack(dists)
        assert pack.size == 9
        for i, d in enumerate(dists):
            lo, hi = pack.offsets[i], pack.offsets[i + 1]
            assert np.array_equal(pack.edges_flat[lo:hi], d.histogram.edges)
            assert np.array_equal(pack.knots_flat[lo:hi], d.histogram.cdf_knots)
            dlo = pack.density_offsets[i]
            dhi = pack.density_offsets[i + 1]
            assert np.array_equal(
                pack.densities_flat[dlo:dhi], d.histogram.densities
            )
            assert pack.near[i] == d.near
            assert pack.far[i] == d.far
            assert pack.totals[i] == d.histogram.total_mass
            assert pack.nbins[i] == d.histogram.nbins

    def test_take_reorders_rows(self, rng):
        dists = one_d_distributions(rng, n=7)
        pack = DistributionPack(dists)
        perm = rng.permutation(7)
        taken = pack.take(perm)
        xs = np.sort(probe_points(rng, dists))
        assert np.array_equal(
            taken.cdf_many(xs),
            reference_cdf([dists[k] for k in perm], xs),
        )
        assert np.array_equal(
            taken.densities_flat,
            np.concatenate([dists[k].histogram.densities for k in perm]),
        )

    def test_empty_points(self, rng):
        pack = DistributionPack(one_d_distributions(rng, n=3))
        assert pack.cdf_many(np.asarray([])).shape == (3, 0)

    def test_rejects_empty_and_garbage(self):
        with pytest.raises(ValueError):
            DistributionPack([])
        with pytest.raises(TypeError):
            DistributionPack([object()])

    def test_mass_between_rejects_inverted_interval(self, rng):
        pack = DistributionPack(one_d_distributions(rng, n=3))
        with pytest.raises(ValueError):
            pack.mass_between_many(2.0, 1.0)

    def test_mass_between_mixed_shapes_broadcast(self, rng):
        """Scalar/array bound combinations broadcast like the per-object calls."""
        dists = one_d_distributions(rng, n=3)
        pack = DistributionPack(dists)
        bs = np.asarray([5.0, 20.0, 40.0])
        expected = np.vstack(
            [
                [float(d.cdf(float(b))) - float(d.cdf(2.0)) for b in bs]
                for d in dists
            ]
        )
        assert np.array_equal(pack.mass_between_many(2.0, bs), expected)
        assert np.array_equal(
            pack.mass_between_many(np.full(bs.size, 2.0), bs), expected
        )
        assert np.all(pack.mass_between_many(2.0, bs) >= 0.0)
