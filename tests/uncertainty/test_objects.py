"""Tests for the 1-D uncertain object model."""

import numpy as np
import pytest

from repro.uncertainty.histogram import Histogram
from repro.uncertainty.objects import SpatialUncertain, UncertainObject
from repro.uncertainty.twod import UncertainDisk


class TestConstruction:
    def test_uniform(self):
        obj = UncertainObject.uniform("u", 1.0, 3.0)
        assert obj.key == "u"
        assert (obj.lo, obj.hi) == (1.0, 3.0)

    def test_gaussian(self):
        obj = UncertainObject.gaussian("g", 0.0, 6.0, bars=50)
        assert obj.histogram.nbins == 50
        assert obj.histogram.total_mass == pytest.approx(1.0)

    def test_from_histogram_normalises(self):
        obj = UncertainObject.from_histogram(
            "h", Histogram([0, 1, 2], [3.0, 1.0])
        )
        assert obj.histogram.total_mass == pytest.approx(1.0)

    def test_satisfies_protocol(self):
        assert isinstance(UncertainObject.uniform(1, 0, 1), SpatialUncertain)
        assert isinstance(UncertainDisk(2, (0, 0), 1.0), SpatialUncertain)


class TestDistances:
    def test_mindist_inside_is_zero(self):
        obj = UncertainObject.uniform("u", 2.0, 6.0)
        assert obj.mindist(3.0) == 0.0

    def test_mindist_left_right(self):
        obj = UncertainObject.uniform("u", 2.0, 6.0)
        assert obj.mindist(0.0) == pytest.approx(2.0)
        assert obj.mindist(9.0) == pytest.approx(3.0)

    def test_maxdist(self):
        obj = UncertainObject.uniform("u", 2.0, 6.0)
        assert obj.maxdist(0.0) == pytest.approx(6.0)
        assert obj.maxdist(5.0) == pytest.approx(3.0)

    def test_near_far_match_min_max_dist(self, rng):
        for _ in range(30):
            lo = float(rng.uniform(-10, 10))
            hi = lo + float(rng.uniform(0.3, 8))
            q = float(rng.uniform(-15, 15))
            obj = UncertainObject.uniform("u", lo, hi)
            dist = obj.distance_distribution(q)
            assert dist.near == pytest.approx(obj.mindist(q), abs=1e-12)
            assert dist.far == pytest.approx(obj.maxdist(q), abs=1e-12)

    def test_query_point_as_sequence(self):
        obj = UncertainObject.uniform("u", 0.0, 2.0)
        assert obj.mindist([3.0]) == pytest.approx(1.0)
        assert obj.distance_distribution(np.asarray([1.0])).near == 0.0

    def test_rejects_multidimensional_query(self):
        obj = UncertainObject.uniform("u", 0.0, 2.0)
        with pytest.raises(ValueError):
            obj.mindist([1.0, 2.0])


class TestMbr:
    def test_mbr_is_interval(self):
        obj = UncertainObject.uniform("u", 1.0, 4.0)
        assert obj.mbr.dim == 1
        assert obj.mbr.lows[0] == 1.0
        assert obj.mbr.highs[0] == 4.0

    def test_mbr_mindist_matches_object(self, rng):
        for _ in range(20):
            lo = float(rng.uniform(-5, 5))
            hi = lo + float(rng.uniform(0.1, 5))
            q = float(rng.uniform(-10, 10))
            obj = UncertainObject.uniform("u", lo, hi)
            assert obj.mbr.mindist(q) == pytest.approx(obj.mindist(q))
            assert obj.mbr.maxdist(q) == pytest.approx(obj.maxdist(q))
