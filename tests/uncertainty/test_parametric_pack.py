"""Mixed-representation columnar pack: kernels, materialisation, and
zero-copy shared-memory transport (DESIGN.md §15)."""

import pickle

import numpy as np
import pytest

from repro.uncertainty.columnar import DistributionPack
from repro.uncertainty.objects import UncertainObject
from repro.uncertainty.parametric import (
    GaussianMixtureDistance,
    MixedDistributionPack,
    TruncatedGaussianDistance,
    UniformDiskDistance,
)
from repro.uncertainty.pdfs import TruncatedGaussianPdf


def mixed_rows():
    """Parametric and histogram rows interleaved in one candidate set."""
    q = 5.0
    rows = [
        TruncatedGaussianDistance(q, 2.0, 8.0, bars=24, key=0),
        UncertainObject.uniform(1, 3.0, 9.0).distance_distribution(q),
        GaussianMixtureDistance(
            q,
            [
                TruncatedGaussianPdf(0.0, 3.0, bars=16),
                TruncatedGaussianPdf(6.0, 9.0, bars=16),
            ],
            key=2,
        ),
        UncertainObject.gaussian(3, 1.0, 6.0, bars=20).distance_distribution(q),
        UniformDiskDistance((0.0, 0.0), (3.0, 4.0), 2.0, key=4),
        TruncatedGaussianDistance(q, -2.0, 1.0, bars=12, key=5),
    ]
    return rows


class TestMixedPackKernels:
    def test_partitioning(self):
        pack = MixedDistributionPack(mixed_rows())
        assert pack.size == 6
        assert pack.n_parametric == 4
        assert pack.n_histogram == 2

    def test_cdf_many_matches_per_row(self):
        rows = mixed_rows()
        pack = MixedDistributionPack(rows)
        xs = np.linspace(0.0, 12.0, 57)
        matrix = pack.cdf_many(xs)
        assert matrix.shape == (len(rows), xs.size)
        for i, dist in enumerate(rows):
            np.testing.assert_allclose(matrix[i], dist.cdf(xs), atol=1e-12)

    def test_sf_and_mass_between_many(self):
        rows = mixed_rows()
        pack = MixedDistributionPack(rows)
        xs = np.linspace(0.0, 12.0, 13)
        np.testing.assert_allclose(
            pack.sf_many(xs), 1.0 - pack.cdf_many(xs), atol=1e-12
        )
        masses = pack.mass_between_many(2.0, 7.0)
        for i, dist in enumerate(rows):
            expected = float(dist.cdf(7.0) - dist.cdf(2.0))
            assert masses[i] == pytest.approx(expected, abs=1e-12)

    def test_near_far_columns(self):
        rows = mixed_rows()
        pack = MixedDistributionPack(rows)
        for i, dist in enumerate(rows):
            near = getattr(dist, "near", None)
            if near is not None:
                assert pack.near[i] == pytest.approx(dist.near)
                assert pack.far[i] == pytest.approx(dist.far)

    def test_materialized_is_plain_pack(self):
        pack = MixedDistributionPack(mixed_rows())
        hist = pack.materialized()
        assert isinstance(hist, DistributionPack)
        assert hist is pack.materialized(), "must be memoised"
        xs = np.linspace(0.0, 12.0, 21)
        # Materialised kernels agree with the analytic ones up to the
        # histogram discretisation of the parametric rows.
        np.testing.assert_allclose(
            hist.cdf_many(xs), pack.cdf_many(xs), atol=0.2
        )


class TestSharedMemoryTransport:
    # to_shared/from_shared are deprecated shims over the column-store
    # API (one release; DESIGN.md §16) — regression coverage only.
    pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

    def test_round_trip_exact(self):
        rows = mixed_rows()
        pack = MixedDistributionPack(rows)
        shm, descriptor = pack.to_shared()
        try:
            twin = MixedDistributionPack.from_shared(descriptor)
            assert twin.size == pack.size
            assert twin.n_parametric == pack.n_parametric
            xs = np.linspace(0.0, 12.0, 101)
            np.testing.assert_array_equal(
                twin.cdf_many(xs), pack.cdf_many(xs)
            )
            np.testing.assert_array_equal(twin.near, pack.near)
            np.testing.assert_array_equal(twin.far, pack.far)
            del twin
        finally:
            shm.close()
            shm.unlink()

    def test_descriptor_pickles(self):
        pack = MixedDistributionPack(mixed_rows())
        shm, descriptor = pack.to_shared()
        try:
            twin_desc = pickle.loads(pickle.dumps(descriptor))
            assert twin_desc == descriptor
            rehydrated = MixedDistributionPack.from_shared(twin_desc)
            xs = np.linspace(0.0, 12.0, 11)
            np.testing.assert_array_equal(
                rehydrated.cdf_many(xs), pack.cdf_many(xs)
            )
            del rehydrated
        finally:
            shm.close()
            shm.unlink()

    def test_all_parametric_round_trip(self):
        rows = [
            TruncatedGaussianDistance(1.0, 2.0, 8.0, bars=24, key=i)
            for i in range(4)
        ]
        pack = MixedDistributionPack(rows)
        shm, descriptor = pack.to_shared()
        try:
            twin = MixedDistributionPack.from_shared(descriptor)
            assert twin.n_histogram == 0
            xs = np.linspace(0.0, 8.0, 33)
            np.testing.assert_array_equal(
                twin.cdf_many(xs), pack.cdf_many(xs)
            )
            del twin
        finally:
            shm.close()
            shm.unlink()
