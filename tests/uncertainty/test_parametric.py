"""Parametric distance distributions: analytic laws and their
byte-identical histogram fallbacks (DESIGN.md §15)."""

import pickle

import numpy as np
import pytest

from repro.uncertainty.objects import UncertainObject
from repro.uncertainty.parametric import (
    FAMILY_REGISTRY,
    GaussianMixtureDistance,
    GaussianMixtureObject,
    GaussianObject,
    GpsEllipseDistance,
    GpsEllipseObject,
    ParametricDisk,
    TruncatedGaussianDistance,
    UniformDiskDistance,
    ellipse_half_extents,
)
from repro.uncertainty.pdfs import TruncatedGaussianPdf
from repro.uncertainty.twod import UncertainDisk


def all_distances():
    """One instance of every family, with the query in assorted spots."""
    return [
        TruncatedGaussianDistance(5.0, 2.0, 8.0, key="inside"),
        TruncatedGaussianDistance(12.0, 2.0, 8.0, key="right"),
        TruncatedGaussianDistance(-1.0, 2.0, 8.0, key="left"),
        GaussianMixtureDistance(
            4.0,
            [
                TruncatedGaussianPdf(0.0, 3.0, bars=24),
                TruncatedGaussianPdf(5.0, 9.0, bars=24),
            ],
            weights=[0.7, 0.3],
            key="mix",
        ),
        UniformDiskDistance((0.0, 0.0), (3.0, 4.0), 2.0, key="disk-out"),
        UniformDiskDistance((3.0, 4.0), (3.0, 4.5), 2.0, key="disk-in"),
        GpsEllipseDistance(
            (0.0, 0.0), (6.0, 2.0), 2.0, 0.8, angle=0.6, k=3.0, key="gps"
        ),
    ]


class TestDistanceLaws:
    @pytest.mark.parametrize("dist", all_distances(), ids=lambda d: str(d.key))
    def test_cdf_shape(self, dist):
        xs = np.linspace(dist.near, dist.far, 257)
        cdf = dist.cdf(xs)
        assert cdf[0] == pytest.approx(0.0, abs=1e-9)
        assert cdf[-1] == pytest.approx(1.0, abs=1e-9)
        assert np.all(np.diff(cdf) >= -1e-12), "cdf must be non-decreasing"
        # Outside the support the cdf saturates.
        assert dist.cdf(dist.near - 1.0) == pytest.approx(0.0, abs=1e-12)
        assert dist.cdf(dist.far + 1.0) == pytest.approx(1.0, abs=1e-12)

    @pytest.mark.parametrize("dist", all_distances(), ids=lambda d: str(d.key))
    def test_sf_and_mass_between(self, dist):
        xs = np.linspace(dist.near, dist.far, 33)
        np.testing.assert_allclose(dist.sf(xs), 1.0 - dist.cdf(xs), atol=1e-12)
        a, b = dist.near + 0.1 * (dist.far - dist.near), dist.far
        assert dist.mass_between(a, b) == pytest.approx(
            float(dist.cdf(b) - dist.cdf(a)), abs=1e-12
        )

    @pytest.mark.parametrize("dist", all_distances(), ids=lambda d: str(d.key))
    def test_pdf_integrates_to_cdf(self, dist):
        """Trapezoid integral of the analytic pdf tracks the cdf."""
        xs = np.linspace(dist.near, dist.far, 4097)
        pdf = np.asarray(dist.pdf(xs))
        assert np.all(pdf >= -1e-12)
        integral = np.trapezoid(pdf, xs)
        assert integral == pytest.approx(1.0, abs=5e-3)

    @pytest.mark.parametrize("dist", all_distances(), ids=lambda d: str(d.key))
    def test_sampling_matches_cdf(self, dist):
        """Empirical cdf of 20k draws tracks the analytic one (DKW)."""
        rng = np.random.default_rng(7)
        draws = np.sort(dist.sample(rng, 20_000))
        assert draws.min() >= dist.near - 1e-9
        assert draws.max() <= dist.far + 1e-9
        probe = np.linspace(dist.near, dist.far, 41)
        empirical = np.searchsorted(draws, probe, side="right") / draws.size
        np.testing.assert_allclose(empirical, dist.cdf(probe), atol=0.025)

    @pytest.mark.parametrize("dist", all_distances(), ids=lambda d: str(d.key))
    def test_pickle_and_params_round_trip(self, dist):
        twin = pickle.loads(pickle.dumps(dist))
        xs = np.linspace(dist.near, dist.far, 17)
        np.testing.assert_array_equal(twin.cdf(xs), dist.cdf(xs))
        rebuilt = type(dist).from_params(dist.pack_params())
        np.testing.assert_allclose(rebuilt.cdf(xs), dist.cdf(xs), atol=1e-12)
        assert rebuilt.near == pytest.approx(dist.near)
        assert rebuilt.far == pytest.approx(dist.far)

    def test_family_registry_covers_all(self):
        for dist in all_distances():
            assert FAMILY_REGISTRY[dist.family] is type(dist)

    def test_materialized_is_memoised_and_probes_as_histogram(self):
        dist = TruncatedGaussianDistance(5.0, 2.0, 8.0)
        assert dist.materialized() is dist.materialized()
        # The DistributionPack probes `_histogram` first; parametric
        # objects must NOT expose it (that attrgetter must fall through
        # to the lazy `histogram` property).
        assert not hasattr(type(dist), "_histogram")
        assert dist.histogram is dist.materialized().histogram


class TestMaterializationIdentity:
    """The lazy fallback is *byte-identical* to the eager twin — the
    property that makes the exact refinement tier bit-identical."""

    @pytest.mark.parametrize("q", [0.0, 4.9, 7.3, 20.0])
    def test_gaussian_matches_eager_object(self, q):
        eager = UncertainObject.gaussian("g", 2.0, 8.0, bars=48)
        reference = eager.distance_distribution(q)
        analytic = TruncatedGaussianDistance(q, 2.0, 8.0, bars=48, key="g")
        twin = analytic.materialized()
        np.testing.assert_array_equal(
            twin.histogram.edges, reference.histogram.edges
        )
        np.testing.assert_array_equal(
            twin.histogram.densities, reference.histogram.densities
        )

    def test_disk_matches_uncertain_disk(self):
        disk = UncertainDisk("d", (3.0, 4.0), 2.0, distance_bins=32)
        reference = disk.distance_distribution((0.0, 0.0))
        analytic = UniformDiskDistance(
            (0.0, 0.0), (3.0, 4.0), 2.0, distance_bins=32, key="d"
        )
        twin = analytic.materialized()
        np.testing.assert_array_equal(
            twin.histogram.edges, reference.histogram.edges
        )
        np.testing.assert_array_equal(
            twin.histogram.densities, reference.histogram.densities
        )


class TestParametricObjects:
    def test_gaussian_object_lazy_histogram_identical(self):
        lazy = GaussianObject("g", 10.0, 16.0, bars=36)
        eager = UncertainObject.gaussian("g", 10.0, 16.0, bars=36)
        assert (lazy.lo, lazy.hi) == (eager.lo, eager.hi)
        np.testing.assert_array_equal(lazy.histogram.edges, eager.histogram.edges)
        np.testing.assert_array_equal(
            lazy.histogram.densities, eager.histogram.densities
        )

    def test_gaussian_object_distance_paths_agree(self):
        obj = GaussianObject("g", 10.0, 16.0, bars=36)
        q = 11.5
        parametric = obj.parametric_distance(q)
        folded = obj.distance_distribution(q)
        xs = np.linspace(parametric.near, parametric.far, 400)
        # Analytic law vs 36-bar fold: equal up to discretisation.
        np.testing.assert_allclose(
            parametric.cdf(xs), folded.cdf(xs), atol=2.0 / 36
        )

    def test_mixture_object(self):
        obj = GaussianMixtureObject(
            "m",
            [
                TruncatedGaussianPdf(0.0, 4.0, bars=24),
                TruncatedGaussianPdf(6.0, 10.0, bars=24),
            ],
            weights=[0.5, 0.5],
        )
        assert (obj.lo, obj.hi) == (0.0, 10.0)
        dist = obj.parametric_distance(5.0)
        assert isinstance(dist, GaussianMixtureDistance)
        assert dist.cdf(dist.far) == pytest.approx(1.0, abs=1e-12)

    def test_parametric_disk_keeps_disk_contract(self):
        disk = ParametricDisk("d", (1.0, 2.0), 1.5, distance_bins=24)
        q = (5.0, 2.0)
        analytic = disk.parametric_distance(q)
        folded = disk.distance_distribution(q)
        np.testing.assert_array_equal(
            analytic.materialized().histogram.edges, folded.histogram.edges
        )

    def test_gps_ellipse_object_geometry(self):
        obj = GpsEllipseObject("e", (10.0, 20.0), 3.0, 1.0, angle=0.5, k=2.5)
        half_x, half_y = ellipse_half_extents(3.0, 1.0, 0.5, 2.5)
        rect = obj.mbr
        np.testing.assert_allclose(rect.lows, [10.0 - half_x, 20.0 - half_y])
        np.testing.assert_allclose(rect.highs, [10.0 + half_x, 20.0 + half_y])
        q = (10.0, 30.0)
        assert obj.mindist(q) <= obj.parametric_distance(q).near + 1e-9
        assert obj.maxdist(q) >= obj.parametric_distance(q).far - 1e-9

    def test_objects_pickle_with_lazy_state_reset(self):
        obj = GaussianObject("g", 0.0, 6.0, bars=24)
        obj.histogram  # materialise, then ensure the twin re-derives it
        twin = pickle.loads(pickle.dumps(obj))
        assert twin._histogram is None
        np.testing.assert_array_equal(
            twin.histogram.densities, obj.histogram.densities
        )
