"""Tests for the Poisson-binomial dynamic programme."""

import itertools

import numpy as np
import pytest
from scipy import stats

from repro.numerics.poisson_binomial import (
    poisson_binomial_pmf,
    prob_at_most,
    prob_at_most_vectorized,
)


def brute_force_pmf(probs):
    n = len(probs)
    pmf = np.zeros(n + 1)
    for bits in itertools.product([0, 1], repeat=n):
        weight = 1.0
        for bit, p in zip(bits, probs):
            weight *= p if bit else (1.0 - p)
        pmf[sum(bits)] += weight
    return pmf


class TestPmf:
    def test_matches_brute_force(self, rng):
        for _ in range(10):
            probs = rng.uniform(0, 1, int(rng.integers(1, 9)))
            assert np.allclose(
                poisson_binomial_pmf(probs), brute_force_pmf(probs), atol=1e-12
            )

    def test_equal_probabilities_reduce_to_binomial(self):
        pmf = poisson_binomial_pmf([0.3] * 12)
        assert np.allclose(pmf, stats.binom.pmf(np.arange(13), 12, 0.3), atol=1e-12)

    def test_degenerate_probabilities(self):
        pmf = poisson_binomial_pmf([0.0, 1.0, 1.0])
        assert pmf[2] == pytest.approx(1.0)

    def test_sums_to_one(self, rng):
        pmf = poisson_binomial_pmf(rng.uniform(0, 1, 40))
        assert pmf.sum() == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_binomial_pmf([[0.5]])
        with pytest.raises(ValueError):
            poisson_binomial_pmf([1.5])


class TestProbAtMost:
    def test_matches_pmf_prefix(self, rng):
        probs = rng.uniform(0, 1, 15)
        pmf = poisson_binomial_pmf(probs)
        for k in range(-1, 17):
            assert prob_at_most(probs, k) == pytest.approx(
                pmf[: max(k + 1, 0)].sum(), abs=1e-12
            )

    def test_extremes(self):
        assert prob_at_most([0.5, 0.5], -1) == 0.0
        assert prob_at_most([0.5, 0.5], 2) == 1.0

    def test_vectorized_matches_scalar(self, rng):
        matrix = rng.uniform(0, 1, (8, 11))
        for k in (0, 2, 5, 7):
            expected = [prob_at_most(matrix[:, j], k) for j in range(11)]
            assert np.allclose(prob_at_most_vectorized(matrix, k), expected)

    def test_vectorized_extremes(self, rng):
        matrix = rng.uniform(0, 1, (4, 6))
        assert np.allclose(prob_at_most_vectorized(matrix, -1), 0.0)
        assert np.allclose(prob_at_most_vectorized(matrix, 4), 1.0)

    def test_vectorized_validation(self):
        with pytest.raises(ValueError):
            prob_at_most_vectorized(np.zeros(3), 1)

    def test_monotone_in_threshold(self, rng):
        probs = rng.uniform(0, 1, 20)
        values = [prob_at_most(probs, k) for k in range(21)]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))
