"""Tests for Gauss–Legendre quadrature."""

import numpy as np
import pytest

from repro.numerics.quadrature import (
    gauss_legendre_nodes,
    integrate_on_interval,
    integrate_piecewise,
    nodes_for_degree,
)


class TestNodes:
    def test_weights_sum_to_two(self):
        for n in (1, 2, 5, 16, 49):
            _, ws = gauss_legendre_nodes(n)
            assert ws.sum() == pytest.approx(2.0)

    def test_nodes_inside_unit_interval(self):
        xs, _ = gauss_legendre_nodes(10)
        assert xs.min() > -1.0 and xs.max() < 1.0

    def test_cached_and_readonly(self):
        a, _ = gauss_legendre_nodes(7)
        b, _ = gauss_legendre_nodes(7)
        assert a is b
        with pytest.raises(ValueError):
            a[0] = 0.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            gauss_legendre_nodes(0)

    def test_nodes_for_degree(self):
        # n nodes are exact through degree 2n-1.
        assert nodes_for_degree(0) == 1
        assert nodes_for_degree(1) == 1
        assert nodes_for_degree(2) == 2
        assert nodes_for_degree(95) == 48
        with pytest.raises(ValueError):
            nodes_for_degree(-1)


class TestExactness:
    @pytest.mark.parametrize("degree", [0, 1, 3, 7, 15, 31])
    def test_polynomial_exactness(self, rng, degree):
        coeffs = rng.uniform(-1, 1, degree + 1)
        poly = np.polynomial.Polynomial(coeffs)
        integral = poly.integ()
        a, b = -0.7, 2.3
        n = nodes_for_degree(degree)
        value = integrate_on_interval(lambda x: poly(x), a, b, n)
        assert value == pytest.approx(integral(b) - integral(a), rel=1e-12, abs=1e-12)

    def test_insufficient_nodes_are_inexact(self):
        # x^4 with 2 nodes (exact only to degree 3) must show error.
        value = integrate_on_interval(lambda x: x**4, 0.0, 1.0, 2)
        assert value != pytest.approx(0.2, abs=1e-6)

    def test_empty_interval(self):
        assert integrate_on_interval(lambda x: x, 2.0, 2.0, 4) == 0.0
        assert integrate_on_interval(lambda x: x, 3.0, 2.0, 4) == 0.0


class TestPiecewise:
    def test_piecewise_polynomial(self):
        # |x| is linear on each side of 0: exact with a breakpoint there.
        value = integrate_piecewise(np.abs, [-1.0, 0.0, 2.0], nodes=1)
        assert value == pytest.approx(0.5 + 2.0)

    def test_degenerate_pieces_skipped(self):
        value = integrate_piecewise(lambda x: x * 0 + 1.0, [0, 1, 1, 2], nodes=1)
        assert value == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            integrate_piecewise(lambda x: x, [0.0], nodes=1)
        with pytest.raises(ValueError):
            integrate_piecewise(lambda x: x, [1.0, 0.0], nodes=1)
