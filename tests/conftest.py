"""Shared fixtures and workload factories for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import settings

from repro.uncertainty.histogram import Histogram
from repro.uncertainty.objects import UncertainObject

# Property-test effort profiles: the default keeps the suite fast;
# run `pytest --hypothesis-profile=thorough` before releases.
settings.register_profile("default", max_examples=60, deadline=None)
settings.register_profile("thorough", max_examples=600, deadline=None)
settings.load_profile("default")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20080407)


def make_random_objects(
    rng: np.random.Generator,
    n: int,
    domain: tuple[float, float] = (0.0, 60.0),
    max_width: float = 12.0,
    families: tuple[str, ...] = ("uniform", "gaussian", "histogram"),
) -> list[UncertainObject]:
    """Random 1-D objects cycling through pdf families."""
    objects = []
    for i in range(n):
        center = float(rng.uniform(*domain))
        width = float(rng.uniform(0.5, max_width))
        lo, hi = center - width / 2, center + width / 2
        family = families[i % len(families)]
        if family == "uniform":
            objects.append(UncertainObject.uniform(i, lo, hi))
        elif family == "gaussian":
            objects.append(UncertainObject.gaussian(i, lo, hi, bars=24))
        else:
            bins = int(rng.integers(2, 7))
            edges = np.linspace(lo, hi, bins + 1)
            masses = rng.uniform(0.05, 1.0, bins)
            masses /= masses.sum()
            objects.append(
                UncertainObject.from_histogram(i, Histogram.from_masses(edges, masses))
            )
    return objects


def two_object_textbook_case() -> tuple[list[UncertainObject], float]:
    """The hand-solvable example used across the core tests.

    With q = 0: R_A ~ U[0, 1], R_B ~ U[0.5, 1.5]; then (by hand)

    * end-points  [0, 0.5, 1], rightmost subregion [1, 1.5]
    * s_A = (0.5, 0.5 | 0),  s_B = (0, 0.5 | 0.5)
    * L-SR:  p_A.l = 0.75,  p_B.l = 0.125
    * U-SR:  p_A.u = 0.875, p_B.u = 0.125
    * RS:    p_A.u = 1.0,   p_B.u = 0.5
    * exact: p_A = 0.875,   p_B = 0.125
    """
    objects = [
        UncertainObject.uniform("A", 0.0, 1.0),
        UncertainObject.uniform("B", 0.5, 1.5),
    ]
    return objects, 0.0
