"""Integration test at (scaled-down) paper workload shape.

Asserts the *qualitative* results of Section V hold on the surrogate
workload — the same checks EXPERIMENTS.md records at full scale, kept
small enough for the unit-test suite.
"""

import numpy as np
import pytest

from repro.core.engine import CPNNEngine
from repro.datasets.longbeach import long_beach_surrogate
from repro.datasets.queries import random_query_points

# This module exercises the pre-facade entry points on purpose: it is
# the regression suite for the deprecation shims (DESIGN.md §7).
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


@pytest.fixture(scope="module")
def engine():
    return CPNNEngine(long_beach_surrogate(n=6_000))


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(20080407)
    return random_query_points(6, rng=rng)


class TestPaperShapeClaims:
    def test_strategies_agree_on_answers(self, engine, points):
        for q in points:
            answers = [
                set(engine.query(q, threshold=0.3, tolerance=0.0, strategy=s).answers)
                for s in ("basic", "refine", "vr")
            ]
            assert answers[0] == answers[1] == answers[2]

    def test_vr_refines_fewer_objects_than_refine(self, engine, points):
        vr_refined = refine_refined = 0
        for q in points:
            vr_refined += engine.query(
                q, threshold=0.3, tolerance=0.01, strategy="vr"
            ).refined_objects
            refine_refined += engine.query(
                q, threshold=0.3, tolerance=0.01, strategy="refine"
            ).refined_objects
        assert vr_refined < refine_refined

    def test_high_threshold_needs_no_refinement(self, engine, points):
        # Figure 11: "when P >= 0.3, no more qualification probabilities
        # need to be computed" — verifiers settle everything.
        for q in points:
            result = engine.query(q, threshold=0.5, tolerance=0.01, strategy="vr")
            assert result.refined_objects == 0
            assert result.finished_after_verification

    def test_unknown_fraction_falls_along_chain(self, engine, points):
        for q in points:
            result = engine.query(q, threshold=0.2, tolerance=0.01, strategy="vr")
            series = [
                result.unknown_after_verifier[name]
                for name in ("RS", "L-SR", "U-SR")
                if name in result.unknown_after_verifier
            ]
            assert all(a >= b - 1e-12 for a, b in zip(series, series[1:]))

    def test_tolerance_reduces_refinement(self, engine, points):
        tight = lax = 0
        for q in points:
            tight += engine.query(
                q, threshold=0.1, tolerance=0.0, strategy="vr"
            ).refined_objects
            lax += engine.query(
                q, threshold=0.1, tolerance=0.2, strategy="vr"
            ).refined_objects
        assert lax <= tight

    def test_answers_nonempty_at_low_threshold(self, engine, points):
        for q in points:
            result = engine.query(q, threshold=0.05, tolerance=0.0)
            assert len(result.answers) >= 1
