"""The C-PNN engine contract (DESIGN.md §5):

    {i : p_i >= P}  ⊆  answer  ⊆  {i : p_i >= P − Δ}

holds for every strategy, threshold and tolerance.  This is the
precise guarantee Definition 1 gives the user: no false negatives, and
false positives only within the tolerance band below the threshold.
"""

import pytest

from repro.core.engine import CPNNEngine, Strategy
from tests.conftest import make_random_objects

# This module exercises the pre-facade entry points on purpose: it is
# the regression suite for the deprecation shims (DESIGN.md §7).
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

_SLACK = 1e-7  # numerical slack on the probability comparisons


class TestContract:
    @pytest.mark.parametrize("strategy", Strategy.ALL)
    def test_contract_over_random_instances(self, rng, strategy):
        for _ in range(8):
            objects = make_random_objects(rng, int(rng.integers(3, 18)))
            engine = CPNNEngine(objects)
            q = float(rng.uniform(-5, 65))
            threshold = float(rng.uniform(0.05, 0.95))
            tolerance = float(rng.uniform(0.0, 0.3))
            exact = engine.pnn(q)
            answers = set(
                engine.query(
                    q, threshold=threshold, tolerance=tolerance, strategy=strategy
                ).answers
            )
            must_return = {
                k for k, p in exact.items() if p >= threshold + _SLACK
            }
            may_return = {
                k for k, p in exact.items() if p >= threshold - tolerance - _SLACK
            }
            assert must_return <= answers, (
                f"false negative: strategy={strategy} P={threshold} Δ={tolerance}"
            )
            assert answers <= may_return, (
                f"illegal false positive: strategy={strategy} P={threshold} Δ={tolerance}"
            )

    def test_zero_tolerance_gives_exact_thresholding(self, rng):
        for _ in range(5):
            objects = make_random_objects(rng, 12)
            engine = CPNNEngine(objects)
            q = float(rng.uniform(0, 60))
            exact = engine.pnn(q)
            for threshold in (0.1, 0.3, 0.6):
                answers = set(
                    engine.query(q, threshold=threshold, tolerance=0.0).answers
                )
                expected = {k for k, p in exact.items() if p >= threshold}
                borderline = {
                    k for k, p in exact.items() if abs(p - threshold) < 1e-9
                }
                assert answers - borderline <= expected
                assert expected - borderline <= answers
