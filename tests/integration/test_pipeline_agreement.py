"""Cross-method integration tests: all four ways of computing PNN
probabilities (engine exact, Simpson baseline, Monte Carlo, incremental
refinement) must agree, over every pdf family."""

import numpy as np
import pytest

from repro.baselines.basic import basic_pnn_probabilities
from repro.baselines.montecarlo import monte_carlo_pnn_probabilities
from repro.core.engine import CPNNEngine, EngineConfig
from repro.core.refinement import Refiner
from repro.core.state import CandidateStates
from repro.core.subregions import SubregionTable
from repro.core.types import CPNNQuery
from repro.datasets.synthetic import mixed_pdf_objects
from tests.conftest import make_random_objects

# This module exercises the pre-facade entry points on purpose: it is
# the regression suite for the deprecation shims (DESIGN.md §7).
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


class TestFourWayAgreement:
    def test_uniform_workload(self, rng):
        objects = make_random_objects(rng, 14, families=("uniform",))
        self._check(objects, 30.0, rng)

    def test_gaussian_workload(self, rng):
        objects = make_random_objects(rng, 10, families=("gaussian",))
        self._check(objects, 30.0, rng)

    def test_mixed_workload(self, rng):
        objects = mixed_pdf_objects(12, domain=(0.0, 60.0), rng=rng)
        self._check(objects, 30.0, rng)

    @staticmethod
    def _check(objects, q, rng):
        engine_exact = CPNNEngine(objects).pnn(q)
        simpson = basic_pnn_probabilities(objects, q, subdivisions=12)
        mc = monte_carlo_pnn_probabilities(objects, q, trials=120_000, rng=rng)
        assert sum(engine_exact.values()) == pytest.approx(1.0, abs=1e-9)
        for key, p in engine_exact.items():
            assert simpson[key] == pytest.approx(p, abs=1e-5)
            assert mc[key] == pytest.approx(p, abs=8e-3)

    def test_incremental_refinement_stays_sound_and_labels_correctly(self, rng):
        objects = make_random_objects(rng, 10)
        q = 30.0
        table = SubregionTable([o.distance_distribution(q) for o in objects])
        exact = Refiner(table).exact_all()
        for threshold in (0.05, 0.3, 1.0):
            refiner = Refiner(table)
            states = CandidateStates(table.keys)
            query = CPNNQuery(q, threshold=threshold, tolerance=0.0)
            for i in range(table.size):
                refiner.refine_object(i, states, query, use_verifier_slices=False)
            # Bounds always contain the exact probability...
            assert np.all(states.lower - 1e-8 <= exact)
            assert np.all(exact <= states.upper + 1e-8)
            # ...and labels match exact thresholding (away from ties).
            for i, p in enumerate(exact):
                if abs(p - threshold) > 1e-9:
                    expected = 1 if p >= threshold else 2
                    assert states.labels[i] == expected


class TestConsistencyAcrossConfigurations:
    def test_refinement_orders_give_same_answers(self, rng):
        objects = make_random_objects(rng, 20)
        q = 30.0
        answers = {}
        for order in ("widest", "left"):
            engine = CPNNEngine(objects, EngineConfig(refinement_order=order))
            answers[order] = set(engine.query(q, tolerance=0.0).answers)
        assert answers["widest"] == answers["left"]

    def test_rtree_fanouts_give_same_answers(self, rng):
        objects = make_random_objects(rng, 30)
        q = 30.0
        baseline = None
        for fanout in (4, 8, 32):
            engine = CPNNEngine(objects, EngineConfig(rtree_max_entries=fanout))
            answers = set(engine.query(q, tolerance=0.0).answers)
            if baseline is None:
                baseline = answers
            assert answers == baseline

    def test_repeated_queries_are_deterministic(self, rng):
        objects = make_random_objects(rng, 20)
        engine = CPNNEngine(objects)
        a = engine.query(30.0, tolerance=0.0)
        b = engine.query(30.0, tolerance=0.0)
        assert a.answers == b.answers
        for ra, rb in zip(a.records, b.records):
            assert ra.lower == rb.lower and ra.upper == rb.upper
