"""End-to-end 2-D queries: the extension Section IV-A promises.

The same engine runs unchanged over disks, segments and rectangles
because everything downstream of distance-distribution construction is
dimension-agnostic.
"""

import numpy as np
import pytest

from repro.baselines.montecarlo import monte_carlo_pnn_probabilities
from repro.core.engine import CPNNEngine, Strategy
from repro.uncertainty.twod import (
    UncertainDisk,
    UncertainRectangle,
    UncertainSegment,
)

# This module exercises the pre-facade entry points on purpose: it is
# the regression suite for the deprecation shims (DESIGN.md §7).
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def mixed_2d_objects(rng, n=8):
    objects = []
    for i in range(n):
        center = rng.uniform(0, 20, 2)
        kind = i % 3
        if kind == 0:
            objects.append(
                UncertainDisk(i, center, float(rng.uniform(0.5, 2.0)), distance_bins=96)
            )
        elif kind == 1:
            offset = rng.uniform(0.5, 3.0, 2)
            objects.append(
                UncertainSegment(i, center, center + offset, distance_bins=96)
            )
        else:
            w, h = rng.uniform(0.5, 3.0, 2)
            objects.append(
                UncertainRectangle.from_bounds(
                    i, center[0], center[1], center[0] + w, center[1] + h,
                    distance_bins=96,
                )
            )
    return objects


class Test2DPipeline:
    def test_pnn_sums_to_one(self, rng):
        engine = CPNNEngine(mixed_2d_objects(rng))
        pnn = engine.pnn((10.0, 10.0))
        assert sum(pnn.values()) == pytest.approx(1.0, abs=1e-6)

    def test_strategies_agree(self, rng):
        objects = mixed_2d_objects(rng)
        engine = CPNNEngine(objects)
        q = (10.0, 10.0)
        answers = {
            s: set(engine.query(q, threshold=0.25, tolerance=0.0, strategy=s).answers)
            for s in Strategy.ALL
        }
        assert answers["basic"] == answers["refine"] == answers["vr"]

    def test_agrees_with_monte_carlo(self, rng):
        objects = mixed_2d_objects(rng, n=6)
        q = (10.0, 10.0)
        exact = CPNNEngine(objects).pnn(q)
        mc = monte_carlo_pnn_probabilities(objects, q, trials=150_000, rng=rng)
        for key, p in exact.items():
            # 2-D distance cdfs are histogram-discretised (96 bins), so
            # agreement is bounded by that resolution, not MC error.
            assert mc[key] == pytest.approx(p, abs=0.02)

    def test_filtering_prunes_far_objects(self, rng):
        near = UncertainDisk("near", (0.0, 0.0), 1.0)
        far = UncertainDisk("far", (100.0, 0.0), 1.0)
        engine = CPNNEngine([near, far])
        result = engine.query((0.0, 0.0), threshold=0.5, tolerance=0.0)
        assert result.answers == ("near",)
        keys = {record.key for record in result.records}
        assert "far" not in keys  # pruned before verification

    def test_2d_knn(self, rng):
        from repro.core.knn import knn_qualification_probabilities

        objects = mixed_2d_objects(rng, n=6)
        probs = knn_qualification_probabilities(objects, (10.0, 10.0), k=2)
        assert sum(probs.values()) == pytest.approx(2.0, abs=1e-6)
