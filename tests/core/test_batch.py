"""Unit tests for the batch query subsystem (engine, cache, filter)."""

import numpy as np
import pytest

from repro.core.batch import BatchResult, DistributionCache, point_key
from repro.core.engine import CPNNEngine, EngineConfig, Strategy
from repro.core.types import CPNNQuery
from repro.index.filtering import BatchMbrFilter, PnnFilter
from repro.index.str_pack import str_bulk_load
from repro.uncertainty.objects import UncertainObject
from repro.uncertainty.twod import UncertainDisk, UncertainRectangle, UncertainSegment
from tests.conftest import make_random_objects

# This module exercises the pre-facade entry points on purpose: it is
# the regression suite for the deprecation shims (DESIGN.md §7).
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def query_points(rng, n=12, domain=(-5.0, 65.0)):
    return [float(q) for q in rng.uniform(*domain, size=n)]


class TestPointKey:
    def test_scalar(self):
        assert point_key(1.5) == 1.5
        assert point_key(np.float64(1.5)) == 1.5

    def test_sequence(self):
        assert point_key((1.0, 2.0)) == (1.0, 2.0)
        assert point_key(np.asarray([1.0, 2.0])) == (1.0, 2.0)

    def test_length_one_sequence_stays_hashable(self):
        key = point_key([3.0])
        assert key == (3.0,)
        hash(key)


class TestDistributionCache:
    def test_hit_and_miss_accounting(self):
        cache = DistributionCache(maxsize=8)
        obj = UncertainObject.uniform("a", 0.0, 1.0)
        first = cache.distribution(obj, 2.0)
        second = cache.distribution(obj, 2.0)
        assert first is second
        assert (cache.hits, cache.misses) == (1, 1)

    def test_lru_eviction(self):
        cache = DistributionCache(maxsize=2)
        objs = [UncertainObject.uniform(i, i, i + 1.0) for i in range(3)]
        for obj in objs:
            cache.distribution(obj, 10.0)
        assert len(cache) == 2
        # Object 0 was evicted: probing it again is a miss.
        cache.distribution(objs[0], 10.0)
        assert cache.misses == 4 and cache.hits == 0

    def test_entries_pin_their_objects(self):
        """Live entries hold their object, so ids cannot be recycled."""
        cache = DistributionCache(maxsize=8)
        obj = UncertainObject.uniform("a", 0.0, 1.0)
        cache.distribution(obj, 2.0)
        (entry,) = cache._cache._entries.values()
        assert entry[0] is obj

    def test_evict_object_drops_all_entries(self):
        cache = DistributionCache(maxsize=8)
        obj = UncertainObject.uniform("a", 0.0, 1.0)
        other = UncertainObject.uniform("b", 2.0, 3.0)
        for q in (4.0, 5.0):
            cache.distribution(obj, q)
            cache.distribution(other, q)
        assert cache.evict_object(obj) == 2
        assert len(cache) == 2

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            DistributionCache(maxsize=0)


class TestBatchMbrFilter:
    @pytest.mark.parametrize("n", [5, 40])
    def test_matches_rtree_filter_1d(self, rng, n):
        objects = make_random_objects(rng, n)
        tree_filter = PnnFilter(str_bulk_load([(o.mbr, o) for o in objects]))
        batch_filter = BatchMbrFilter(objects)
        points = query_points(rng)
        batched = batch_filter(points)
        for q, got in zip(points, batched):
            reference = tree_filter(q)
            assert got.fmin == reference.fmin
            assert {o.key for o in got.candidates} == {
                o.key for o in reference.candidates
            }

    def test_matches_rtree_filter_2d(self, rng):
        objects = [
            UncertainDisk("disk", (0.0, 0.0), 2.0),
            UncertainSegment("seg", (1.0, 1.0), (4.0, 3.0)),
            UncertainRectangle.from_bounds("rect", -3.0, -1.0, -1.0, 2.0),
            UncertainDisk("far", (40.0, 40.0), 1.0),
        ]
        tree_filter = PnnFilter(str_bulk_load([(o.mbr, o) for o in objects]))
        batch_filter = BatchMbrFilter(objects)
        points = [tuple(p) for p in rng.uniform(-5, 45, size=(10, 2))]
        for q, got in zip(points, batch_filter(points)):
            reference = tree_filter(q)
            assert got.fmin == reference.fmin
            assert {o.key for o in got.candidates} == {
                o.key for o in reference.candidates
            }

    def test_dimension_mismatch_rejected(self, rng):
        batch_filter = BatchMbrFilter(make_random_objects(rng, 4))
        with pytest.raises(ValueError):
            batch_filter([(1.0, 2.0)])

    def test_empty_objects_rejected(self):
        with pytest.raises(ValueError):
            BatchMbrFilter([])


class TestQueryBatch:
    def test_empty_points(self, rng):
        engine = CPNNEngine(make_random_objects(rng, 6))
        batch = engine.query_batch([])
        assert isinstance(batch, BatchResult)
        assert len(batch) == 0
        assert batch.answers == []

    def test_matches_sequential_exactly(self, rng):
        engine = CPNNEngine(make_random_objects(rng, 30))
        points = query_points(rng, n=15)
        batch = engine.query_batch(points, threshold=0.3, tolerance=0.0)
        assert len(batch) == len(points)
        for q, result in zip(points, batch):
            reference = engine.query(q, threshold=0.3, tolerance=0.0)
            assert set(result.answers) == set(reference.answers)
            assert result.fmin == reference.fmin
            assert result.refined_objects == reference.refined_objects
            assert result.unknown_after_verifier == reference.unknown_after_verifier
            got = {r.key: (r.label, r.lower, r.upper) for r in result.records}
            want = {r.key: (r.label, r.lower, r.upper) for r in reference.records}
            assert got == want

    def test_matches_sequential_with_tolerance(self, rng):
        engine = CPNNEngine(make_random_objects(rng, 20))
        points = query_points(rng, n=8)
        batch = engine.query_batch(points, threshold=0.4, tolerance=0.05)
        for q, result in zip(points, batch):
            reference = engine.query(q, threshold=0.4, tolerance=0.05)
            assert set(result.answers) == set(reference.answers)

    @pytest.mark.parametrize("strategy", Strategy.ALL)
    def test_strategies_match_sequential(self, rng, strategy):
        engine = CPNNEngine(make_random_objects(rng, 15))
        points = query_points(rng, n=6)
        batch = engine.query_batch(
            points, threshold=0.3, tolerance=0.0, strategy=strategy
        )
        for q, result in zip(points, batch):
            reference = engine.query(
                q, threshold=0.3, tolerance=0.0, strategy=strategy
            )
            assert set(result.answers) == set(reference.answers)

    def test_unknown_strategy_rejected(self, rng):
        engine = CPNNEngine(make_random_objects(rng, 4))
        with pytest.raises(ValueError):
            engine.query_batch([1.0], strategy="nope")

    def test_repeated_probes_hit_caches(self, rng):
        engine = CPNNEngine(make_random_objects(rng, 15))
        points = query_points(rng, n=6)
        first = engine.query_batch(points, threshold=0.3, tolerance=0.0)
        assert first.table_hits == 0
        assert first.cache_hits == 0
        second = engine.query_batch(points, threshold=0.3, tolerance=0.0)
        assert second.table_hits == len(points)
        assert second.table_misses == 0
        for a, b in zip(first, second):
            assert a.answers == b.answers

    def test_duplicate_points_within_batch_share_tables(self, rng):
        engine = CPNNEngine(make_random_objects(rng, 15))
        point = 30.0
        batch = engine.query_batch([point] * 5, threshold=0.3, tolerance=0.0)
        assert batch.table_hits == 4
        assert batch.table_misses == 1
        assert len({tuple(r.answers) for r in batch}) == 1

    def test_caches_can_be_disabled(self, rng):
        config = EngineConfig(distribution_cache_size=0, table_cache_size=0)
        engine = CPNNEngine(make_random_objects(rng, 10), config)
        points = query_points(rng, n=4)
        for _ in range(2):
            batch = engine.query_batch(points, threshold=0.3, tolerance=0.0)
            assert batch.table_hits == 0
            assert batch.cache_hits == 0
        for q, result in zip(points, batch):
            reference = engine.query(q, threshold=0.3, tolerance=0.0)
            assert set(result.answers) == set(reference.answers)

    def test_table_hits_report_no_distribution_misses(self, rng):
        """A table-cache hit builds no distributions, and says so."""
        config = EngineConfig(distribution_cache_size=0)
        engine = CPNNEngine(make_random_objects(rng, 10), config)
        points = query_points(rng, n=4)
        cold = engine.query_batch(points, threshold=0.3, tolerance=0.0)
        assert cold.cache_misses == sum(len(r.records) for r in cold)
        warm = engine.query_batch(points, threshold=0.3, tolerance=0.0)
        assert warm.table_hits == len(points)
        assert warm.cache_misses == 0

    def test_remove_evicts_distribution_cache_entries(self, rng):
        objects = make_random_objects(rng, 10)
        engine = CPNNEngine(objects)
        engine.query_batch(query_points(rng, n=4), threshold=0.3, tolerance=0.0)
        cached = len(engine._distribution_cache)
        assert cached > 0
        victim = objects[0]
        assert engine.remove(victim.key)
        assert all(
            entry[0] is not victim
            for entry in engine._distribution_cache._cache._entries.values()
        )

    def test_insert_invalidates_batch_state(self, rng):
        engine = CPNNEngine(make_random_objects(rng, 10))
        engine.query_batch([30.0], threshold=0.3, tolerance=0.0)
        engine.insert(UncertainObject.uniform("new", 29.9, 30.1))
        batch = engine.query_batch([30.0], threshold=0.3, tolerance=0.0)
        assert "new" in batch[0].answers
        assert batch.table_misses == 1

    def test_remove_invalidates_batch_state(self, rng):
        objects = make_random_objects(rng, 10)
        engine = CPNNEngine(objects)
        before = engine.query_batch([30.0], threshold=0.05, tolerance=0.0)
        target = before[0].answers[0]
        assert engine.remove(target)
        after = engine.query_batch([30.0], threshold=0.05, tolerance=0.0)
        assert target not in after[0].answers
        reference = engine.query(30.0, threshold=0.05, tolerance=0.0)
        assert set(after[0].answers) == set(reference.answers)

    def test_emptied_engine_raises(self):
        engine = CPNNEngine([UncertainObject.uniform("solo", 0, 1)])
        assert engine.remove("solo")
        with pytest.raises(ValueError):
            engine.query_batch([0.5])

    def test_linear_scan_engine_matches_sequential(self, rng):
        engine = CPNNEngine(
            make_random_objects(rng, 12), EngineConfig(use_rtree=False)
        )
        points = query_points(rng, n=5)
        batch = engine.query_batch(points, threshold=0.3, tolerance=0.0)
        for q, result in zip(points, batch):
            reference = engine.query(q, threshold=0.3, tolerance=0.0)
            assert set(result.answers) == set(reference.answers)
            assert result.fmin == reference.fmin

    def test_prepared_queries_with_uniform_constraints(self, rng):
        engine = CPNNEngine(make_random_objects(rng, 12))
        points = query_points(rng, n=4)
        prepared = [CPNNQuery(q, 0.25, 0.0) for q in points]
        batch = engine.query_batch(prepared)
        for q, result in zip(points, batch):
            reference = engine.query(q, threshold=0.25, tolerance=0.0)
            assert set(result.answers) == set(reference.answers)

    def test_prepared_queries_with_mixed_constraints(self, rng):
        engine = CPNNEngine(make_random_objects(rng, 12))
        points = query_points(rng, n=4)
        thresholds = [0.1, 0.3, 0.5, 0.7]
        prepared = [
            CPNNQuery(q, threshold, 0.0) for q, threshold in zip(points, thresholds)
        ]
        batch = engine.query_batch(prepared)
        for query, result in zip(prepared, batch):
            reference = engine.query(query)
            assert set(result.answers) == set(reference.answers)

    def test_2d_mixture_matches_sequential(self, rng):
        objects = [
            UncertainDisk("disk", (0.0, 0.0), 2.0),
            UncertainSegment("seg", (1.0, 1.0), (4.0, 3.0)),
            UncertainRectangle.from_bounds("rect", -3.0, -1.0, -1.0, 2.0),
            UncertainDisk("far", (9.0, 9.0), 1.0),
        ]
        engine = CPNNEngine(objects)
        points = [tuple(p) for p in rng.uniform(-4, 10, size=(8, 2))]
        batch = engine.query_batch(points, threshold=0.2, tolerance=0.0)
        for q, result in zip(points, batch):
            reference = engine.query(q, threshold=0.2, tolerance=0.0)
            assert set(result.answers) == set(reference.answers)

    def test_batch_timings_populated(self, rng):
        engine = CPNNEngine(make_random_objects(rng, 20))
        batch = engine.query_batch(query_points(rng, n=6), 0.3, 0.0)
        assert batch.timings.total > 0
        assert batch.timings.initialization > 0

    def test_answer_sets_property(self, rng):
        engine = CPNNEngine(make_random_objects(rng, 10))
        points = query_points(rng, n=3)
        batch = engine.query_batch(points, 0.3, 0.0)
        assert batch.answer_sets == [frozenset(r.answers) for r in batch.results]


class TestLruCacheMaintenance:
    def test_put_reports_evicted_entry(self):
        from repro.core.batch import LruCache

        cache = LruCache(2)
        assert cache.put("a", 1) is None
        assert cache.put("b", 2) is None
        assert cache.put("c", 3) == ("a", 1)  # LRU victim surfaces

    def test_delete(self):
        from repro.core.batch import LruCache

        cache = LruCache(4)
        cache.put("a", 1)
        assert cache.delete("a")
        assert not cache.delete("a")
        assert cache.get("a") is None

    def test_items_snapshot(self):
        from repro.core.batch import LruCache

        cache = LruCache(4)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.items() == [("a", 1), ("b", 2)]


class TestDistributionCacheIndex:
    def test_evict_object_drops_only_that_object(self, rng):
        objects = make_random_objects(rng, 3)
        cache = DistributionCache(maxsize=64)
        for obj in objects:
            for q in (1.0, 2.0):
                cache.distribution(obj, point_key(q))
        assert len(cache) == 6
        assert cache.evict_object(objects[0]) == 2
        assert len(cache) == 4
        assert cache.evict_object(objects[0]) == 0

    def test_index_survives_lru_eviction(self, rng):
        objects = make_random_objects(rng, 2)
        cache = DistributionCache(maxsize=2)
        cache.distribution(objects[0], point_key(1.0))
        cache.distribution(objects[0], point_key(2.0))
        cache.distribution(objects[1], point_key(1.0))  # evicts oldest
        assert len(cache) == 2
        # The evicted entry must be gone from the reverse index too.
        assert cache.evict_object(objects[0]) == 1
        assert cache.evict_object(objects[1]) == 1
        assert len(cache) == 0


class TestTableCacheInvalidation:
    @staticmethod
    def _cache_with_entries(entries):
        from repro.core.batch import CachedTable, TableCache

        cache = TableCache(16)
        for point, fmin in entries:
            cache.put(point_key(point), CachedTable(table=object(), fmin=fmin))
        return cache

    def test_far_box_invalidates_nothing(self):
        cache = self._cache_with_entries([(0.0, 1.0), (10.0, 1.0)])
        assert cache.invalidate_overlapping([100.0], [101.0]) == 0
        assert len(cache) == 2

    def test_overlapping_box_drops_only_affected(self):
        cache = self._cache_with_entries([(0.0, 1.0), (10.0, 1.0)])
        # mindist([9.5, 10.5], q=10) = 0 <= 1, mindist(.., q=0) = 9.5 > 1
        assert cache.invalidate_overlapping([9.5], [10.5]) == 1
        assert len(cache) == 1
        assert cache.get(point_key(10.0)) is None
        assert cache.get(point_key(0.0)) is not None

    def test_boundary_is_inclusive(self):
        # mindist == fmin exactly: the object enters the candidate set
        # (the filter keeps mindist <= fmin), so the entry must drop.
        cache = self._cache_with_entries([(0.0, 2.0)])
        assert cache.invalidate_overlapping([2.0], [3.0]) == 1

    def test_invalidate_boxes_unions_the_tests(self):
        cache = self._cache_with_entries([(0.0, 1.0), (10.0, 1.0), (50.0, 1.0)])
        lows = np.array([[9.5], [49.5]])
        highs = np.array([[10.5], [50.5]])
        assert cache.invalidate_boxes(lows, highs) == 2
        assert len(cache) == 1

    def test_2d_points(self):
        from repro.core.batch import CachedTable, TableCache

        cache = TableCache(8)
        cache.put(point_key((0.0, 0.0)), CachedTable(table=object(), fmin=1.0))
        cache.put(point_key((10.0, 10.0)), CachedTable(table=object(), fmin=1.0))
        assert cache.invalidate_overlapping([9.0, 9.0], [11.0, 11.0]) == 1
        assert cache.get(point_key((0.0, 0.0))) is not None
