"""Tests for constrained probabilistic range queries."""

import numpy as np
import pytest

from repro.core.range_query import constrained_range_query, range_probabilities
from repro.core.types import Label
from repro.uncertainty.objects import UncertainObject
from tests.conftest import make_random_objects

# This module exercises the pre-facade entry points on purpose: it is
# the regression suite for the deprecation shims (DESIGN.md §7).
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


class TestRangeProbabilities:
    def test_uniform_closed_form(self):
        obj = UncertainObject.uniform("u", 0.0, 10.0)
        probs = range_probabilities([obj], 0.0, 4.0)
        assert probs["u"] == pytest.approx(0.4)

    def test_mbr_shortcuts(self):
        inside = UncertainObject.uniform("inside", 1.0, 2.0)
        outside = UncertainObject.uniform("outside", 50.0, 51.0)
        probs = range_probabilities([inside, outside], 0.0, 5.0)
        assert probs["inside"] == 1.0
        assert probs["outside"] == 0.0

    def test_matches_monte_carlo(self, rng):
        objects = make_random_objects(rng, 8)
        q, radius = 30.0, 6.0
        probs = range_probabilities(objects, q, radius)
        for obj in objects:
            samples = obj.histogram.sample(rng, 50_000)
            mc = float(np.mean(np.abs(samples - q) <= radius))
            assert probs[obj.key] == pytest.approx(mc, abs=8e-3)

    def test_monotone_in_radius(self, rng):
        objects = make_random_objects(rng, 6)
        q = 30.0
        previous = None
        for radius in (1.0, 3.0, 9.0, 30.0):
            probs = range_probabilities(objects, q, radius)
            if previous is not None:
                for key in probs:
                    assert probs[key] >= previous[key] - 1e-12
            previous = probs

    def test_negative_radius_rejected(self, rng):
        with pytest.raises(ValueError):
            range_probabilities(make_random_objects(rng, 2), 0.0, -1.0)

    def test_2d_objects(self):
        from repro.uncertainty.twod import UncertainDisk

        disk = UncertainDisk("d", (0.0, 0.0), 2.0)
        probs = range_probabilities([disk], (0.0, 0.0), 1.0)
        assert probs["d"] == pytest.approx(0.25, abs=1e-6)


class TestConstrainedRangeQuery:
    def test_answers_match_exact_thresholding(self, rng):
        objects = make_random_objects(rng, 12)
        q, radius, threshold = 30.0, 5.0, 0.4
        answers, records = constrained_range_query(objects, q, radius, threshold)
        exact = range_probabilities(objects, q, radius)
        assert set(answers) == {k for k, p in exact.items() if p >= threshold}
        assert len(records) == len(objects)

    def test_mbr_decided_records_have_no_exact(self):
        inside = UncertainObject.uniform("inside", 1.0, 2.0)
        straddle = UncertainObject.uniform("straddle", 4.0, 6.0)
        answers, records = constrained_range_query(
            [inside, straddle], 0.0, 5.0, threshold=0.5
        )
        by_key = {r.key: r for r in records}
        assert by_key["inside"].exact is None  # decided by MBR alone
        assert by_key["inside"].label is Label.SATISFY
        assert by_key["straddle"].exact == pytest.approx(0.5)
        assert set(answers) == {"inside", "straddle"}

    def test_validation(self, rng):
        objects = make_random_objects(rng, 2)
        with pytest.raises(ValueError):
            constrained_range_query([], 0.0, 1.0, 0.5)
        with pytest.raises(ValueError):
            constrained_range_query(objects, 0.0, 1.0, 0.0)
        with pytest.raises(ValueError):
            constrained_range_query(objects, 0.0, 1.0, 0.5, tolerance=2.0)
