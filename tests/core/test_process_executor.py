"""End-to-end tests for the process executor (DESIGN.md §13).

The expensive contract: a persistent spawn-based worker pool, attached
once to a shared-memory coordinate segment, must answer **bit-identically**
to the single engine — cold, warm (resident worker caches), and across
a mutation stream replayed to the workers — and must survive a worker
dying mid-batch by retrying in-process and respawning.  One module-scoped
engine pair serves the identity tests (spawn costs ~0.2 s per worker);
the crash and lifecycle tests build their own.
"""

import glob

import numpy as np
import pytest

from repro.core.engine import EngineConfig, ShardedEngine, UncertainEngine
from repro.core.types import CKNNQuery, CPNNQuery, CRangeQuery
from repro.shm import SEGMENT_PREFIX
from repro.uncertainty.objects import UncertainObject
from tests.conftest import make_random_objects
from tests.core.test_sharded import assert_batches_identical

#: Every C-PNN batch in this module must go to the workers.
PROCESS_CONFIG = EngineConfig(process_min_batch=0)


def make_pair(rng, n=36, config=PROCESS_CONFIG):
    objects = make_random_objects(rng, n)
    sharded = ShardedEngine(
        objects, config, n_shards=3, max_workers=2, executor="process"
    )
    return objects, sharded, UncertainEngine(objects, config)


def specs_for(points):
    return [CPNNQuery(float(q), threshold=0.3, tolerance=0.01) for q in points]


def leaked_segments() -> list[str]:
    return glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*")


class TestBitIdentity:
    def test_cold_and_warm_batches_match_single_engine(self, rng):
        _, sharded, single = make_pair(rng)
        try:
            specs = specs_for(np.linspace(2.0, 58.0, 12))
            want = single.execute_batch(specs)
            cold = sharded.execute_batch(specs)
            assert_batches_identical(cold, want)
            assert sharded.stats()["executor"]["backend"] == "process"
            # Warm pass: the workers' resident table caches replay
            # every spec wholesale, still bit-identical.
            warm = sharded.execute_batch(specs)
            assert_batches_identical(warm, single.execute_batch(specs))
            assert warm.result_hits == len(specs)
        finally:
            sharded.close()

    def test_mixed_families_and_strategies(self, rng):
        _, sharded, single = make_pair(rng)
        try:
            mixed = []
            for q in (6.0, 24.0, 47.0):
                mixed.append(CPNNQuery(q, threshold=0.35, tolerance=0.0))
                mixed.append(CKNNQuery(q, threshold=0.4, k=2))
                mixed.append(CRangeQuery(q, threshold=0.5, radius=6.0))
            assert_batches_identical(
                sharded.execute_batch(mixed), single.execute_batch(mixed)
            )
            for strategy in ("basic", "refine", "vr"):
                specs = specs_for((11.0, 33.0, 52.0))
                assert_batches_identical(
                    sharded.execute_batch(specs, strategy=strategy),
                    single.execute_batch(specs, strategy=strategy),
                )
        finally:
            sharded.close()

    def test_mutation_stream_replayed_to_workers(self, rng):
        objects, sharded, single = make_pair(rng)
        try:
            specs = specs_for((5.0, 21.0, 38.0, 55.0))
            # Start the pool (and its replicas) before mutating, so the
            # ops travel through the mutation log, not the attach
            # snapshot.
            assert_batches_identical(
                sharded.execute_batch(specs), single.execute_batch(specs)
            )
            moved = UncertainObject.uniform(objects[5].key, 40.0, 49.0)
            fresh = UncertainObject.uniform("fresh", 17.0, 23.0)
            for engine in (sharded, single):
                engine.insert(fresh)
                engine.remove(objects[2].key)
                engine.replace(objects[5].key, moved)
            assert_batches_identical(
                sharded.execute_batch(specs), single.execute_batch(specs)
            )
            # And again after the log has been compacted.
            assert_batches_identical(
                sharded.execute_batch(specs), single.execute_batch(specs)
            )
        finally:
            sharded.close()

    def test_sweep_dispatch_carries_ops_once(self, rng):
        """Round-robin sweep fan-out hands one worker several shard
        columns in a single dispatch (3 shards over 2 workers here);
        the mutation-log suffix must ride only that worker's *first*
        message — ``synced`` advances on reply, so a naive re-send
        would replay the same remove twice on the worker replica and
        crash or desync it."""
        objects, sharded, single = make_pair(rng, config=EngineConfig())
        try:
            assert sharded.warm_executor() == "process"
            fresh = UncertainObject.uniform("fresh", 40.0, 52.0)
            for engine in (sharded, single):
                engine.remove(objects[0].key)
                engine.insert(fresh)
            assert sharded.stats()["executor"]["pending_ops"] > 0
            # Small batch: C-PNN verification stays inline (below the
            # default process_min_batch) but the staging sweeps still
            # fan out across the live pool, carrying the pending ops.
            specs = specs_for((8.0, 21.0, 44.0, 55.0))
            assert_batches_identical(
                sharded.execute_batch(specs), single.execute_batch(specs)
            )
            stats = sharded.stats()["executor"]
            assert stats["worker_failures"] == 0
            assert stats["pending_ops"] == 0
        finally:
            sharded.close()

    def test_linear_scan_mode(self, rng):
        config = EngineConfig(use_rtree=False, process_min_batch=0)
        _, sharded, single = make_pair(rng, config=config)
        try:
            specs = specs_for((9.0, 27.0, 44.0))
            assert_batches_identical(
                sharded.execute_batch(specs), single.execute_batch(specs)
            )
        finally:
            sharded.close()

    def test_small_batches_run_inline(self, rng):
        config = EngineConfig(process_min_batch=64)
        _, sharded, single = make_pair(rng, config=config)
        try:
            specs = specs_for((13.0, 31.0))
            assert_batches_identical(
                sharded.execute_batch(specs), single.execute_batch(specs)
            )
            stats = sharded.stats()["executor"]
            assert stats["started"] is False  # no spawn was paid
            assert sharded.stats()["shards"]["parallel"]["backend"] == "serial"
        finally:
            sharded.close()


class TestCrashRecovery:
    def test_worker_death_mid_batch_is_transparent(self, rng):
        _, sharded, single = make_pair(rng, n=24)
        try:
            specs = specs_for(np.linspace(3.0, 57.0, 10))
            want = single.execute_batch(specs)
            assert_batches_identical(sharded.execute_batch(specs), want)
            before = sharded.stats()["executor"]
            assert before["worker_failures"] == 0
            # Arm lane 0's worker to die the moment it receives its next
            # work item — the parent must discover the corpse mid-batch,
            # re-execute the item in-process, and still answer
            # bit-identically.
            sharded._executor.inject_crash(0)
            assert_batches_identical(sharded.execute_batch(specs), want)
            after = sharded.stats()["executor"]
            assert after["worker_failures"] == before["worker_failures"] + 1
            assert after["in_process_retries"] >= 1
            # The pool heals: the next dispatch respawns the dead worker
            # and answers keep matching.
            assert_batches_identical(sharded.execute_batch(specs), want)
            healed = sharded.stats()["executor"]
            assert healed["respawns"] >= 1
            assert healed["alive"] == healed["workers"]
        finally:
            sharded.close()

    def test_crash_with_pending_mutations(self, rng):
        objects, sharded, single = make_pair(rng, n=24)
        try:
            specs = specs_for((8.0, 29.0, 51.0))
            assert_batches_identical(
                sharded.execute_batch(specs), single.execute_batch(specs)
            )
            for engine in (sharded, single):
                engine.remove(objects[1].key)
            sharded._executor.inject_crash(0)
            # The respawned worker must attach a post-mutation snapshot,
            # not replay a stale one.
            want = single.execute_batch(specs)
            assert_batches_identical(sharded.execute_batch(specs), want)
            assert_batches_identical(sharded.execute_batch(specs), want)
        finally:
            sharded.close()


class TestLifecycle:
    def test_no_segments_leak_across_lifecycle(self, rng):
        before = set(leaked_segments())
        _, sharded, single = make_pair(rng, n=20)
        specs = specs_for((7.0, 26.0, 49.0))
        sharded.execute_batch(specs)
        # Steady state: the attach-time segment is already unlinked
        # (workers keep their mappings; the name is gone).
        assert set(leaked_segments()) <= before
        sharded.close()
        assert set(leaked_segments()) <= before

    def test_close_is_idempotent_and_pool_restarts(self, rng):
        _, sharded, single = make_pair(rng, n=20)
        specs = specs_for((12.0, 34.0, 56.0))
        want = single.execute_batch(specs)
        assert_batches_identical(sharded.execute_batch(specs), want)
        sharded.close()
        sharded.close()
        assert sharded.stats()["executor"]["started"] is False
        # The engine stays usable: the next batch restarts the pool.
        assert_batches_identical(sharded.execute_batch(specs), want)
        assert sharded.stats()["executor"]["started"] is True
        sharded.close()

    def test_context_manager_and_del_release_workers(self, rng):
        objects = make_random_objects(rng, 16)
        with ShardedEngine(
            objects, PROCESS_CONFIG, n_shards=2, max_workers=2,
            executor="process",
        ) as engine:
            engine.execute_batch(specs_for((10.0, 40.0)))
            assert engine.stats()["executor"]["alive"] == 2
        assert engine.stats()["executor"]["started"] is False

    def test_warm_executor_prestarts_pool(self, rng):
        objects = make_random_objects(rng, 16)
        engine = ShardedEngine(
            objects, PROCESS_CONFIG, n_shards=2, max_workers=2,
            executor="process",
        )
        try:
            assert engine.warm_executor() == "process"
            stats = engine.stats()["executor"]
            assert stats["started"] is True
            assert stats["alive"] == 2
        finally:
            engine.close()
