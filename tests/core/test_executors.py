"""Tests for the executor layer's resolution and in-process backends.

The ``executor=`` knob (config field + engine override) resolves to a
concrete backend; the serial and thread backends must answer
bit-identically to each other and to the single engine, and the choice
must be visible through ``stats()`` and ``explain()``.  The process
backend has its own suite (``test_process_executor.py``) because it
spawns interpreters.
"""

import pytest

from repro.core.engine import EngineConfig, ShardedEngine, UncertainEngine
from repro.core.engine.executors import make_executor, resolve_backend
from repro.core.engine.executors.base import free_threaded
from repro.core.types import CKNNQuery, CPNNQuery, CRangeQuery
from repro.uncertainty.objects import UncertainObject
from tests.conftest import make_random_objects
from tests.core.test_sharded import assert_batches_identical, mixed_specs


class TestResolution:
    def test_non_auto_names_pass_through(self):
        config = EngineConfig()
        for name in ("serial", "thread", "process"):
            assert resolve_backend(config, override=name) == name
            assert resolve_backend(EngineConfig(executor=name)) == name

    def test_override_beats_config_field(self):
        config = EngineConfig(executor="thread")
        assert resolve_backend(config, override="serial") == "serial"

    def test_auto_is_serial_for_non_parallel_hosts(self):
        assert resolve_backend(EngineConfig(), parallel=False) == "serial"

    def test_auto_resolves_to_a_parallel_backend(self):
        resolved = resolve_backend(EngineConfig(), parallel=True)
        assert resolved in ("thread", "process")

    def test_auto_avoids_process_for_unpicklable_config(self):
        chain = EngineConfig().chain_factory()
        config = EngineConfig(pipeline=lambda spec_type: chain)
        resolved = resolve_backend(config, parallel=True)
        if not free_threaded():
            assert resolved == "thread"

    def test_unknown_names_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_backend(EngineConfig(), override="gpu")
        with pytest.raises(ValueError, match="executor"):
            EngineConfig(executor="gpu")
        with pytest.raises(ValueError):
            make_executor("gpu", host=None)

    def test_process_min_batch_validated(self):
        with pytest.raises(ValueError):
            EngineConfig(process_min_batch=-1)

    def test_engine_exposes_resolved_backend(self, rng):
        objects = make_random_objects(rng, 12)
        engine = ShardedEngine(objects, n_shards=2, executor="serial")
        assert engine.executor == "serial"
        engine = ShardedEngine(objects, n_shards=2, executor="auto")
        assert engine.executor in ("serial", "thread", "process")


class TestInProcessBackendIdentity:
    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_mixed_batch_matches_single_engine(self, rng, backend):
        objects = make_random_objects(rng, 40)
        specs = mixed_specs()
        want = UncertainEngine(objects).execute_batch(specs)
        with ShardedEngine(
            objects, n_shards=3, max_workers=2, executor=backend
        ) as engine:
            got = engine.execute_batch(specs)
            assert_batches_identical(got, want)

    def test_serial_and_thread_agree_after_mutations(self, rng):
        objects = make_random_objects(rng, 30)
        newcomer = UncertainObject.uniform("newcomer", 18.0, 26.0)
        specs = [CPNNQuery(q, threshold=0.3) for q in (4.0, 22.0, 41.0, 55.0)]
        engines = {
            name: ShardedEngine(
                list(objects), n_shards=3, max_workers=2, executor=name
            )
            for name in ("serial", "thread")
        }
        single = UncertainEngine(list(objects))
        try:
            for engine in (*engines.values(), single):
                engine.remove(objects[3].key)
                engine.insert(newcomer)
            want = single.execute_batch(specs)
            for engine in engines.values():
                assert_batches_identical(engine.execute_batch(specs), want)
        finally:
            for engine in engines.values():
                engine.close()

    def test_linear_scan_mode(self, rng):
        objects = make_random_objects(rng, 20)
        config = EngineConfig(use_rtree=False)
        specs = [CPNNQuery(q, threshold=0.3) for q in (9.0, 27.0, 44.0)]
        want = UncertainEngine(objects, config).execute_batch(specs)
        for backend in ("serial", "thread"):
            with ShardedEngine(
                objects, config, n_shards=2, executor=backend
            ) as engine:
                assert_batches_identical(engine.execute_batch(specs), want)


class TestObservability:
    def test_sharded_stats_report_backend(self, rng):
        objects = make_random_objects(rng, 15)
        with ShardedEngine(objects, n_shards=2, executor="thread") as engine:
            stats = engine.stats()
            assert stats["executor"]["backend"] == "thread"
            engine.execute_batch([CPNNQuery(11.0, threshold=0.3)])
            parallel = engine.stats()["shards"]["parallel"]
            assert parallel["backend"] == "thread"

    def test_single_engine_stats_report_serial(self, rng):
        engine = UncertainEngine(make_random_objects(rng, 8))
        assert engine.stats()["executor"]["backend"] == "serial"

    def test_explain_mentions_backend(self, rng):
        objects = make_random_objects(rng, 15)
        with ShardedEngine(objects, n_shards=2, executor="serial") as engine:
            for spec in (
                CPNNQuery(9.0, threshold=0.3),
                CKNNQuery(9.0, threshold=0.4, k=2),
                CRangeQuery(9.0, threshold=0.5, radius=5.0),
            ):
                plan = engine.explain(spec)
                assert any("serial executor" in stage for stage in plan.stages)
                assert plan.shards["executor"]["backend"] == "serial"

    def test_close_is_idempotent_and_engine_stays_usable(self, rng):
        objects = make_random_objects(rng, 15)
        engine = ShardedEngine(objects, n_shards=2, executor="thread")
        specs = [CPNNQuery(12.0, threshold=0.3)]
        first = engine.execute_batch(specs)
        engine.close()
        engine.close()
        again = engine.execute_batch(specs)
        assert_batches_identical(again, first)
        engine.close()
