"""Robustness tests: the engine with non-default verifier chains.

The framework of Figure 5 is pluggable — the paper's future work asks
for "other kinds of verifiers", so the engine must stay correct under
any subset/ordering of sound verifiers (refinement picks up whatever
verification leaves unknown)."""

import pytest

from repro.core.engine import CPNNEngine, EngineConfig
from repro.core.verifiers import (
    LowerSubregionVerifier,
    RightmostSubregionVerifier,
    UpperSubregionVerifier,
    VerifierChain,
)
from tests.conftest import make_random_objects

# This module exercises the pre-facade entry points on purpose: it is
# the regression suite for the deprecation shims (DESIGN.md §7).
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def chain_of(*verifiers):
    return lambda: VerifierChain(list(verifiers))


CHAINS = {
    "rs-only": chain_of(RightmostSubregionVerifier()),
    "lsr-only": chain_of(LowerSubregionVerifier()),
    "usr-only": chain_of(UpperSubregionVerifier()),
    "upper-pair": chain_of(RightmostSubregionVerifier(), UpperSubregionVerifier()),
    "reversed-input": chain_of(
        UpperSubregionVerifier(),
        LowerSubregionVerifier(),
        RightmostSubregionVerifier(),
    ),
}


class TestCustomChains:
    @pytest.mark.parametrize("name", sorted(CHAINS))
    def test_answers_invariant_to_chain(self, rng, name):
        objects = make_random_objects(rng, 15)
        q = 30.0
        reference = set(
            CPNNEngine(objects).query(q, threshold=0.3, tolerance=0.0).answers
        )
        engine = CPNNEngine(objects, EngineConfig(chain_factory=CHAINS[name]))
        answers = set(engine.query(q, threshold=0.3, tolerance=0.0).answers)
        assert answers == reference

    @pytest.mark.parametrize("name", sorted(CHAINS))
    def test_contract_holds_for_every_chain(self, rng, name):
        objects = make_random_objects(rng, 12)
        engine = CPNNEngine(objects, EngineConfig(chain_factory=CHAINS[name]))
        q = 30.0
        exact = engine.pnn(q)
        for threshold, tolerance in ((0.2, 0.0), (0.3, 0.1)):
            answers = set(
                engine.query(q, threshold=threshold, tolerance=tolerance).answers
            )
            must = {k for k, p in exact.items() if p >= threshold + 1e-9}
            may = {k for k, p in exact.items() if p >= threshold - tolerance - 1e-9}
            assert must <= answers <= may

    def test_weaker_chains_refine_more(self, rng):
        objects = make_random_objects(rng, 20)
        q = 30.0
        full = CPNNEngine(objects)
        rs_only = CPNNEngine(objects, EngineConfig(chain_factory=CHAINS["rs-only"]))
        refined_full = full.query(q, threshold=0.3).refined_objects
        refined_rs = rs_only.query(q, threshold=0.3).refined_objects
        assert refined_full <= refined_rs

    def test_unknown_series_matches_executed_chain(self, rng):
        objects = make_random_objects(rng, 15)
        engine = CPNNEngine(
            objects, EngineConfig(chain_factory=CHAINS["upper-pair"])
        )
        result = engine.query(30.0, threshold=0.3, tolerance=0.01)
        assert set(result.unknown_after_verifier) <= {"RS", "U-SR"}
