"""Tests for the mutable candidate verification state."""

import numpy as np
import pytest

from repro.core.state import CandidateStates
from repro.core.types import Label


class TestInitialisation:
    def test_starts_unknown_with_trivial_bounds(self):
        states = CandidateStates(["a", "b"])
        assert states.size == 2
        assert states.n_unknown == 2
        assert np.allclose(states.lower, 0.0)
        assert np.allclose(states.upper, 1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CandidateStates([])


class TestTighten:
    def test_tighten_shrinks_only(self):
        states = CandidateStates(["a"], pad=0.0)
        states.tighten(lower=np.asarray([0.3]), upper=np.asarray([0.8]))
        states.tighten(lower=np.asarray([0.1]), upper=np.asarray([0.9]))
        assert states.lower[0] == pytest.approx(0.3)
        assert states.upper[0] == pytest.approx(0.8)

    def test_pad_widens_new_bounds(self):
        states = CandidateStates(["a"], pad=0.01)
        states.tighten(lower=np.asarray([0.5]), upper=np.asarray([0.5]))
        assert states.lower[0] == pytest.approx(0.49)
        assert states.upper[0] == pytest.approx(0.51)

    def test_only_unknown_rows_touched(self):
        states = CandidateStates(["a", "b"], pad=0.0)
        states.labels[0] = 1  # satisfy
        states.tighten(upper=np.asarray([0.2, 0.2]))
        assert states.upper[0] == 1.0
        assert states.upper[1] == pytest.approx(0.2)

    def test_hairline_inversion_collapses(self):
        states = CandidateStates(["a"], pad=0.0)
        states.tighten(lower=np.asarray([0.5]))
        states.tighten(upper=np.asarray([0.5 - 1e-9]))
        assert states.lower[0] == pytest.approx(states.upper[0])

    def test_material_inversion_raises(self):
        states = CandidateStates(["a"], pad=0.0)
        states.tighten(lower=np.asarray([0.8]))
        with pytest.raises(ValueError):
            states.tighten(upper=np.asarray([0.2]))


class TestClassify:
    def test_labels_assigned(self):
        states = CandidateStates(["a", "b", "c"], pad=0.0)
        states.tighten(
            lower=np.asarray([0.9, 0.0, 0.0]),
            upper=np.asarray([1.0, 0.1, 1.0]),
        )
        states.classify(0.3, 0.01)
        assert states.label_of(0) is Label.SATISFY
        assert states.label_of(1) is Label.FAIL
        assert states.label_of(2) is Label.UNKNOWN
        assert states.n_unknown == 1
        assert list(states.unknown_indices()) == [2]
        assert list(states.satisfied_indices()) == [0]

    def test_labels_sticky(self):
        states = CandidateStates(["a"], pad=0.0)
        states.tighten(lower=np.asarray([0.9]))
        states.classify(0.3, 0.0)
        assert states.label_of(0) is Label.SATISFY
        # Later classification with a harsher threshold must not flip it.
        states.classify(0.99, 0.0)
        assert states.label_of(0) is Label.SATISFY

    def test_unknown_fraction(self):
        states = CandidateStates(list("abcd"), pad=0.0)
        states.labels[:2] = 2
        assert states.unknown_fraction == pytest.approx(0.5)


class TestSetExact:
    def test_collapses_bound(self):
        states = CandidateStates(["a"], pad=1e-12)
        states.set_exact(0, 0.42)
        assert states.lower[0] == pytest.approx(0.42, abs=1e-9)
        assert states.upper[0] == pytest.approx(0.42, abs=1e-9)

    def test_stays_within_previous_bounds(self):
        states = CandidateStates(["a"], pad=0.0)
        states.tighten(lower=np.asarray([0.4]), upper=np.asarray([0.6]))
        states.set_exact(0, 0.5)
        assert 0.4 <= states.lower[0] <= states.upper[0] <= 0.6
