"""MC verifier tier: certified-confidence sampling bounds that may
classify candidates but never pollute the certified tiers
(DESIGN.md §15)."""

import numpy as np
import pytest

from repro.core.engine import EngineConfig, UncertainEngine
from repro.core.refinement import Refiner
from repro.core.state import CandidateStates
from repro.core.subregions import SubregionTable
from repro.core.types import CPNNQuery
from repro.core.verifiers import MCVerifier, VerifierChain, default_chain
from repro.core.verifiers.base import BoundUpdate
from tests.conftest import make_random_objects


def small_table(rng, n=6, q=30.0):
    objects = make_random_objects(rng, n)
    return SubregionTable([o.distance_distribution(q) for o in objects])


class TestMCVerifierUnit:
    def test_validation(self):
        with pytest.raises(ValueError):
            MCVerifier(trials=0)
        with pytest.raises(ValueError):
            MCVerifier(confidence=1.0)

    def test_epsilon_formula(self):
        mc = MCVerifier(trials=1000, confidence=0.99)
        expected = np.sqrt(np.log(2 * 5 / 0.01) / (2 * 1000))
        assert mc.epsilon(5) == pytest.approx(expected)
        # More candidates → wider union bound; more trials → tighter.
        assert mc.epsilon(50) > mc.epsilon(5)
        assert MCVerifier(trials=4000).epsilon(5) < MCVerifier(trials=400).epsilon(5)

    def test_deterministic_per_table(self, rng):
        table = small_table(rng)
        mc = MCVerifier(trials=512)
        a, b = mc.compute(table), mc.compute(table)
        np.testing.assert_array_equal(a.lower, b.lower)
        np.testing.assert_array_equal(a.upper, b.upper)

    def test_different_seeds_differ(self, rng):
        table = small_table(rng)
        a = MCVerifier(trials=512, seed=1).compute(table)
        b = MCVerifier(trials=512, seed=2).compute(table)
        assert not np.array_equal(a.lower, b.lower)

    def test_bounds_bracket_exact_probability(self, rng):
        """The statistical bracket holds (at 4096 trials and 99.9%
        simultaneous confidence a violation would be a soundness bug
        with overwhelming probability)."""
        table = small_table(rng, n=8)
        exact = Refiner(table).exact_all()
        update = MCVerifier().compute(table)
        assert np.all(update.lower <= exact + 1e-12)
        assert np.all(exact <= update.upper + 1e-12)
        assert np.all(update.lower >= 0.0) and np.all(update.upper <= 1.0)

    def test_runs_before_rs_in_chain(self):
        chain = VerifierChain([*default_chain().verifiers, MCVerifier()])
        assert chain.verifiers[0].name == "MC"
        assert chain.verifiers[0].certified is False
        assert all(v.certified for v in chain.verifiers[1:])


class TestUncertifiedChainSemantics:
    def test_unknown_rows_keep_certified_bounds(self, rng):
        """Rows MC cannot settle must exit with their pre-MC bounds."""
        table = small_table(rng, n=6)
        chain = VerifierChain([MCVerifier(trials=8)])  # hopeless epsilon
        states = CandidateStates(table.keys)
        query = CPNNQuery(30.0, threshold=0.5, tolerance=0.0)
        before_lower = states.lower.copy()
        before_upper = states.upper.copy()
        chain.run(table, states, query)
        unknown = states.unknown_mask()
        np.testing.assert_array_equal(states.lower[unknown], before_lower[unknown])
        np.testing.assert_array_equal(states.upper[unknown], before_upper[unknown])

    def test_contradictory_update_falls_back_to_certified(self):
        states = CandidateStates(("a", "b"))
        states.tighten(
            lower=np.array([0.4, 0.0]), upper=np.array([0.6, 0.2])
        )
        # The statistical interval for "a" lands entirely outside the
        # certified [0.4, 0.6]: the row must keep its certified bounds
        # rather than classify from the contradiction.
        update = BoundUpdate(
            lower=np.array([0.8, 0.0]), upper=np.array([0.9, 0.05])
        )
        VerifierChain._apply_uncertified(update, states, 0.95, 0.0)
        assert states.lower[0] == pytest.approx(0.4)
        assert states.upper[0] == pytest.approx(0.6)

    def test_outcome_records_probabilistic_terms(self, rng):
        table = small_table(rng, n=5)
        chain = VerifierChain([MCVerifier(trials=2048), *default_chain().verifiers])
        states = CandidateStates(table.keys)
        outcome = chain.run(table, states, CPNNQuery(30.0, threshold=0.3, tolerance=0.01))
        assert outcome.executed[0] == "MC"
        info = outcome.probabilistic["MC"]
        assert info["trials"] == 2048
        assert 0.0 < info["epsilon"] < 1.0
        assert info["classified"] >= 0


class TestEngineIntegration:
    def engine(self, rng, **overrides):
        objects = make_random_objects(rng, 24)
        config = EngineConfig(mc_tier=True, **overrides)
        return UncertainEngine(objects, config)

    def test_chain_composition_and_stats(self, rng):
        engine = self.engine(rng, mc_trials=1024, mc_confidence=0.99)
        stats = engine.stats()
        assert stats["mc"] == {
            "enabled": True,
            "trials": 1024,
            "confidence": 0.99,
            "seed": 20080199,
        }
        plan = engine.explain(CPNNQuery(30.0, threshold=0.3, tolerance=0.01))
        assert any("MC tier" in stage for stage in plan.stages)

    def test_answers_within_stated_confidence(self, rng):
        """MC-tier answers agree with the certified engine's on every
        candidate whose exact probability is ≥ epsilon away from the
        threshold (closer calls are legitimately statistical)."""
        objects = make_random_objects(rng, 24)
        certified = UncertainEngine(objects, EngineConfig())
        mc_engine = UncertainEngine(objects, EngineConfig(mc_tier=True))
        spec = CPNNQuery(30.0, threshold=0.3, tolerance=0.01)
        base = certified.execute(spec)
        probed = mc_engine.execute(spec)
        eps = MCVerifier().epsilon(len(base.records))
        exact_by_key = {
            r.key: (r.lower + r.upper) / 2.0 for r in base.records
        }
        base_answers = set(base.answers)
        probed_answers = set(probed.answers)
        for record in probed.records:
            exact = exact_by_key[record.key]
            if abs(exact - spec.threshold) <= eps + spec.tolerance:
                continue  # statistical-margin call, either label is fine
            assert (record.key in base_answers) == (record.key in probed_answers)

    def test_batch_equals_sequential_with_mc_tier(self, rng):
        engine = self.engine(rng)
        specs = [
            CPNNQuery(float(q), threshold=0.3, tolerance=0.01)
            for q in np.linspace(5.0, 55.0, 7)
        ]
        sequential = [engine.execute(s) for s in specs]
        engine2 = self.engine(np.random.default_rng(20080407))
        batch = engine2.execute_batch(specs)
        for seq, bat in zip(sequential, batch.results):
            assert seq.answers == bat.answers
            for a, b in zip(seq.records, bat.records):
                assert (a.key, a.label, a.lower, a.upper) == (
                    b.key,
                    b.label,
                    b.lower,
                    b.upper,
                )

    def test_mc_tier_off_by_default(self, rng):
        engine = UncertainEngine(make_random_objects(rng, 8))
        assert engine.stats()["mc"]["enabled"] is False
        plan = engine.explain(CPNNQuery(30.0, threshold=0.3))
        assert not any("MC tier" in stage for stage in plan.stages)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(mc_trials=0)
        with pytest.raises(ValueError):
            EngineConfig(mc_confidence=0.0)
        with pytest.raises(ValueError):
            EngineConfig(analytic_max_grid=8, analytic_grid=64)
