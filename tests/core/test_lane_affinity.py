"""Lane affinity must be a pure function of the query coordinates.

:func:`repro.core.engine.lanes.lane_for` replaced the builtin-``hash``
affinity precisely because ``hash`` varies across interpreters under
hash randomization — under the process executor that would silently
re-deal points to different lanes between the parent and its spawned
workers, defeating per-lane cache affinity.  The regression test here
is the strong form: two freshly spawned interpreters with *different*
``PYTHONHASHSEED`` values must produce identical lane assignments.
"""

import json
import os
import subprocess
import sys

import numpy as np

from repro.core.engine.lanes import lane_for

_CHILD = r"""
import json, struct, sys
from repro.core.engine.lanes import lane_for
points = json.loads(sys.stdin.read())
points = [tuple(p) if isinstance(p, list) else p for p in points]
print(json.dumps([lane_for(p, 4) for p in points]))
"""


def _assignments_in_fresh_interpreter(points, hash_seed: str) -> list[int]:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    src_dir = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src_dir)
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD],
        input=json.dumps(points),
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(proc.stdout)


class TestLaneFor:
    def test_pure_function_of_coordinates(self):
        assert lane_for(3.25, 4) == lane_for(3.25, 4)
        assert lane_for((1.0, 2.0), 8) == lane_for((1.0, 2.0), 8)
        # numpy scalars and python floats agree (point_key normalises).
        assert lane_for(np.float64(3.25), 4) == lane_for(3.25, 4)

    def test_range_and_spread(self):
        rng = np.random.default_rng(20080407)
        lanes = [lane_for(float(q), 4) for q in rng.uniform(0, 1e4, 500)]
        assert all(0 <= lane < 4 for lane in lanes)
        # All four lanes get a healthy share of a random workload.
        counts = np.bincount(lanes, minlength=4)
        assert counts.min() > 50

    def test_regular_grids_do_not_alias(self):
        # Whole-numbered query grids are the classic degenerate case for
        # modulo-of-value affinity; the CRC must spread them.
        lanes = {lane_for(float(q), 4) for q in np.arange(0.0, 48.0, 3.0)}
        assert len(lanes) == 4

    def test_identical_across_spawned_interpreters(self):
        rng = np.random.default_rng(7)
        points = [float(x) for x in rng.uniform(0, 1e4, 50)]
        points += [[float(a), float(b)] for a, b in rng.uniform(0, 100, (25, 2))]
        first = _assignments_in_fresh_interpreter(points, hash_seed="1")
        second = _assignments_in_fresh_interpreter(points, hash_seed="2")
        assert first == second
        # And both match this interpreter's assignments.
        local = [
            lane_for(tuple(p) if isinstance(p, list) else p, 4) for p in points
        ]
        assert first == local
