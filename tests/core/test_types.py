"""Tests for query/result types."""

import pytest

from repro.core.types import AnswerRecord, CPNNQuery, CPNNResult, Label, PhaseTimings


class TestCPNNQuery:
    def test_defaults_match_paper(self):
        # Section V-A: default P = 0.3, Δ = 0.01.
        q = CPNNQuery(q=5.0)
        assert q.threshold == 0.3
        assert q.tolerance == 0.01

    def test_threshold_range(self):
        CPNNQuery(0.0, threshold=1.0)
        with pytest.raises(ValueError):
            CPNNQuery(0.0, threshold=0.0)
        with pytest.raises(ValueError):
            CPNNQuery(0.0, threshold=1.5)

    def test_tolerance_range(self):
        CPNNQuery(0.0, tolerance=0.0)
        CPNNQuery(0.0, tolerance=1.0)
        with pytest.raises(ValueError):
            CPNNQuery(0.0, tolerance=-0.1)

    def test_frozen(self):
        q = CPNNQuery(0.0)
        with pytest.raises(AttributeError):
            q.threshold = 0.5


class TestPhaseTimings:
    def test_total(self):
        t = PhaseTimings(filtering=1.0, initialization=0.5, verification=2.0, refinement=3.0)
        assert t.total == pytest.approx(6.5)


class TestResultTypes:
    def test_record_for(self):
        record = AnswerRecord(key="a", label=Label.SATISFY, lower=0.4, upper=0.6)
        result = CPNNResult(answers=("a",), records=[record])
        assert result.record_for("a") is record
        with pytest.raises(KeyError):
            result.record_for("missing")

    def test_bound_width(self):
        record = AnswerRecord(key="a", label=Label.UNKNOWN, lower=0.2, upper=0.5)
        assert record.bound_width == pytest.approx(0.3)
