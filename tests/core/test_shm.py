"""Tests for the shared-memory export layer (DESIGN.md §13).

``repro.shm`` turns named column sets into flat
``multiprocessing.shared_memory`` segments plus cheap descriptors;
``DistributionPack.to_shared`` / ``BatchMbrFilter.to_shared`` ride on
it.  The load-bearing properties: rehydrated views are bit-identical
and zero-copy, read-only until a mutation forces a private copy, and
segments never outlive the engine (no ``/dev/shm`` leaks).
"""

import glob

import numpy as np
import pytest

from repro.index.filtering import BatchMbrFilter
from repro.shm import (
    SEGMENT_PREFIX,
    ShmDescriptor,
    attach_arrays,
    export_arrays,
    release_segment,
)
from repro.uncertainty.columnar import DistributionPack
from tests.conftest import make_random_objects


def leaked_segments() -> list[str]:
    return glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*")


@pytest.fixture(autouse=True)
def no_leaks():
    before = set(leaked_segments())
    yield
    after = set(leaked_segments())
    assert after <= before, f"leaked shared-memory segments: {after - before}"


class TestExportAttach:
    def test_round_trip_bit_identical(self, rng):
        arrays = {
            "a": rng.normal(size=37),
            "b": rng.normal(size=(5, 11)),
            "c": np.arange(9, dtype=np.intp),
        }
        shm, desc = export_arrays(arrays)
        try:
            other, views = attach_arrays(desc)
            try:
                assert set(views) == set(arrays)
                for name, src in arrays.items():
                    np.testing.assert_array_equal(views[name], src)
                    assert views[name].dtype == src.dtype
            finally:
                del views
                other.close()
        finally:
            release_segment(shm)

    def test_descriptor_is_plain_data(self, rng):
        shm, desc = export_arrays({"x": rng.normal(size=8)})
        try:
            assert isinstance(desc, ShmDescriptor)
            field = desc.field("x")
            assert field.shape == (8,)
            assert np.dtype(field.dtype) == np.float64
            assert desc.nbytes >= 8 * 8
            with pytest.raises(KeyError):
                desc.field("missing")
        finally:
            release_segment(shm)

    def test_attached_views_are_zero_copy_and_read_only(self, rng):
        src = rng.normal(size=64)
        shm, desc = export_arrays({"x": src})
        try:
            other, views = attach_arrays(desc)
            try:
                assert not views["x"].flags.writeable
                with pytest.raises((ValueError, RuntimeError)):
                    views["x"][0] = 1.0
                # Zero-copy: the view's buffer is the mapped segment.
                assert views["x"].base is not None
            finally:
                del views
                other.close()
        finally:
            release_segment(shm)

    def test_writable_attach_visible_to_other_views(self, rng):
        shm, desc = export_arrays({"x": np.zeros(16)})
        try:
            w_shm, w_views = attach_arrays(desc, writable=True)
            w_views["x"][:] = np.arange(16.0)
            del w_views
            w_shm.close()
            r_shm, r_views = attach_arrays(desc)
            try:
                np.testing.assert_array_equal(r_views["x"], np.arange(16.0))
            finally:
                del r_views
                r_shm.close()
        finally:
            release_segment(shm)

    def test_release_is_idempotent(self, rng):
        shm, _ = export_arrays({"x": np.ones(4)})
        release_segment(shm)
        release_segment(shm)  # second release must be a no-op
        assert not leaked_segments()


class TestDistributionPackShared:
    # to_shared/from_shared are deprecated shims over the column-store
    # API (one release; DESIGN.md §16) — these regression tests keep
    # them working and opt out of the strict-deprecations CI lane.
    pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

    def test_round_trip_matches_all_kernels(self, rng):
        objects = make_random_objects(rng, 24)
        distributions = [obj.distance_distribution(13.0) for obj in objects]
        pack = DistributionPack(distributions)
        shm, desc = pack.to_shared()
        try:
            twin = DistributionPack.from_shared(desc)
            xs = rng.uniform(0.0, 80.0, size=7)
            for x in xs:
                np.testing.assert_array_equal(
                    pack.cdf_many(float(x)), twin.cdf_many(float(x))
                )
        finally:
            release_segment(shm)

    def test_rehydrated_pack_owns_its_attachment(self, rng):
        objects = make_random_objects(rng, 6)
        distributions = [obj.distance_distribution(5.0) for obj in objects]
        pack = DistributionPack(distributions)
        shm, desc = pack.to_shared()
        try:
            twin = DistributionPack.from_shared(desc)
            # The exporter unlinking must not invalidate the twin's
            # mapping (POSIX keeps mappings alive past the name).
            release_segment(shm)
            np.testing.assert_array_equal(
                pack.cdf_many(3.0), twin.cdf_many(3.0)
            )
        finally:
            release_segment(shm)


class TestBatchMbrFilterShared:
    # Deprecated-shim coverage, same opt-out as above.
    pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

    def test_round_trip_matrices_identical(self, rng):
        objects = make_random_objects(rng, 40)
        filt = BatchMbrFilter(objects)
        queries = rng.uniform(0.0, 60.0, size=9)
        shm, desc = filt.to_shared()
        try:
            twin = BatchMbrFilter.from_shared(desc, objects)
            want_min, want_max = filt.matrices(queries)
            got_min, got_max = twin.matrices(queries)
            np.testing.assert_array_equal(got_min, want_min)
            np.testing.assert_array_equal(got_max, want_max)
        finally:
            release_segment(shm)

    def test_from_shared_validates_object_count(self, rng):
        objects = make_random_objects(rng, 10)
        shm, desc = BatchMbrFilter(objects).to_shared()
        try:
            with pytest.raises(ValueError):
                BatchMbrFilter.from_shared(desc, objects[:-1])
        finally:
            release_segment(shm)

    def test_matrices_rows_matches_column_slice(self, rng):
        objects = make_random_objects(rng, 30)
        filt = BatchMbrFilter(objects)
        queries = rng.uniform(0.0, 60.0, size=6)
        rows = np.array([2, 3, 11, 29], dtype=np.intp)
        full_min, full_max = filt.matrices(queries)
        part_min, part_max = filt.matrices_rows(queries, rows)
        np.testing.assert_array_equal(part_min, full_min[:, rows])
        np.testing.assert_array_equal(part_max, full_max[:, rows])

    def test_replace_at_on_shared_columns_copies_first(self, rng):
        objects = make_random_objects(rng, 12)
        shm, desc = BatchMbrFilter(objects).to_shared()
        try:
            twin = BatchMbrFilter.from_shared(desc, objects)
            replacement = make_random_objects(rng, 1)[0]
            # Shared views are read-only; the in-place row write must
            # transparently promote to a private copy, leaving the
            # exporter's columns untouched.
            twin.replace_at(3, replacement)
            objects2 = list(objects)
            objects2[3] = replacement
            want_min, want_max = BatchMbrFilter(objects2).matrices([7.0, 31.0])
            got_min, got_max = twin.matrices([7.0, 31.0])
            np.testing.assert_array_equal(got_min, want_min)
            np.testing.assert_array_equal(got_max, want_max)
            check_shm, views = attach_arrays(desc)
            try:
                original = BatchMbrFilter(objects)
                original._flush()
                np.testing.assert_array_equal(views["lows"], original._lows)
            finally:
                del views
                check_shm.close()
        finally:
            release_segment(shm)
