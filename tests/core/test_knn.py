"""Tests for the probabilistic k-NN extension."""

import numpy as np
import pytest

from repro.baselines.montecarlo import monte_carlo_knn_probabilities
from repro.core.knn import (
    CKNNEngine,
    knn_qualification_probabilities,
    kth_smallest_far,
)
from repro.uncertainty.objects import UncertainObject
from tests.conftest import make_random_objects

# This module exercises the pre-facade entry points on purpose: it is
# the regression suite for the deprecation shims (DESIGN.md §7).
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


class TestKthSmallestFar:
    def test_basic(self, rng):
        objects = make_random_objects(rng, 6)
        dists = [o.distance_distribution(10.0) for o in objects]
        fars = sorted(d.far for d in dists)
        assert kth_smallest_far(dists, 1) == pytest.approx(fars[0])
        assert kth_smallest_far(dists, 6) == pytest.approx(fars[-1])

    def test_validation(self, rng):
        objects = make_random_objects(rng, 3)
        dists = [o.distance_distribution(0.0) for o in objects]
        with pytest.raises(ValueError):
            kth_smallest_far(dists, 0)
        with pytest.raises(ValueError):
            kth_smallest_far(dists, 4)


class TestExactKnnProbabilities:
    def test_k_one_equals_pnn(self, rng):
        from repro.core.engine import CPNNEngine

        objects = make_random_objects(rng, 8)
        q = 30.0
        knn = knn_qualification_probabilities(objects, q, k=1)
        pnn = CPNNEngine(objects).pnn(q)
        for key, p in pnn.items():
            assert knn[key] == pytest.approx(p, abs=1e-9)
        # Objects pruned by the PNN engine have probability 0.
        for key, p in knn.items():
            if key not in pnn:
                assert p == pytest.approx(0.0, abs=1e-12)

    def test_probabilities_sum_to_k(self, rng):
        for k in (1, 2, 3):
            objects = make_random_objects(rng, 7)
            probs = knn_qualification_probabilities(objects, 30.0, k=k)
            assert sum(probs.values()) == pytest.approx(k, abs=1e-8)

    def test_monotone_in_k(self, rng):
        objects = make_random_objects(rng, 8)
        q = 30.0
        p1 = knn_qualification_probabilities(objects, q, k=1)
        p2 = knn_qualification_probabilities(objects, q, k=2)
        p3 = knn_qualification_probabilities(objects, q, k=3)
        for key in p1:
            assert p1[key] <= p2[key] + 1e-9 <= p3[key] + 2e-9

    def test_k_at_least_n_gives_ones(self, rng):
        objects = make_random_objects(rng, 4)
        probs = knn_qualification_probabilities(objects, 0.0, k=4)
        assert all(p == 1.0 for p in probs.values())

    def test_agrees_with_monte_carlo(self, rng):
        objects = make_random_objects(rng, 7, families=("uniform", "gaussian"))
        q = 30.0
        exact = knn_qualification_probabilities(objects, q, k=2)
        mc = monte_carlo_knn_probabilities(objects, q, k=2, trials=150_000, rng=rng)
        for key in exact:
            assert exact[key] == pytest.approx(mc[key], abs=8e-3)

    def test_two_identical_objects_k2(self):
        objects = [
            UncertainObject.uniform("a", 0.0, 1.0),
            UncertainObject.uniform("b", 0.0, 1.0),
            UncertainObject.uniform("c", 5.0, 6.0),
        ]
        probs = knn_qualification_probabilities(objects, 0.0, k=2)
        assert probs["a"] == pytest.approx(1.0, abs=1e-9)
        assert probs["b"] == pytest.approx(1.0, abs=1e-9)
        assert probs["c"] == pytest.approx(0.0, abs=1e-9)

    def test_invalid_k(self, rng):
        objects = make_random_objects(rng, 3)
        with pytest.raises(ValueError):
            knn_qualification_probabilities(objects, 0.0, k=0)


class TestCKNNEngine:
    def test_answers_match_exact_thresholding(self, rng):
        objects = make_random_objects(rng, 9)
        q = 30.0
        k = 2
        engine = CKNNEngine(objects, k=k)
        answers, records = engine.query(q, threshold=0.4)
        exact = knn_qualification_probabilities(objects, q, k=k)
        expected = {key for key, p in exact.items() if p >= 0.4}
        assert set(answers) == expected
        assert len(records) == len(objects)

    def test_rs_style_bound_is_sound(self, rng):
        objects = make_random_objects(rng, 9)
        q = 30.0
        k = 2
        engine = CKNNEngine(objects, k=k)
        _, records = engine.query(q, threshold=0.3)
        exact = knn_qualification_probabilities(objects, q, k=k)
        for record in records:
            assert exact[record.key] <= record.upper + 1e-9

    def test_k_covers_everything(self, rng):
        objects = make_random_objects(rng, 4)
        engine = CKNNEngine(objects, k=10)
        answers, records = engine.query(0.0, threshold=0.5)
        assert set(answers) == {o.key for o in objects}

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            CKNNEngine([], k=1)
        with pytest.raises(ValueError):
            CKNNEngine(make_random_objects(rng, 3), k=0)


class TestKnnProbabilityBounds:
    def test_bounds_contain_exact(self, rng):
        from repro.core.knn import knn_probability_bounds

        for k in (1, 2, 3):
            objects = make_random_objects(rng, 8)
            q = 30.0
            dists = [o.distance_distribution(q) for o in objects]
            bounds = knn_probability_bounds(dists, k)
            exact = knn_qualification_probabilities(dists, q, k=k)
            for dist, (lower, upper) in zip(dists, bounds):
                assert lower - 1e-9 <= exact[dist.key] <= upper + 1e-9

    def test_k_covers_all(self, rng):
        from repro.core.knn import knn_probability_bounds

        objects = make_random_objects(rng, 4)
        dists = [o.distance_distribution(0.0) for o in objects]
        assert knn_probability_bounds(dists, 4) == [(1.0, 1.0)] * 4

    def test_lower_bound_nontrivial_for_isolated_object(self):
        from repro.core.knn import knn_probability_bounds

        # An object far closer than everyone else: its k=1 lower bound
        # should already be 1 (no integration needed to accept it).
        objects = [
            UncertainObject.uniform("close", 0.0, 1.0),
            UncertainObject.uniform("far1", 10.0, 11.0),
            UncertainObject.uniform("far2", 12.0, 13.0),
        ]
        dists = [o.distance_distribution(0.0) for o in objects]
        bounds = dict(zip((d.key for d in dists), knn_probability_bounds(dists, 1)))
        assert bounds["close"][0] == pytest.approx(1.0)
        assert bounds["far1"][1] == pytest.approx(0.0)

    def test_validation(self, rng):
        from repro.core.knn import knn_probability_bounds

        objects = make_random_objects(rng, 3)
        dists = [o.distance_distribution(0.0) for o in objects]
        with pytest.raises(ValueError):
            knn_probability_bounds(dists, 0)

    def test_cknn_skips_integration_when_bounds_decide(self):
        objects = [
            UncertainObject.uniform("close", 0.0, 1.0),
            UncertainObject.uniform("far1", 10.0, 11.0),
            UncertainObject.uniform("far2", 12.0, 13.0),
        ]
        answers, records = CKNNEngine(objects, k=1).query(0.0, threshold=0.5)
        assert answers == ("close",)
        # Every object was decided by the verifier bounds alone.
        assert all(r.exact is None for r in records)
