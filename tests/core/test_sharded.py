"""Tests for the shard-parallel engine (DESIGN.md §12).

Bit-identity against :class:`UncertainEngine` is the load-bearing
contract — answers, records, and bounds must match exactly for all
three spec families, mixed batches, both filter modes, 1-D and 2-D
data, and across dynamic updates.  The structural tests cover the STR
partition, insert routing, the rebalance policy, and the observability
surface.
"""

import numpy as np
import pytest

from repro.core.engine import EngineConfig, ShardedEngine, UncertainEngine
from repro.core.engine.partition import str_shard_split
from repro.core.types import CKNNQuery, CPNNQuery, CRangeQuery, QueryPlan
from repro.uncertainty.objects import UncertainObject
from repro.uncertainty.twod import UncertainDisk
from tests.conftest import make_random_objects


def mixed_specs(points=(4.0, 19.0, 33.0, 57.0)):
    specs = []
    for q in points:
        specs.append(CPNNQuery(q, threshold=0.3, tolerance=0.0))
        specs.append(CKNNQuery(q, threshold=0.4, k=2))
        specs.append(CRangeQuery(q, threshold=0.5, radius=6.0))
    return specs


def assert_results_identical(a, b):
    assert a.answers == b.answers
    assert (a.fmin == b.fmin) or (np.isnan(a.fmin) and np.isnan(b.fmin))
    assert len(a.records) == len(b.records)
    for x, y in zip(a.records, b.records):
        assert (x.key, x.label, x.lower, x.upper, x.exact) == (
            y.key,
            y.label,
            y.lower,
            y.upper,
            y.exact,
        )


def assert_batches_identical(got, want):
    assert len(got.results) == len(want.results)
    for a, b in zip(got.results, want.results):
        assert_results_identical(a, b)


class TestPartition:
    def test_groups_cover_and_balance_1d(self, rng):
        objects = make_random_objects(rng, 40)
        groups, route = str_shard_split(objects, 4)
        assert sum(len(g) for g in groups) == 40
        assert {o.key for g in groups for o in g} == {o.key for o in objects}
        assert max(len(g) for g in groups) - min(len(g) for g in groups) <= 1
        assert route is not None

    def test_groups_cover_2d(self, rng):
        objects = [
            UncertainDisk(i, (float(rng.uniform(0, 50)), float(rng.uniform(0, 50))),
                          1.0, distance_bins=16)
            for i in range(23)
        ]
        for n_shards in (1, 2, 3, 4, 7):
            groups, route = str_shard_split(objects, n_shards)
            assert len(groups) == n_shards
            assert sum(len(g) for g in groups) == 23
            # The router places every existing object in *a* valid shard.
            for obj in objects:
                assert 0 <= route(obj) < n_shards

    def test_empty_and_fewer_objects_than_shards(self):
        groups, route = str_shard_split([], 4)
        assert groups == [[], [], [], []] and route is None
        objects = [UncertainObject.uniform(i, i, i + 1.0) for i in range(2)]
        groups, route = str_shard_split(objects, 5)
        assert sum(len(g) for g in groups) == 2
        assert all(0 <= route(o) < 5 for o in objects)

    def test_spatial_locality_1d(self):
        # Contiguous tiles: every shard's centers form an interval.
        objects = [UncertainObject.uniform(i, x, x + 1.0) for i, x in
                   enumerate(np.linspace(0, 90, 30))]
        groups, _ = str_shard_split(objects, 3)
        spans = [
            (min(o.mbr.center[0] for o in g), max(o.mbr.center[0] for o in g))
            for g in groups
        ]
        spans.sort()
        for (_, hi), (lo, _) in zip(spans, spans[1:]):
            assert hi <= lo


class TestBitIdentity:
    @pytest.mark.parametrize("use_rtree", [True, False])
    def test_mixed_batch_matches_single_engine(self, rng, use_rtree):
        objects = make_random_objects(rng, 36)
        config = EngineConfig(use_rtree=use_rtree)
        single = UncertainEngine(list(objects), config)
        with ShardedEngine(
            list(objects), config, n_shards=4, max_workers=3
        ) as sharded:
            specs = mixed_specs()
            assert_batches_identical(
                sharded.execute_batch(specs), single.execute_batch(specs)
            )
            # Warm replay (result snapshots, lane caches) stays exact.
            assert_batches_identical(
                sharded.execute_batch(specs), single.execute_batch(specs)
            )

    @pytest.mark.parametrize("strategy", ["basic", "refine", "vr"])
    def test_strategies_match(self, rng, strategy):
        objects = make_random_objects(rng, 20)
        single = UncertainEngine(list(objects))
        with ShardedEngine(list(objects), n_shards=3, max_workers=2) as sharded:
            specs = [CPNNQuery(q, threshold=0.3, tolerance=0.01)
                     for q in (7.0, 31.0, 52.0)]
            assert_batches_identical(
                sharded.execute_batch(specs, strategy=strategy),
                single.execute_batch(specs, strategy=strategy),
            )

    def test_heterogeneous_constraints_match(self, rng):
        objects = make_random_objects(rng, 24)
        single = UncertainEngine(list(objects))
        with ShardedEngine(list(objects), n_shards=4, max_workers=4) as sharded:
            specs = [
                CPNNQuery(10.0, threshold=0.2, tolerance=0.0),
                CPNNQuery(25.0, threshold=0.6, tolerance=0.05),
                CPNNQuery(40.0, threshold=0.35, tolerance=0.01),
            ]
            assert_batches_identical(
                sharded.execute_batch(specs), single.execute_batch(specs)
            )

    def test_2d_disks_match(self, rng):
        objects = [
            UncertainDisk(
                i,
                (float(rng.uniform(0, 40)), float(rng.uniform(0, 40))),
                float(rng.uniform(0.5, 2.5)),
                distance_bins=24,
            )
            for i in range(18)
        ]
        single = UncertainEngine(list(objects))
        with ShardedEngine(list(objects), n_shards=4, max_workers=2) as sharded:
            specs = [
                CPNNQuery((10.0, 12.0), threshold=0.3, tolerance=0.0),
                CKNNQuery((25.0, 30.0), threshold=0.4, k=3),
                CRangeQuery((18.0, 5.0), threshold=0.5, radius=8.0),
            ]
            assert_batches_identical(
                sharded.execute_batch(specs), single.execute_batch(specs)
            )

    def test_single_execute_routes_through_batch_path(self, rng):
        objects = make_random_objects(rng, 16)
        single = UncertainEngine(list(objects))
        with ShardedEngine(list(objects), n_shards=3, max_workers=2) as sharded:
            for spec in mixed_specs((8.0, 44.0)):
                a = sharded.execute(spec)
                b = single.execute(spec)
                assert frozenset(a.answers) == frozenset(b.answers)
            assert sharded.pnn(30.0) == single.pnn(30.0)

    def test_empty_engine_semantics(self):
        with ShardedEngine([], n_shards=3) as sharded:
            result = sharded.execute(CPNNQuery(1.0))
            assert result.answers == ()
            batch = sharded.execute_batch(mixed_specs((1.0,)))
            assert all(r.answers == () for r in batch.results)
            with pytest.raises(ValueError):
                sharded.pnn(1.0)
            sharded.insert(UncertainObject.uniform("a", 0.0, 1.0))
            assert sharded.execute(CPNNQuery(0.5)).answers == ("a",)


class TestDynamicUpdates:
    def test_stream_matches_fresh_single_engine(self, rng):
        objects = make_random_objects(rng, 30)
        with ShardedEngine(
            list(objects), n_shards=4, max_workers=2, rebalance_threshold=2.0
        ) as sharded:
            mirror = list(objects)
            sharded.execute_batch(mixed_specs())  # warm every lane cache
            counter = 100
            for round_ in range(3):
                newcomer = UncertainObject.uniform(
                    ("new", counter), 5.0 * round_, 5.0 * round_ + 2.0
                )
                counter += 1
                sharded.insert(newcomer)
                mirror.append(newcomer)
                victim = mirror.pop(rng.integers(0, len(mirror)))
                assert sharded.remove(victim.key)
                index = int(rng.integers(0, len(mirror)))
                moved = UncertainObject.uniform(
                    mirror[index].key, 50.0 - round_, 52.0 + round_
                )
                sharded.replace(moved.key, moved)
                mirror[index] = moved
                fresh = UncertainEngine(list(mirror))
                assert_batches_identical(
                    sharded.execute_batch(mixed_specs()),
                    fresh.execute_batch(mixed_specs()),
                )

    def test_insert_routes_to_spatial_shard(self, rng):
        objects = [UncertainObject.uniform(i, x, x + 1.0)
                   for i, x in enumerate(np.linspace(0, 90, 24))]
        with ShardedEngine(objects, n_shards=3, max_workers=1) as sharded:
            left = UncertainObject.uniform("left", 0.5, 1.5)
            right = UncertainObject.uniform("right", 88.0, 89.0)
            sharded.insert(left)
            sharded.insert(right)
            owner_left = sharded._owner["left"]
            owner_right = sharded._owner["right"]
            assert owner_left != owner_right
            assert left in sharded.shards[owner_left].objects
            assert right in sharded.shards[owner_right].objects

    def test_rebalance_on_skew(self):
        objects = [UncertainObject.uniform(i, x, x + 1.0)
                   for i, x in enumerate(np.linspace(0, 90, 12))]
        with ShardedEngine(
            objects, n_shards=3, max_workers=1, rebalance_threshold=1.5
        ) as sharded:
            # Pile new objects into one tile until the skew trips.
            for j in range(30):
                sharded.insert(UncertainObject.uniform(("pile", j), 1.0, 2.0))
            stats = sharded.stats()["shards"]
            assert stats["rebalances"] >= 1
            assert stats["skew"] <= 1.5
            # Still answers exactly like a fresh single engine.
            fresh = UncertainEngine(list(sharded.objects))
            assert_batches_identical(
                sharded.execute_batch(mixed_specs()),
                fresh.execute_batch(mixed_specs()),
            )

    def test_replace_migrates_between_shards(self):
        objects = [UncertainObject.uniform(i, x, x + 1.0)
                   for i, x in enumerate(np.linspace(0, 90, 15))]
        with ShardedEngine(objects, n_shards=3, max_workers=1) as sharded:
            key = 0  # leftmost object
            before = sharded._owner[key]
            sharded.replace(key, UncertainObject.uniform(key, 88.0, 89.0))
            after = sharded._owner[key]
            assert before != after
            fresh = UncertainEngine(list(sharded.objects))
            assert_batches_identical(
                sharded.execute_batch(mixed_specs()),
                fresh.execute_batch(mixed_specs()),
            )

    def test_pnn_matches_linear_filter_for_2d(self, rng):
        """With use_rtree=False the single engine's pnn filters with
        exact region distances (tighter than MBRs for 2-D regions);
        the sharded pnn must return the identical key set."""
        objects = [
            UncertainDisk(
                i,
                (float(rng.uniform(0, 60)), float(rng.uniform(0, 60))),
                float(rng.uniform(0.5, 3.0)),
                distance_bins=16,
            )
            for i in range(40)
        ]
        config = EngineConfig(use_rtree=False)
        single = UncertainEngine(list(objects), config)
        with ShardedEngine(
            list(objects), config, n_shards=4, max_workers=1
        ) as sharded:
            for q in ((70.0, 20.0), (10.0, 10.0), (33.0, 48.0)):
                assert sharded.pnn(q) == single.pnn(q)

    def test_warm_replay_skips_the_fanout_sweep(self, rng):
        """A fully snapshot-answerable batch must not pay the B×N
        per-shard sweep it would then discard."""
        objects = make_random_objects(rng, 20)
        specs = [CPNNQuery(q, threshold=0.3, tolerance=0.0)
                 for q in (4.0, 19.0, 33.0)]
        with ShardedEngine(objects, n_shards=3, max_workers=2) as sharded:
            cold = sharded.execute_batch(specs)

            def boom(points):
                raise AssertionError("fan-out sweep ran on a warm batch")

            sharded._global_matrices = boom
            warm = sharded.execute_batch(specs)
            assert warm.result_hits == len(specs)
            assert [r.answers for r in warm.results] == [
                r.answers for r in cold.results
            ]

    def test_drain_and_refill(self, rng):
        objects = make_random_objects(rng, 6)
        with ShardedEngine(list(objects), n_shards=2, max_workers=1) as sharded:
            for obj in objects:
                assert sharded.remove(obj.key)
            assert len(sharded) == 0
            assert sharded.execute(CPNNQuery(3.0)).answers == ()
            refill = make_random_objects(rng, 4)
            for obj in refill:
                sharded.insert(obj)
            fresh = UncertainEngine(list(refill))
            assert_batches_identical(
                sharded.execute_batch(mixed_specs()),
                fresh.execute_batch(mixed_specs()),
            )


class TestConstructionAndConfig:
    def test_validation(self, rng):
        objects = make_random_objects(rng, 4)
        with pytest.raises(ValueError):
            ShardedEngine(objects, n_shards=0)
        with pytest.raises(ValueError):
            ShardedEngine(objects, max_workers=0)
        with pytest.raises(ValueError):
            ShardedEngine(objects, rebalance_threshold=1.0)
        with pytest.raises(ValueError):
            ShardedEngine(objects + objects)  # duplicate keys

    def test_mixed_dimensions_rejected(self, rng):
        objects = make_random_objects(rng, 3)
        objects.append(UncertainDisk("d", (1.0, 2.0), 0.5, distance_bins=16))
        with pytest.raises(ValueError):
            ShardedEngine(objects)

    def test_strategy_validation(self, rng):
        with ShardedEngine(make_random_objects(rng, 4)) as sharded:
            with pytest.raises(ValueError):
                sharded.execute(CPNNQuery(1.0), strategy="bogus")
            with pytest.raises(ValueError):
                sharded.execute_batch([CKNNQuery(1.0, k=1)], strategy="bogus")


class TestObservability:
    def test_stats_shape(self, rng):
        objects = make_random_objects(rng, 20)
        with ShardedEngine(objects, n_shards=4, max_workers=2) as sharded:
            sharded.execute_batch(mixed_specs())
            stats = sharded.stats()
            assert stats["engine"] == "ShardedEngine"
            assert stats["objects"] == 20
            shards = stats["shards"]
            assert shards["n_shards"] == 4
            assert sum(shards["occupancy"]) == 20
            assert shards["parallel"]["specs"] == 4  # the C-PNN slice
            assert shards["parallel"]["wall_s"] > 0
            assert len(stats["caches"]["lanes"]) == 2

    def test_single_engine_stats(self, rng):
        engine = UncertainEngine(make_random_objects(rng, 8))
        stats = engine.stats()
        assert stats["engine"] == "UncertainEngine"
        assert stats["objects"] == 8
        assert stats["index"] == "rtree"
        assert "distribution_cache" in stats["caches"]
        assert "table_cache" in stats["caches"]

    def test_explain_carries_shard_snapshot(self, rng):
        objects = make_random_objects(rng, 20)
        with ShardedEngine(objects, n_shards=4, max_workers=2) as sharded:
            single = UncertainEngine(list(objects))
            for spec in (
                CPNNQuery(30.0),
                CKNNQuery(30.0, k=2),
                CKNNQuery(30.0, k=50),
                CRangeQuery(30.0, radius=5.0),
            ):
                plan = sharded.explain(spec)
                reference = single.explain(spec)
                assert isinstance(plan, QueryPlan)
                assert plan.family == reference.family
                assert plan.candidates == reference.candidates
                assert plan.pruned == reference.pruned
                assert plan.shards["n_shards"] == 4
                assert sum(plan.shards["occupancy"]) == 20
                assert "shards" in plan.describe()

    def test_compact_reprs(self, rng):
        objects = make_random_objects(rng, 10)
        with ShardedEngine(objects, n_shards=2, max_workers=1) as sharded:
            batch = sharded.execute_batch(mixed_specs((9.0,)))
            assert len(repr(batch)) < 200
            assert "BatchResult(results=3" in repr(batch)
            assert len(repr(batch.results[0])) < 200
            assert "QueryResult(answers=" in repr(batch.results[0])
            assert "ShardedEngine(objects=10" in repr(sharded)

    def test_parallel_speedup_reported_in_plan(self, rng):
        objects = make_random_objects(rng, 16)
        with ShardedEngine(objects, n_shards=2, max_workers=2) as sharded:
            sharded.execute_batch([CPNNQuery(q) for q in (3.0, 17.5, 42.25)])
            plan = sharded.explain(CPNNQuery(3.0))
            parallel = plan.shards["parallel"]
            assert parallel["lanes_used"] >= 1
            assert parallel["parallel_speedup"] > 0
