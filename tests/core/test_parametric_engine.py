"""The engine's parametric fast path (DESIGN.md §15): analytic
verification with zero histogram constructions, sound fallback to the
histogram pipeline, and batch/sequential identity."""

import numpy as np
import pytest

from repro.core.engine import EngineConfig, UncertainEngine
from repro.core.types import CPNNQuery
from repro.uncertainty.histogram import Histogram
from repro.uncertainty.objects import UncertainObject
from repro.uncertainty.parametric import GaussianObject

N_OBJECTS = 60
DOMAIN = (0.0, 300.0)


def gaussian_objects(representation="parametric", seed=5):
    rng = np.random.default_rng(seed)
    objects = []
    for i in range(N_OBJECTS):
        center = float(rng.uniform(*DOMAIN))
        width = float(rng.uniform(2.0, 18.0))
        lo, hi = center - width / 2.0, center + width / 2.0
        if representation == "parametric":
            objects.append(GaussianObject(i, lo, hi, bars=48))
        else:
            objects.append(UncertainObject.gaussian(i, lo, hi, bars=48))
    return objects


def query_specs(threshold=0.3, tolerance=0.01, n=9):
    rng = np.random.default_rng(99)
    return [
        CPNNQuery(float(q), threshold=threshold, tolerance=tolerance)
        for q in rng.uniform(*DOMAIN, n)
    ]


@pytest.fixture
def histogram_counter(monkeypatch):
    """Counts every histogram construction, through any entry point."""
    counts = {"n": 0}
    original_init = Histogram.__init__

    def counting_init(self, *args, **kwargs):
        counts["n"] += 1
        original_init(self, *args, **kwargs)

    monkeypatch.setattr(Histogram, "__init__", counting_init)
    return counts


class TestFastPath:
    def test_zero_histogram_constructions(self, histogram_counter):
        engine = UncertainEngine(gaussian_objects())
        assert histogram_counter["n"] == 0, "engine build must not materialise"
        for spec in query_specs():
            result = engine.execute(spec)
            assert result.records, "queries over the domain have candidates"
        assert histogram_counter["n"] == 0, (
            "the parametric path must answer without a single histogram"
        )

    def test_fast_path_disabled_by_config(self, histogram_counter):
        engine = UncertainEngine(
            gaussian_objects(), EngineConfig(parametric_fast_path=False)
        )
        engine.execute(query_specs(n=1)[0])
        assert histogram_counter["n"] > 0, "histogram pipeline must run"

    def test_mixed_candidates_fall_back(self, histogram_counter):
        objects = gaussian_objects()
        # One classic object in the middle of the domain: any query
        # whose candidate set includes it must use the histogram path.
        objects.append(UncertainObject.gaussian("legacy", 140.0, 160.0, bars=48))
        engine = UncertainEngine(objects)
        result = engine.execute(CPNNQuery(150.0, threshold=0.3, tolerance=0.01))
        assert any(r.key == "legacy" for r in result.records)
        assert histogram_counter["n"] > 0

    def test_plan_names_fast_path(self):
        engine = UncertainEngine(gaussian_objects())
        plan = engine.explain(query_specs(n=1)[0])
        assert any("parametric fast path" in s for s in plan.stages)
        off = UncertainEngine(
            gaussian_objects(), EngineConfig(parametric_fast_path=False)
        )
        assert not any(
            "parametric fast path" in s
            for s in off.explain(query_specs(n=1)[0]).stages
        )
        stats = engine.stats()["parametric"]
        assert stats == {"fast_path": True, "grid": 64, "max_grid": 4096}


class TestAnswerQuality:
    def test_bounds_satisfy_contract(self):
        """Every returned/labelled record respects the C-PNN contract
        against the histogram engine's certified intervals."""
        parametric = UncertainEngine(gaussian_objects())
        histogram = UncertainEngine(gaussian_objects("histogram"))
        for spec in query_specs():
            p = parametric.execute(spec)
            h = histogram.execute(spec)
            h_bounds = {r.key: (r.lower, r.upper) for r in h.records}
            assert {r.key for r in p.records} == set(h_bounds)
            for key in set(p.answers).symmetric_difference(h.answers):
                lower, upper = h_bounds[key]
                # Only borderline candidates may be labelled apart —
                # their certified interval straddles P within Δ.
                assert lower <= spec.threshold + spec.tolerance
                assert upper >= spec.threshold - spec.tolerance

    def test_exact_tier_bit_identical_at_zero_tolerance(self):
        """With Δ = 0 unsettled candidates reach the exact refinement
        tier; the fast path's fallback must make the two engines
        answer bit-identically."""
        parametric = UncertainEngine(gaussian_objects())
        histogram = UncertainEngine(gaussian_objects("histogram"))
        for spec in query_specs(tolerance=0.0, n=5):
            p = parametric.execute(spec)
            h = histogram.execute(spec)
            assert p.answers == h.answers
            for a, b in zip(p.records, h.records):
                if a.exact is not None or b.exact is not None:
                    assert a.exact == b.exact

    def test_batch_equals_sequential(self):
        specs = query_specs()
        sequential_engine = UncertainEngine(gaussian_objects())
        sequential = [sequential_engine.execute(s) for s in specs]
        batch_engine = UncertainEngine(gaussian_objects())
        batch = batch_engine.execute_batch(specs)
        for seq, bat in zip(sequential, batch.results):
            assert seq.answers == bat.answers
            for a, b in zip(seq.records, bat.records):
                assert (a.key, a.label, a.lower, a.upper) == (
                    b.key,
                    b.label,
                    b.lower,
                    b.upper,
                )

    def test_batch_zero_histograms(self, histogram_counter):
        engine = UncertainEngine(gaussian_objects())
        engine.execute_batch(query_specs())
        assert histogram_counter["n"] == 0

    def test_escalation_settles_narrow_tolerance(self):
        """A tighter tolerance forces grid escalation; answers still
        respect the contract and the analytic path stays histogram-free
        whenever it reports finishing after verification."""
        engine = UncertainEngine(
            gaussian_objects(),
            EngineConfig(analytic_grid=8, analytic_max_grid=2048),
        )
        for spec in query_specs(tolerance=0.002, n=4):
            result = engine.execute(spec)
            for record in result.records:
                assert 0.0 <= record.lower <= record.upper <= 1.0
