"""Interpreter-exit lifecycle regressions for the process executor.

A script that builds a process-backed engine and simply *ends* —
without ``close()``, without a context manager, even SIGKILLed
mid-batch — must leave nothing behind: no orphaned spawn workers, no
``/dev/shm`` segments.  The graceful path rides the atexit/weakref net
in :mod:`repro.core.engine.executors.process`; the SIGKILL path rides
the workers' pipe-EOF exit and the creator-unlinks shared-memory
protocol (DESIGN.md §13).
"""

import glob
import os
import signal
import subprocess
import sys
import textwrap
import time

from repro.core.engine import UncertainEngine
from repro.core.types import CPNNQuery
from repro.shm import SEGMENT_PREFIX
from tests.conftest import make_random_objects

_SCRIPT_PRELUDE = textwrap.dedent(
    """
    import os
    from repro.core.engine import EngineConfig, ShardedEngine
    from repro.core.types import CPNNQuery
    from tests.conftest import make_random_objects
    import numpy as np

    rng = np.random.default_rng(20080407)
    engine = ShardedEngine(
        make_random_objects(rng, 20),
        EngineConfig(process_min_batch=0),
        n_shards=2,
        max_workers=2,
        executor="process",
    )
    specs = [CPNNQuery(float(q), threshold=0.3) for q in (8.0, 30.0, 52.0)]
    engine.execute_batch(specs)
    pids = [
        w.proc.pid for w in engine._executor._workers if w is not None
    ]
    print("WORKERS", *pids, flush=True)
    """
)


def _run_script(body: str, *, expect_exit=0) -> list[int]:
    """Run a lifecycle script in a fresh interpreter; returns the
    worker PIDs it printed."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", ".", env.get("PYTHONPATH", "")) if p
    )
    proc = subprocess.run(
        [sys.executable, "-c", _SCRIPT_PRELUDE + body],
        capture_output=True,
        text=True,
        timeout=120,
        env=env,
    )
    assert proc.returncode == expect_exit, proc.stderr
    for line in proc.stdout.splitlines():
        if line.startswith("WORKERS"):
            return [int(p) for p in line.split()[1:]]
    raise AssertionError(f"script printed no worker PIDs:\n{proc.stdout}")


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    return True


def _wait_reaped(pids: list[int], timeout_s: float = 10.0) -> list[int]:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        leftovers = [pid for pid in pids if _alive(pid)]
        if not leftovers:
            return []
        time.sleep(0.05)
    return leftovers


def leaked_segments() -> set:
    return set(glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*"))


class TestInterpreterExit:
    def test_abrupt_script_end_reaps_workers_and_segments(self):
        """The script never calls close(): the atexit net must shut the
        pool down on interpreter exit."""
        before = leaked_segments()
        pids = _run_script("")  # falls off the end, engine still open
        assert len(pids) == 2
        assert _wait_reaped(pids) == []
        assert leaked_segments() <= before

    def test_sigkill_mid_batch_leaks_nothing(self):
        """SIGKILL the host mid-dispatch — no atexit runs.  Workers must
        exit on pipe EOF and no named segment may survive (the
        coordinate segment is unlinked at attach time by design)."""
        before = leaked_segments()
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", ".", env.get("PYTHONPATH", "")) if p
        )
        body = _SCRIPT_PRELUDE + textwrap.dedent(
            """
            while True:  # grind batches until the parent kills us
                engine.execute_batch(specs)
            """
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", body],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            assert proc.stdout is not None
            line = proc.stdout.readline()
            assert line.startswith("WORKERS"), line
            pids = [int(p) for p in line.split()[1:]]
            time.sleep(0.2)  # let a few batches fly
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:  # pragma: no cover - safety net
                proc.kill()
                proc.wait(timeout=30)
        assert _wait_reaped(pids) == []
        assert leaked_segments() <= before


class TestSingleEngineContextManager:
    def test_uncertain_engine_supports_with_blocks(self, rng):
        objects = make_random_objects(rng, 10)
        with UncertainEngine(objects) as engine:
            result = engine.execute(CPNNQuery(9.0, threshold=0.3))
        assert result.records
        # close() is a no-op: the engine stays usable afterwards.
        engine.close()
        assert engine.execute(CPNNQuery(9.0, threshold=0.3)).records
