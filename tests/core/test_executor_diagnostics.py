"""Schema pinning for the executor failure counters (DESIGN.md §14).

``stats()["executor"]``, ``explain().executor``, and
``QueryResult.diagnostics`` are monitoring surfaces: dashboards and the
service layer read them by key.  These tests pin the schema — one
canonical counter set across every engine and backend — so a rename or
dropped key fails here, not in a production dashboard.
"""

import pytest

from repro.core.engine import EngineConfig, ShardedEngine, UncertainEngine
from repro.core.types import CPNNQuery
from repro.service.faults import FaultPlan, raise_error
from tests.conftest import make_random_objects

#: The pinned counter schema.  Extending is fine; renaming or removing
#: any of these is a breaking change to the monitoring surface.
CANONICAL_COUNTERS = {
    "worker_failures",
    "respawns",
    "in_process_retries",
    "timeouts",
    "worker_errors",
    "shm_fallbacks",
    "quarantined",
    "quarantine_hits",
}

REQUIRED_KEYS = CANONICAL_COUNTERS | {
    "backend",
    "configured",
    "inline_fallbacks",
    "breaker",
}


def assert_canonical(executor_stats: dict) -> None:
    missing = REQUIRED_KEYS - set(executor_stats)
    assert not missing, f"executor stats missing pinned keys: {missing}"
    for counter in CANONICAL_COUNTERS:
        assert isinstance(executor_stats[counter], int)
    assert isinstance(executor_stats["breaker"], dict)
    assert "state" in executor_stats["breaker"]


class TestStatsSchema:
    def test_single_engine_carries_the_full_schema(self, rng):
        engine = UncertainEngine(make_random_objects(rng, 8))
        stats = engine.stats()["executor"]
        assert_canonical(stats)
        assert stats["backend"] == "serial"
        assert stats["breaker"]["state"] == "disabled"
        assert all(stats[c] == 0 for c in CANONICAL_COUNTERS)

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_sharded_engine_carries_the_full_schema(self, rng, backend):
        objects = make_random_objects(rng, 12)
        with ShardedEngine(objects, n_shards=2, executor=backend) as engine:
            engine.execute_batch([CPNNQuery(10.0, threshold=0.3)])
            stats = engine.stats()["executor"]
            assert_canonical(stats)
            assert stats["configured"] == backend
            assert stats["breaker"]["state"] == "closed"

    def test_process_backend_carries_the_full_schema(self, rng):
        objects = make_random_objects(rng, 16)
        config = EngineConfig(process_min_batch=0)
        with ShardedEngine(
            objects, config, n_shards=2, max_workers=2, executor="process"
        ) as engine:
            engine.execute_batch(
                [CPNNQuery(q, threshold=0.3) for q in (6.0, 40.0)]
            )
            stats = engine.stats()["executor"]
            assert_canonical(stats)
            assert stats["backend"] == "process"
            # Pool-specific keys ride along untouched.
            for key in ("workers", "alive", "dispatches", "pending_ops"):
                assert key in stats


class TestExplainSchema:
    def test_single_engine_plan_reports_executor(self, rng):
        engine = UncertainEngine(make_random_objects(rng, 8))
        plan = engine.explain(CPNNQuery(9.0, threshold=0.3))
        assert_canonical(plan.executor)
        assert "executor" in plan.describe()

    def test_sharded_plan_reports_executor(self, rng):
        objects = make_random_objects(rng, 12)
        with ShardedEngine(objects, n_shards=2, executor="thread") as engine:
            plan = engine.explain(CPNNQuery(9.0, threshold=0.3))
            assert_canonical(plan.executor)
            assert plan.executor["backend"] == "thread"
            described = plan.describe()
            assert "breaker closed" in described


class TestResultDiagnostics:
    def test_happy_path_results_carry_no_diagnostics(self, rng):
        objects = make_random_objects(rng, 12)
        with ShardedEngine(objects, n_shards=2, executor="serial") as engine:
            result = engine.execute(CPNNQuery(9.0, threshold=0.3))
        assert result.diagnostics == {}
        assert "diagnostics" not in repr(result)

    def test_recovered_batches_stamp_diagnostics_and_repr(self, rng):
        objects = make_random_objects(rng, 12)
        plan = FaultPlan().script(
            "executor.dispatch",
            raise_error(lambda: RuntimeError("injected")),
            at=1,
            match={"backend": "thread", "kind": "pnn"},
        )
        with ShardedEngine(objects, n_shards=2, executor="thread") as engine:
            with plan:
                result = engine.execute(CPNNQuery(9.0, threshold=0.3))
        assert plan.fired
        note = result.diagnostics["executor"]
        assert note["recovered_inline"] is True
        assert note["backend"] == "serial"
        assert note["configured"] == "thread"
        assert "diagnostics=['executor']" in repr(result)
