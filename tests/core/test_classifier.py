"""Tests for the classifier — the four cases of Figure 4.

The paper's example: threshold P = 0.8, tolerance Δ = 0.15.
"""

import numpy as np
import pytest

from repro.core.bounds import ProbabilityBound
from repro.core.classifier import classify, classify_arrays, label_from_code
from repro.core.types import Label

P, DELTA = 0.8, 0.15


class TestFigureFourCases:
    def test_case_a_lower_above_threshold(self):
        # [0.80, 0.96]: p_j can never be below P -> satisfy.
        assert classify(ProbabilityBound(0.80, 0.96), P, DELTA) is Label.SATISFY

    def test_case_b_narrow_band_crossing_threshold(self):
        # [0.75, 0.85]: u >= P and width 0.10 <= Δ -> satisfy.
        assert classify(ProbabilityBound(0.75, 0.85), P, DELTA) is Label.SATISFY

    def test_case_c_upper_below_threshold(self):
        # [0.70, 0.78]: u < P -> fail.
        assert classify(ProbabilityBound(0.70, 0.78), P, DELTA) is Label.FAIL

    def test_case_d_wide_band(self):
        # [0.65, 0.85]: u >= P but l < P and width 0.20 > Δ -> unknown.
        assert classify(ProbabilityBound(0.65, 0.85), P, DELTA) is Label.UNKNOWN

    def test_case_d_after_bound_shrinks(self):
        # The paper: "if p_j.l is later updated to 0.81, X_j will be
        # the answer".
        assert classify(ProbabilityBound(0.81, 0.85), P, DELTA) is Label.SATISFY


class TestBoundarySemantics:
    def test_upper_exactly_at_threshold_can_satisfy(self):
        assert classify(ProbabilityBound(0.8, 0.8), P, 0.0) is Label.SATISFY

    def test_width_exactly_tolerance_satisfies(self):
        # Exactly representable values so width == tolerance precisely.
        bound = ProbabilityBound(0.75, 0.875)
        assert classify(bound, 0.8, 0.125) is Label.SATISFY

    def test_zero_tolerance_requires_lower_at_threshold(self):
        assert classify(ProbabilityBound(0.79, 0.95), P, 0.0) is Label.UNKNOWN
        assert classify(ProbabilityBound(0.80, 0.95), P, 0.0) is Label.SATISFY

    def test_trivial_bound_is_unknown(self):
        assert classify(ProbabilityBound.trivial(), 0.3, 0.01) is Label.UNKNOWN

    def test_trivial_bound_with_full_tolerance_satisfies(self):
        # Δ = 1 accepts anything whose upper bound clears P.
        assert classify(ProbabilityBound.trivial(), 0.3, 1.0) is Label.SATISFY


class TestVectorised:
    def test_matches_scalar(self, rng):
        lowers = rng.uniform(0, 1, 200)
        uppers = np.clip(lowers + rng.uniform(0, 0.5, 200), 0, 1)
        codes = classify_arrays(lowers, uppers, P, DELTA)
        for lo, hi, code in zip(lowers, uppers, codes):
            assert label_from_code(code) is classify(
                ProbabilityBound(lo, hi), P, DELTA
            )

    def test_codes(self):
        codes = classify_arrays(
            np.asarray([0.9, 0.0, 0.0]),
            np.asarray([1.0, 0.5, 1.0]),
            P,
            DELTA,
        )
        assert [label_from_code(c) for c in codes] == [
            Label.SATISFY,
            Label.FAIL,
            Label.UNKNOWN,
        ]
