"""Tests for RS, L-SR, U-SR and the chained framework (Section IV)."""

import numpy as np
import pytest

from repro.core.refinement import Refiner
from repro.core.state import CandidateStates
from repro.core.subregions import SubregionTable
from repro.core.types import CPNNQuery, Label
from repro.core.verifiers import (
    LowerSubregionVerifier,
    RightmostSubregionVerifier,
    UpperSubregionVerifier,
    VerifierChain,
    default_chain,
)
from repro.core.verifiers.base import BoundUpdate
from tests.conftest import make_random_objects, two_object_textbook_case


def table_for(objects, q):
    return SubregionTable([o.distance_distribution(q) for o in objects])


@pytest.fixture
def textbook_table():
    objects, q = two_object_textbook_case()
    return table_for(objects, q)


class TestRSVerifier:
    def test_textbook_upper_bounds(self, textbook_table):
        update = RightmostSubregionVerifier().compute(textbook_table)
        assert update.lower is None
        assert np.allclose(update.upper, [1.0, 0.5])

    def test_upper_is_cdf_at_fmin(self, rng):
        objects = make_random_objects(rng, 10)
        table = table_for(objects, 30.0)
        update = RightmostSubregionVerifier().compute(table)
        for i, dist in enumerate(table.distributions):
            assert update.upper[i] == pytest.approx(float(dist.cdf(table.fmin)))


class TestLSRVerifier:
    def test_textbook_lower_bounds(self, textbook_table):
        update = LowerSubregionVerifier().compute(textbook_table)
        assert update.upper is None
        # p_A.l = 0.5*1 + 0.5*0.5 ; p_B.l = 0.5*0.25
        assert np.allclose(update.lower, [0.75, 0.125])

    def test_single_candidate_gets_probability_one(self):
        from repro.uncertainty.objects import UncertainObject

        table = table_for([UncertainObject.uniform("x", 1, 3)], 0.0)
        update = LowerSubregionVerifier().compute(table)
        assert update.lower[0] == pytest.approx(1.0)


class TestUSRVerifier:
    def test_textbook_upper_bounds(self, textbook_table):
        update = UpperSubregionVerifier().compute(textbook_table)
        # p_A.u = 0.5*1 + 0.5*0.75 ; p_B.u = 0.5*0.25
        assert np.allclose(update.upper, [0.875, 0.125])

    def test_tighter_than_rs_on_average(self, rng):
        # U-SR refines RS: Σ s_ij q_ij.u <= Σ s_ij = 1 - s_iM.
        for _ in range(5):
            objects = make_random_objects(rng, 12)
            table = table_for(objects, float(rng.uniform(0, 60)))
            rs_u = RightmostSubregionVerifier().compute(table).upper
            usr_u = UpperSubregionVerifier().compute(table).upper
            assert np.all(usr_u <= rs_u + 1e-9)


class TestSoundness:
    """Every verifier bound must contain the exact probability."""

    def test_bounds_contain_exact(self, rng):
        for _ in range(15):
            n = int(rng.integers(2, 14))
            objects = make_random_objects(rng, n)
            q = float(rng.uniform(-5, 65))
            table = table_for(objects, q)
            exact = Refiner(table).exact_all()
            assert exact.sum() == pytest.approx(1.0, abs=1e-9)
            rs = RightmostSubregionVerifier().compute(table)
            lsr = LowerSubregionVerifier().compute(table)
            usr = UpperSubregionVerifier().compute(table)
            assert np.all(exact <= rs.upper + 1e-9)
            assert np.all(exact >= lsr.lower - 1e-9)
            assert np.all(exact <= usr.upper + 1e-9)


class TestBoundUpdate:
    def test_requires_at_least_one_side(self):
        with pytest.raises(ValueError):
            BoundUpdate()


class TestVerifierChain:
    def test_orders_by_cost_rank(self):
        chain = VerifierChain(
            [
                UpperSubregionVerifier(),
                RightmostSubregionVerifier(),
                LowerSubregionVerifier(),
            ]
        )
        assert [v.name for v in chain.verifiers] == ["RS", "L-SR", "U-SR"]

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            VerifierChain([])

    def test_early_termination(self, textbook_table):
        # With P = 0.3 and Δ = 0.2, RS + L-SR settle both objects:
        # A: [0.75, 1.0] -> satisfy; B: [0.125, 0.5]... B needs U-SR.
        states = CandidateStates(textbook_table.keys)
        chain = default_chain()
        outcome = chain.run(textbook_table, states, CPNNQuery(0.0, 0.3, 0.2))
        assert outcome.unknown_after["RS"] <= 1.0
        assert states.n_unknown == 0
        assert outcome.finished

    def test_unknown_fractions_monotone(self, rng):
        objects = make_random_objects(rng, 15)
        table = table_for(objects, 30.0)
        states = CandidateStates(table.keys)
        outcome = default_chain().run(table, states, CPNNQuery(30.0, 0.3, 0.01))
        fractions = [outcome.unknown_after[name] for name in outcome.executed]
        assert all(a >= b - 1e-12 for a, b in zip(fractions, fractions[1:]))

    def test_chain_labels_match_definition(self, textbook_table):
        states = CandidateStates(textbook_table.keys)
        default_chain().run(textbook_table, states, CPNNQuery(0.0, 0.3, 0.0))
        # Exact probabilities are A: 0.875, B: 0.125; the verifier
        # bounds here are tight enough to classify both at Δ=0? A's
        # lower bound 0.75 >= 0.3 -> satisfy. B's upper 0.125 < 0.3 -> fail.
        assert states.label_of(0) is Label.SATISFY
        assert states.label_of(1) is Label.FAIL
