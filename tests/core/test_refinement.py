"""Tests for exact and incremental refinement (Section IV-D)."""

import numpy as np
import pytest

from repro.baselines.montecarlo import monte_carlo_pnn_probabilities
from repro.core.refinement import Refiner
from repro.core.state import CandidateStates
from repro.core.subregions import SubregionTable
from repro.core.types import CPNNQuery, Label
from tests.conftest import make_random_objects, two_object_textbook_case


def build(objects, q, **kwargs):
    table = SubregionTable([o.distance_distribution(q) for o in objects])
    return table, Refiner(table, **kwargs)


class TestExactProbabilities:
    def test_textbook_exact_values(self):
        objects, q = two_object_textbook_case()
        table, refiner = build(objects, q)
        exact = refiner.exact_all()
        assert exact[table.index_of("A")] == pytest.approx(0.875)
        assert exact[table.index_of("B")] == pytest.approx(0.125)

    def test_exact_probability_matches_exact_all(self, rng):
        objects = make_random_objects(rng, 9)
        table, refiner = build(objects, 30.0)
        all_probs = refiner.exact_all()
        fresh = Refiner(table)
        for i in range(table.size):
            assert fresh.exact_probability(i) == pytest.approx(
                all_probs[i], abs=1e-12
            )

    def test_per_subregion_probabilities_sum(self, rng):
        objects = make_random_objects(rng, 7)
        table, refiner = build(objects, 30.0)
        for i in range(table.size):
            total = sum(
                refiner.exact_subregion_probability(i, j)
                for j in range(table.n_inner)
            )
            assert total == pytest.approx(refiner.exact_probability(i), abs=1e-12)

    def test_probabilities_sum_to_one(self, rng):
        for _ in range(8):
            objects = make_random_objects(rng, int(rng.integers(2, 12)))
            _, refiner = build(objects, float(rng.uniform(0, 60)))
            assert refiner.exact_all().sum() == pytest.approx(1.0, abs=1e-9)

    def test_agrees_with_monte_carlo(self, rng):
        objects = make_random_objects(rng, 8, families=("uniform", "gaussian"))
        q = 30.0
        table, refiner = build(objects, q)
        exact = refiner.exact_all()
        mc = monte_carlo_pnn_probabilities(objects, q, trials=150_000, rng=rng)
        for i, dist in enumerate(table.distributions):
            assert exact[i] == pytest.approx(mc[dist.key], abs=8e-3)

    def test_quadrature_margin_changes_nothing(self, rng):
        objects = make_random_objects(rng, 8)
        _, r1 = build(objects, 25.0, quadrature_margin=1)
        _, r2 = build(objects, 25.0, quadrature_margin=6)
        assert np.allclose(r1.exact_all(), r2.exact_all(), atol=1e-12)

    def test_subregion_cache_reused(self, rng):
        objects = make_random_objects(rng, 6)
        table, refiner = build(objects, 30.0)
        refiner.exact_all()
        evaluated = refiner.subregions_evaluated
        refiner.exact_all()
        assert refiner.subregions_evaluated == evaluated  # no rebuilds


class TestIncrementalRefinement:
    def test_refines_until_classified(self):
        objects, q = two_object_textbook_case()
        table, refiner = build(objects, q)
        states = CandidateStates(table.keys)
        query = CPNNQuery(q, threshold=0.5, tolerance=0.0)
        for i in range(table.size):
            refiner.refine_object(i, states, query, use_verifier_slices=False)
        assert states.label_of(table.index_of("A")) is Label.SATISFY
        assert states.label_of(table.index_of("B")) is Label.FAIL

    def test_final_bounds_contain_exact(self, rng):
        for _ in range(6):
            objects = make_random_objects(rng, int(rng.integers(3, 10)))
            q = float(rng.uniform(0, 60))
            table, refiner = build(objects, q)
            exact = Refiner(table).exact_all()
            states = CandidateStates(table.keys)
            query = CPNNQuery(q, threshold=0.4, tolerance=0.02)
            for i in range(table.size):
                refiner.refine_object(i, states, query, use_verifier_slices=False)
                assert states.lower[i] - 1e-9 <= exact[i] <= states.upper[i] + 1e-9

    def test_verifier_slices_reduce_work(self, rng):
        objects = make_random_objects(rng, 12, families=("uniform",))
        q = 30.0
        query = CPNNQuery(q, threshold=0.3, tolerance=0.01)
        table, with_slices = build(objects, q)
        states_a = CandidateStates(table.keys)
        work_with = sum(
            with_slices.refine_object(i, states_a, query, use_verifier_slices=True)
            for i in range(table.size)
        )
        _, without_slices = build(objects, q)
        states_b = CandidateStates(table.keys)
        work_without = sum(
            without_slices.refine_object(i, states_b, query, use_verifier_slices=False)
            for i in range(table.size)
        )
        assert work_with <= work_without

    def test_orders_agree_on_labels(self, rng):
        objects = make_random_objects(rng, 10)
        q = 30.0
        query = CPNNQuery(q, threshold=0.3, tolerance=0.0)
        labels = {}
        for order in ("widest", "left"):
            table, refiner = build(objects, q, order=order)
            states = CandidateStates(table.keys)
            for i in range(table.size):
                refiner.refine_object(i, states, query, use_verifier_slices=False)
            labels[order] = list(states.labels)
        assert labels["widest"] == labels["left"]

    def test_invalid_order_rejected(self, rng):
        objects = make_random_objects(rng, 3)
        table = SubregionTable([o.distance_distribution(0.0) for o in objects])
        with pytest.raises(ValueError):
            Refiner(table, order="random")

    def test_zero_tolerance_at_threshold_resolved_exactly(self):
        # Engineered so an object's probability sits exactly at P:
        # two identical objects, each with probability 0.5.
        from repro.uncertainty.objects import UncertainObject

        objects = [
            UncertainObject.uniform("A", 0.0, 2.0),
            UncertainObject.uniform("B", 0.0, 2.0),
        ]
        table, refiner = build(objects, 0.0)
        states = CandidateStates(table.keys)
        query = CPNNQuery(0.0, threshold=0.5, tolerance=0.0)
        for i in range(table.size):
            refiner.refine_object(i, states, query, use_verifier_slices=False)
        assert all(states.label_of(i) is Label.SATISFY for i in range(2))
