"""The k-NN and range legs of the parametric fast path.

When every candidate has a closed-form distance law
(``parametric_distance``), range queries evaluate ``cdf(radius)``
analytically — zero histogram constructions — and k-NN tries one
analytic bound sweep, settling entirely without histograms when the
bounds decide every survivor and falling back to the
histogram-certified pipeline otherwise.  Either way the answers must
match the fast-path-disabled engine exactly, and mixed candidate sets
(parametric + histogram objects) keep the histogram route.
"""

import numpy as np
import pytest

from repro.core.engine import EngineConfig, UncertainEngine
from repro.core.types import CKNNQuery, CRangeQuery
from repro.uncertainty.histogram import Histogram
from repro.uncertainty.objects import UncertainObject
from repro.uncertainty.parametric import GaussianObject

N_OBJECTS = 40
DOMAIN = (0.0, 200.0)


def gaussian_objects(seed=7):
    rng = np.random.default_rng(seed)
    objects = []
    for i in range(N_OBJECTS):
        mu = float(rng.uniform(*DOMAIN))
        width = float(rng.uniform(3.0, 12.0))
        objects.append(
            GaussianObject(i, mu - width / 2.0, mu + width / 2.0, bars=48)
        )
    return objects


def knn_specs():
    rng = np.random.default_rng(41)
    return [
        CKNNQuery(float(q), k=1 + i % 4, threshold=0.2 + 0.15 * (i % 4))
        for i, q in enumerate(rng.uniform(*DOMAIN, 8))
    ]


def range_specs():
    rng = np.random.default_rng(42)
    return [
        CRangeQuery(float(q), radius=2.0 + 3.0 * (i % 3), threshold=0.3)
        for i, q in enumerate(rng.uniform(*DOMAIN, 8))
    ]


@pytest.fixture
def histogram_counter(monkeypatch):
    counts = {"n": 0}
    original_init = Histogram.__init__

    def counting_init(self, *args, **kwargs):
        counts["n"] += 1
        original_init(self, *args, **kwargs)

    monkeypatch.setattr(Histogram, "__init__", counting_init)
    return counts


def assert_same_results(got, want):
    assert got.answers == want.answers
    assert len(got.records) == len(want.records)
    for x, y in zip(got.records, want.records):
        assert x.key == y.key and x.label == y.label


class TestRangeLeg:
    def test_zero_histogram_constructions(self, histogram_counter):
        engine = UncertainEngine(gaussian_objects())
        evaluated = 0
        for spec in range_specs():
            result = engine.execute(spec)
            evaluated += result.refined_objects
        assert evaluated > 0, "specs must exercise the straddling tier"
        assert histogram_counter["n"] == 0

    def test_matches_histogram_route(self):
        fast = UncertainEngine(gaussian_objects())
        slow = UncertainEngine(
            gaussian_objects(), EngineConfig(parametric_fast_path=False)
        )
        for spec in range_specs():
            assert_same_results(fast.execute(spec), slow.execute(spec))

    def test_probabilities_are_exact_model_cdf(self):
        objects = gaussian_objects()
        engine = UncertainEngine(objects)
        spec = CRangeQuery(100.0, radius=6.0, threshold=0.3)
        result = engine.execute(spec)
        for record in result.records:
            if record.exact is None:
                continue  # MBR-decided
            law = objects[record.key].parametric_distance(100.0)
            assert record.exact == float(law.cdf(6.0))

    def test_mixed_candidates_fall_back(self, histogram_counter):
        objects = gaussian_objects()
        # Drop a histogram-only object into the thick of the domain so
        # some straddler sets mix representations.
        objects.append(UncertainObject.uniform("hist", 95.0, 105.0))
        engine = UncertainEngine(objects)
        engine.execute(CRangeQuery(100.0, radius=6.0, threshold=0.3))
        assert histogram_counter["n"] > 0, "mixed sets take the histogram route"

    def test_deterministic_across_repeats(self):
        engine = UncertainEngine(gaussian_objects())
        for spec in range_specs():
            first = engine.execute(spec)
            second = engine.execute(spec)
            assert first.answers == second.answers
            assert [(r.lower, r.upper, r.exact) for r in first.records] == [
                (r.lower, r.upper, r.exact) for r in second.records
            ]


class TestKnnLeg:
    def test_answers_match_histogram_route(self):
        fast = UncertainEngine(gaussian_objects())
        slow = UncertainEngine(
            gaussian_objects(), EngineConfig(parametric_fast_path=False)
        )
        for spec in knn_specs():
            got = fast.execute(spec)
            want = slow.execute(spec)
            assert got.answers == want.answers
            assert got.fmin == want.fmin

    def test_clear_threshold_settles_without_histograms(self, histogram_counter):
        # Spread clusters far apart: the nearest object's upper bound
        # and everyone else's lower bound separate decisively, so the
        # analytic sweep settles without any histogram.
        objects = [GaussianObject(i, 30.0 * i, 30.0 * i + 2.0) for i in range(8)]
        engine = UncertainEngine(objects)
        result = engine.execute(CKNNQuery(31.0, k=1, threshold=0.5))
        assert result.answers == (1,)
        assert result.finished_after_verification
        assert result.refined_objects == 0
        assert histogram_counter["n"] == 0

    def test_undecided_survivors_fall_back_soundly(self):
        # Overlapping objects at a threshold the bounds cannot decide:
        # the fallback (histogram) tier must produce the same answer as
        # the fast-path-disabled engine.
        objects = [GaussianObject(i, 10.0 + i, 16.0 + i) for i in range(6)]
        fast = UncertainEngine(list(objects))
        slow = UncertainEngine(
            list(objects), EngineConfig(parametric_fast_path=False)
        )
        spec = CKNNQuery(13.0, k=2, threshold=0.5)
        assert fast.execute(spec).answers == slow.execute(spec).answers

    def test_trivial_k_geq_n_unaffected(self):
        objects = gaussian_objects()[:3]
        engine = UncertainEngine(objects)
        result = engine.execute(CKNNQuery(50.0, k=10, threshold=0.3))
        assert set(result.answers) == {0, 1, 2}

    def test_batch_equals_sequential(self):
        engine = UncertainEngine(gaussian_objects())
        specs = knn_specs() + range_specs()
        batch = engine.execute_batch(specs)
        fresh = UncertainEngine(gaussian_objects())
        for spec, result in zip(specs, batch.results):
            assert_same_results(result, fresh.execute(spec))

    def test_fast_path_disabled_by_config(self, histogram_counter):
        engine = UncertainEngine(
            gaussian_objects(), EngineConfig(parametric_fast_path=False)
        )
        result = engine.execute(CKNNQuery(100.0, k=2, threshold=0.4))
        assert result.records
        assert histogram_counter["n"] > 0
