"""Tests for probability bounds."""

import pytest

from repro.core.bounds import ProbabilityBound


class TestConstruction:
    def test_trivial(self):
        b = ProbabilityBound.trivial()
        assert (b.lower, b.upper) == (0.0, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ProbabilityBound(0.5, 0.4)
        with pytest.raises(ValueError):
            ProbabilityBound(-0.1, 0.5)
        with pytest.raises(ValueError):
            ProbabilityBound(0.1, 1.5)

    def test_padded_clamps(self):
        b = ProbabilityBound.padded(0.0, 1.0, pad=0.1)
        assert (b.lower, b.upper) == (0.0, 1.0)
        b = ProbabilityBound.padded(0.5, 0.5, pad=0.01)
        assert b.lower == pytest.approx(0.49)
        assert b.upper == pytest.approx(0.51)

    def test_exact(self):
        b = ProbabilityBound.exact(0.3, pad=1e-12)
        assert b.contains(0.3)
        assert b.width <= 2.1e-12


class TestOperations:
    def test_width_and_contains(self):
        b = ProbabilityBound(0.2, 0.7)
        assert b.width == pytest.approx(0.5)
        assert b.contains(0.2) and b.contains(0.7)
        assert not b.contains(0.71)
        assert b.contains(0.71, slack=0.02)

    def test_tighten_intersects(self):
        a = ProbabilityBound(0.1, 0.8)
        b = ProbabilityBound(0.3, 0.9)
        t = a.tighten(b)
        assert (t.lower, t.upper) == (0.3, 0.8)

    def test_tighten_never_widens(self):
        tight = ProbabilityBound(0.4, 0.5)
        loose = ProbabilityBound(0.0, 1.0)
        assert tight.tighten(loose) == tight

    def test_tighten_hairline_crossing_collapses(self):
        a = ProbabilityBound(0.5, 0.5 + 1e-9)
        b = ProbabilityBound(0.5 + 2e-9, 0.8)
        t = a.tighten(b)
        assert t.lower == pytest.approx(t.upper)

    def test_tighten_material_conflict_raises(self):
        with pytest.raises(ValueError):
            ProbabilityBound(0.0, 0.2).tighten(ProbabilityBound(0.5, 0.9))
