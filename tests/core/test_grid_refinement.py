"""Tests for the grid-refinement extension (finer subregion grids)."""

import numpy as np
import pytest

from repro.core.engine import CPNNEngine, EngineConfig
from repro.core.refinement import Refiner
from repro.core.subregions import SubregionTable
from repro.core.verifiers import (
    LowerSubregionVerifier,
    RightmostSubregionVerifier,
    UpperSubregionVerifier,
)
from tests.conftest import make_random_objects, two_object_textbook_case

# This module exercises the pre-facade entry points on purpose: it is
# the regression suite for the deprecation shims (DESIGN.md §7).
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def tables(objects, q, grids=(1, 2, 4)):
    dists = [o.distance_distribution(q) for o in objects]
    return {g: SubregionTable(dists, grid_refinement=g) for g in grids}


class TestGridStructure:
    def test_edges_multiply(self):
        objects, q = two_object_textbook_case()
        t = tables(objects, q)
        assert t[2].n_inner == 2 * t[1].n_inner
        assert t[4].n_inner == 4 * t[1].n_inner

    def test_endpoints_preserved(self):
        objects, q = two_object_textbook_case()
        t = tables(objects, q)
        for edge in t[1].edges:
            assert np.min(np.abs(t[4].edges - edge)) < 1e-12

    def test_mass_partition_still_holds(self, rng):
        objects = make_random_objects(rng, 8)
        for table in tables(objects, 30.0).values():
            totals = table.s_inner.sum(axis=1) + table.s_right
            assert np.allclose(totals, 1.0, atol=1e-9)

    def test_invalid_refinement_rejected(self, rng):
        objects = make_random_objects(rng, 3)
        dists = [o.distance_distribution(0.0) for o in objects]
        with pytest.raises(ValueError):
            SubregionTable(dists, grid_refinement=0)


class TestSoundnessUnderRefinement:
    def test_bounds_still_contain_exact(self, rng):
        for _ in range(6):
            objects = make_random_objects(rng, int(rng.integers(3, 10)))
            q = float(rng.uniform(0, 60))
            for g, table in tables(objects, q, grids=(2, 3, 5)).items():
                exact = Refiner(table).exact_all()
                rs = RightmostSubregionVerifier().compute(table)
                lsr = LowerSubregionVerifier().compute(table)
                usr = UpperSubregionVerifier().compute(table)
                assert np.all(exact <= rs.upper + 1e-9), f"g={g}"
                assert np.all(lsr.lower - 1e-9 <= exact), f"g={g}"
                assert np.all(exact <= usr.upper + 1e-9), f"g={g}"

    def test_exact_probability_invariant_to_grid(self, rng):
        objects = make_random_objects(rng, 8)
        q = 30.0
        results = [
            Refiner(table).exact_all() for table in tables(objects, q).values()
        ]
        assert np.allclose(results[0], results[1], atol=1e-10)
        assert np.allclose(results[0], results[2], atol=1e-10)

    def test_usr_converges_to_exact(self):
        # Three fully-overlapping objects: exact p = 1/3 each, but the
        # coarse U-SR bound is 1/2 (one subregion, worst case m = 1).
        from repro.uncertainty.objects import UncertainObject

        objects = [UncertainObject.uniform(i, 0.0, 2.0) for i in range(3)]
        dists = [o.distance_distribution(0.0) for o in objects]
        exact = Refiner(SubregionTable(dists)).exact_all()
        assert np.allclose(exact, 1.0 / 3.0)
        gaps = []
        for g in (1, 16, 64):
            table = SubregionTable(dists, grid_refinement=g)
            upper = UpperSubregionVerifier().compute(table).upper
            gaps.append(float(np.max(upper - exact)))
        assert gaps[0] == pytest.approx(0.5 - 1.0 / 3.0, abs=1e-9)
        assert gaps[1] < gaps[0]
        assert gaps[2] < gaps[1]
        assert gaps[2] < 0.02


class TestEngineIntegration:
    def test_answers_invariant_to_grid(self, rng):
        objects = make_random_objects(rng, 15)
        q = 30.0
        baseline = None
        for g in (1, 2, 4):
            engine = CPNNEngine(objects, EngineConfig(grid_refinement=g))
            answers = set(engine.query(q, tolerance=0.0).answers)
            if baseline is None:
                baseline = answers
            assert answers == baseline

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(grid_refinement=0)
