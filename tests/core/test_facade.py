"""Unit tests for the unified query façade.

``UncertainEngine.execute`` / ``execute_batch`` / ``explain`` over the
typed spec hierarchy, the ``pipeline`` verifier-chain hook, the
uniform empty-input semantics, and the deprecation shims.
"""

import numpy as np
import pytest

from repro.core.engine import CPNNEngine, EngineConfig, Strategy, UncertainEngine
from repro.core.knn import CKNNEngine
from repro.core.range_query import constrained_range_query
from repro.core.types import (
    CKNNQuery,
    CPNNQuery,
    CRangeQuery,
    Label,
    QueryPlan,
    QueryResult,
    QuerySpec,
)
from repro.core.verifiers import RightmostSubregionVerifier, VerifierChain
from repro.uncertainty.objects import UncertainObject
from tests.conftest import make_random_objects


def records_tuple(result):
    return [
        (r.key, r.label, r.lower, r.upper, r.exact) for r in result.records
    ]


class TestSpecHierarchy:
    def test_common_base(self):
        assert issubclass(CPNNQuery, QuerySpec)
        assert issubclass(CKNNQuery, QuerySpec)
        assert issubclass(CRangeQuery, QuerySpec)

    def test_defaults(self):
        assert CPNNQuery(1.0).threshold == 0.3
        assert CPNNQuery(1.0).tolerance == 0.01
        # k-NN / range answers are exact, so their tolerance defaults to 0.
        assert CKNNQuery(1.0, k=2).tolerance == 0.0
        assert CRangeQuery(1.0, radius=1.0).tolerance == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CPNNQuery(1.0, threshold=0.0)
        with pytest.raises(ValueError):
            CPNNQuery(1.0, tolerance=1.5)
        with pytest.raises(ValueError):
            CKNNQuery(1.0, k=0)
        with pytest.raises(ValueError):
            CKNNQuery(1.0, k=1.5)
        with pytest.raises(ValueError):
            CRangeQuery(1.0, radius=-0.1)

    def test_k_and_radius_are_keyword_only(self):
        with pytest.raises(TypeError):
            CKNNQuery(1.0, 0.3, 0.0, 2)  # noqa: too many positional args


class TestExecuteDispatch:
    def test_each_family_returns_query_result(self, rng):
        engine = UncertainEngine(make_random_objects(rng, 8))
        for spec in (
            CPNNQuery(30.0, 0.3, 0.0),
            CKNNQuery(30.0, threshold=0.3, k=2),
            CRangeQuery(30.0, threshold=0.3, radius=5.0),
        ):
            result = engine.execute(spec)
            assert isinstance(result, QueryResult)
            assert result.spec is spec
            assert result.timings.total >= 0.0

    def test_bare_point_becomes_default_cpnn(self, rng):
        engine = UncertainEngine(make_random_objects(rng, 6))
        result = engine.execute(30.0)
        assert isinstance(result.spec, CPNNQuery)
        assert result.spec.threshold == 0.3

    def test_strategy_override(self, rng):
        engine = UncertainEngine(make_random_objects(rng, 8))
        spec = CPNNQuery(30.0, 0.3, 0.0)
        vr = engine.execute(spec, strategy=Strategy.VR)
        basic = engine.execute(spec, strategy=Strategy.BASIC)
        assert set(vr.answers) == set(basic.answers)
        assert basic.refined_objects == len(basic.records)
        with pytest.raises(ValueError):
            engine.execute(spec, strategy="nope")
        # Typos are rejected for every spec family and batch shape.
        with pytest.raises(ValueError):
            engine.execute(CKNNQuery(30.0, k=2), strategy="nope")
        with pytest.raises(ValueError):
            engine.execute_batch([CKNNQuery(30.0, k=2)], strategy="nope")

    def test_legacy_query_rejects_other_spec_types(self, rng):
        engine = UncertainEngine(make_random_objects(rng, 4))
        with pytest.raises(TypeError):
            with pytest.warns(DeprecationWarning):
                engine.query(CKNNQuery(1.0, k=2))

    def test_knn_covers_everything(self, rng):
        objects = make_random_objects(rng, 4)
        engine = UncertainEngine(objects)
        result = engine.execute(CKNNQuery(0.0, threshold=0.5, k=10))
        assert set(result.answers) == {o.key for o in objects}
        assert all(r.exact == 1.0 for r in result.records)

    def test_mixed_batch_preserves_input_order(self, rng):
        engine = UncertainEngine(make_random_objects(rng, 10))
        specs = [
            CKNNQuery(10.0, threshold=0.2, k=2),
            CPNNQuery(20.0, 0.3, 0.0),
            CRangeQuery(30.0, threshold=0.5, radius=4.0),
            CPNNQuery(40.0, 0.3, 0.0),
            CKNNQuery(50.0, threshold=0.2, k=1),
        ]
        batch = engine.execute_batch(specs)
        assert len(batch) == len(specs)
        for spec, result in zip(specs, batch):
            assert result.spec is spec
            loop = engine.execute(spec)
            assert result.answers == loop.answers
            assert records_tuple(result) == records_tuple(loop)

    def test_knn_cache_counters(self, rng):
        engine = UncertainEngine(make_random_objects(rng, 10))
        spec = CKNNQuery(30.0, threshold=0.3, k=2)
        first = engine.execute(spec)
        assert first.cache_misses > 0
        second = engine.execute(spec)
        assert second.cache_hits == first.cache_misses
        assert second.cache_misses == 0


class TestKnnOutOfRange:
    """k validation fires at spec construction; k > N resolves to the
    trivial all-satisfy case at the engine *before any work starts* —
    never as a mid-batch failure from inside the filtering kernels."""

    def test_bad_k_rejected_at_construction(self):
        for bad in (0, -3, 2.5, True):
            with pytest.raises(ValueError, match="k must be an integer"):
                CKNNQuery(1.0, k=bad)

    def test_whole_float_k_normalised(self):
        spec = CKNNQuery(1.0, k=3.0)
        assert spec.k == 3 and isinstance(spec.k, int)

    def test_k_exceeding_engine_size_in_mixed_batch(self, rng):
        """A k > N spec mid-batch must not disturb its neighbours and
        must cost nothing (no filtering, no distributions)."""
        objects = make_random_objects(rng, 5)
        engine = UncertainEngine(objects)
        specs = [
            CRangeQuery(10.0, threshold=0.5, radius=4.0),
            CKNNQuery(30.0, threshold=0.2, k=99),
            CPNNQuery(20.0, 0.3, 0.0),
        ]
        batch = engine.execute_batch(specs)
        assert len(batch) == 3
        trivial = batch[1]
        assert set(trivial.answers) == {o.key for o in objects}
        assert all(r.exact == 1.0 for r in trivial.records)
        assert trivial.cache_misses == 0  # no distribution was built
        for spec, result in zip(specs, batch):
            loop = engine.execute(spec)
            assert result.answers == loop.answers
            assert records_tuple(result) == records_tuple(loop)

    def test_trivial_k_after_shrinking_engine(self, rng):
        """k valid at construction may exceed N after removals; the
        engine still resolves it as the trivial case, never an error."""
        objects = make_random_objects(rng, 4)
        engine = UncertainEngine(objects)
        spec = CKNNQuery(30.0, threshold=0.2, k=3)
        engine.execute(spec)
        for obj in objects[:2]:
            assert engine.remove(obj.key)
        result = engine.execute(spec)
        assert set(result.answers) == {o.key for o in engine.objects}

    def test_explain_reports_trivial_case(self, rng):
        engine = UncertainEngine(make_random_objects(rng, 3))
        plan = engine.explain(CKNNQuery(1.0, k=10))
        assert plan.candidates == 3
        assert "every object qualifies" in plan.stages[0]


class TestKnnRoutedEdgeCases:
    """Deterministic shapes the random property tests rarely hit."""

    @pytest.mark.filterwarnings("ignore::DeprecationWarning")
    def test_exactly_k_survivors_matches_scalar(self):
        # Three tight objects near q, five far away: the f_min^k filter
        # keeps exactly k = 3 survivors, exercising the lower-bound
        # collapse branch (the scalar path's cut lies beyond f_min^k).
        objects = [
            UncertainObject.uniform("a", 0.0, 1.0),
            UncertainObject.uniform("b", 0.2, 1.1),
            UncertainObject.uniform("c", 0.1, 0.9),
        ] + [
            UncertainObject.uniform(f"far-{i}", 50.0 + 2 * i, 51.0 + 2 * i)
            for i in range(5)
        ]
        engine = UncertainEngine(objects)
        for threshold in (0.1, 0.5, 0.9, 1.0):
            for k in (1, 2, 3, 4):
                result = engine.execute(CKNNQuery(0.5, threshold=threshold, k=k))
                answers, records = CKNNEngine(objects, k=k).query(
                    0.5, threshold=threshold
                )
                assert result.answers == answers, (threshold, k)
                assert records_tuple(result) == [
                    (r.key, r.label, r.lower, r.upper, r.exact) for r in records
                ], (threshold, k)

    @pytest.mark.filterwarnings("ignore::DeprecationWarning")
    def test_duplicate_near_points_match_scalar(self):
        # Ties in the sorted near-point list exercise the
        # first-occurrence (list.index) replay in the routed bounds.
        objects = [
            UncertainObject.uniform("t1", 0.0, 1.0),
            UncertainObject.uniform("t2", 0.0, 1.0),
            UncertainObject.uniform("t3", 0.0, 2.0),
            UncertainObject.uniform("t4", 5.0, 6.0),
        ]
        engine = UncertainEngine(objects)
        for threshold in (0.2, 0.6):
            for k in (1, 2, 3):
                result = engine.execute(CKNNQuery(0.0, threshold=threshold, k=k))
                answers, records = CKNNEngine(objects, k=k).query(
                    0.0, threshold=threshold
                )
                assert result.answers == answers, (threshold, k)
                assert records_tuple(result) == [
                    (r.key, r.label, r.lower, r.upper, r.exact) for r in records
                ], (threshold, k)


class TestEmptyInputs:
    """Satellite regression: empty datasets/batches return empty results
    uniformly across the façade, while the legacy entry points keep
    their raising behaviour."""

    def test_empty_engine_executes_all_families(self):
        engine = UncertainEngine([])
        for spec in (
            CPNNQuery(1.0),
            CKNNQuery(1.0, k=3),
            CRangeQuery(1.0, radius=2.0),
        ):
            result = engine.execute(spec)
            assert result.answers == ()
            assert result.records == []
            assert result.spec is spec

    def test_empty_engine_execute_batch(self):
        engine = UncertainEngine([])
        batch = engine.execute_batch(
            [CPNNQuery(1.0), CKNNQuery(2.0, k=1), CRangeQuery(3.0, radius=1.0)]
        )
        assert len(batch) == 3
        assert all(result.answers == () for result in batch)

    def test_empty_batch_on_populated_engine(self, rng):
        engine = UncertainEngine(make_random_objects(rng, 4))
        batch = engine.execute_batch([])
        assert len(batch) == 0

    def test_legacy_entry_points_still_raise_on_empty(self):
        with pytest.raises(ValueError):
            CPNNEngine([])
        with pytest.raises(ValueError):
            with pytest.warns(DeprecationWarning):
                CKNNEngine([], k=1)
        with pytest.raises(ValueError):
            with pytest.warns(DeprecationWarning):
                constrained_range_query([], 0.0, 1.0, 0.5)
        engine = UncertainEngine([])
        with pytest.raises(ValueError):
            with pytest.warns(DeprecationWarning):
                engine.query(1.0)
        with pytest.raises(ValueError):
            with pytest.warns(DeprecationWarning):
                engine.query_batch([1.0])
        with pytest.raises(ValueError):
            engine.pnn(1.0)

    def test_facade_works_after_remove_to_empty_and_insert(self):
        engine = UncertainEngine([UncertainObject.uniform("solo", 0.0, 1.0)])
        assert engine.remove("solo")
        assert engine.execute(CKNNQuery(0.5, k=1)).answers == ()
        engine.insert(UncertainObject.uniform("b", 2.0, 3.0))
        assert engine.execute(CRangeQuery(2.5, threshold=0.9, radius=1.0)).answers == (
            "b",
        )


class TestDeprecationShims:
    def test_query_warns_and_matches_execute(self, rng):
        engine = UncertainEngine(make_random_objects(rng, 8))
        with pytest.warns(DeprecationWarning, match="execute"):
            legacy = engine.query(30.0, threshold=0.3, tolerance=0.0)
        fresh = engine.execute(CPNNQuery(30.0, threshold=0.3, tolerance=0.0))
        assert legacy.answers == fresh.answers
        assert records_tuple(legacy) == records_tuple(fresh)

    def test_query_batch_warns_and_matches_execute_batch(self, rng):
        engine = UncertainEngine(make_random_objects(rng, 8))
        points = [10.0, 30.0, 50.0]
        with pytest.warns(DeprecationWarning, match="execute_batch"):
            legacy = engine.query_batch(points, threshold=0.3, tolerance=0.0)
        fresh = engine.execute_batch(
            [CPNNQuery(p, threshold=0.3, tolerance=0.0) for p in points]
        )
        assert legacy.answers == fresh.answers

    def test_query_batch_validates_strategy_even_when_empty(self, rng):
        # The pre-façade code validated strategy before the empty-points
        # early return; the shim must too.
        engine = UncertainEngine(make_random_objects(rng, 3))
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError):
                engine.query_batch([], strategy="bogus")

    def test_cknn_engine_warns(self, rng):
        with pytest.warns(DeprecationWarning, match="CKNNQuery"):
            CKNNEngine(make_random_objects(rng, 3), k=1)

    def test_constrained_range_query_warns(self, rng):
        with pytest.warns(DeprecationWarning, match="CRangeQuery"):
            constrained_range_query(make_random_objects(rng, 3), 0.0, 1.0, 0.5)


class TestPipelineHook:
    def test_custom_chain_per_spec_type(self, rng):
        calls = []

        def pipeline(spec_type):
            calls.append(spec_type)
            if spec_type is CPNNQuery:
                return VerifierChain([RightmostSubregionVerifier()])
            return None

        engine = UncertainEngine(
            make_random_objects(rng, 10), EngineConfig(pipeline=pipeline)
        )
        result = engine.execute(CPNNQuery(30.0, 0.3, 0.01))
        assert set(result.unknown_after_verifier) <= {"RS"}
        engine.execute(CPNNQuery(31.0, 0.3, 0.01))
        assert calls == [CPNNQuery]  # resolved once, then cached

    def test_default_chain_when_hook_returns_none(self, rng):
        engine = UncertainEngine(
            make_random_objects(rng, 10), EngineConfig(pipeline=lambda t: None)
        )
        result = engine.execute(CPNNQuery(30.0, 0.3, 0.01))
        default = UncertainEngine(make_random_objects(rng, 10))
        assert set(result.unknown_after_verifier) <= {"RS", "L-SR", "U-SR"}
        assert default.config.pipeline is None

    def test_mixed_pnn_family_types_use_their_own_chains(self, rng):
        # A custom QuerySpec subclass routes down the PNN path; with a
        # per-type pipeline hook, batch and loop must still agree.
        class MySpec(QuerySpec):
            pass

        def pipeline(spec_type):
            if spec_type is MySpec:
                return VerifierChain([RightmostSubregionVerifier()])
            return None

        engine = UncertainEngine(
            make_random_objects(rng, 10), EngineConfig(pipeline=pipeline)
        )
        specs = [CPNNQuery(30.0, 0.3, 0.01), MySpec(31.0, 0.3, 0.01)]
        batch = engine.execute_batch(specs)
        for spec, batched in zip(specs, batch):
            single = engine.execute(spec)
            assert batched.answers == single.answers
            assert records_tuple(batched) == records_tuple(single)
        assert set(batch[1].unknown_after_verifier) <= {"RS"}

    def test_bad_hook_return_raises(self, rng):
        engine = UncertainEngine(
            make_random_objects(rng, 4), EngineConfig(pipeline=lambda t: 42)
        )
        with pytest.raises(TypeError):
            engine.execute(CPNNQuery(30.0))

    def test_non_callable_pipeline_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(pipeline="not-a-callable")


class TestExplain:
    def test_cpnn_plan(self, rng):
        objects = make_random_objects(rng, 12)
        engine = UncertainEngine(objects)
        plan = engine.explain(CPNNQuery(30.0, 0.3, 0.01))
        assert isinstance(plan, QueryPlan)
        assert plan.family == "cpnn"
        assert plan.strategy == Strategy.VR
        assert plan.verifiers == ("RS", "L-SR", "U-SR")
        assert plan.candidates + plan.pruned == len(objects)
        assert np.isfinite(plan.fmin)
        assert "verifier" in plan.describe() or "RS" in plan.describe()

    def test_knn_plan_counts_survivors(self, rng):
        objects = make_random_objects(rng, 12)
        engine = UncertainEngine(objects)
        plan = engine.explain(CKNNQuery(30.0, threshold=0.3, k=2))
        assert plan.family == "cknn"
        assert 2 <= plan.candidates <= len(objects)
        assert plan.candidates + plan.pruned == len(objects)
        result = engine.execute(CKNNQuery(30.0, threshold=0.3, k=2))
        nonzero = sum(1 for r in result.records if r.upper > 0.0)
        assert nonzero <= plan.candidates

    def test_range_plan_counts(self, rng):
        objects = make_random_objects(rng, 12)
        engine = UncertainEngine(objects)
        plan = engine.explain(CRangeQuery(30.0, threshold=0.5, radius=5.0))
        assert plan.family == "crange"
        assert plan.candidates + plan.pruned == len(objects)
        assert plan.fmin == 5.0

    def test_empty_engine_plan(self):
        plan = UncertainEngine([]).explain(CPNNQuery(1.0))
        assert plan.index == "none"
        assert plan.candidates == 0
        assert "empty" in plan.stages[0]

    def test_explain_computes_no_probabilities(self, rng):
        engine = UncertainEngine(make_random_objects(rng, 6))
        before = len(engine._distribution_cache) if engine._distribution_cache else 0
        engine.explain(CKNNQuery(30.0, k=2))
        engine.explain(CRangeQuery(30.0, radius=2.0))
        after = len(engine._distribution_cache) if engine._distribution_cache else 0
        assert before == after


class TestLegacyAlias:
    def test_cpnn_engine_is_uncertain_engine(self, rng):
        engine = CPNNEngine(make_random_objects(rng, 4))
        assert isinstance(engine, UncertainEngine)
        # The alias serves the new façade too.
        result = engine.execute(CKNNQuery(30.0, threshold=0.3, k=1))
        assert isinstance(result, QueryResult)

    def test_pnn_unchanged(self, rng):
        objects = make_random_objects(rng, 8)
        assert CPNNEngine(objects).pnn(30.0) == UncertainEngine(objects).pnn(30.0)

    def test_range_labels(self, rng):
        engine = UncertainEngine(
            [
                UncertainObject.uniform("inside", 1.0, 2.0),
                UncertainObject.uniform("straddle", 4.0, 6.0),
                UncertainObject.uniform("outside", 50.0, 51.0),
            ]
        )
        result = engine.execute(CRangeQuery(0.0, threshold=0.5, radius=5.0))
        by_key = {r.key: r for r in result.records}
        assert by_key["inside"].label is Label.SATISFY
        assert by_key["inside"].exact is None  # decided by MBR alone
        assert by_key["straddle"].exact == pytest.approx(0.5)
        assert by_key["outside"].label is Label.FAIL
        assert result.refined_objects == 1
