"""Spawn-safety: everything that crosses the worker pipe must pickle.

The process executor serializes query specs, work items, shard
descriptors, and result containers across a spawn boundary.  These
round-trips are load-bearing: a type that silently stops pickling
(say, by growing a lambda-valued field) would take the process backend
down with an opaque error, so each one is pinned here, cheaply, without
spawning anything.
"""

import pickle

import numpy as np
import pytest

from repro.core.batch import BatchResult
from repro.core.engine import EngineConfig, UncertainEngine
from repro.core.engine.executors.base import PnnItem, SweepItem
from repro.core.types import (
    CKNNQuery,
    CPNNQuery,
    CRangeQuery,
    QueryResult,
)
from repro.shm import ShmDescriptor, ShmField
from repro.uncertainty.parametric import (
    GaussianMixtureDistance,
    GpsEllipseDistance,
    MixedDistributionPack,
    TruncatedGaussianDistance,
    UniformDiskDistance,
)
from repro.uncertainty.pdfs import TruncatedGaussianPdf
from tests.conftest import make_random_objects


def round_trip(value):
    return pickle.loads(pickle.dumps(value))


class TestSpecPickling:
    @pytest.mark.parametrize(
        "spec",
        [
            CPNNQuery(3.5, threshold=0.4, tolerance=0.02),
            CPNNQuery((1.0, 2.0), threshold=0.3, tolerance=0.0),
            CKNNQuery(7.0, threshold=0.5, k=3),
            CRangeQuery((4.0, 9.0), threshold=0.6, radius=2.5, tolerance=0.01),
        ],
    )
    def test_specs_round_trip_equal(self, spec):
        twin = round_trip(spec)
        assert type(twin) is type(spec)
        assert twin == spec

    def test_default_config_round_trips(self):
        config = round_trip(EngineConfig(executor="process", process_min_batch=4))
        assert config.executor == "process"
        assert config.process_min_batch == 4
        assert config.strategy == EngineConfig().strategy


class TestWorkItemPickling:
    def test_sweep_item(self):
        item = SweepItem(shard=2, cols=np.array([0, 3, 7], dtype=np.intp))
        twin = round_trip(item)
        assert twin.shard == 2
        np.testing.assert_array_equal(twin.cols, item.cols)

    def test_pnn_item(self):
        specs = (CPNNQuery(1.0, threshold=0.3), CPNNQuery(2.0, threshold=0.4))
        item = PnnItem(lane=1, indices=(0, 5), specs=specs, strategy="vr")
        twin = round_trip(item)
        assert (twin.lane, twin.indices, twin.strategy) == (1, (0, 5), "vr")
        assert twin.specs == specs


class TestDescriptorPickling:
    def test_descriptor_round_trips(self):
        desc = ShmDescriptor(
            segment="repro_shm_test",
            nbytes=256,
            fields=(
                ShmField(name="lows", dtype="<f8", shape=(4, 2), offset=0),
                ShmField(name="highs", dtype="<f8", shape=(4, 2), offset=64),
            ),
        )
        twin = round_trip(desc)
        assert twin == desc
        assert twin.field("highs").offset == 64


class TestParametricPickling:
    @pytest.mark.parametrize(
        "dist",
        [
            TruncatedGaussianDistance(5.0, 2.0, 8.0, key="g"),
            GaussianMixtureDistance(
                4.0,
                [
                    TruncatedGaussianPdf(0.0, 3.0, bars=16),
                    TruncatedGaussianPdf(5.0, 9.0, bars=16),
                ],
                key="m",
            ),
            UniformDiskDistance((0.0, 0.0), (3.0, 4.0), 2.0, key="d"),
            GpsEllipseDistance(
                (0.0, 0.0), (6.0, 2.0), 2.0, 0.8, angle=0.6, k=3.0, key="e"
            ),
        ],
        ids=lambda d: str(d.key),
    )
    def test_parametric_distances_round_trip(self, dist):
        twin = round_trip(dist)
        assert type(twin) is type(dist)
        assert (twin.key, twin.family) == (dist.key, dist.family)
        xs = np.linspace(dist.near, dist.far, 25)
        np.testing.assert_array_equal(twin.cdf(xs), dist.cdf(xs))

    @pytest.mark.filterwarnings("ignore::DeprecationWarning")
    def test_mixed_pack_shm_descriptor_round_trips(self):
        rows = [
            TruncatedGaussianDistance(5.0, 2.0, 8.0, bars=24, key=0),
            UniformDiskDistance((0.0, 0.0), (3.0, 4.0), 2.0, key=1),
        ]
        pack = MixedDistributionPack(rows)
        shm, descriptor = pack.to_shared()
        try:
            twin = MixedDistributionPack.from_shared(round_trip(descriptor))
            xs = np.linspace(0.0, 10.0, 33)
            np.testing.assert_array_equal(twin.cdf_many(xs), pack.cdf_many(xs))
            del twin
        finally:
            shm.close()
            shm.unlink()


class TestResultPickling:
    def test_query_and_batch_results_round_trip(self, rng):
        objects = make_random_objects(rng, 18)
        engine = UncertainEngine(objects)
        specs = [
            CPNNQuery(11.0, threshold=0.3, tolerance=0.01),
            CKNNQuery(30.0, threshold=0.4, k=2),
            CRangeQuery(47.0, threshold=0.5, radius=6.0),
        ]
        batch = engine.execute_batch(specs)
        twin = round_trip(batch)
        assert isinstance(twin, BatchResult)
        assert len(twin.results) == len(batch.results)
        for a, b in zip(twin.results, batch.results):
            assert isinstance(a, QueryResult)
            assert a.answers == b.answers
            assert a.fmin == b.fmin
            assert a.spec == b.spec
            for x, y in zip(a.records, b.records):
                assert (x.key, x.label, x.lower, x.upper, x.exact) == (
                    y.key,
                    y.label,
                    y.lower,
                    y.upper,
                    y.exact,
                )
