"""AnalyticTable: the histogram-free subregion table (DESIGN.md §15).

The table must duck-type :class:`SubregionTable` closely enough for
the unmodified RS/L-SR/U-SR verifiers, and its Riemann brackets must
be *sound* — the exact qualification probability always lies inside
``[einsum(s_inner, q_lower), einsum(s_inner, q_upper) + (1 - ...)]``
style bounds the verifiers derive — at every grid resolution.
"""

import numpy as np
import pytest

from repro.core.refinement import Refiner
from repro.core.subregions import SubregionTable
from repro.core.verifiers import (
    LowerSubregionVerifier,
    RightmostSubregionVerifier,
    UpperSubregionVerifier,
)
from repro.uncertainty.parametric import AnalyticTable, TruncatedGaussianDistance

TOL = 1e-9


def gaussian_candidates(q=5.0, n=6, seed=3):
    rng = np.random.default_rng(seed)
    rows = []
    for i in range(n):
        lo = float(rng.uniform(0.0, 8.0))
        width = float(rng.uniform(1.0, 6.0))
        rows.append(
            TruncatedGaussianDistance(q, lo, lo + width, bars=32, key=i)
        )
    return rows


def exact_probabilities(rows):
    """Exact (histogram-grid) probabilities of the materialised twin."""
    table = SubregionTable([r.materialized() for r in rows])
    exact = Refiner(table).exact_all()
    return dict(zip(table.keys, exact))


def true_probabilities(rows, n_nodes=400_001):
    """Ground-truth qualification probabilities of the *analytic* laws.

    Dense trapezoid integration of ``pdf_i(r) · Π_{k≠i} sf_k(r)`` over
    ``[n_min, f_min]`` (beyond ``f_min`` some candidate's cdf is 1, so
    the integrand vanishes) — independent of both table
    implementations, accurate to well below the assertion tolerance.
    """
    fmin = min(r.far for r in rows)
    nmin = min(r.near for r in rows)
    xs = np.linspace(nmin, fmin, n_nodes)
    sf = np.vstack([1.0 - np.asarray(r.cdf(xs)) for r in rows])
    np.clip(sf, 0.0, 1.0, out=sf)
    out = {}
    for i, row in enumerate(rows):
        others = np.prod(np.delete(sf, i, axis=0), axis=0)
        integrand = np.asarray(row.pdf(xs)) * others
        out[row.key] = float(np.trapezoid(integrand, xs))
    return out


class TestTableSurface:
    def test_mirrors_subregion_table_ordering(self):
        rows = gaussian_candidates()
        analytic = AnalyticTable(rows, grid=32)
        histogram = SubregionTable([r.materialized() for r in rows])
        assert analytic.keys == histogram.keys
        assert analytic.size == histogram.size
        assert analytic.fmin == pytest.approx(histogram.fmin)
        assert analytic.fmax == pytest.approx(histogram.fmax)

    def test_masses_partition(self):
        analytic = AnalyticTable(gaussian_candidates(), grid=48)
        totals = analytic.s_inner.sum(axis=1) + analytic.s_right
        np.testing.assert_allclose(totals, 1.0, atol=1e-8)
        assert np.all(analytic.s_inner >= -1e-12)
        assert np.all(analytic.q_lower <= analytic.q_upper + 1e-12)

    def test_grid_controls_inner_subregions(self):
        rows = gaussian_candidates()
        coarse = AnalyticTable(rows, grid=16)
        fine = coarse.refined(256)
        assert coarse.n_inner >= 16
        assert fine.n_inner >= 256
        assert fine.grid == 256
        assert fine.keys == coarse.keys

    def test_invalid_inputs_raise(self):
        with pytest.raises(ValueError):
            AnalyticTable([], grid=8)
        with pytest.raises(ValueError):
            AnalyticTable(gaussian_candidates(n=2), grid=0)


class TestSoundness:
    @pytest.mark.parametrize("grid", [8, 64, 512])
    def test_verifier_bounds_contain_true_probability(self, grid):
        rows = gaussian_candidates()
        analytic = AnalyticTable(rows, grid=grid)
        truth = true_probabilities(rows)
        true_vec = np.array([truth[k] for k in analytic.keys])

        rs = RightmostSubregionVerifier().compute(analytic)
        lsr = LowerSubregionVerifier().compute(analytic)
        usr = UpperSubregionVerifier().compute(analytic)

        assert np.all(true_vec <= rs.upper + TOL), "RS upper violated"
        assert np.all(lsr.lower - TOL <= true_vec), "L-SR lower violated"
        assert np.all(true_vec <= usr.upper + TOL), "U-SR upper violated"

    def test_histogram_exact_within_coarse_brackets(self):
        """At a coarse grid the analytic bracket also contains the
        materialised histogram engine's exact probabilities — the
        discretisation error of a 32-bar histogram is smaller than the
        coarse Riemann gap, which is what lets the fast path hand
        unsettled candidates to the histogram pipeline unchanged."""
        rows = gaussian_candidates()
        analytic = AnalyticTable(rows, grid=8)
        exact = exact_probabilities(rows)
        exact_vec = np.array([exact[k] for k in analytic.keys])
        lsr = LowerSubregionVerifier().compute(analytic)
        usr = UpperSubregionVerifier().compute(analytic)
        assert np.all(lsr.lower - 1e-3 <= exact_vec)
        assert np.all(exact_vec <= usr.upper + 1e-3)

    def test_refinement_tightens_brackets(self):
        rows = gaussian_candidates(n=5, seed=11)
        lsr, usr = LowerSubregionVerifier(), UpperSubregionVerifier()
        widths = []
        for grid in (8, 64, 512):
            table = AnalyticTable(rows, grid=grid)
            gap = usr.compute(table).upper - lsr.compute(table).lower
            widths.append(float(gap.mean()))
        assert widths[1] <= widths[0] + 1e-12
        assert widths[2] <= widths[1] + 1e-12

    def test_analytic_at_matched_grid_at_least_as_tight(self):
        """At a fine grid the analytic bracket beats the histogram
        table's (no discretisation error in the cdf columns)."""
        rows = gaussian_candidates(n=4, seed=23)
        analytic = AnalyticTable(rows, grid=512)
        histogram = SubregionTable([r.materialized() for r in rows])
        lsr, usr = LowerSubregionVerifier(), UpperSubregionVerifier()
        a_gap = (
            usr.compute(analytic).upper - lsr.compute(analytic).lower
        ).mean()
        h_gap = (
            usr.compute(histogram).upper - lsr.compute(histogram).lower
        ).mean()
        assert a_gap <= h_gap + 1e-6
