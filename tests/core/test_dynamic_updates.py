"""Tests for dynamic insert/remove on the engine (R-tree backed)."""

import pytest

from repro.core.engine import CPNNEngine, EngineConfig
from repro.uncertainty.objects import UncertainObject
from tests.conftest import make_random_objects

# This module exercises the pre-facade entry points on purpose: it is
# the regression suite for the deprecation shims (DESIGN.md §7).
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


class TestInsert:
    def test_inserted_object_visible(self, rng):
        objects = make_random_objects(rng, 10)
        engine = CPNNEngine(objects)
        newcomer = UncertainObject.uniform("new", 29.9, 30.1)
        engine.insert(newcomer)
        pnn = engine.pnn(30.0)
        assert pnn["new"] > 0.5  # tight interval right at the query
        assert len(engine) == 11

    def test_matches_fresh_engine(self, rng):
        objects = make_random_objects(rng, 12)
        engine = CPNNEngine(objects[:8])
        for obj in objects[8:]:
            engine.insert(obj)
        fresh = CPNNEngine(objects)
        for q in (5.0, 30.0, 55.0):
            assert engine.pnn(q) == pytest.approx(fresh.pnn(q))
            assert set(engine.query(q, tolerance=0.0).answers) == set(
                fresh.query(q, tolerance=0.0).answers
            )

    def test_dimension_mismatch_rejected(self, rng):
        from repro.uncertainty.twod import UncertainDisk

        engine = CPNNEngine(make_random_objects(rng, 3))
        with pytest.raises(ValueError):
            engine.insert(UncertainDisk("2d", (0, 0), 1.0))

    def test_linear_scan_engine_updates_too(self, rng):
        objects = make_random_objects(rng, 6)
        engine = CPNNEngine(objects, EngineConfig(use_rtree=False))
        engine.insert(UncertainObject.uniform("new", 29.9, 30.1))
        assert "new" in engine.pnn(30.0)


class TestRemove:
    def test_removed_object_gone(self, rng):
        objects = make_random_objects(rng, 10)
        engine = CPNNEngine(objects)
        target = max(engine.pnn(30.0), key=engine.pnn(30.0).get)
        assert engine.remove(target)
        assert target not in engine.pnn(30.0)
        assert len(engine) == 9

    def test_remove_missing_returns_false(self, rng):
        engine = CPNNEngine(make_random_objects(rng, 3))
        assert not engine.remove("no-such-key")
        assert len(engine) == 3

    def test_matches_fresh_engine_after_churn(self, rng):
        objects = make_random_objects(rng, 15)
        engine = CPNNEngine(objects)
        removed = {2, 7, 11}
        for key in removed:
            assert engine.remove(key)
        survivors = [o for o in objects if o.key not in removed]
        fresh = CPNNEngine(survivors)
        for q in (10.0, 30.0, 50.0):
            assert engine.pnn(q) == pytest.approx(fresh.pnn(q))

    def test_probabilities_renormalise(self, rng):
        objects = make_random_objects(rng, 8)
        engine = CPNNEngine(objects)
        engine.remove(objects[0].key)
        assert sum(engine.pnn(30.0).values()) == pytest.approx(1.0, abs=1e-9)

    def test_remove_to_empty_then_query_raises(self):
        engine = CPNNEngine([UncertainObject.uniform("solo", 0, 1)])
        assert engine.remove("solo")
        with pytest.raises(ValueError):
            engine.query(0.5)

    def test_out_of_sync_index_raises_runtime_error(self, rng):
        """A tracked-but-unindexed object must raise, even under -O.

        Regression test: this guard used to be a bare ``assert`` that
        optimised builds silently skip, leaving the engine's object
        list and index divergent.
        """
        objects = make_random_objects(rng, 5)
        engine = CPNNEngine(objects)
        victim = objects[2]
        # Sabotage: remove the object from the index behind the
        # engine's back, leaving the object list out of sync.
        assert engine._filter.tree.delete(victim.mbr, lambda item: item is victim)
        with pytest.raises(RuntimeError, match="out of sync"):
            engine.remove(victim.key)

    def test_empty_engine_reports_clear_error(self):
        engine = CPNNEngine([UncertainObject.uniform("solo", 0, 1)])
        assert engine.remove("solo")
        assert len(engine) == 0
        with pytest.raises(ValueError):
            engine.pnn(0.5)

    def test_insert_after_empty_recovers(self):
        engine = CPNNEngine([UncertainObject.uniform("a", 0, 1)])
        engine.remove("a")
        engine.insert(UncertainObject.uniform("b", 2, 3))
        assert engine.pnn(2.5)["b"] == pytest.approx(1.0)
