"""Tests for dynamic insert/remove/replace on the engine.

Covers the incremental-maintenance layer of DESIGN.md §11: duplicate
key rejection, deferred index maintenance, selective table-cache
invalidation, and the in-place ``replace`` primitive.
"""

import numpy as np
import pytest

from repro.core.engine import CPNNEngine, EngineConfig, UncertainEngine
from repro.core.types import CPNNQuery
from repro.uncertainty.objects import UncertainObject
from tests.conftest import make_random_objects

# This module exercises the pre-facade entry points on purpose: it is
# the regression suite for the deprecation shims (DESIGN.md §7).
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


class TestInsert:
    def test_inserted_object_visible(self, rng):
        objects = make_random_objects(rng, 10)
        engine = CPNNEngine(objects)
        newcomer = UncertainObject.uniform("new", 29.9, 30.1)
        engine.insert(newcomer)
        pnn = engine.pnn(30.0)
        assert pnn["new"] > 0.5  # tight interval right at the query
        assert len(engine) == 11

    def test_matches_fresh_engine(self, rng):
        objects = make_random_objects(rng, 12)
        engine = CPNNEngine(objects[:8])
        for obj in objects[8:]:
            engine.insert(obj)
        fresh = CPNNEngine(objects)
        for q in (5.0, 30.0, 55.0):
            assert engine.pnn(q) == pytest.approx(fresh.pnn(q))
            assert set(engine.query(q, tolerance=0.0).answers) == set(
                fresh.query(q, tolerance=0.0).answers
            )

    def test_dimension_mismatch_rejected(self, rng):
        from repro.uncertainty.twod import UncertainDisk

        engine = CPNNEngine(make_random_objects(rng, 3))
        with pytest.raises(ValueError):
            engine.insert(UncertainDisk("2d", (0, 0), 1.0))

    def test_linear_scan_engine_updates_too(self, rng):
        objects = make_random_objects(rng, 6)
        engine = CPNNEngine(objects, EngineConfig(use_rtree=False))
        engine.insert(UncertainObject.uniform("new", 29.9, 30.1))
        assert "new" in engine.pnn(30.0)


class TestRemove:
    def test_removed_object_gone(self, rng):
        objects = make_random_objects(rng, 10)
        engine = CPNNEngine(objects)
        target = max(engine.pnn(30.0), key=engine.pnn(30.0).get)
        assert engine.remove(target)
        assert target not in engine.pnn(30.0)
        assert len(engine) == 9

    def test_remove_missing_returns_false(self, rng):
        engine = CPNNEngine(make_random_objects(rng, 3))
        assert not engine.remove("no-such-key")
        assert len(engine) == 3

    def test_matches_fresh_engine_after_churn(self, rng):
        objects = make_random_objects(rng, 15)
        engine = CPNNEngine(objects)
        removed = {2, 7, 11}
        for key in removed:
            assert engine.remove(key)
        survivors = [o for o in objects if o.key not in removed]
        fresh = CPNNEngine(survivors)
        for q in (10.0, 30.0, 50.0):
            assert engine.pnn(q) == pytest.approx(fresh.pnn(q))

    def test_probabilities_renormalise(self, rng):
        objects = make_random_objects(rng, 8)
        engine = CPNNEngine(objects)
        engine.remove(objects[0].key)
        assert sum(engine.pnn(30.0).values()) == pytest.approx(1.0, abs=1e-9)

    def test_remove_to_empty_then_query_raises(self):
        engine = CPNNEngine([UncertainObject.uniform("solo", 0, 1)])
        assert engine.remove("solo")
        with pytest.raises(ValueError):
            engine.query(0.5)

    def test_out_of_sync_index_raises_runtime_error(self, rng):
        """A tracked-but-unindexed object must raise, even under -O.

        Regression test: this guard used to be a bare ``assert`` that
        optimised builds silently skip, leaving the engine's object
        list and index divergent.  Index maintenance is deferred
        (DESIGN.md §11), so the divergence surfaces when the next
        single-query path folds the pending removal into the tree.
        """
        objects = make_random_objects(rng, 5)
        engine = CPNNEngine(objects)
        victim = objects[2]
        # Sabotage: remove the object from the index behind the
        # engine's back, leaving the object list out of sync.
        assert engine._filter.tree.delete(victim.mbr, lambda item: item is victim)
        assert engine.remove(victim.key)
        with pytest.raises(RuntimeError, match="out of sync"):
            engine.pnn(30.0)

    def test_empty_engine_reports_clear_error(self):
        engine = CPNNEngine([UncertainObject.uniform("solo", 0, 1)])
        assert engine.remove("solo")
        assert len(engine) == 0
        with pytest.raises(ValueError):
            engine.pnn(0.5)

    def test_insert_after_empty_recovers(self):
        engine = CPNNEngine([UncertainObject.uniform("a", 0, 1)])
        engine.remove("a")
        engine.insert(UncertainObject.uniform("b", 2, 3))
        assert engine.pnn(2.5)["b"] == pytest.approx(1.0)


class TestDuplicateKeys:
    def test_insert_duplicate_key_rejected(self, rng):
        """Regression: a second object under an existing key used to be
        silently accepted; ``remove`` then deleted only the first
        match, leaving a shadowed duplicate in the index."""
        objects = make_random_objects(rng, 6)
        engine = CPNNEngine(objects)
        with pytest.raises(ValueError, match="duplicate object key"):
            engine.insert(UncertainObject.uniform(objects[2].key, 10.0, 11.0))
        # The failed insert must not corrupt the engine: the original
        # object is still the one indexed, and remove leaves no shadow.
        assert len(engine) == 6
        assert engine.remove(objects[2].key)
        assert len(engine) == 5
        result = engine.execute(CPNNQuery(30.0, threshold=0.01, tolerance=0.0))
        assert objects[2].key not in result.answers
        assert not engine.remove(objects[2].key)

    def test_constructor_rejects_duplicate_keys(self):
        with pytest.raises(ValueError, match="duplicate object key"):
            UncertainEngine(
                [
                    UncertainObject.uniform("x", 0, 1),
                    UncertainObject.uniform("x", 2, 3),
                ]
            )

    def test_reinsert_after_remove_is_fine(self, rng):
        engine = CPNNEngine(make_random_objects(rng, 4))
        assert engine.remove(2)
        engine.insert(UncertainObject.uniform(2, 29.9, 30.1))
        assert engine.pnn(30.0)[2] > 0.5


class TestReplace:
    def test_replace_matches_fresh_engine(self, rng):
        objects = make_random_objects(rng, 12)
        engine = CPNNEngine(objects)
        replaced = list(objects)
        for i in (1, 5, 9):
            newcomer = UncertainObject.uniform(
                objects[i].key, 10.0 + i, 14.0 + i
            )
            engine.replace(objects[i].key, newcomer)
            replaced[i] = newcomer
        fresh = CPNNEngine(replaced)
        for q in (5.0, 12.0, 30.0):
            assert engine.pnn(q) == pytest.approx(fresh.pnn(q))

    def test_replace_is_in_place(self, rng):
        objects = make_random_objects(rng, 5)
        engine = CPNNEngine(objects)
        newcomer = UncertainObject.uniform(objects[2].key, 1.0, 2.0)
        engine.replace(objects[2].key, newcomer)
        assert engine.objects[2] is newcomer
        assert len(engine) == 5

    def test_replace_missing_key_raises(self, rng):
        engine = CPNNEngine(make_random_objects(rng, 3))
        with pytest.raises(KeyError):
            engine.replace("no-such-key", UncertainObject.uniform("n", 0, 1))

    def test_replace_with_new_key(self, rng):
        objects = make_random_objects(rng, 4)
        engine = CPNNEngine(objects)
        engine.replace(objects[0].key, UncertainObject.uniform("fresh", 29.9, 30.1))
        assert "fresh" in engine.pnn(30.0)
        assert not engine.remove(objects[0].key)
        assert engine.remove("fresh")

    def test_replace_duplicate_new_key_rejected(self, rng):
        objects = make_random_objects(rng, 4)
        engine = CPNNEngine(objects)
        clash = UncertainObject.uniform(objects[1].key, 0.0, 1.0)
        with pytest.raises(ValueError, match="duplicate object key"):
            engine.replace(objects[0].key, clash)

    def test_replace_dimension_mismatch_rejected(self, rng):
        from repro.uncertainty.twod import UncertainDisk

        objects = make_random_objects(rng, 3)
        engine = CPNNEngine(objects)
        with pytest.raises(ValueError, match="dimensionality"):
            engine.replace(objects[0].key, UncertainDisk(objects[0].key, (0, 0), 1.0))

    def test_interleaved_replace_and_batch_identical_to_fresh(self, rng):
        """Dead-reckoning stream: warm caches must stay exact."""
        objects = make_random_objects(rng, 20)
        engine = CPNNEngine(objects)
        points = [5.0, 18.0, 30.0, 44.0, 57.0]
        specs = [CPNNQuery(p, threshold=0.3, tolerance=0.0) for p in points]
        current = list(objects)
        for round_no in range(4):
            engine.execute_batch(specs)  # warm caches between updates
            for i in (round_no, 10 + round_no):
                lo = float(rng.uniform(0, 55))
                newcomer = UncertainObject.uniform(current[i].key, lo, lo + 3.0)
                engine.replace(current[i].key, newcomer)
                current[i] = newcomer
            warm = engine.execute_batch(specs)
            fresh = CPNNEngine(current).execute_batch(specs)
            for a, b in zip(warm.results, fresh.results):
                assert a.answers == b.answers
                assert a.fmin == b.fmin
                for x, y in zip(a.records, b.records):
                    assert (x.key, x.label, x.lower, x.upper, x.exact) == (
                        y.key,
                        y.label,
                        y.lower,
                        y.upper,
                        y.exact,
                    )


class TestSelectiveInvalidation:
    def test_far_update_keeps_tables_warm(self, rng):
        """A mutation far from a probed point must not drop its cached
        table or memoised result."""
        objects = [
            UncertainObject.uniform(i, float(i), float(i) + 1.0)
            for i in range(10)
        ]
        engine = UncertainEngine(objects)
        spec = CPNNQuery(2.0, threshold=0.3, tolerance=0.0)
        engine.execute_batch([spec])
        # Insert far beyond every candidate's reach of q=2.0.
        engine.insert(UncertainObject.uniform("far", 1000.0, 1001.0))
        warm = engine.execute_batch([spec])
        assert warm.result_hits == 1
        assert warm.table_misses == 0

    def test_near_update_invalidates(self, rng):
        objects = [
            UncertainObject.uniform(i, float(i), float(i) + 1.0)
            for i in range(10)
        ]
        engine = UncertainEngine(objects)
        spec = CPNNQuery(2.0, threshold=0.3, tolerance=0.0)
        engine.execute_batch([spec])
        engine.insert(UncertainObject.uniform("near", 1.9, 2.1))
        refreshed = engine.execute_batch([spec])
        assert refreshed.result_hits == 0
        assert refreshed.table_misses == 1
        assert "near" in refreshed.results[0].answers

    def test_survived_entries_answer_identically_to_fresh(self, rng):
        objects = make_random_objects(rng, 15)
        engine = UncertainEngine(objects)
        near_spec = CPNNQuery(30.0, threshold=0.2, tolerance=0.0)
        far_spec = CPNNQuery(55.0, threshold=0.2, tolerance=0.0)
        engine.execute_batch([near_spec, far_spec])
        engine.insert(UncertainObject.uniform("new", 29.5, 30.5))
        warm = engine.execute_batch([near_spec, far_spec])
        # Share the engine's exact objects so the comparison is bit-level.
        fresh = UncertainEngine(list(engine.objects))
        cold = fresh.execute_batch([near_spec, far_spec])
        for a, b in zip(warm.results, cold.results):
            assert a.answers == b.answers
            for x, y in zip(a.records, b.records):
                assert (x.key, x.label, x.lower, x.upper, x.exact) == (
                    y.key,
                    y.label,
                    y.lower,
                    y.upper,
                    y.exact,
                )

    def test_remove_far_object_keeps_results_warm(self):
        objects = [
            UncertainObject.uniform(i, float(i), float(i) + 1.0)
            for i in range(10)
        ]
        engine = UncertainEngine(objects)
        spec = CPNNQuery(1.0, threshold=0.3, tolerance=0.0)
        engine.execute_batch([spec])
        assert engine.remove(9)  # far from q=1.0's candidate set
        warm = engine.execute_batch([spec])
        assert warm.result_hits == 1

    def test_remove_candidate_invalidates(self):
        objects = [
            UncertainObject.uniform(i, float(i), float(i) + 1.0)
            for i in range(10)
        ]
        engine = UncertainEngine(objects)
        spec = CPNNQuery(1.0, threshold=0.3, tolerance=0.0)
        first = engine.execute_batch([spec])
        victim = first.results[0].answers[0]
        assert engine.remove(victim)
        refreshed = engine.execute_batch([spec])
        assert refreshed.result_hits == 0
        assert victim not in refreshed.results[0].answers


class TestDeferredIndexMaintenance:
    def test_batch_filter_rows_match_objects(self, rng):
        objects = make_random_objects(rng, 10)
        engine = UncertainEngine(objects)
        engine.execute_batch([CPNNQuery(30.0)])  # force filter build
        engine.insert(UncertainObject.uniform("n1", 3.0, 4.0))
        assert engine.remove(4)
        engine.replace(7, UncertainObject.uniform(7, 40.0, 41.0))
        engine.execute_batch([CPNNQuery(30.0)])  # flush row maintenance
        bf = engine._batch_filter
        assert bf is not None
        assert bf.objects == tuple(engine.objects)
        expected_lows = np.array([o.mbr.lows for o in engine.objects])
        assert np.array_equal(bf._lows, expected_lows)

    def test_single_query_sees_pending_updates(self, rng):
        objects = make_random_objects(rng, 8)
        engine = CPNNEngine(objects)
        engine.insert(UncertainObject.uniform("new", 29.9, 30.1))
        assert engine.remove(0)
        # Single-query paths flush the deferred tree maintenance.
        assert "new" in engine.pnn(30.0)
        plan = engine.explain(CPNNQuery(30.0))
        assert plan.index == "rtree"

    def test_tree_queue_stays_bounded_under_batch_only_stream(self):
        """Regression: a batch-only update stream must not accumulate
        deferred tree ops (and pin every replaced object) forever —
        past the rebuild threshold the queue collapses into a stale
        marker."""
        objects = [
            UncertainObject.uniform(i, float(i), float(i) + 1.0)
            for i in range(50)
        ]
        engine = UncertainEngine(objects)
        for step in range(40):
            key = step % 50
            engine.replace(
                key, UncertainObject.uniform(key, float(key), float(key) + 1.0)
            )
        assert len(engine._pending_tree_ops) <= 5
        assert engine._filter_stale
        # The next single-query path rebuilds and answers correctly.
        assert engine.pnn(10.5)
        assert not engine._filter_stale

    def test_replayed_records_are_isolated(self):
        """Mutating a replayed record must not corrupt the snapshot."""
        objects = [
            UncertainObject.uniform(i, float(i), float(i) + 1.0)
            for i in range(6)
        ]
        engine = UncertainEngine(objects)
        spec = CPNNQuery(2.0, threshold=0.3, tolerance=0.0)
        engine.execute_batch([spec])
        replayed = engine.execute_batch([spec])
        assert replayed.result_hits == 1
        original = replayed.results[0].records[0].lower
        replayed.results[0].records[0].lower = -123.0
        again = engine.execute_batch([spec])
        assert again.results[0].records[0].lower == original

    def test_table_cache_probes_counted_once(self):
        """Regression: duplicate points in one batch used to probe the
        cache twice per query, double-counting misses."""
        objects = [
            UncertainObject.uniform(i, float(i), float(i) + 1.0)
            for i in range(6)
        ]
        engine = UncertainEngine(objects)
        specs = [CPNNQuery(2.0, threshold=0.3, tolerance=0.0)] * 5
        cold = engine.execute_batch(specs)
        assert cold.table_misses == 1  # one distinct point built once
        assert cold.table_hits == 4
        cache = engine._table_cache
        assert cache.misses == 5  # one probe per query, not two
        assert cache.hits == 0
        warm = engine.execute_batch(specs)
        assert warm.result_hits == 5
        assert cache.misses == 5
        assert cache.hits == 5  # one snapshot-replay probe per query

    def test_large_pending_queue_rebuilds(self, rng):
        objects = make_random_objects(rng, 10)
        engine = CPNNEngine(objects)
        for i in range(30):  # far beyond the incremental threshold
            engine.insert(UncertainObject.uniform(("bulk", i), 30.0 + i, 31.0 + i))
        pnn = engine.pnn(35.0)
        assert any(key == ("bulk", 4) for key in pnn)
        assert not engine._pending_tree_ops
