"""Tests for the C-PNN engine and its three strategies."""

import numpy as np
import pytest

from repro.core.engine import CPNNEngine, EngineConfig, Strategy
from repro.core.types import CPNNQuery, Label
from repro.uncertainty.objects import UncertainObject
from tests.conftest import make_random_objects, two_object_textbook_case

# This module exercises the pre-facade entry points on purpose: it is
# the regression suite for the deprecation shims (DESIGN.md §7).
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


class TestConfiguration:
    def test_default_strategy_is_vr(self):
        assert EngineConfig().strategy == Strategy.VR

    def test_invalid_strategy_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(strategy="magic")
        engine = CPNNEngine([UncertainObject.uniform(0, 0, 1)])
        with pytest.raises(ValueError):
            engine.query(0.5, strategy="magic")

    def test_invalid_refinement_order_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(refinement_order="bogus")

    def test_empty_objects_rejected(self):
        with pytest.raises(ValueError):
            CPNNEngine([])


class TestQueryApi:
    def test_accepts_prepared_query(self):
        objects, q = two_object_textbook_case()
        engine = CPNNEngine(objects)
        result = engine.query(CPNNQuery(q, threshold=0.5, tolerance=0.0))
        assert result.answers == ("A",)

    def test_overrides_on_prepared_query(self):
        objects, q = two_object_textbook_case()
        engine = CPNNEngine(objects)
        result = engine.query(CPNNQuery(q, threshold=0.99), threshold=0.1)
        assert "A" in result.answers

    def test_bare_point_uses_paper_defaults(self):
        objects, q = two_object_textbook_case()
        result = CPNNEngine(objects).query(q)
        assert "A" in result.answers


class TestTextbookAnswers:
    def test_exact_probabilities(self):
        objects, q = two_object_textbook_case()
        pnn = CPNNEngine(objects).pnn(q)
        assert pnn["A"] == pytest.approx(0.875)
        assert pnn["B"] == pytest.approx(0.125)

    @pytest.mark.parametrize("strategy", Strategy.ALL)
    def test_threshold_partitions(self, strategy):
        objects, q = two_object_textbook_case()
        engine = CPNNEngine(objects)
        assert set(
            engine.query(q, threshold=0.1, tolerance=0.0, strategy=strategy).answers
        ) == {"A", "B"}
        assert set(
            engine.query(q, threshold=0.5, tolerance=0.0, strategy=strategy).answers
        ) == {"A"}
        assert set(
            engine.query(q, threshold=0.9, tolerance=0.0, strategy=strategy).answers
        ) == set()


class TestStrategyAgreement:
    def test_all_strategies_agree_at_zero_tolerance(self, rng):
        for _ in range(6):
            objects = make_random_objects(rng, int(rng.integers(3, 20)))
            engine = CPNNEngine(objects)
            q = float(rng.uniform(-5, 65))
            threshold = float(rng.uniform(0.05, 0.9))
            answers = {
                strategy: set(
                    engine.query(
                        q, threshold=threshold, tolerance=0.0, strategy=strategy
                    ).answers
                )
                for strategy in Strategy.ALL
            }
            assert answers["basic"] == answers["refine"] == answers["vr"]

    def test_rtree_and_linear_filters_agree(self, rng):
        objects = make_random_objects(rng, 25)
        with_tree = CPNNEngine(objects, EngineConfig(use_rtree=True))
        without = CPNNEngine(objects, EngineConfig(use_rtree=False))
        q = 30.0
        assert set(with_tree.query(q, tolerance=0.0).answers) == set(
            without.query(q, tolerance=0.0).answers
        )


class TestResultContents:
    def test_pnn_sums_to_one(self, rng):
        objects = make_random_objects(rng, 15)
        pnn = CPNNEngine(objects).pnn(30.0)
        assert sum(pnn.values()) == pytest.approx(1.0, abs=1e-9)

    def test_records_cover_candidates(self, rng):
        objects = make_random_objects(rng, 15)
        result = CPNNEngine(objects).query(30.0, strategy="vr")
        assert len(result.records) >= 1
        for record in result.records:
            assert 0.0 <= record.lower <= record.upper <= 1.0
            assert record.label in (Label.SATISFY, Label.FAIL)

    def test_basic_records_have_exact_probabilities(self, rng):
        objects = make_random_objects(rng, 10)
        result = CPNNEngine(objects).query(30.0, strategy="basic")
        total = sum(r.exact for r in result.records)
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_timings_populated(self, rng):
        objects = make_random_objects(rng, 10)
        result = CPNNEngine(objects).query(30.0, strategy="vr")
        assert result.timings.filtering >= 0.0
        assert result.timings.total > 0.0

    def test_unknown_after_verifier_only_for_vr(self, rng):
        objects = make_random_objects(rng, 10)
        engine = CPNNEngine(objects)
        assert engine.query(30.0, strategy="basic").unknown_after_verifier == {}
        vr = engine.query(30.0, strategy="vr")
        assert "RS" in vr.unknown_after_verifier

    def test_fmin_recorded(self, rng):
        objects = make_random_objects(rng, 10)
        result = CPNNEngine(objects).query(30.0)
        assert result.fmin == pytest.approx(
            min(o.maxdist(30.0) for o in objects)
        )


class TestSpecialCases:
    def test_single_object_probability_one(self):
        engine = CPNNEngine([UncertainObject.uniform("solo", 0, 1)])
        result = engine.query(5.0, threshold=1.0, tolerance=0.0)
        assert result.answers == ("solo",)
        assert engine.pnn(5.0)["solo"] == pytest.approx(1.0)

    def test_threshold_one_returns_at_most_one(self, rng):
        objects = make_random_objects(rng, 12)
        engine = CPNNEngine(objects)
        for strategy in Strategy.ALL:
            result = engine.query(30.0, threshold=1.0, tolerance=0.0, strategy=strategy)
            assert len(result.answers) <= 1

    def test_min_query_is_pnn_at_left_infinity(self, rng):
        # The paper: a minimum query is a PNN with q left of everything.
        objects = make_random_objects(rng, 8, families=("uniform",))
        engine = CPNNEngine(objects)
        q = min(o.lo for o in objects) - 1e5
        pnn = engine.pnn(q)
        # The object with the smallest left endpoint must have the
        # highest probability of being the minimum... at least nonzero.
        best = max(pnn, key=pnn.get)
        assert pnn[best] > 0
        assert sum(pnn.values()) == pytest.approx(1.0, abs=1e-9)

    def test_identical_objects_share_probability(self):
        objects = [UncertainObject.uniform(i, 0.0, 2.0) for i in range(4)]
        pnn = CPNNEngine(objects).pnn(1.0)
        for p in pnn.values():
            assert p == pytest.approx(0.25, abs=1e-9)

    def test_tolerance_widens_answers_only_near_threshold(self, rng):
        objects = make_random_objects(rng, 15)
        engine = CPNNEngine(objects)
        q = 30.0
        strict = set(engine.query(q, threshold=0.3, tolerance=0.0).answers)
        lax = set(engine.query(q, threshold=0.3, tolerance=0.2).answers)
        assert strict <= lax
        exact = engine.pnn(q)
        for key in lax - strict:
            assert exact[key] >= 0.3 - 0.2 - 1e-9


class TestDimensionGuard:
    def test_mixed_dimensions_rejected(self):
        from repro.uncertainty.twod import UncertainDisk

        with pytest.raises(ValueError):
            CPNNEngine(
                [
                    UncertainObject.uniform("1d", 0.0, 1.0),
                    UncertainDisk("2d", (0.0, 0.0), 1.0),
                ]
            )
