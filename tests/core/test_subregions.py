"""Tests for the subregion machinery (Section IV-A, Figure 7)."""

import numpy as np
import pytest

from repro.core.subregions import SubregionTable
from repro.uncertainty.objects import UncertainObject
from tests.conftest import make_random_objects, two_object_textbook_case


def table_for(objects, q):
    return SubregionTable([o.distance_distribution(q) for o in objects])


class TestTextbookCase:
    """Hand-solved two-object example (see conftest for the numbers)."""

    @pytest.fixture
    def table(self):
        objects, q = two_object_textbook_case()
        return table_for(objects, q)

    def test_ordering_by_near_point(self, table):
        assert table.keys == ("A", "B")

    def test_fmin_fmax(self, table):
        assert table.fmin == pytest.approx(1.0)
        assert table.fmax == pytest.approx(1.5)

    def test_endpoints(self, table):
        assert np.allclose(table.edges, [0.0, 0.5, 1.0])
        assert table.n_inner == 2
        assert table.n_subregions == 3  # the paper's M counts S_M too

    def test_subregion_probabilities(self, table):
        assert np.allclose(table.s_inner[0], [0.5, 0.5])  # A
        assert np.allclose(table.s_inner[1], [0.0, 0.5])  # B
        assert np.allclose(table.s_right, [0.0, 0.5])

    def test_named_accessors(self, table):
        assert table.subregion_probability(0, 0) == pytest.approx(0.5)
        assert table.subregion_probability(1, 2) == pytest.approx(0.5)  # rightmost
        assert table.cdf_at_edge(0, 1) == pytest.approx(0.5)
        assert table.index_of("B") == 1
        with pytest.raises(KeyError):
            table.index_of("missing")

    def test_counts(self, table):
        assert list(table.counts) == [1, 2]

    def test_Y_products(self, table):
        # Y_j = prod_k (1 - D_k(e_j)).
        assert np.allclose(table.Y, [1.0, 0.5 * 1.0, 0.0 * 0.5])

    def test_Z_exclusion_products(self, table):
        assert np.allclose(table.Z[0], [1.0, 1.0, 0.5])  # excluding A
        assert np.allclose(table.Z[1], [1.0, 0.5, 0.0])  # excluding B

    def test_q_bounds(self, table):
        assert np.allclose(table.q_lower[0], [1.0, 0.5])
        assert np.allclose(table.q_upper[0], [1.0, 0.75])
        # B has no mass in S_1, so its conditional bounds there are
        # zeroed (the paper leaves them undefined); S_2 is the real one.
        assert np.allclose(table.q_lower[1], [0.0, 0.25])
        assert np.allclose(table.q_upper[1], [0.0, 0.25])


class TestStructuralInvariants:
    def test_mass_partition(self, rng):
        for _ in range(10):
            objects = make_random_objects(rng, int(rng.integers(2, 15)))
            q = float(rng.uniform(0, 60))
            table = table_for(objects, q)
            totals = table.s_inner.sum(axis=1) + table.s_right
            assert np.allclose(totals, 1.0, atol=1e-9)

    def test_cdf_matrix_monotone(self, rng):
        objects = make_random_objects(rng, 10)
        table = table_for(objects, 30.0)
        assert np.all(np.diff(table.cdf_at_edges, axis=1) >= -1e-12)

    def test_edges_sorted_ending_at_fmin(self, rng):
        objects = make_random_objects(rng, 10)
        table = table_for(objects, 30.0)
        assert np.all(np.diff(table.edges) > 0)
        assert table.edges[-1] == pytest.approx(table.fmin)

    def test_q_lower_never_exceeds_q_upper(self, rng):
        for _ in range(5):
            objects = make_random_objects(rng, 12)
            table = table_for(objects, float(rng.uniform(0, 60)))
            assert np.all(table.q_lower <= table.q_upper + 1e-12)

    def test_edges_include_every_breakpoint_below_fmin(self, rng):
        objects = make_random_objects(rng, 8)
        q = 30.0
        dists = [o.distance_distribution(q) for o in objects]
        table = SubregionTable(dists)
        for dist in dists:
            inner = dist.breakpoints[
                (dist.breakpoints > table.edges[0] + 1e-9)
                & (dist.breakpoints < table.fmin - 1e-9)
            ]
            for point in inner:
                assert np.min(np.abs(table.edges - point)) < 1e-9

    def test_single_candidate(self):
        obj = UncertainObject.uniform("only", 2.0, 4.0)
        table = table_for([obj], 0.0)
        assert table.size == 1
        assert np.allclose(table.s_right, [0.0])
        assert table.s_inner.sum() == pytest.approx(1.0)
        assert np.all(table.Z == 1.0)

    def test_empty_candidate_set_rejected(self):
        with pytest.raises(ValueError):
            SubregionTable([])

    def test_zero_probability_candidate_all_mass_right(self):
        # B's near point equals f_min: everything lands in S_M.
        a = UncertainObject.uniform("A", 0.0, 2.0)
        b = UncertainObject.uniform("B", 2.0, 5.0)
        table = table_for([a, b], 0.0)
        idx = table.index_of("B")
        assert table.s_right[idx] == pytest.approx(1.0)
        assert np.allclose(table.s_inner[idx], 0.0)

    def test_interior_zero_density_pdf(self):
        # A mixture-like object with a gap: products must stay exact.
        from repro.uncertainty.histogram import Histogram

        gap = UncertainObject.from_histogram(
            "gap", Histogram([0.0, 1.0, 3.0, 4.0], [0.5, 0.0, 0.5])
        )
        solid = UncertainObject.uniform("solid", 0.0, 5.0)
        table = table_for([gap, solid], 0.0)
        i = table.index_of("gap")
        # D_gap(2) = 0.5 even though the gap object has no mass at 2.
        edge_idx = int(np.argmin(np.abs(table.edges - 2.0)))
        if abs(table.edges[edge_idx] - 2.0) < 1e-9:
            assert table.cdf_at_edges[i, edge_idx] == pytest.approx(0.5)
