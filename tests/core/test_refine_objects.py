"""Property tests: vectorised refine_objects ≡ sequential refine_object.

:meth:`Refiner.refine_objects` restructures incremental refinement
(Section IV-D) into one columnar sweep over all surviving candidates.
Candidates are independent, and the sweep replays each candidate's
subregion visitation order and floating-point operations exactly, so
labels and bounds must equal the sequential loop's **bit for bit** —
including the number of object-subregion integrations performed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.refinement import Refiner
from repro.core.state import CandidateStates
from repro.core.subregions import SubregionTable
from repro.core.types import CPNNQuery
from repro.core.verifiers.chain import default_chain
from tests.conftest import make_random_objects


def prepared_states(dists, query, use_chain):
    table = SubregionTable(dists)
    states = CandidateStates(table.keys)
    if use_chain:
        default_chain().run(table, states, query)
    return table, states


def refine_both_ways(dists, query, use_verifier_slices, order):
    """(sequential states, batch states, integration counts)."""
    table_a, states_a = prepared_states(dists, query, use_verifier_slices)
    refiner_a = Refiner(table_a, order=order)
    survivors = states_a.unknown_indices()
    for i in survivors:
        refiner_a.refine_object(
            int(i), states_a, query, use_verifier_slices=use_verifier_slices
        )

    table_b, states_b = prepared_states(dists, query, use_verifier_slices)
    refiner_b = Refiner(table_b, order=order)
    integrated = refiner_b.refine_objects(
        states_b.unknown_indices(),
        states_b,
        query,
        use_verifier_slices=use_verifier_slices,
    )
    return states_a, states_b, refiner_a.integrations, integrated


@pytest.mark.parametrize("use_verifier_slices", [True, False])
@pytest.mark.parametrize("order", ["widest", "left"])
def test_labels_and_bounds_bit_identical(rng, use_verifier_slices, order):
    for _ in range(10):
        objects = make_random_objects(rng, int(rng.integers(2, 24)))
        q = float(rng.uniform(0.0, 60.0))
        query = CPNNQuery(
            q,
            threshold=float(rng.uniform(0.05, 0.6)),
            tolerance=float(rng.choice([0.0, 0.01, 0.05])),
        )
        dists = [obj.distance_distribution(q) for obj in objects]
        seq, batch, n_seq, n_batch = refine_both_ways(
            dists, query, use_verifier_slices, order
        )
        assert np.array_equal(seq.labels, batch.labels)
        assert np.array_equal(seq.lower, batch.lower)
        assert np.array_equal(seq.upper, batch.upper)
        assert n_seq == n_batch


def test_threshold_boundary_cases(rng):
    """Exact-at-threshold candidates classify the same way in both paths."""
    from repro.uncertainty.objects import UncertainObject

    objects = [
        UncertainObject.uniform("A", 0.0, 2.0),
        UncertainObject.uniform("B", 0.0, 2.0),
        UncertainObject.uniform("C", 0.5, 2.5),
    ]
    for threshold in (0.5, 0.25, 1.0):
        query = CPNNQuery(0.0, threshold=threshold, tolerance=0.0)
        dists = [obj.distance_distribution(0.0) for obj in objects]
        seq, batch, _, _ = refine_both_ways(dists, query, False, "widest")
        assert np.array_equal(seq.labels, batch.labels)
        assert np.array_equal(seq.lower, batch.lower)
        assert np.array_equal(seq.upper, batch.upper)


def test_empty_and_singleton_index_sets(rng):
    objects = make_random_objects(rng, 5)
    q = 30.0
    query = CPNNQuery(q, threshold=0.3, tolerance=0.0)
    dists = [obj.distance_distribution(q) for obj in objects]
    table = SubregionTable(dists)
    states = CandidateStates(table.keys)
    refiner = Refiner(table)
    assert refiner.refine_objects([], states, query) == 0
    assert np.all(states.labels == 0)  # untouched

    # singleton set routes through the scalar path and still classifies
    refiner.refine_objects(np.asarray([2]), states, query)
    assert states.labels[2] != 0
    assert np.all(np.delete(states.labels, 2) == 0)


def test_subset_refinement_leaves_others_untouched(rng):
    objects = make_random_objects(rng, 12)
    q = 25.0
    query = CPNNQuery(q, threshold=0.3, tolerance=0.0)
    dists = [obj.distance_distribution(q) for obj in objects]
    table = SubregionTable(dists)
    states = CandidateStates(table.keys)
    refiner = Refiner(table)
    subset = np.asarray([1, 4, 7])
    refiner.refine_objects(subset, states, query)
    untouched = np.setdiff1d(np.arange(table.size), subset)
    assert np.all(states.labels[subset] != 0)
    assert np.all(states.labels[untouched] == 0)
    assert np.all(states.lower[untouched] == 0.0)
    assert np.all(states.upper[untouched] == 1.0)


def test_warm_ahead_batch_width_changes_nothing(rng):
    """The quadrature look-ahead window is a latency knob, not semantics."""
    objects = make_random_objects(rng, 10)
    q = 30.0
    query = CPNNQuery(q, threshold=0.2, tolerance=0.0)
    dists = [obj.distance_distribution(q) for obj in objects]
    reference = None
    for batch in (1, 3, 8, 64):
        table = SubregionTable(dists)
        states = CandidateStates(table.keys)
        Refiner(table).refine_objects(
            states.unknown_indices(),
            states,
            query,
            use_verifier_slices=False,
            batch=batch,
        )
        snapshot = (
            states.labels.tobytes(),
            states.lower.tobytes(),
            states.upper.tobytes(),
        )
        if reference is None:
            reference = snapshot
        assert snapshot == reference
