"""Circuit-breaker tests: unit-level state machine + engine-level
degrade/heal driven by deterministic fault injection (DESIGN.md §14)."""

import pytest

from repro.core.engine import EngineConfig, ShardedEngine, UncertainEngine
from repro.core.engine.executors.base import ExecutionTimeout
from repro.core.engine.executors.breaker import (
    CircuitBreaker,
    degradation_chain,
)
from repro.core.types import CPNNQuery
from repro.service.faults import FaultPlan, raise_error
from tests.conftest import make_random_objects
from tests.core.test_sharded import assert_batches_identical


class TestDegradationChain:
    def test_chain_is_a_suffix_of_the_full_order(self):
        assert degradation_chain("process") == ("process", "thread", "serial")
        assert degradation_chain("thread") == ("thread", "serial")
        assert degradation_chain("serial") == ("serial",)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            degradation_chain("auto")


class TestCircuitBreakerUnit:
    def test_trips_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker("process", threshold=3, probe_after=2)
        assert breaker.begin() == "process"
        assert breaker.record(False) is None
        assert breaker.record(False) is None
        # A healthy dispatch resets the consecutive count.
        assert breaker.record(True) is None
        assert breaker.record(False) is None
        assert breaker.record(False) is None
        assert breaker.record(False) == "degraded"
        assert breaker.backend == "thread"
        assert breaker.snapshot()["trips"] == 1

    def test_probe_heals_one_level(self):
        breaker = CircuitBreaker("thread", threshold=1, probe_after=2)
        breaker.begin()
        assert breaker.record(False) == "degraded"
        assert breaker.backend == "serial"
        # Two healthy dispatches at the degraded level earn a probe.
        assert breaker.begin() == "serial"
        breaker.record(True)
        assert breaker.begin() == "serial"
        breaker.record(True)
        assert breaker.begin() == "thread"  # the probe
        assert breaker.snapshot()["state"] == "probing"
        assert breaker.record(True) == "healed"
        assert breaker.backend == "thread"
        assert breaker.snapshot() == {
            "state": "closed",
            "configured": "thread",
            "active": "thread",
            "chain": ["thread", "serial"],
            "consecutive_failures": 0,
            "healthy_streak": 0,
            "trips": 1,
            "heals": 1,
        }

    def test_failed_probe_stays_degraded(self):
        breaker = CircuitBreaker("thread", threshold=1, probe_after=1)
        breaker.begin()
        breaker.record(False)
        breaker.begin()
        breaker.record(True)
        assert breaker.begin() == "thread"  # probe
        assert breaker.record(False) is None
        assert breaker.backend == "serial"
        # The streak restarts; the next dispatch is not a probe.
        assert breaker.begin() == "serial"

    def test_serial_never_degrades(self):
        breaker = CircuitBreaker("serial", threshold=1, probe_after=1)
        for _ in range(5):
            breaker.begin()
            assert breaker.record(False) is None
        assert breaker.backend == "serial"
        assert breaker.snapshot()["trips"] == 0

    def test_abort_clears_probe_only(self):
        breaker = CircuitBreaker("thread", threshold=1, probe_after=1)
        breaker.begin()
        breaker.record(False)
        breaker.begin()
        breaker.record(True)
        assert breaker.begin() == "thread"  # probe armed
        breaker.abort()  # deadline expiry: no health verdict
        assert breaker.snapshot()["state"] == "degraded"
        assert breaker.snapshot()["heals"] == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker("thread", threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("thread", probe_after=0)


class TestEngineLevelBreaker:
    """Drive the breaker through a real engine with injected dispatch
    failures: degrade thread → serial, keep answering bit-identically,
    then heal when the fault clears."""

    def test_degrade_then_heal_with_identical_answers(self, rng):
        objects = make_random_objects(rng, 18)
        config = EngineConfig(breaker_threshold=2, breaker_probe_after=2)
        single = UncertainEngine(objects, config)
        specs = [CPNNQuery(q, threshold=0.3) for q in (7.0, 23.0, 41.0)]
        want = single.execute_batch(specs)
        plan = FaultPlan()
        # The first two thread dispatches blow up wholesale; answers
        # must still come back (inline fallback), and the second
        # failure trips the breaker onto the serial level.
        plan.script(
            "executor.dispatch",
            raise_error(lambda: RuntimeError("injected pool failure")),
            at=(1, 2),
            match={"backend": "thread", "kind": "pnn"},
        )
        with ShardedEngine(
            objects, config, n_shards=2, executor="thread"
        ) as engine:
            with plan:
                assert_batches_identical(engine.execute_batch(specs), want)
                snapshot = engine.stats()["executor"]["breaker"]
                assert snapshot["state"] == "closed"
                assert snapshot["consecutive_failures"] == 1
                assert_batches_identical(engine.execute_batch(specs), want)
                snapshot = engine.stats()["executor"]["breaker"]
                assert snapshot["state"] == "degraded"
                assert snapshot["active"] == "serial"
                assert engine.stats()["executor"]["inline_fallbacks"] >= 2
            # Fault cleared.  Two healthy serial dispatches earn a
            # probe back at the thread level, which heals the breaker.
            assert_batches_identical(engine.execute_batch(specs), want)
            assert_batches_identical(engine.execute_batch(specs), want)
            assert_batches_identical(engine.execute_batch(specs), want)
            snapshot = engine.stats()["executor"]["breaker"]
            assert snapshot["state"] == "closed"
            assert snapshot["active"] == "thread"
            assert snapshot["heals"] == 1
        assert len(plan.fired) == 2

    def test_deadline_expiry_does_not_trip_the_breaker(self, rng):
        objects = make_random_objects(rng, 18)
        config = EngineConfig(breaker_threshold=1, breaker_probe_after=1)
        specs = [CPNNQuery(q, threshold=0.3) for q in (5.0, 30.0, 50.0)]
        with ShardedEngine(
            objects, config, n_shards=2, executor="thread"
        ) as engine:
            for _ in range(3):
                with pytest.raises(ExecutionTimeout):
                    with engine.deadline(0.0):
                        engine.execute_batch(specs)
            snapshot = engine.stats()["executor"]["breaker"]
            assert snapshot["state"] == "closed"
            assert snapshot["trips"] == 0
