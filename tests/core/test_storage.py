"""Tests for the disk-page subregion storage (Section IV-D note)."""

import numpy as np
import pytest

from repro.core.refinement import Refiner
from repro.core.storage import (
    BufferPool,
    SubregionStore,
    rs_upper_bounds_from_store,
    subregion_bounds_from_store,
)
from repro.core.subregions import SubregionTable
from repro.core.verifiers import (
    LowerSubregionVerifier,
    RightmostSubregionVerifier,
    UpperSubregionVerifier,
)
from tests.conftest import make_random_objects, two_object_textbook_case


def store_for(objects, q, **kwargs):
    table = SubregionTable([o.distance_distribution(q) for o in objects])
    return SubregionStore(table, **kwargs)


class TestBufferPool:
    def test_needs_capacity(self):
        with pytest.raises(ValueError):
            BufferPool(0)

    def test_hit_and_fault_accounting(self):
        pool = BufferPool(2)
        pool.write_page(0, b"a")
        pool.write_page(1, b"b")
        pool.write_page(2, b"c")
        pool.read_page(0)
        pool.read_page(0)
        assert pool.stats.logical_reads == 2
        assert pool.stats.page_faults == 1
        assert pool.stats.hit_rate == pytest.approx(0.5)

    def test_lru_eviction(self):
        pool = BufferPool(2)
        for pid in range(3):
            pool.write_page(pid, bytes([pid]))
        pool.read_page(0)
        pool.read_page(1)
        pool.read_page(2)  # evicts page 0
        assert pool.stats.evictions == 1
        pool.read_page(1)  # still resident
        faults_before = pool.stats.page_faults
        pool.read_page(0)  # must fault again
        assert pool.stats.page_faults == faults_before + 1

    def test_missing_page(self):
        pool = BufferPool(1)
        with pytest.raises(KeyError):
            pool.read_page(99)


class TestSubregionStore:
    def test_page_count_matches_entries(self, rng):
        objects = make_random_objects(rng, 12)
        store = store_for(objects, 30.0, page_size=4 * 24, pool_pages=8)
        # 4 entries per page; total pages ≥ ceil(entries / 4) (chains
        # do not share pages, so per-subregion rounding adds a few).
        entries = store.total_entries()
        assert store.entries_per_page == 4
        assert store.n_pages >= int(np.ceil(entries / 4))
        assert store.n_pages <= store.table.n_inner + entries // 4 + 1

    def test_scan_returns_table_rows(self):
        objects, q = two_object_textbook_case()
        store = store_for(objects, q)
        table = store.table
        for j in range(table.n_inner):
            scanned = {row: (s, d) for row, s, d in store.scan_subregion(j)}
            expected_rows = set(np.flatnonzero(table.s_inner[:, j] > 0))
            assert set(scanned) == expected_rows
            for row, (s, d) in scanned.items():
                assert s == pytest.approx(table.s_inner[row, j])
                assert d == pytest.approx(table.cdf_at_edges[row, j])

    def test_unknown_subregion(self, rng):
        store = store_for(make_random_objects(rng, 4), 0.0)
        with pytest.raises(KeyError):
            list(store.scan_subregion(10_000))

    def test_page_size_validation(self, rng):
        objects = make_random_objects(rng, 4)
        with pytest.raises(ValueError):
            store_for(objects, 0.0, page_size=8)

    def test_sequential_scan_faults_each_page_once(self, rng):
        objects = make_random_objects(rng, 15)
        store = store_for(objects, 30.0, page_size=64 * 24, pool_pages=128)
        store.pool.reset_stats()
        store.pool.drop_cache()
        for j in range(store.table.n_inner):
            list(store.scan_subregion(j))
        assert store.pool.stats.page_faults == store.n_pages

    def test_tiny_pool_thrashes_on_repeated_scans(self, rng):
        objects = make_random_objects(rng, 15)
        store = store_for(objects, 30.0, page_size=2 * 24, pool_pages=1)
        store.pool.reset_stats()
        for _ in range(2):
            for j in range(store.table.n_inner):
                list(store.scan_subregion(j))
        stats = store.pool.stats
        if store.n_pages > 1:
            assert stats.evictions > 0
            # Second pass re-faults everything: no inter-pass reuse.
            assert stats.page_faults >= store.n_pages * 2 - 1


class TestStorageBackedVerifiers:
    def test_rs_matches_in_memory(self, rng):
        for _ in range(5):
            objects = make_random_objects(rng, int(rng.integers(3, 14)))
            q = float(rng.uniform(0, 60))
            store = store_for(objects, q)
            from_store = rs_upper_bounds_from_store(store)
            in_memory = RightmostSubregionVerifier().compute(store.table).upper
            assert np.allclose(from_store, in_memory, atol=1e-9)

    def test_lsr_usr_match_in_memory(self, rng):
        for _ in range(5):
            objects = make_random_objects(rng, int(rng.integers(3, 14)))
            q = float(rng.uniform(0, 60))
            store = store_for(objects, q)
            lower, upper = subregion_bounds_from_store(store)
            lsr = LowerSubregionVerifier().compute(store.table).lower
            usr = UpperSubregionVerifier().compute(store.table).upper
            assert np.allclose(lower, lsr, atol=1e-9)
            assert np.allclose(upper, usr, atol=1e-9)

    def test_bounds_sound_against_exact(self, rng):
        objects = make_random_objects(rng, 10)
        q = 30.0
        store = store_for(objects, q)
        lower, upper = subregion_bounds_from_store(store)
        exact = Refiner(store.table).exact_all()
        assert np.all(lower - 1e-9 <= exact)
        assert np.all(exact <= upper + 1e-9)

    def test_textbook_values(self):
        objects, q = two_object_textbook_case()
        store = store_for(objects, q)
        lower, upper = subregion_bounds_from_store(store)
        assert np.allclose(lower, [0.75, 0.125])
        assert np.allclose(upper, [0.875, 0.125])
