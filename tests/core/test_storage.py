"""Tests for the disk-page subregion storage (Section IV-D note)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.refinement import Refiner
from repro.core.storage import (
    BufferPool,
    SubregionStore,
    rs_upper_bounds_from_store,
    subregion_bounds_from_store,
)
from repro.core.subregions import SubregionTable
from repro.core.verifiers import (
    LowerSubregionVerifier,
    RightmostSubregionVerifier,
    UpperSubregionVerifier,
)
from tests.conftest import make_random_objects, two_object_textbook_case


def store_for(objects, q, **kwargs):
    table = SubregionTable([o.distance_distribution(q) for o in objects])
    return SubregionStore(table, **kwargs)


class TestBufferPool:
    def test_needs_capacity(self):
        with pytest.raises(ValueError):
            BufferPool(0)

    def test_hit_and_fault_accounting(self):
        pool = BufferPool(2)
        pool.write_page(0, b"a")
        pool.write_page(1, b"b")
        pool.write_page(2, b"c")
        pool.read_page(0)
        pool.read_page(0)
        assert pool.stats.logical_reads == 2
        assert pool.stats.page_faults == 1
        assert pool.stats.hit_rate == pytest.approx(0.5)

    def test_lru_eviction(self):
        pool = BufferPool(2)
        for pid in range(3):
            pool.write_page(pid, bytes([pid]))
        pool.read_page(0)
        pool.read_page(1)
        pool.read_page(2)  # evicts page 0
        assert pool.stats.evictions == 1
        pool.read_page(1)  # still resident
        faults_before = pool.stats.page_faults
        pool.read_page(0)  # must fault again
        assert pool.stats.page_faults == faults_before + 1

    def test_missing_page(self):
        pool = BufferPool(1)
        with pytest.raises(KeyError):
            pool.read_page(99)


class TestBufferPoolThrash:
    """The thrash path: pools too small for the working set.

    The pool must stay *correct* (bounds identical to in-memory) while
    its counters expose the cost — the property the storage benchmark
    and DESIGN.md §12's sizing advice rely on.
    """

    def test_pool_smaller_than_one_page_chain(self, rng):
        # One entry per page and a 1-frame pool: every chain longer
        # than one page evicts *within its own scan*.
        objects = make_random_objects(rng, 15)
        store = store_for(objects, 30.0, page_size=24, pool_pages=1)
        chain_lengths = store.directory_sizes
        longest = max(chain_lengths.values())
        assert longest > store.pool.capacity  # the scenario is real
        store.pool.reset_stats()
        store.pool.drop_cache()
        j_long = max(chain_lengths, key=chain_lengths.get)
        list(store.scan_subregion(j_long))
        stats = store.pool.stats
        # Every page of the chain faulted, and all but the first
        # fault evicted the previous page.
        assert stats.logical_reads == chain_lengths[j_long]
        assert stats.page_faults == chain_lengths[j_long]
        assert stats.evictions == chain_lengths[j_long] - 1
        # Scanning the same chain again reuses nothing: the head page
        # was evicted by the tail.
        list(store.scan_subregion(j_long))
        assert stats.page_faults == 2 * chain_lengths[j_long]

    def test_eviction_counter_exact(self):
        pool = BufferPool(2)
        for pid in range(5):
            pool.write_page(pid, bytes([pid]))
        for pid in [0, 1, 2, 3, 4, 0, 1]:  # strict LRU worst case
            pool.read_page(pid)
        stats = pool.stats
        assert stats.logical_reads == 7
        assert stats.page_faults == 7
        # Evictions = faults - capacity once the pool has filled.
        assert stats.evictions == 7 - pool.capacity
        assert stats.hit_rate == 0.0

    def test_hit_rate_with_partial_reuse(self):
        pool = BufferPool(2)
        for pid in range(3):
            pool.write_page(pid, bytes([pid]))
        pool.read_page(0)
        pool.read_page(1)
        pool.read_page(0)  # hit
        pool.read_page(2)  # evicts 1
        pool.read_page(0)  # hit (still resident)
        assert pool.stats.page_faults == 3
        assert pool.stats.evictions == 1
        assert pool.stats.hit_rate == pytest.approx(2 / 5)

    @given(
        n_objects=st.integers(min_value=3, max_value=12),
        q=st.floats(min_value=0.0, max_value=60.0),
        pool_pages=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_bounds_survive_evictions(self, n_objects, q, pool_pages, seed):
        """Storage-backed verifier bounds equal the in-memory bounds no
        matter how hard the pool thrashes — eviction affects cost, never
        values."""
        objects = make_random_objects(np.random.default_rng(seed), n_objects)
        # One entry per page maximises chain lengths relative to the
        # tiny pool, forcing evictions mid-scan for most draws.
        store = store_for(objects, q, page_size=24, pool_pages=pool_pages)
        lower, upper = subregion_bounds_from_store(store)
        rs_upper = rs_upper_bounds_from_store(store)
        table = store.table
        assert np.allclose(
            lower, LowerSubregionVerifier().compute(table).lower, atol=1e-12
        )
        assert np.allclose(
            upper, UpperSubregionVerifier().compute(table).upper, atol=1e-12
        )
        assert np.allclose(
            rs_upper, RightmostSubregionVerifier().compute(table).upper, atol=1e-12
        )
        # Re-running after the thrash gives the same values again.
        lower2, upper2 = subregion_bounds_from_store(store)
        assert np.array_equal(lower, lower2)
        assert np.array_equal(upper, upper2)
        if store.n_pages > pool_pages:
            assert store.pool.stats.evictions > 0


class TestSubregionStore:
    def test_page_count_matches_entries(self, rng):
        objects = make_random_objects(rng, 12)
        store = store_for(objects, 30.0, page_size=4 * 24, pool_pages=8)
        # 4 entries per page; total pages ≥ ceil(entries / 4) (chains
        # do not share pages, so per-subregion rounding adds a few).
        entries = store.total_entries()
        assert store.entries_per_page == 4
        assert store.n_pages >= int(np.ceil(entries / 4))
        assert store.n_pages <= store.table.n_inner + entries // 4 + 1

    def test_scan_returns_table_rows(self):
        objects, q = two_object_textbook_case()
        store = store_for(objects, q)
        table = store.table
        for j in range(table.n_inner):
            scanned = {row: (s, d) for row, s, d in store.scan_subregion(j)}
            expected_rows = set(np.flatnonzero(table.s_inner[:, j] > 0))
            assert set(scanned) == expected_rows
            for row, (s, d) in scanned.items():
                assert s == pytest.approx(table.s_inner[row, j])
                assert d == pytest.approx(table.cdf_at_edges[row, j])

    def test_unknown_subregion(self, rng):
        store = store_for(make_random_objects(rng, 4), 0.0)
        with pytest.raises(KeyError):
            list(store.scan_subregion(10_000))

    def test_page_size_validation(self, rng):
        objects = make_random_objects(rng, 4)
        with pytest.raises(ValueError):
            store_for(objects, 0.0, page_size=8)

    def test_sequential_scan_faults_each_page_once(self, rng):
        objects = make_random_objects(rng, 15)
        store = store_for(objects, 30.0, page_size=64 * 24, pool_pages=128)
        store.pool.reset_stats()
        store.pool.drop_cache()
        for j in range(store.table.n_inner):
            list(store.scan_subregion(j))
        assert store.pool.stats.page_faults == store.n_pages

    def test_tiny_pool_thrashes_on_repeated_scans(self, rng):
        objects = make_random_objects(rng, 15)
        store = store_for(objects, 30.0, page_size=2 * 24, pool_pages=1)
        store.pool.reset_stats()
        for _ in range(2):
            for j in range(store.table.n_inner):
                list(store.scan_subregion(j))
        stats = store.pool.stats
        if store.n_pages > 1:
            assert stats.evictions > 0
            # Second pass re-faults everything: no inter-pass reuse.
            assert stats.page_faults >= store.n_pages * 2 - 1


class TestStorageBackedVerifiers:
    def test_rs_matches_in_memory(self, rng):
        for _ in range(5):
            objects = make_random_objects(rng, int(rng.integers(3, 14)))
            q = float(rng.uniform(0, 60))
            store = store_for(objects, q)
            from_store = rs_upper_bounds_from_store(store)
            in_memory = RightmostSubregionVerifier().compute(store.table).upper
            assert np.allclose(from_store, in_memory, atol=1e-9)

    def test_lsr_usr_match_in_memory(self, rng):
        for _ in range(5):
            objects = make_random_objects(rng, int(rng.integers(3, 14)))
            q = float(rng.uniform(0, 60))
            store = store_for(objects, q)
            lower, upper = subregion_bounds_from_store(store)
            lsr = LowerSubregionVerifier().compute(store.table).lower
            usr = UpperSubregionVerifier().compute(store.table).upper
            assert np.allclose(lower, lsr, atol=1e-9)
            assert np.allclose(upper, usr, atol=1e-9)

    def test_bounds_sound_against_exact(self, rng):
        objects = make_random_objects(rng, 10)
        q = 30.0
        store = store_for(objects, q)
        lower, upper = subregion_bounds_from_store(store)
        exact = Refiner(store.table).exact_all()
        assert np.all(lower - 1e-9 <= exact)
        assert np.all(exact <= upper + 1e-9)

    def test_textbook_values(self):
        objects, q = two_object_textbook_case()
        store = store_for(objects, q)
        lower, upper = subregion_bounds_from_store(store)
        assert np.allclose(lower, [0.75, 0.125])
        assert np.allclose(upper, [0.875, 0.125])
