"""The engine's storage knob (DESIGN.md §16): config, stats, lifecycle.

``EngineConfig(storage=...)`` selects where the batch filter's
coordinate columns live; everything observable about that choice —
validation, the ``stats()["storage"]`` counters, the ``explain()``
stamp, store release on ``close()``, sharded aggregation, and the
process executor's mmap transport — is pinned here.  Answer-level
backend invariance lives in
``tests/property/test_storage_equivalence.py``.
"""

import glob
import os
import tempfile

import numpy as np
import pytest

from repro.core.engine import EngineConfig, ShardedEngine, UncertainEngine
from repro.core.types import CPNNQuery
from repro.storage.mmapstore import FILE_PREFIX
from tests.conftest import make_random_objects

THRASH = {"storage_page_bytes": 1 << 12, "storage_pool_pages": 2}


def specs_for(rng, n=6):
    return [
        CPNNQuery(float(q), threshold=0.3)
        for q in rng.uniform(0.0, 60.0, n)
    ]


class TestConfigValidation:
    def test_backends_accepted(self):
        for backend in ("ram", "shm", "mmap"):
            assert EngineConfig(storage=backend).storage == backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(storage="tape")

    def test_pool_knobs_validated(self):
        with pytest.raises(ValueError):
            EngineConfig(storage_pool_pages=0)
        with pytest.raises(ValueError):
            EngineConfig(storage_page_bytes=0)

    def test_default_is_ram(self):
        config = EngineConfig()
        assert config.storage == "ram"
        assert config.storage_dir is None


class TestStatsSurface:
    def test_ram_engine_reports_zero_stores(self, rng):
        engine = UncertainEngine(make_random_objects(rng, 12))
        engine.execute_batch(specs_for(rng))
        storage = engine.stats()["storage"]
        assert storage["backend"] == "ram"
        assert storage["stores"] == 0
        assert storage["page_faults"] == 0

    def test_mmap_engine_reports_pool_counters(self, rng):
        engine = UncertainEngine(
            make_random_objects(rng, 30),
            EngineConfig(storage="mmap", **THRASH),
        )
        try:
            engine.execute_batch(specs_for(rng))
            storage = engine.stats()["storage"]
            assert storage["backend"] == "mmap"
            assert storage["stores"] >= 1
            assert storage["nbytes"] > 0
            assert storage["logical_reads"] > 0
            assert storage["page_faults"] > 0
            assert 0.0 <= storage["hit_rate"] <= 1.0
        finally:
            engine.close()

    def test_explain_stamps_storage(self, rng):
        engine = UncertainEngine(
            make_random_objects(rng, 12), EngineConfig(storage="shm")
        )
        try:
            plan = engine.explain(CPNNQuery(20.0, threshold=0.3))
            assert plan.storage["backend"] == "shm"
            assert plan.storage["stores"] >= 1
        finally:
            engine.close()

    def test_storage_dir_is_honoured(self, rng):
        with tempfile.TemporaryDirectory() as spill:
            engine = UncertainEngine(
                make_random_objects(rng, 12),
                EngineConfig(storage="mmap", storage_dir=spill),
            )
            try:
                engine.execute_batch(specs_for(rng, 3))
                spilled = glob.glob(os.path.join(spill, f"{FILE_PREFIX}*"))
                assert spilled, "no column file in the configured directory"
            finally:
                engine.close()
            assert not glob.glob(os.path.join(spill, f"{FILE_PREFIX}*"))


class TestLifecycle:
    def test_close_unlinks_mmap_files(self, rng):
        before = set(glob.glob(
            os.path.join(tempfile.gettempdir(), f"{FILE_PREFIX}*")
        ))
        engine = UncertainEngine(
            make_random_objects(rng, 12), EngineConfig(storage="mmap")
        )
        engine.execute_batch(specs_for(rng, 3))
        engine.close()
        after = set(glob.glob(
            os.path.join(tempfile.gettempdir(), f"{FILE_PREFIX}*")
        ))
        assert after <= before

    def test_mutations_after_close_rebuild_on_fresh_store(self, rng):
        objects = make_random_objects(rng, 12)
        engine = UncertainEngine(
            list(objects), EngineConfig(storage="mmap", **THRASH)
        )
        engine.execute_batch(specs_for(rng, 3))
        engine.close()
        from repro.uncertainty.objects import UncertainObject

        newcomer = UncertainObject.uniform("fresh", 20.0, 23.0)
        engine.insert(newcomer)
        reference = UncertainEngine(list(objects) + [newcomer])
        probe = specs_for(np.random.default_rng(6), 4)
        got = engine.execute_batch(probe)
        want = reference.execute_batch(probe)
        for a, b in zip(got.results, want.results):
            assert a.answers == b.answers
        assert engine.stats()["storage"]["stores"] >= 1
        engine.close()


class TestShardedAggregation:
    def test_storage_stats_aggregate_over_shards(self, rng):
        objects = make_random_objects(rng, 40)
        engine = ShardedEngine(
            objects,
            EngineConfig(storage="mmap", **THRASH),
            n_shards=3,
            max_workers=2,
        )
        try:
            engine.execute_batch(specs_for(rng))
            storage = engine.stats()["storage"]
            assert storage["backend"] == "mmap"
            # One coordinate store per non-empty shard.
            assert storage["stores"] >= 2
            assert storage["page_faults"] > 0
            assert 0.0 <= storage["hit_rate"] <= 1.0
        finally:
            engine.close()

    def test_sharded_close_releases_every_shard(self, rng):
        engine = ShardedEngine(
            make_random_objects(rng, 30),
            EngineConfig(storage="shm"),
            n_shards=3,
            max_workers=2,
        )
        engine.execute_batch(specs_for(rng, 3))
        assert engine.stats()["storage"]["stores"] >= 1
        engine.close()
        assert engine.stats()["storage"]["stores"] == 0


class TestProcessTransport:
    def test_mmap_transport_attaches_without_fallback(self, rng):
        """With ``storage="mmap"`` the process executor ships the
        coordinate columns as an mmap file descriptor; spawned workers
        must attach it (no local-rebuild fallback) and answer exactly
        like a serial ram engine."""
        objects = make_random_objects(rng, 40)
        specs = specs_for(rng, 8)
        want = UncertainEngine(list(objects)).execute_batch(specs)
        engine = ShardedEngine(
            objects,
            EngineConfig(storage="mmap", process_min_batch=0, **THRASH),
            n_shards=2,
            max_workers=2,
            executor="process",
        )
        try:
            got = engine.execute_batch(specs)
            for a, b in zip(got.results, want.results):
                assert a.answers == b.answers
            executor_stats = engine.stats()["executor"]
            assert executor_stats["shm_fallbacks"] == 0
            assert executor_stats["worker_failures"] == 0
        finally:
            engine.close()

    def test_shm_transport_still_default(self, rng):
        objects = make_random_objects(rng, 30)
        specs = specs_for(rng, 6)
        want = UncertainEngine(list(objects)).execute_batch(specs)
        engine = ShardedEngine(
            objects,
            EngineConfig(storage="shm", process_min_batch=0),
            n_shards=2,
            max_workers=2,
            executor="process",
        )
        try:
            got = engine.execute_batch(specs)
            for a, b in zip(got.results, want.results):
                assert a.answers == b.answers
            assert engine.stats()["executor"]["shm_fallbacks"] == 0
        finally:
            engine.close()
