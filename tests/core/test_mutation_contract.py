"""The mutation contract, tested once against every engine.

The canonical statement lives in ``repro/core/engine/registry.py``
(module docstring, "The mutation contract"); this module is its single
enforcement point, parameterised over :class:`UncertainEngine` and
:class:`ShardedEngine` so the two can never drift apart:

* ``insert`` — ``ValueError`` on duplicate key / dimension mismatch;
* ``remove`` — ``True``/``False``, never raises on a missing key;
* ``replace`` — ``KeyError`` on a missing key, ``ValueError`` on a
  key collision or dimension mismatch, position preserved on success.
"""

import numpy as np
import pytest

from repro.core.engine import ShardedEngine, UncertainEngine
from repro.core.types import CPNNQuery
from repro.uncertainty.objects import UncertainObject
from repro.uncertainty.twod import UncertainDisk
from tests.conftest import make_random_objects

ENGINES = [
    pytest.param(lambda objs: UncertainEngine(objs), id="uncertain"),
    pytest.param(
        lambda objs: ShardedEngine(objs, n_shards=3, max_workers=1),
        id="sharded",
    ),
]


@pytest.fixture
def objects(rng):
    return make_random_objects(rng, 8)


@pytest.mark.parametrize("factory", ENGINES)
class TestInsert:
    def test_duplicate_key_rejected(self, factory, objects):
        engine = factory(objects)
        with pytest.raises(ValueError, match="duplicate object key"):
            engine.insert(UncertainObject.uniform(objects[0].key, 0.0, 1.0))

    def test_dimension_mismatch_rejected(self, factory, objects):
        engine = factory(objects)
        with pytest.raises(ValueError, match="dimensionality"):
            engine.insert(UncertainDisk("d", (1.0, 2.0), 0.5, distance_bins=16))

    def test_visible_immediately(self, factory, objects):
        engine = factory(objects)
        engine.insert(UncertainObject.uniform("fresh", 100.0, 101.0))
        assert len(engine) == len(objects) + 1
        assert engine.execute(CPNNQuery(100.5)).answers == ("fresh",)


@pytest.mark.parametrize("factory", ENGINES)
class TestRemove:
    def test_missing_key_returns_false(self, factory, objects):
        engine = factory(objects)
        assert engine.remove("never-inserted") is False
        assert len(engine) == len(objects)

    def test_present_key_returns_true(self, factory, objects):
        engine = factory(objects)
        assert engine.remove(objects[3].key) is True
        assert len(engine) == len(objects) - 1
        # Idempotent: a second removal of the same key is False.
        assert engine.remove(objects[3].key) is False

    def test_may_drain_the_engine(self, factory, objects):
        engine = factory(objects)
        for obj in objects:
            assert engine.remove(obj.key) is True
        assert len(engine) == 0
        assert engine.execute(CPNNQuery(1.0)).answers == ()

    def test_removed_key_then_replace_raises(self, factory, objects):
        engine = factory(objects)
        assert engine.remove(objects[0].key)
        with pytest.raises(KeyError):
            engine.replace(
                objects[0].key, UncertainObject.uniform(objects[0].key, 0.0, 1.0)
            )


@pytest.mark.parametrize("factory", ENGINES)
class TestReplace:
    def test_missing_key_raises_keyerror(self, factory, objects):
        engine = factory(objects)
        with pytest.raises(KeyError):
            engine.replace("never-inserted", UncertainObject.uniform("x", 0.0, 1.0))
        # ...and the failed replace mutated nothing.
        assert len(engine) == len(objects)
        assert [o.key for o in engine.objects] == [o.key for o in objects]

    def test_key_collision_rejected(self, factory, objects):
        engine = factory(objects)
        with pytest.raises(ValueError, match="duplicate object key"):
            engine.replace(
                objects[0].key,
                UncertainObject.uniform(objects[1].key, 0.0, 1.0),
            )

    def test_dimension_mismatch_rejected(self, factory, objects):
        engine = factory(objects)
        with pytest.raises(ValueError, match="dimensionality"):
            engine.replace(
                objects[0].key, UncertainDisk("d", (1.0, 2.0), 0.5, distance_bins=16)
            )

    def test_position_preserved(self, factory, objects):
        engine = factory(objects)
        replacement = UncertainObject.uniform(objects[2].key, 40.0, 42.0)
        engine.replace(objects[2].key, replacement)
        assert engine.objects[2] is replacement

    def test_key_change_allowed(self, factory, objects):
        engine = factory(objects)
        replacement = UncertainObject.uniform("renamed", 40.0, 42.0)
        engine.replace(objects[2].key, replacement)
        assert engine.objects[2] is replacement
        assert engine.remove(objects[2].key) is False  # old key gone
        assert engine.remove("renamed") is True


@pytest.mark.parametrize("factory", ENGINES)
def test_drain_then_refill_with_different_dimensionality(factory, rng):
    """Draining resets every geometry-holding maintenance structure
    (DESIGN.md §11): a refill may legally change dimensionality, so no
    queued 1-D invalidation box or cached 1-D table may survive into
    the 2-D world (regression: ragged-array crash in the next batch)."""
    objects = make_random_objects(rng, 5)
    engine = factory(list(objects))
    # Cache a table and queue invalidations, then drain completely.
    engine.execute_batch([CPNNQuery(30.0, threshold=0.3, tolerance=0.0)])
    for obj in objects:
        assert engine.remove(obj.key)
    assert len(engine) == 0
    disks = [
        UncertainDisk(("d", i), (float(i * 7.0), float(i * 3.0)), 1.0,
                      distance_bins=16)
        for i in range(4)
    ]
    for disk in disks:
        engine.insert(disk)
    result = engine.execute(CPNNQuery((7.0, 3.0), threshold=0.2, tolerance=0.0))
    reference = UncertainEngine(list(disks)).execute(
        CPNNQuery((7.0, 3.0), threshold=0.2, tolerance=0.0)
    )
    assert frozenset(result.answers) == frozenset(reference.answers)


@pytest.mark.parametrize("factory", ENGINES)
def test_contract_interplay_stays_queryable(factory, rng):
    """A mixed churn stream obeying the contract keeps answers exact."""
    objects = make_random_objects(rng, 10)
    engine = factory(list(objects))
    mirror = list(objects)
    for i in range(12):
        roll = i % 3
        if roll == 0:
            obj = UncertainObject.uniform(("c", i), float(5 * i % 55), float(5 * i % 55) + 2.0)
            engine.insert(obj)
            mirror.append(obj)
        elif roll == 1 and mirror:
            victim = mirror.pop(int(rng.integers(0, len(mirror))))
            assert engine.remove(victim.key)
        elif mirror:
            index = int(rng.integers(0, len(mirror)))
            obj = UncertainObject.uniform(mirror[index].key, float(3 * i), float(3 * i) + 1.5)
            engine.replace(obj.key, obj)
            mirror[index] = obj
    fresh = UncertainEngine(list(mirror))
    got = engine.execute_batch([CPNNQuery(q, threshold=0.3, tolerance=0.0) for q in (5.0, 25.0, 45.0)])
    want = fresh.execute_batch([CPNNQuery(q, threshold=0.3, tolerance=0.0) for q in (5.0, 25.0, 45.0)])
    for a, b in zip(got.results, want.results):
        assert a.answers == b.answers
        assert (a.fmin == b.fmin) or (np.isnan(a.fmin) and np.isnan(b.fmin))
        for x, y in zip(a.records, b.records):
            assert (x.key, x.lower, x.upper, x.exact) == (y.key, y.lower, y.upper, y.exact)
