"""Tests for the shared experiment workloads and public API surface."""

import numpy as np
import pytest

from repro.core.types import CKNNQuery, CPNNQuery
from repro.experiments.workloads import (
    StreamingWorkload,
    cached_engine,
    query_points,
)


class TestWorkloadCache:
    def test_engine_is_memoised(self):
        a = cached_engine(500)
        b = cached_engine(500)
        assert a is b
        assert len(a) == 500

    def test_distinct_configurations_distinct_engines(self):
        a = cached_engine(500)
        b = cached_engine(500, pdf="gaussian", bars=20)
        assert a is not b

    def test_query_points_deterministic(self):
        assert np.array_equal(query_points(5), query_points(5))
        assert not np.array_equal(query_points(5), query_points(5, seed=99))


class TestStreamingWorkload:
    def _small(self, **kwargs):
        defaults = dict(n_objects=30, churn=0.2, n_queries=4, seed=11)
        defaults.update(kwargs)
        return StreamingWorkload(**defaults)

    def test_ticks_are_memoised_and_deterministic(self):
        workload = self._small()
        first = workload.tick(2)
        again = workload.tick(2)
        assert first is again
        assert len(first.replacements) == workload.reports_per_tick == 6
        # Replacement objects are the same instances on re-access, so
        # two engines driven by the stream replay identical updates.
        assert first.replacements[0][1] is again.replacements[0][1]

    def test_replacement_keys_belong_to_the_fleet(self):
        workload = self._small()
        keys = {obj.key for obj in workload.initial_objects()}
        for tick in workload.ticks(3):
            for key, obj in tick.replacements:
                assert key in keys
                assert obj.key == key

    def test_specs_fixed_across_ticks(self):
        workload = self._small()
        assert workload.tick(0).specs is workload.tick(4).specs
        assert all(isinstance(s, CPNNQuery) for s in workload.specs)

    def test_spec_factory_hook(self):
        workload = self._small(
            spec_factory=lambda q: CKNNQuery(q, threshold=0.4, k=2)
        )
        assert all(isinstance(s, CKNNQuery) for s in workload.specs)

    def test_drive_applies_updates_and_queries(self):
        workload = self._small()
        engine = workload.make_engine()
        results = workload.drive(engine, 3)
        assert len(results) == 3
        assert all(len(batch.results) == 4 for batch in results)
        assert len(engine) == 30  # replacements never change the count

    def test_two_engines_driven_identically(self):
        workload = self._small()
        a = workload.drive(workload.make_engine(), 3)
        b = workload.drive(workload.make_engine(), 3)
        for x, y in zip(a, b):
            assert x.answers == y.answers

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamingWorkload(n_objects=0)
        with pytest.raises(ValueError):
            StreamingWorkload(churn=1.5)


class TestPublicApi:
    def test_top_level_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_core_exports_resolve(self):
        import repro.core

        for name in repro.core.__all__:
            assert getattr(repro.core, name) is not None

    def test_version(self):
        import repro

        assert repro.__version__ == "2.0.0"
