"""Tests for the shared experiment workload cache and public API surface."""

import numpy as np

from repro.experiments.workloads import cached_engine, query_points


class TestWorkloadCache:
    def test_engine_is_memoised(self):
        a = cached_engine(500)
        b = cached_engine(500)
        assert a is b
        assert len(a) == 500

    def test_distinct_configurations_distinct_engines(self):
        a = cached_engine(500)
        b = cached_engine(500, pdf="gaussian", bars=20)
        assert a is not b

    def test_query_points_deterministic(self):
        assert np.array_equal(query_points(5), query_points(5))
        assert not np.array_equal(query_points(5), query_points(5, seed=99))


class TestPublicApi:
    def test_top_level_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_core_exports_resolve(self):
        import repro.core

        for name in repro.core.__all__:
            assert getattr(repro.core, name) is not None

    def test_version(self):
        import repro

        assert repro.__version__ == "2.0.0"
