"""`StreamingWorkload.drive(continuous=True)`: the monitored stream.

The continuous drive must answer exactly like the batch drive over the
same memoised stream — the replay tier is invisible in the answers —
while reporting per-tick what it re-executed vs replayed.
"""

import pytest

from repro.continuous import ContinuousMonitor, TickReport
from repro.core.types import CKNNQuery, CRangeQuery
from repro.experiments.workloads import StreamingWorkload


def make_workload(**overrides):
    params = dict(
        n_objects=120,
        churn=0.05,
        n_queries=6,
        domain=(0.0, 400.0),
        halfwidth=2.0,
        drift_sigma=1.0,
        threshold=0.3,
        seed=97,
    )
    params.update(overrides)
    return StreamingWorkload(**params)


def test_continuous_drive_returns_tick_reports():
    workload = make_workload()
    engine = workload.make_engine()
    reports = workload.drive(engine, 4, continuous=True)
    assert len(reports) == 4
    assert all(isinstance(r, TickReport) for r in reports)
    assert [r.index for r in reports] == [1, 2, 3, 4]
    for report in reports:
        assert report.registered == 6
        assert len(report.reexecuted) + report.replayed == 6


def test_continuous_drive_matches_batch_drive_every_tick():
    workload = make_workload()
    continuous_engine = workload.make_engine()
    batch_engine = workload.make_engine()
    n_ticks = 5
    workload.drive(continuous_engine, n_ticks, continuous=True)
    batches = workload.drive(batch_engine, n_ticks)
    # Replay the stream once more on a third engine, checking answers
    # after *every* tick (the final-state check above would miss a
    # transiently wrong replay).
    check_engine = workload.make_engine()
    monitor = ContinuousMonitor(check_engine)
    handles = monitor.register_many(list(workload.specs))
    for tick_index in range(n_ticks):
        tick = workload.tick(tick_index)
        for key, obj in tick.replacements:
            monitor.replace(key, obj)
        monitor.tick()
        want = [result.answers for result in batches[tick_index].results]
        assert [handle.answers for handle in handles] == want


def test_on_tick_hook_observes_each_report():
    workload = make_workload()
    engine = workload.make_engine()
    seen = []
    reports = workload.drive(
        engine, 3, continuous=True, on_tick=lambda r: seen.append(r)
    )
    assert seen == reports


def test_on_tick_requires_continuous():
    workload = make_workload()
    engine = workload.make_engine()
    with pytest.raises(ValueError):
        workload.drive(engine, 1, on_tick=lambda r: None)


def test_continuous_drive_reuses_attached_monitor():
    workload = make_workload()
    engine = workload.make_engine()
    monitor = ContinuousMonitor(engine)
    monitor.register_many(list(workload.specs))
    workload.drive(engine, 2, continuous=True)
    # Driving again continues the same registrations (no duplicates).
    workload.drive(engine, 2, start=2, continuous=True)
    assert len(monitor) == len(workload.specs)
    assert monitor.stats()["ticks"] == 4


def test_continuous_drive_with_structural_spec_families():
    def factory(q):
        return CKNNQuery(q, k=2, threshold=0.3)

    workload = make_workload(spec_factory=factory, n_queries=4)
    continuous_engine = workload.make_engine()
    batch_engine = workload.make_engine()
    workload.drive(continuous_engine, 3, continuous=True)
    batches = workload.drive(batch_engine, 3)
    monitor = continuous_engine._continuous
    want = [result.answers for result in batches[-1].results]
    assert [handle.answers for handle in monitor.handles] == want


def test_continuous_drive_range_specs():
    def factory(q):
        return CRangeQuery(q, radius=6.0, threshold=0.4)

    workload = make_workload(spec_factory=factory, n_queries=4)
    continuous_engine = workload.make_engine()
    batch_engine = workload.make_engine()
    workload.drive(continuous_engine, 3, continuous=True)
    batches = workload.drive(batch_engine, 3)
    monitor = continuous_engine._continuous
    want = [result.answers for result in batches[-1].results]
    assert [handle.answers for handle in monitor.handles] == want


def test_low_churn_ticks_are_sublinear():
    # Rare, small reports over a wide domain: most certificates are
    # never touched, so most queries replay.
    workload = make_workload(
        n_objects=400, churn=0.01, n_queries=16, domain=(0.0, 4000.0)
    )
    engine = workload.make_engine()
    reports = workload.drive(engine, 6, continuous=True)
    replayed = sum(r.replayed for r in reports)
    opportunities = sum(r.registered for r in reports)
    assert replayed / opportunities > 0.5
