"""Smoke tests: every experiment driver runs end-to-end on a tiny
configuration and produces the series its figure needs."""

import os

import pytest

from repro.experiments import fig09_basic_vs_filtering as fig09
from repro.experiments import fig10_time_vs_threshold as fig10
from repro.experiments import fig11_vr_breakdown as fig11
from repro.experiments import fig12_verifier_comparison as fig12
from repro.experiments import fig13_tolerance as fig13
from repro.experiments import fig14_gaussian as fig14
from repro.experiments import table3_verifier_costs as table3

TINY = dict(n_queries=2, dataset_size=3000)


class TestDrivers:
    def test_fig09(self):
        result = fig09.run(fig09.Fig09Params(sizes=(500, 1500), n_queries=2))
        assert result.experiment_id == "fig9"
        assert len(result.series_by_name("basic_ms").ys) == 2
        assert all(y > 0 for y in result.series_by_name("filtering_ms").ys)

    def test_fig10(self):
        result = fig10.run(fig10.Fig10Params(thresholds=(0.3, 0.7), **TINY))
        for name in ("basic_ms", "refine_ms", "vr_ms"):
            assert len(result.series_by_name(name).ys) == 2

    def test_fig11(self):
        result = fig11.run(fig11.Fig11Params(thresholds=(0.1, 0.9), **TINY))
        assert len(result.series_by_name("refinement_ms").ys) == 2
        # Refinement work shrinks (weakly) as P grows.
        refined = result.series_by_name("avg_refined_objects").ys
        assert refined[1] <= refined[0] + 1e-9

    def test_fig12(self):
        result = fig12.run(fig12.Fig12Params(thresholds=(0.1, 0.3), **TINY))
        rs = result.series_by_name("after_RS").ys
        usr = result.series_by_name("after_U-SR").ys
        assert all(0.0 <= y <= 1.0 for y in rs + usr)
        # Later verifiers never increase the unknown fraction.
        for a, b in zip(rs, usr):
            assert b <= a + 1e-12

    def test_fig13(self):
        result = fig13.run(fig13.Fig13Params(tolerances=(0.0, 0.2), **TINY))
        finished = result.series_by_name("finished_fraction").ys
        assert all(0.0 <= y <= 1.0 for y in finished)
        assert finished[1] >= finished[0] - 1e-12  # Δ helps, never hurts

    def test_fig14(self):
        """VR wins on Gaussian workloads.

        Deflaked: the old single-shot ``basic[0] > vr[0]`` compared two
        one-query wall-clock samples, which a scheduler hiccup could
        flip.  Now the claim is best-of-3 (the driver's engine is
        memoised, so retries only re-run the queries) against an
        env-overridable floor (``FIG14_SPEEDUP_FLOOR``), and shape
        checks stay single-shot.
        """
        floor = float(os.environ.get("FIG14_SPEEDUP_FLOOR", "1.0"))
        params = fig14.Fig14Params(
            thresholds=(0.3, 1.0), n_queries=1, dataset_size=3000, bars=40
        )
        best = 0.0
        for _ in range(3):
            result = fig14.run(params)
            vr = result.series_by_name("vr_ms").ys
            basic = result.series_by_name("basic_ms").ys
            assert all(v > 0 for v in vr)
            best = max(best, basic[0] / vr[0])
            if best > floor:
                break
        assert best > floor, (
            f"VR should beat Basic on the Gaussian workload: best-of-3 "
            f"speedup {best:.2f}x <= floor {floor}"
        )

    def test_table3(self):
        result = table3.run(table3.Table3Params(sizes=(8, 16), repeats=2))
        assert len(result.series_by_name("exact_ms").ys) == 2
        assert result.series_by_name("M").ys[1] > result.series_by_name("M").ys[0]


class TestCli:
    def test_main_single_experiment(self, capsys, tmp_path):
        from repro.experiments.__main__ import main

        out = tmp_path / "out.txt"
        code = main(["table3", "--out", str(out)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "table3" in captured
        assert out.read_text().strip()
