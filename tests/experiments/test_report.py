"""Tests for result containers and table rendering."""

import pytest

from repro.experiments.report import ExperimentResult, Series, format_table


class TestSeries:
    def test_add(self):
        s = Series("time")
        s.add(1, 2.5)
        s.add(2, 3.5)
        assert s.xs == [1.0, 2.0]
        assert s.ys == [2.5, 3.5]


class TestExperimentResult:
    def make(self):
        result = ExperimentResult(
            experiment_id="figX",
            title="Demo",
            x_label="P",
            y_label="ms",
            params={"n": 3},
        )
        a = Series("a")
        b = Series("b")
        for x in (0.1, 0.2):
            a.add(x, 10 * x)
            b.add(x, 20 * x)
        result.series = [a, b]
        result.notes.append("shape note")
        return result

    def test_series_by_name(self):
        result = self.make()
        assert result.series_by_name("b").ys[0] == pytest.approx(2.0)
        with pytest.raises(KeyError):
            result.series_by_name("missing")

    def test_to_text_contains_everything(self):
        text = self.make().to_text()
        assert "figX" in text
        assert "Demo" in text
        assert "shape note" in text
        assert "n=3" in text
        assert "a" in text and "b" in text

    def test_to_text_handles_mismatched_series(self):
        result = self.make()
        result.series[1].ys.pop()
        assert "-" in result.to_text()


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["col", "x"], [["1", "22"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all rows padded to equal width
