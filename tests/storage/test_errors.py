"""Typed storage errors: a failed page read must name what failed.

Regression suite for the ``MissingPageError`` contract: the exception
carries the page id, the backend that failed, and (when the reader
supplied one) the requesting directory chain — and it still *is* a
``KeyError``, so pre-existing callers that caught ``KeyError`` keep
working unchanged.
"""

import numpy as np
import pytest

from repro.core.storage import SubregionStore
from repro.core.subregions import SubregionTable
from repro.storage import BufferPool, MissingPageError, StorageError
from tests.conftest import make_random_objects


class TestMissingPageError:
    def test_attributes_and_message(self):
        err = MissingPageError(7, backend="dict", chain="subregion 3, page 2/5")
        assert err.page_id == 7
        assert err.backend == "dict"
        assert err.chain == "subregion 3, page 2/5"
        text = str(err)
        assert "7" in text
        assert "dict" in text
        assert "subregion 3, page 2/5" in text

    def test_chain_is_optional(self):
        err = MissingPageError(3, backend="mmap")
        assert err.chain is None
        assert "mmap" in str(err)

    def test_is_a_key_error_and_a_storage_error(self):
        # Legacy callers catch KeyError; new callers catch StorageError.
        err = MissingPageError(0, backend="dict")
        assert isinstance(err, KeyError)
        assert isinstance(err, StorageError)


class TestBufferPoolRaises:
    def test_missing_page_names_page_and_backend(self):
        pool = BufferPool(1)
        with pytest.raises(MissingPageError) as info:
            pool.read_page(99)
        assert info.value.page_id == 99
        assert info.value.backend == "dict"
        assert info.value.chain is None

    def test_missing_page_carries_the_callers_chain(self):
        pool = BufferPool(1)
        with pytest.raises(MissingPageError) as info:
            pool.read_page(41, chain="subregion 0, page 1/3")
        assert info.value.chain == "subregion 0, page 1/3"

    def test_legacy_keyerror_catch_still_works(self):
        pool = BufferPool(1)
        with pytest.raises(KeyError):
            pool.read_page(12)

    def test_write_page_rejected_in_loader_mode(self):
        pool = BufferPool(1, backend="test", loader=lambda pid: b"x")
        with pytest.raises(StorageError):
            pool.write_page(0, b"y")


class TestSubregionStoreChain:
    def test_scan_names_the_subregion_chain(self, rng):
        """A page the backing never materialised surfaces as a
        MissingPageError naming the requesting subregion chain, not a
        bare KeyError with an integer."""
        objects = make_random_objects(rng, 10)
        table = SubregionTable(
            [o.distance_distribution(30.0) for o in objects]
        )
        store = SubregionStore(table, page_size=24, pool_pages=2)
        j = max(store.directory_sizes, key=store.directory_sizes.get)
        victim = store._directory[j][0]
        del store.pool._disk[victim]  # simulate a lost/corrupt page
        store.pool.drop_cache()
        with pytest.raises(MissingPageError) as info:
            list(store.scan_subregion(j))
        assert info.value.page_id == victim
        assert info.value.chain is not None
        assert f"subregion {j}" in info.value.chain
        assert "page 1/" in info.value.chain


class TestMmapStoreErrors:
    def test_read_after_close_is_a_storage_error(self):
        from repro.storage import create_store

        store = create_store("mmap", {"xs": np.arange(8.0)})
        store.close()
        with pytest.raises(StorageError):
            store.read("xs", 0, 4)

    def test_out_of_range_rows_raise_value_error(self):
        from repro.storage import create_store

        store = create_store("mmap", {"xs": np.arange(8.0)})
        try:
            with pytest.raises(ValueError):
                store.read("xs", 0, 9)
            with pytest.raises(ValueError):
                store.read("xs", -1, 4)
        finally:
            store.close()
