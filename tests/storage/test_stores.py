"""The ColumnStore contract across all three backends.

One parametrised suite proves the load-bearing invariants: round-trip
equality (create → read back), range reads matching whole-column
slices, picklable descriptors that rehydrate in-place, read-only
views, and owner-unlinks-attacher-unmaps lifetime semantics.  The
backends differ only in *where* the bytes live — the suite is the
executable statement of that.
"""

import glob
import os
import pickle
import tempfile

import numpy as np
import pytest

from repro.shm import SEGMENT_PREFIX
from repro.storage import (
    BACKENDS,
    MmapStore,
    StorageError,
    create_store,
    open_store,
)
from repro.storage.mmapstore import FILE_PREFIX


def sample_arrays() -> dict:
    rng = np.random.default_rng(99)
    return {
        "lows": rng.uniform(0.0, 50.0, 64),
        "highs": rng.uniform(50.0, 90.0, 64),
        "pairs": rng.uniform(0.0, 1.0, (32, 2)),
        "counts": np.arange(16, dtype=np.int64),
    }


def leaked_backings() -> list[str]:
    return glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*") + glob.glob(
        os.path.join(tempfile.gettempdir(), f"{FILE_PREFIX}*")
    )


@pytest.fixture(autouse=True)
def no_leaks():
    before = set(leaked_backings())
    yield
    after = set(leaked_backings())
    assert after <= before, f"leaked store backings: {after - before}"


@pytest.mark.parametrize("backend", BACKENDS)
class TestContract:
    def test_round_trip_and_shapes(self, backend):
        arrays = sample_arrays()
        with create_store(backend, arrays) as store:
            assert store.backend == backend
            assert set(store.columns()) == set(arrays)
            for name, want in arrays.items():
                assert store.shape(name) == want.shape
                got = store.get(name)
                assert got.dtype == want.dtype
                np.testing.assert_array_equal(got, want)
                assert not got.flags.writeable

    def test_range_reads_match_slices(self, backend):
        arrays = sample_arrays()
        with create_store(backend, arrays) as store:
            for name, want in arrays.items():
                n = want.shape[0]
                for start, stop in [(0, n), (0, 0), (3, 7), (n - 2, n)]:
                    got = store.read(name, start, stop)
                    np.testing.assert_array_equal(got, want[start:stop])
                    assert not got.flags.writeable

    def test_descriptor_pickles_and_reopens(self, backend):
        arrays = sample_arrays()
        store = create_store(backend, arrays)
        try:
            desc = pickle.loads(pickle.dumps(store.descriptor()))
            assert desc.backend == backend
            twin = open_store(desc)
            try:
                for name, want in arrays.items():
                    np.testing.assert_array_equal(twin.get(name), want)
            finally:
                twin.close()
        finally:
            store.close()

    def test_descriptor_field_lookup(self, backend):
        with create_store(backend, sample_arrays()) as store:
            desc = store.descriptor()
            assert desc.field("lows").shape == (64,)
            with pytest.raises(KeyError):
                desc.field("nope")

    def test_contains_and_stats_shape(self, backend):
        with create_store(backend, sample_arrays()) as store:
            assert "lows" in store
            assert "nope" not in store
            stats = store.stats()
            for key in (
                "backend",
                "nbytes",
                "resident_bytes",
                "logical_reads",
                "page_faults",
                "evictions",
                "hit_rate",
            ):
                assert key in stats, key
            assert stats["backend"] == backend
            assert stats["nbytes"] > 0

    def test_close_is_idempotent(self, backend):
        store = create_store(backend, sample_arrays())
        store.close()
        store.close()

    def test_empty_column_set_rejected(self, backend):
        with pytest.raises((ValueError, StorageError)):
            create_store(backend, {})


class TestDispatch:
    def test_unknown_backend(self):
        with pytest.raises(StorageError):
            create_store("tape", {"xs": np.arange(4.0)})

    def test_resident_backends_reject_options(self):
        for backend in ("ram", "shm"):
            with pytest.raises(StorageError):
                create_store(backend, {"xs": np.arange(4.0)}, page_bytes=4096)


class TestOwnerSemantics:
    def test_shm_attacher_outlives_owner_unlink(self):
        arrays = sample_arrays()
        store = create_store("shm", arrays)
        twin = open_store(store.descriptor())
        view = twin.get("lows")
        store.close()  # owner unlinks the name...
        np.testing.assert_array_equal(view, arrays["lows"])  # ...maps live
        twin.close()

    def test_mmap_attacher_outlives_owner_unlink(self):
        arrays = sample_arrays()
        store = create_store("mmap", arrays)
        twin = open_store(store.descriptor())
        store.close()  # owner unlinks the file (inode stays for twin)
        assert not os.path.exists(store.path)
        np.testing.assert_array_equal(twin.get("lows"), arrays["lows"])
        twin.close()

    def test_attacher_close_never_unlinks(self):
        store = create_store("mmap", sample_arrays())
        try:
            twin = open_store(store.descriptor())
            twin.close()
            assert os.path.exists(store.path)
        finally:
            store.close()


class TestMmapDetails:
    def test_pool_faults_and_bounded_residency(self):
        arrays = {"xs": np.arange(1 << 16, dtype=np.float64)}
        store = create_store("mmap", arrays, page_bytes=1 << 12, pool_pages=2)
        try:
            store.reset_stats()
            np.testing.assert_array_equal(store.get("xs"), arrays["xs"])
            stats = store.stats()
            assert stats["page_faults"] > stats["pool_pages"] == 2
            assert stats["evictions"] == stats["page_faults"] - 2
            assert stats["resident_pages"] <= 2
        finally:
            store.close()

    def test_custom_directory(self, tmp_path):
        store = create_store(
            "mmap", {"xs": np.arange(8.0)}, directory=str(tmp_path)
        )
        try:
            assert store.path.startswith(str(tmp_path))
            assert os.path.exists(store.path)
        finally:
            store.close()
        assert not os.path.exists(store.path)


class TestMmapWriter:
    SPECS = {
        "xs": (np.float64, (10,)),
        "tags": (np.int64, (5,)),
    }

    def test_streamed_build_round_trips(self):
        writer = MmapStore.build(self.SPECS)
        writer.append("xs", np.arange(6.0))
        writer.append("xs", np.arange(6.0, 10.0))
        writer.append("tags", np.arange(5, dtype=np.int64))
        store = writer.finish()
        try:
            np.testing.assert_array_equal(store.get("xs"), np.arange(10.0))
            np.testing.assert_array_equal(
                store.get("tags"), np.arange(5, dtype=np.int64)
            )
        finally:
            store.close()

    def test_finish_rejects_short_columns(self):
        writer = MmapStore.build(self.SPECS)
        writer.append("xs", np.arange(10.0))
        with pytest.raises(StorageError) as info:
            writer.finish()
        assert "tags" in str(info.value)
        writer.abort()
        assert not os.path.exists(writer.path)

    def test_append_rejects_overflow_and_bad_shape(self):
        writer = MmapStore.build({"m": (np.float64, (4, 3))})
        try:
            with pytest.raises(ValueError):
                writer.append("m", np.zeros((2, 2)))  # wrong row shape
            writer.append("m", np.zeros((3, 3)))
            with pytest.raises(ValueError):
                writer.append("m", np.zeros((2, 3)))  # 5 > 4 declared rows
        finally:
            writer.abort()

    def test_finish_twice_is_an_error(self):
        writer = MmapStore.build({"xs": (np.float64, (2,))})
        writer.append("xs", np.arange(2.0))
        store = writer.finish()
        try:
            with pytest.raises(StorageError):
                writer.finish()
        finally:
            store.close()

    def test_scalar_column_rejected(self):
        with pytest.raises(ValueError):
            MmapStore.build({"x": (np.float64, ())})
