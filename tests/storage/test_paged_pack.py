"""PagedDistributionPack: blocked kernels over a thrashing pool.

The out-of-core pack's contract is absolute: every kernel returns the
*exact bits* the resident pack would, no matter how small the window
pool is — eviction affects counters, never values.  This suite pins
that with pool configurations chosen to thrash hard (pages far fewer
than the corpus needs), plus the deterministic-accounting property the
DESIGN.md §16 sizing advice relies on.
"""

import numpy as np
import pytest

from repro.uncertainty.columnar import DistributionPack, PagedDistributionPack
from tests.conftest import make_random_objects


@pytest.fixture(scope="module")
def resident():
    rng = np.random.default_rng(20080614)
    objects = make_random_objects(rng, 96)
    return DistributionPack(
        [obj.distance_distribution(25.0) for obj in objects]
    )


@pytest.fixture()
def paged(resident):
    # 4 KiB pages, 2 frames: the flats span dozens of pages, so every
    # full sweep must page and evict.
    store = resident.to_store("mmap", page_bytes=1 << 12, pool_pages=2)
    pack = DistributionPack.from_store(store)
    assert isinstance(pack, PagedDistributionPack)
    yield pack
    store.close()


class TestBitIdentity:
    def test_cdf_many_sorted(self, resident, paged):
        xs = np.sort(np.random.default_rng(1).uniform(-5.0, 90.0, 33))
        np.testing.assert_array_equal(
            paged.cdf_many(xs), resident.cdf_many(xs)
        )

    def test_cdf_many_unsorted_and_scalar(self, resident, paged):
        rng = np.random.default_rng(2)
        xs = rng.uniform(-5.0, 90.0, 17)
        np.testing.assert_array_equal(
            paged.cdf_many(xs), resident.cdf_many(xs)
        )
        np.testing.assert_array_equal(
            paged.cdf_many(31.5), resident.cdf_many(31.5)
        )

    def test_sf_and_mass_between(self, resident, paged):
        xs = np.linspace(0.0, 80.0, 21)
        np.testing.assert_array_equal(paged.sf_many(xs), resident.sf_many(xs))
        np.testing.assert_array_equal(
            paged.mass_between_many(10.0, 60.0),
            resident.mass_between_many(10.0, 60.0),
        )

    def test_ppf_many(self, resident, paged):
        rng = np.random.default_rng(3)
        u = rng.uniform(0.0, 1.0, (resident.size, 5)) * resident.totals[:, None]
        np.testing.assert_array_equal(paged.ppf_many(u), resident.ppf_many(u))

    def test_take_scattered_rows(self, resident, paged):
        rows = np.array([0, 1, 2, 40, 41, 7, 95, 13], dtype=np.intp)
        sub_resident = resident.take(rows)
        sub_paged = paged.take(rows)
        xs = np.linspace(0.0, 80.0, 15)
        np.testing.assert_array_equal(
            sub_paged.cdf_many(xs), sub_resident.cdf_many(xs)
        )
        np.testing.assert_array_equal(sub_paged.totals, sub_resident.totals)

    def test_resident_metadata_matches(self, resident, paged):
        np.testing.assert_array_equal(paged.totals, resident.totals)
        np.testing.assert_array_equal(paged.near, resident.near)
        np.testing.assert_array_equal(paged.far, resident.far)
        np.testing.assert_array_equal(paged.offsets, resident.offsets)
        assert paged.size == resident.size


class TestThrashAccounting:
    def test_sweep_thrashes_and_stays_bounded(self, paged):
        store = paged.store
        xs = np.linspace(0.0, 80.0, 25)
        store.drop_cache()
        store.reset_stats()
        paged.cdf_many(xs)
        stats = store.stats()
        assert stats["page_faults"] > stats["pool_pages"] == 2
        assert stats["evictions"] == stats["page_faults"] - 2
        assert stats["resident_pages"] <= 2

    def test_counts_are_deterministic(self, paged):
        store = paged.store
        xs = np.linspace(0.0, 80.0, 25)

        def counters() -> tuple:
            store.drop_cache()
            store.reset_stats()
            paged.cdf_many(xs)
            s = store.stats()
            return (s["logical_reads"], s["page_faults"], s["evictions"])

        assert counters() == counters()

    def test_values_survive_thrash(self, resident, paged):
        # Interleave kernels so reads of one column evict the other's
        # pages mid-run; bits must not move.
        xs = np.linspace(0.0, 80.0, 9)
        for _ in range(3):
            np.testing.assert_array_equal(
                paged.cdf_many(xs), resident.cdf_many(xs)
            )
            u = np.full((resident.size, 2), 0.25) * resident.totals[:, None]
            np.testing.assert_array_equal(
                paged.ppf_many(u), resident.ppf_many(u)
            )
        assert paged.store.stats()["evictions"] > 0


class TestValidation:
    def test_missing_metadata_columns_rejected(self):
        from repro.storage import create_store

        store = create_store(
            "mmap",
            {"edges": np.arange(4.0), "knots": np.arange(4.0)},
        )
        try:
            with pytest.raises(ValueError) as info:
                PagedDistributionPack(store)
            assert "missing columns" in str(info.value)
        finally:
            store.close()

    def test_ppf_shape_check(self, paged):
        with pytest.raises(ValueError):
            paged.ppf_many(np.zeros((3, 2)))

    def test_take_empty_rejected(self, paged):
        with pytest.raises(ValueError):
            paged.take(np.array([], dtype=np.intp))
