"""Property: the storage backend is invisible in the answers.

The column-store substrate (DESIGN.md §16) promises that
``EngineConfig(storage=...)`` changes *where* the filter and pack
columns live — resident arrays, a shared-memory segment, or a paged
mmap file — and nothing else.  This suite drives a ``storage="mmap"``
engine (with a window pool sized to thrash) and a ``storage="ram"``
engine through identical interleaved query/mutation streams and
demands exact equality after every probe: same answers, same records,
same bounds.  A companion check pins the *cost* side: the mmap
engine's pool counters must actually show out-of-core behaviour
(faults, evictions) while residency stays inside the configured
budget — otherwise the equivalence above is vacuous.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import EngineConfig, UncertainEngine
from repro.core.types import CKNNQuery, CPNNQuery, CRangeQuery
from tests.property.test_dynamic_equivalence import (
    assert_results_identical,
    fresh_object,
    probe_specs,
)

#: Deliberately starved pool: 4 KiB pages, two frames.  Any filter
#: sweep over more than a handful of objects pages and evicts.
THRASH = {
    "storage_page_bytes": 1 << 12,
    "storage_pool_pages": 2,
}


def paired_engines(mirror, backend):
    reference = UncertainEngine(list(mirror), EngineConfig(storage="ram"))
    subject = UncertainEngine(
        list(mirror), EngineConfig(storage=backend, **THRASH)
    )
    return reference, subject


@st.composite
def operation_streams(draw):
    n_initial = draw(st.integers(min_value=2, max_value=6))
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "remove", "replace", "batch"]),
                st.integers(min_value=0, max_value=31),
            ),
            min_size=1,
            max_size=10,
        )
    )
    return n_initial, ops


@given(stream=operation_streams(), backend=st.sampled_from(["mmap", "shm"]))
@settings(max_examples=30, deadline=None)
def test_interleaved_stream_is_backend_invariant(stream, backend):
    n_initial, ops = stream
    counter = n_initial
    mirror = [fresh_object(i, i) for i in range(n_initial)]
    reference, subject = paired_engines(mirror, backend)
    try:
        for op, arg in ops:
            if op == "insert":
                obj = fresh_object(counter, counter)
                counter += 1
                reference.insert(obj)
                subject.insert(obj)
                mirror.append(obj)
            elif op == "remove":
                if mirror:
                    index = arg % len(mirror)
                    key = mirror[index].key
                    assert reference.remove(key)
                    assert subject.remove(key)
                    del mirror[index]
            elif op == "replace":
                if mirror:
                    index = arg % len(mirror)
                    obj = fresh_object(counter, counter)
                    counter += 1
                    reference.replace(mirror[index].key, obj)
                    subject.replace(mirror[index].key, obj)
                    mirror[index] = obj
            else:
                specs = probe_specs(len(mirror))[: 1 + arg % 13]
                assert_results_identical(
                    subject.execute_batch(specs),
                    reference.execute_batch(specs),
                )

        # Final full probe across every spec family, warm and repeated.
        specs = probe_specs(len(mirror))
        want = reference.execute_batch(specs)
        assert_results_identical(subject.execute_batch(specs), want)
        assert_results_identical(subject.execute_batch(specs), want)
        assert subject.stats()["storage"]["backend"] == backend
    finally:
        subject.close()
        reference.close()


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=10, deadline=None)
def test_mmap_engine_thrashes_within_budget(seed):
    """The cost side: with a starved pool the mmap engine's sweeps
    demonstrably page (faults beyond capacity, evictions happening)
    while resident bytes never exceed the configured frame budget."""
    rng = np.random.default_rng(seed)
    mirror = [fresh_object(i, int(v)) for i, v in
              enumerate(rng.integers(0, 32, 40))]
    engine = UncertainEngine(
        list(mirror), EngineConfig(storage="mmap", **THRASH)
    )
    try:
        specs = [
            CPNNQuery(float(q), threshold=0.3)
            for q in rng.uniform(0.0, 60.0, 6)
        ]
        specs.append(CKNNQuery(30.0, threshold=0.4, k=2))
        specs.append(CRangeQuery(15.0, threshold=0.5, radius=6.0))
        engine.execute_batch(specs)
        storage = engine.stats()["storage"]
        assert storage["backend"] == "mmap"
        assert storage["stores"] >= 1
        assert storage["logical_reads"] > 0
        assert storage["page_faults"] > 0
        budget = THRASH["storage_pool_pages"] * THRASH["storage_page_bytes"]
        assert storage["resident_bytes"] <= budget * storage["stores"]
        if storage["page_faults"] > THRASH["storage_pool_pages"]:
            assert storage["evictions"] > 0
    finally:
        engine.close()


def test_close_releases_stores_and_engine_stays_usable():
    mirror = [fresh_object(i, i) for i in range(12)]
    engine = UncertainEngine(
        list(mirror), EngineConfig(storage="mmap", **THRASH)
    )
    specs = probe_specs(len(mirror))[:5]
    want = UncertainEngine(list(mirror)).execute_batch(specs)
    assert_results_identical(engine.execute_batch(specs), want)
    engine.close()
    assert engine.stats()["storage"]["stores"] == 0
    # The store is rebuilt lazily on the next batch — same bits.
    assert_results_identical(engine.execute_batch(specs), want)
    engine.close()
