"""Property-based tests (hypothesis) for the histogram calculus."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.uncertainty.histogram import Histogram


@st.composite
def histograms(draw, max_bins=8):
    """Arbitrary normalised histograms with well-separated edges."""
    n = draw(st.integers(1, max_bins))
    start = draw(st.floats(-50, 50))
    gaps = draw(
        st.lists(st.floats(0.05, 10.0), min_size=n, max_size=n)
    )
    edges = np.concatenate(([start], start + np.cumsum(gaps)))
    masses = draw(
        st.lists(st.floats(0.0, 1.0), min_size=n, max_size=n).filter(
            lambda m: sum(m) > 0.05
        )
    )
    masses = np.asarray(masses)
    return Histogram.from_masses(edges, masses / masses.sum())


@given(histograms())
def test_total_mass_is_one(h):
    assert abs(h.total_mass - 1.0) < 1e-9


@given(histograms(), st.floats(-100, 100))
def test_fold_preserves_mass(h, q):
    folded = h.fold_abs(q)
    assert abs(folded.total_mass - 1.0) < 1e-9
    assert folded.lo >= -1e-12


@given(histograms(), st.floats(-100, 100))
def test_fold_cdf_matches_direct_mass(h, q):
    """Pr[|X - q| <= r] computed via fold equals direct two-sided mass."""
    folded = h.fold_abs(q)
    for r in np.linspace(0.0, folded.hi * 1.1 + 0.1, 7):
        direct = h.cdf(q + r) - h.cdf(q - r)
        assert abs(folded.cdf(r) - direct) < 1e-9


@given(histograms())
def test_cdf_monotone_nondecreasing(h):
    xs = np.linspace(h.lo - 1, h.hi + 1, 41)
    values = np.asarray(h.cdf(xs))
    assert np.all(np.diff(values) >= -1e-12)


@given(histograms(), st.lists(st.floats(-60, 60), min_size=1, max_size=5))
def test_breakpoint_refinement_invariant(h, points):
    refined = h.with_breakpoints(points)
    xs = np.linspace(h.lo, h.hi, 23)
    assert np.allclose(refined.cdf(xs), h.cdf(xs), atol=1e-9)
    assert abs(refined.total_mass - h.total_mass) < 1e-9


@given(histograms(), st.integers(2, 30))
def test_rebin_conserves_mass(h, bins):
    edges = np.linspace(h.lo, h.hi, bins + 1)
    rebinned = h.rebinned(edges)
    assert abs(rebinned.total_mass - h.total_mass) < 1e-9
    # cdf agrees exactly at the new edges.
    assert np.allclose(rebinned.cdf(edges), h.cdf(edges), atol=1e-9)


@given(histograms(), st.floats(0.01, 0.99))
def test_ppf_cdf_roundtrip(h, u):
    x = h.ppf(u)
    assert abs(h.cdf(x) - u) < 1e-9


@settings(max_examples=25)
@given(histograms(), st.integers(0, 2**32 - 1))
def test_samples_match_cdf(h, seed):
    rng = np.random.default_rng(seed)
    samples = h.sample(rng, 4000)
    mid = 0.5 * (h.lo + h.hi)
    assert abs(np.mean(samples <= mid) - h.cdf(mid)) < 0.06


@given(histograms(), histograms(), st.floats(0.05, 0.95))
def test_mixture_mass_linear(a, b, w):
    mix = Histogram.mixture([a, b], [w, 1.0 - w])
    assert abs(mix.total_mass - 1.0) < 1e-9
    x = 0.5 * (a.lo + b.hi)
    expected = w * a.cdf(x) + (1 - w) * b.cdf(x)
    assert abs(mix.cdf(x) - expected) < 1e-9
