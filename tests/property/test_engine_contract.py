"""Property-based engine contract tests over random workloads."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import CPNNEngine, Strategy
from repro.uncertainty.objects import UncertainObject

# This module exercises the pre-facade entry points on purpose: it is
# the regression suite for the deprecation shims (DESIGN.md §7).
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

SLACK = 1e-7


@st.composite
def engine_cases(draw):
    n = draw(st.integers(2, 12))
    objects = []
    for i in range(n):
        lo = draw(st.floats(-20, 20))
        width = draw(st.floats(0.2, 10))
        objects.append(UncertainObject.uniform(i, lo, lo + width))
    q = draw(st.floats(-25, 25))
    threshold = draw(st.floats(0.05, 0.95))
    tolerance = draw(st.floats(0.0, 0.3))
    return objects, q, threshold, tolerance


@settings(max_examples=40, deadline=None)
@given(engine_cases(), st.sampled_from(Strategy.ALL))
def test_answer_set_contract(case, strategy):
    objects, q, threshold, tolerance = case
    engine = CPNNEngine(objects)
    exact = engine.pnn(q)
    answers = set(
        engine.query(q, threshold=threshold, tolerance=tolerance, strategy=strategy).answers
    )
    must = {k for k, p in exact.items() if p >= threshold + SLACK}
    may = {k for k, p in exact.items() if p >= threshold - tolerance - SLACK}
    assert must <= answers <= may


@settings(max_examples=30, deadline=None)
@given(engine_cases())
def test_strategies_agree_at_zero_tolerance(case):
    objects, q, threshold, _ = case
    engine = CPNNEngine(objects)
    results = [
        set(engine.query(q, threshold=threshold, tolerance=0.0, strategy=s).answers)
        for s in Strategy.ALL
    ]
    assert results[0] == results[1] == results[2]


@settings(max_examples=30, deadline=None)
@given(engine_cases())
def test_exact_probabilities_sum_to_one(case):
    objects, q, _, _ = case
    pnn = CPNNEngine(objects).pnn(q)
    assert abs(sum(pnn.values()) - 1.0) < 1e-8
    assert all(-1e-12 <= p <= 1 + 1e-12 for p in pnn.values())


@settings(max_examples=30, deadline=None)
@given(engine_cases())
def test_answers_monotone_in_threshold(case):
    objects, q, _, _ = case
    engine = CPNNEngine(objects)
    previous = None
    for threshold in (0.1, 0.3, 0.5, 0.8):
        answers = set(engine.query(q, threshold=threshold, tolerance=0.0).answers)
        if previous is not None:
            assert answers <= previous
        previous = answers


@settings(max_examples=25, deadline=None)
@given(engine_cases(), st.integers(0, 2**32 - 1))
def test_vr_bounds_contain_monte_carlo_estimate(case, seed):
    """VR's reported bounds must be consistent with sampled reality."""
    objects, q, threshold, tolerance = case
    engine = CPNNEngine(objects)
    result = engine.query(q, threshold=threshold, tolerance=tolerance, strategy="vr")
    exact = engine.pnn(q)
    for record in result.records:
        assert record.lower - SLACK <= exact[record.key] <= record.upper + SLACK
