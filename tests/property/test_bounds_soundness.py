"""Property-based soundness of the verifiers: every bound a verifier
produces must contain the exact qualification probability, for
arbitrary pdf shapes, overlaps and query points.  This is the central
correctness claim of the paper (Lemmas 1–2, Equation 5)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.refinement import Refiner
from repro.core.subregions import SubregionTable
from repro.core.verifiers import (
    LowerSubregionVerifier,
    RightmostSubregionVerifier,
    UpperSubregionVerifier,
)
from repro.uncertainty.histogram import Histogram
from repro.uncertainty.objects import UncertainObject

TOL = 1e-9


@st.composite
def candidate_sets(draw):
    """2–10 objects with assorted pdfs plus a query point near them."""
    n = draw(st.integers(2, 10))
    objects = []
    for i in range(n):
        lo = draw(st.floats(-30, 30))
        width = draw(st.floats(0.2, 15))
        family = draw(st.sampled_from(["uniform", "gaussian", "histogram", "gap"]))
        if family == "uniform":
            objects.append(UncertainObject.uniform(i, lo, lo + width))
        elif family == "gaussian":
            objects.append(UncertainObject.gaussian(i, lo, lo + width, bars=12))
        elif family == "histogram":
            bins = draw(st.integers(2, 5))
            masses = np.asarray(
                draw(
                    st.lists(
                        st.floats(0.05, 1.0), min_size=bins, max_size=bins
                    )
                )
            )
            edges = np.linspace(lo, lo + width, bins + 1)
            objects.append(
                UncertainObject.from_histogram(
                    i, Histogram.from_masses(edges, masses / masses.sum())
                )
            )
        else:  # interior-zero "gap" pdf — the hard case for products
            third = width / 3
            edges = [lo, lo + third, lo + 2 * third, lo + width]
            objects.append(
                UncertainObject.from_histogram(
                    i, Histogram.from_masses(edges, [0.5, 0.0, 0.5])
                )
            )
    q = draw(st.floats(-40, 40))
    return objects, q


@settings(max_examples=60, deadline=None)
@given(candidate_sets())
def test_verifier_bounds_contain_exact_probability(case):
    objects, q = case
    table = SubregionTable([o.distance_distribution(q) for o in objects])
    exact = Refiner(table).exact_all()
    # The candidate set here is unfiltered, so probabilities still sum to 1.
    assert abs(exact.sum() - 1.0) < 1e-8

    rs = RightmostSubregionVerifier().compute(table)
    lsr = LowerSubregionVerifier().compute(table)
    usr = UpperSubregionVerifier().compute(table)

    assert np.all(exact <= rs.upper + TOL), "RS upper bound violated"
    assert np.all(lsr.lower - TOL <= exact), "L-SR lower bound violated"
    assert np.all(exact <= usr.upper + TOL), "U-SR upper bound violated"
    # U-SR never loosens RS (both are Eq. 4 sums vs. total inner mass).
    assert np.all(usr.upper <= rs.upper + TOL)
    # L-SR and U-SR are consistent with each other.
    assert np.all(lsr.lower <= usr.upper + TOL)


@settings(max_examples=40, deadline=None)
@given(candidate_sets())
def test_subregion_masses_partition(case):
    objects, q = case
    table = SubregionTable([o.distance_distribution(q) for o in objects])
    totals = table.s_inner.sum(axis=1) + table.s_right
    assert np.allclose(totals, 1.0, atol=1e-8)
    assert np.all(table.s_inner >= -1e-12)
    assert np.all(table.Z >= -1e-12) and np.all(table.Z <= 1 + 1e-12)


@settings(max_examples=40, deadline=None)
@given(candidate_sets())
def test_per_subregion_bounds_contain_exact_slices(case):
    """The per-subregion machinery itself is sound: for every (i, j),
    s_ij * q_ij.l <= p_ij <= s_ij * q_ij.u."""
    objects, q = case
    table = SubregionTable([o.distance_distribution(q) for o in objects])
    refiner = Refiner(table)
    for i in range(table.size):
        for j in range(table.n_inner):
            if table.s_inner[i, j] <= 0:
                continue
            p_ij = refiner.exact_subregion_probability(i, j)
            lo = table.s_inner[i, j] * table.q_lower[i, j]
            up = table.s_inner[i, j] * table.q_upper[i, j]
            assert lo - TOL <= p_ij <= up + TOL
