"""Property-based tests for the k-NN extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.knn import CKNNEngine, knn_qualification_probabilities
from repro.uncertainty.objects import UncertainObject

# This module exercises the pre-facade entry points on purpose: it is
# the regression suite for the deprecation shims (DESIGN.md §7).
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


@st.composite
def knn_cases(draw):
    n = draw(st.integers(2, 8))
    objects = []
    for i in range(n):
        lo = draw(st.floats(-15, 15))
        width = draw(st.floats(0.3, 8))
        objects.append(UncertainObject.uniform(i, lo, lo + width))
    q = draw(st.floats(-20, 20))
    k = draw(st.integers(1, n))
    return objects, q, k


@settings(max_examples=40, deadline=None)
@given(knn_cases())
def test_knn_probabilities_sum_to_k(case):
    objects, q, k = case
    probs = knn_qualification_probabilities(objects, q, k=k)
    assert abs(sum(probs.values()) - min(k, len(objects))) < 1e-7
    assert all(-1e-9 <= p <= 1 + 1e-9 for p in probs.values())


@settings(max_examples=25, deadline=None)
@given(knn_cases())
def test_knn_monotone_in_k(case):
    objects, q, k = case
    if k >= len(objects):
        return
    pk = knn_qualification_probabilities(objects, q, k=k)
    pk1 = knn_qualification_probabilities(objects, q, k=k + 1)
    for key in pk:
        assert pk[key] <= pk1[key] + 1e-8


@settings(max_examples=25, deadline=None)
@given(knn_cases(), st.floats(0.05, 0.95))
def test_cknn_answers_match_exact_thresholding(case, threshold):
    objects, q, k = case
    answers, records = CKNNEngine(objects, k=k).query(q, threshold=threshold)
    exact = knn_qualification_probabilities(objects, q, k=k)
    for key, p in exact.items():
        if p >= threshold + 1e-7:
            assert key in answers
        elif p <= threshold - 1e-7:
            assert key not in answers
    # Records carry sound upper bounds.
    for record in records:
        assert exact[record.key] <= record.upper + 1e-7
