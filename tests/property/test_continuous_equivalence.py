"""Property: monitored streams ≡ fresh-engine re-execution, every tick.

The continuous tier's whole claim (DESIGN.md §17) is that replaying a
memoised snapshot is indistinguishable from re-executing: after *any*
interleaving of register / unregister / monitored mutations / query
moves / ticks, every live handle's snapshot must be bit-identical —
answers, labels, bounds, exact values — to a brand-new engine built
over the same final object sequence executing the same spec.  The
mid-stream ticks are the point: they are where a wrong certificate
would let a stale snapshot survive a mutation that should have killed
it.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.continuous import ContinuousMonitor
from repro.core.engine import EngineConfig, ShardedEngine, UncertainEngine
from repro.core.types import CKNNQuery, CPNNQuery, CRangeQuery
from repro.uncertainty.objects import UncertainObject

from tests.property.test_dynamic_equivalence import fresh_object


def spec_menu(index: int):
    """A deterministic spec from all three families (collision-free
    points, same geometry discipline as ``fresh_object``)."""
    q = (index * 11.7) % 60.0
    family = index % 3
    if family == 0:
        return CPNNQuery(q, threshold=0.3, tolerance=0.0)
    if family == 1:
        return CKNNQuery(q, k=1 + index % 3, threshold=0.4)
    return CRangeQuery(q, radius=4.0 + (index % 4), threshold=0.5)


def assert_handle_fresh(handle, objects, config):
    fresh = UncertainEngine(list(objects), config)
    want = fresh.execute(handle.spec)
    got = handle.snapshot()
    assert got.answers == want.answers
    assert (got.fmin == want.fmin) or (
        np.isnan(got.fmin) and np.isnan(want.fmin)
    )
    assert len(got.records) == len(want.records)
    for x, y in zip(got.records, want.records):
        assert (x.key, x.label, x.lower, x.upper, x.exact) == (
            y.key,
            y.label,
            y.lower,
            y.upper,
            y.exact,
        )


@st.composite
def monitored_streams(draw):
    n_initial = draw(st.integers(min_value=2, max_value=6))
    n_specs = draw(st.integers(min_value=1, max_value=5))
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(
                    [
                        "insert",
                        "remove",
                        "replace",
                        "register",
                        "unregister",
                        "tick",
                        "move_query",
                        "out_of_band",
                    ]
                ),
                st.integers(min_value=0, max_value=31),
            ),
            min_size=1,
            max_size=14,
        )
    )
    return n_initial, n_specs, ops


def run_stream(engine_factory, stream, config):
    n_initial, n_specs, ops = stream
    counter = n_initial
    spec_counter = n_specs
    mirror = [fresh_object(i, i) for i in range(n_initial)]
    engine = engine_factory(list(mirror), config)
    monitor = ContinuousMonitor(engine)
    handles = monitor.register_many([spec_menu(i) for i in range(n_specs)])
    live = list(handles)
    # Mutations accumulate between ticks: a snapshot is only promised
    # current as of the last tick, so freshness is asserted at tick
    # boundaries (and after registrations, which execute immediately).
    dirty = False

    for op, arg in ops:
        if op == "insert":
            obj = fresh_object(counter, counter)
            counter += 1
            monitor.insert(obj)
            mirror.append(obj)
            dirty = True
        elif op == "remove":
            if mirror:
                index = arg % len(mirror)
                assert monitor.remove(mirror[index].key)
                del mirror[index]
                dirty = True
        elif op == "replace":
            if mirror:
                index = arg % len(mirror)
                obj = fresh_object(counter, counter)
                counter += 1
                monitor.replace(mirror[index].key, obj)
                mirror[index] = obj
                dirty = True
        elif op == "register":
            handle = monitor.register(spec_menu(spec_counter))
            spec_counter += 1
            live.append(handle)
            # Registration executes against the current engine state,
            # so the new handle is fresh even mid-mutation-window.
            assert_handle_fresh(handle, mirror, config)
        elif op == "unregister":
            if live:
                index = arg % len(live)
                assert monitor.unregister(live[index])
                del live[index]
        elif op == "move_query":
            if live:
                index = arg % len(live)
                new_q = (arg * 5.3) % 60.0
                monitor.tick(query_moves={live[index]: new_q})
                dirty = False
        elif op == "out_of_band":
            if mirror:
                index = arg % len(mirror)
                obj = fresh_object(counter, counter)
                counter += 1
                key = mirror[index].key
                obj = UncertainObject.uniform(
                    key, obj.mbr.lows[0], obj.mbr.highs[0]
                )
                engine.replace(key, obj)
                mirror[index] = obj
                monitor.tick(moved_keys=[key])
                dirty = False
        else:
            monitor.tick()
            dirty = False

        # The invariant, checked at every tick boundary: live
        # snapshots equal fresh execution over the current objects.
        if not dirty:
            for handle in live:
                assert_handle_fresh(handle, mirror, config)

    # Flush any trailing mutation window and check one last time.
    monitor.tick()
    for handle in live:
        assert_handle_fresh(handle, mirror, config)

    assert len(monitor) == len(live)
    assert len(engine) == len(mirror)
    return engine


@given(stream=monitored_streams(), use_rtree=st.booleans())
@settings(max_examples=30, deadline=None)
def test_monitored_stream_matches_fresh_engine(stream, use_rtree):
    config = EngineConfig(use_rtree=use_rtree)
    run_stream(
        lambda objects, cfg: UncertainEngine(objects, cfg), stream, config
    )


@given(
    stream=monitored_streams(),
    n_shards=st.integers(min_value=1, max_value=4),
    executor=st.sampled_from(["serial", "thread"]),
)
@settings(max_examples=15, deadline=None)
def test_monitored_sharded_stream_matches_fresh_engine(
    stream, n_shards, executor
):
    config = EngineConfig()
    engine = run_stream(
        lambda objects, cfg: ShardedEngine(
            objects,
            cfg,
            n_shards=n_shards,
            max_workers=2,
            executor=executor,
        ),
        stream,
        config,
    )
    engine.close()
