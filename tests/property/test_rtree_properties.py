"""Property-based tests for the R-tree: equivalence with linear scan
under arbitrary insert/delete interleavings."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.geometry import Rect
from repro.index.rtree import RTree
from repro.index.str_pack import str_bulk_load

intervals = st.tuples(
    st.floats(-100, 100), st.floats(0, 20)
).map(lambda t: (t[0], t[0] + t[1]))


@settings(max_examples=40, deadline=None)
@given(st.lists(intervals, min_size=1, max_size=60), st.integers(2, 6))
def test_dynamic_tree_matches_linear_scan(pairs, fanout_half):
    tree = RTree(max_entries=2 * fanout_half)
    rects = []
    for i, (lo, hi) in enumerate(pairs):
        rect = Rect.interval(lo, hi)
        tree.insert(rect, i)
        rects.append(rect)
    tree.check_invariants()
    window = Rect.interval(-20, 20)
    expected = {i for i, r in enumerate(rects) if r.intersects(window)}
    assert set(tree.search(window)) == expected
    q = 0.0
    assert tree.nearest_maxdist(q) == min(r.maxdist(q) for r in rects)


@settings(max_examples=40, deadline=None)
@given(st.lists(intervals, min_size=1, max_size=80), st.integers(2, 8))
def test_bulk_load_matches_dynamic(pairs, fanout_half):
    fanout = 2 * fanout_half
    packed = str_bulk_load(
        [(Rect.interval(lo, hi), i) for i, (lo, hi) in enumerate(pairs)],
        max_entries=fanout,
    )
    packed.check_invariants()
    assert len(packed) == len(pairs)
    window = Rect.interval(-50, 0)
    expected = {
        i for i, (lo, hi) in enumerate(pairs)
        if Rect.interval(lo, hi).intersects(window)
    }
    assert set(packed.search(window)) == expected


@settings(max_examples=30, deadline=None)
@given(
    st.lists(intervals, min_size=4, max_size=40),
    st.lists(st.integers(0, 1_000_000), min_size=1, max_size=20),
)
def test_deletions_preserve_invariants_and_content(pairs, delete_picks):
    tree = RTree(max_entries=4)
    rects = {}
    for i, (lo, hi) in enumerate(pairs):
        rect = Rect.interval(lo, hi)
        tree.insert(rect, i)
        rects[i] = rect
    for pick in delete_picks:
        if not rects:
            break
        victim = sorted(rects)[pick % len(rects)]
        assert tree.delete(rects.pop(victim), lambda item: item == victim)
    tree.check_invariants()
    assert set(tree.items()) == set(rects)


@settings(max_examples=30, deadline=None)
@given(st.lists(intervals, min_size=1, max_size=50), st.floats(-120, 120))
def test_filter_equivalence_rtree_vs_scan(pairs, q):
    """The two filtering implementations agree on fmin and survivors."""
    from repro.index.filtering import PnnFilter

    rects = [Rect.interval(lo, hi) for lo, hi in pairs]
    tree = str_bulk_load(list(zip(rects, range(len(rects)))), max_entries=4)
    result = PnnFilter(tree)(q)
    fmin = min(r.maxdist(q) for r in rects)
    assert np.isclose(result.fmin, fmin)
    expected = {i for i, r in enumerate(rects) if r.mindist(q) <= fmin}
    assert set(result.candidates) == expected
