"""Property-based correctness of the parametric subsystem
(DESIGN.md §15): the analytic laws agree with dense histogram replicas
within a tolerance *derived from the replica's own resolution*, the
uniform-disk fold is exactly the 2-D engine's, and the MC tier's
Hoeffding brackets hold."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.refinement import Refiner
from repro.core.subregions import SubregionTable
from repro.core.verifiers import MCVerifier
from repro.uncertainty.objects import UncertainObject
from repro.uncertainty.parametric import (
    GaussianMixtureDistance,
    TruncatedGaussianDistance,
    UniformDiskDistance,
)
from repro.uncertainty.pdfs import MixturePdf, TruncatedGaussianPdf
from repro.uncertainty.twod import UncertainDisk

DENSE_BARS = 256


def replica_tolerance(histogram):
    """Histogram-replica cdf error bound: the fold can split at most
    two bins partially, so the gap to the analytic cdf is at most two
    bin masses of the replica."""
    masses = histogram.densities * np.diff(histogram.edges)
    return 2.0 * float(masses.max()) + 1e-9


@settings(max_examples=40, deadline=None)
@given(
    lo=st.floats(-30, 30),
    width=st.floats(0.5, 20),
    q_offset=st.floats(-25, 25),
)
def test_gaussian_cdf_matches_dense_replica(lo, width, q_offset):
    hi = lo + width
    q = lo + q_offset
    analytic = TruncatedGaussianDistance(q, lo, hi, key=0)
    replica = UncertainObject.gaussian(
        0, lo, hi, bars=DENSE_BARS
    ).distance_distribution(q)
    xs = np.linspace(analytic.near, analytic.far, 101)
    tol = replica_tolerance(replica.histogram)
    np.testing.assert_allclose(analytic.cdf(xs), replica.cdf(xs), atol=tol)
    assert replica.near == pytest.approx(analytic.near, abs=1e-9)
    assert replica.far == pytest.approx(analytic.far, abs=1e-9)


@settings(max_examples=30, deadline=None)
@given(
    lo=st.floats(-20, 20),
    widths=st.lists(st.floats(0.5, 8), min_size=2, max_size=4),
    gaps=st.lists(st.floats(0.0, 6), min_size=1, max_size=3),
    weights=st.lists(st.floats(0.1, 1.0), min_size=2, max_size=4),
    q_offset=st.floats(-15, 30),
)
def test_mixture_cdf_matches_dense_replica(lo, widths, gaps, weights, q_offset):
    weights = weights[: len(widths)]
    while len(weights) < len(widths):
        weights.append(0.5)
    components, cursor = [], lo
    for i, width in enumerate(widths):
        components.append(
            TruncatedGaussianPdf(cursor, cursor + width, bars=DENSE_BARS)
        )
        cursor += width + gaps[i % len(gaps)]
    q = lo + q_offset
    analytic = GaussianMixtureDistance(q, components, weights=weights, key=0)
    replica = UncertainObject(
        0, MixturePdf(components, weights=weights)
    ).distance_distribution(q)
    xs = np.linspace(analytic.near, analytic.far, 101)
    tol = replica_tolerance(replica.histogram)
    np.testing.assert_allclose(analytic.cdf(xs), replica.cdf(xs), atol=tol)


@settings(max_examples=40, deadline=None)
@given(
    cx=st.floats(-20, 20),
    cy=st.floats(-20, 20),
    radius=st.floats(0.3, 8.0),
    qx=st.floats(-25, 25),
    qy=st.floats(-25, 25),
    bins=st.integers(8, 64),
)
def test_uniform_disk_fold_exact(cx, cy, radius, qx, qy, bins):
    """The analytic disk law materialises to the *same bytes* as the
    2-D engine's UncertainDisk fold — no new numerics were introduced."""
    analytic = UniformDiskDistance(
        (qx, qy), (cx, cy), radius, distance_bins=bins, key="d"
    )
    reference = UncertainDisk(
        "d", (cx, cy), radius, distance_bins=bins
    ).distance_distribution((qx, qy))
    np.testing.assert_array_equal(
        analytic.materialized().histogram.edges, reference.histogram.edges
    )
    np.testing.assert_array_equal(
        analytic.materialized().histogram.densities,
        reference.histogram.densities,
    )
    assert analytic.near == pytest.approx(reference.near, abs=1e-9)
    assert analytic.far == pytest.approx(reference.far, abs=1e-9)


@st.composite
def mc_candidate_sets(draw):
    n = draw(st.integers(2, 6))
    objects = []
    for i in range(n):
        lo = draw(st.floats(-20, 20))
        width = draw(st.floats(0.5, 10))
        if draw(st.booleans()):
            objects.append(UncertainObject.uniform(i, lo, lo + width))
        else:
            objects.append(UncertainObject.gaussian(i, lo, lo + width, bars=24))
    q = draw(st.floats(-25, 25))
    return objects, q


@settings(max_examples=40, deadline=None)
@given(mc_candidate_sets())
def test_mc_bounds_bracket_exact_probability(case):
    """Hoeffding brackets hold around the exact probabilities.  At
    1 - 1e-9 simultaneous confidence a single observed violation across
    these examples would indicate a soundness bug, not bad luck."""
    objects, q = case
    table = SubregionTable([o.distance_distribution(q) for o in objects])
    exact = Refiner(table).exact_all()
    update = MCVerifier(trials=2048, confidence=1.0 - 1e-9).compute(table)
    assert np.all(update.lower <= exact + 1e-12)
    assert np.all(exact <= update.upper + 1e-12)
    assert np.all(update.lower >= 0.0) and np.all(update.upper <= 1.0)
