"""Property tests: the routed façade ≡ the pre-façade scalar paths.

The acceptance bar of the API redesign: ``execute(CKNNQuery)`` must
match :class:`CKNNEngine`/:func:`knn_qualification_probabilities` and
``execute(CRangeQuery)`` must match :func:`constrained_range_query`
**exactly** — same keys, same labels, bit-identical bounds — across
1-D and 2-D object mixes, and ``execute_batch`` must equal a
sequential ``execute`` loop for all three spec types (including mixed
batches).  No tolerances anywhere: the routed paths are engineered to
replay the scalar float operations.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import EngineConfig, UncertainEngine
from repro.core.knn import CKNNEngine, knn_qualification_probabilities
from repro.core.range_query import constrained_range_query
from repro.core.types import CKNNQuery, CPNNQuery, CRangeQuery
from repro.uncertainty.twod import (
    UncertainDisk,
    UncertainRectangle,
    UncertainSegment,
)
from tests.conftest import make_random_objects

# The reference paths below are the deprecated scalar entry points —
# calling them is the whole point of these equivalence properties.
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def objects_1d(seed: int, n: int) -> list:
    rng = np.random.default_rng(seed)
    return make_random_objects(rng, n)


def objects_2d(seed: int, n: int) -> list:
    """A mixed bag of disks / segments / rectangles."""
    rng = np.random.default_rng(seed)
    objects = []
    for i in range(n):
        cx, cy = rng.uniform(0.0, 20.0, size=2)
        kind = i % 3
        if kind == 0:
            objects.append(
                UncertainDisk(i, (cx, cy), float(rng.uniform(0.3, 2.0)))
            )
        elif kind == 1:
            dx, dy = rng.uniform(0.5, 3.0, size=2)
            objects.append(
                UncertainSegment(i, (cx, cy), (cx + dx, cy + dy), distance_bins=32)
            )
        else:
            w, h = rng.uniform(0.5, 3.0, size=2)
            objects.append(
                UncertainRectangle.from_bounds(
                    i, cx, cy, cx + w, cy + h, distance_bins=32
                )
            )
    return objects


def build(dim: str, seed: int, n: int):
    if dim == "1d":
        return objects_1d(seed, n), float(
            np.random.default_rng(seed + 1).uniform(0.0, 60.0)
        )
    objects = objects_2d(seed, n)
    q = tuple(np.random.default_rng(seed + 1).uniform(0.0, 20.0, size=2))
    return objects, q


def records_tuple(records):
    return [(r.key, r.label, r.lower, r.upper, r.exact) for r in records]


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(3, 10),
    k=st.integers(1, 12),
    threshold=st.sampled_from([0.05, 0.3, 0.5, 0.9]),
    dim=st.sampled_from(["1d", "2d"]),
)
def test_execute_cknn_matches_scalar_path(seed, n, k, threshold, dim):
    objects, q = build(dim, seed, n)
    engine = UncertainEngine(objects)
    result = engine.execute(CKNNQuery(q, threshold=threshold, k=k))
    answers, records = CKNNEngine(objects, k=k).query(q, threshold=threshold)
    assert result.answers == answers
    assert records_tuple(result.records) == records_tuple(records)
    # And against the exact probabilities' thresholding (when k < n the
    # scalar engine computes them on demand; k >= n is the trivial 1.0).
    exact = knn_qualification_probabilities(objects, q, k=min(k, n))
    expected = {key for key, p in exact.items() if p >= threshold}
    assert set(result.answers) == expected


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(1, 12),
    radius=st.sampled_from([0.5, 2.0, 8.0, 40.0]),
    threshold=st.sampled_from([0.05, 0.5, 1.0]),
    dim=st.sampled_from(["1d", "2d"]),
)
def test_execute_crange_matches_scalar_path(seed, n, radius, threshold, dim):
    objects, q = build(dim, seed, n)
    engine = UncertainEngine(objects)
    result = engine.execute(CRangeQuery(q, threshold=threshold, radius=radius))
    answers, records = constrained_range_query(objects, q, radius, threshold)
    assert result.answers == answers
    assert records_tuple(result.records) == records_tuple(records)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(3, 9),
    dim=st.sampled_from(["1d", "2d"]),
    use_rtree=st.booleans(),
)
def test_execute_batch_equals_sequential_loop(seed, n, dim, use_rtree):
    objects, _ = build(dim, seed, n)
    rng = np.random.default_rng(seed + 2)
    engine = UncertainEngine(objects, EngineConfig(use_rtree=use_rtree))

    def point():
        if dim == "1d":
            return float(rng.uniform(0.0, 60.0))
        return tuple(rng.uniform(0.0, 20.0, size=2))

    specs = [
        CPNNQuery(point(), threshold=0.3, tolerance=0.0),
        CKNNQuery(point(), threshold=0.3, k=int(rng.integers(1, n + 2))),
        CRangeQuery(point(), threshold=0.5, radius=float(rng.uniform(0.5, 10.0))),
        CPNNQuery(point(), threshold=0.5, tolerance=0.01),
        CKNNQuery(point(), threshold=0.6, k=1),
    ]
    batch = engine.execute_batch(specs)
    assert len(batch) == len(specs)
    for spec, batched in zip(specs, batch):
        single = engine.execute(spec)
        assert batched.answers == single.answers, spec
        assert records_tuple(batched.records) == records_tuple(single.records), spec


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(2, 8))
def test_execute_cpnn_matches_legacy_query(seed, n):
    objects = objects_1d(seed, n)
    q = float(np.random.default_rng(seed + 1).uniform(0.0, 60.0))
    engine = UncertainEngine(objects)
    fresh = engine.execute(CPNNQuery(q, threshold=0.3, tolerance=0.0))
    legacy = engine.query(q, threshold=0.3, tolerance=0.0)
    assert fresh.answers == legacy.answers
    assert records_tuple(fresh.records) == records_tuple(legacy.records)
