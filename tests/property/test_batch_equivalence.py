"""Property tests: query_batch ≡ a sequential query() loop.

The batch path restructures orchestration (one filtering sweep, shared
distributions, flat verifier sweeps) but shares every per-candidate
arithmetic step with the sequential path, so at any tolerance the two
must return identical answer sets — and at tolerance 0 both must agree
with the exact ``{i : p_i ≥ P}`` semantics.  Exercised across all
three strategies and across 1-D and 2-D object mixes.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import CPNNEngine, EngineConfig, Strategy
from repro.uncertainty.objects import UncertainObject
from repro.uncertainty.twod import UncertainDisk, UncertainRectangle, UncertainSegment

# This module exercises the pre-facade entry points on purpose: it is
# the regression suite for the deprecation shims (DESIGN.md §7).
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


@st.composite
def batch_cases_1d(draw):
    n = draw(st.integers(2, 10))
    objects = []
    for i in range(n):
        lo = draw(st.floats(-20, 20))
        width = draw(st.floats(0.2, 10))
        if draw(st.booleans()):
            objects.append(UncertainObject.uniform(i, lo, lo + width))
        else:
            objects.append(UncertainObject.gaussian(i, lo, lo + width, bars=8))
    n_points = draw(st.integers(1, 6))
    points = [draw(st.floats(-25, 25)) for _ in range(n_points)]
    threshold = draw(st.floats(0.05, 0.95))
    return objects, points, threshold


@st.composite
def batch_cases_2d(draw):
    n = draw(st.integers(2, 6))
    objects = []
    for i in range(n):
        cx = draw(st.floats(-8, 8))
        cy = draw(st.floats(-8, 8))
        kind = draw(st.sampled_from(["disk", "segment", "rectangle"]))
        if kind == "disk":
            objects.append(
                UncertainDisk(i, (cx, cy), draw(st.floats(0.3, 3)), distance_bins=24)
            )
        elif kind == "segment":
            dx = draw(st.floats(0.3, 4))
            dy = draw(st.floats(0.3, 4))
            objects.append(
                UncertainSegment(i, (cx, cy), (cx + dx, cy + dy), distance_bins=24)
            )
        else:
            w = draw(st.floats(0.3, 4))
            h = draw(st.floats(0.3, 4))
            objects.append(
                UncertainRectangle.from_bounds(
                    i, cx, cy, cx + w, cy + h, distance_bins=24
                )
            )
    n_points = draw(st.integers(1, 4))
    points = [
        (draw(st.floats(-10, 10)), draw(st.floats(-10, 10))) for _ in range(n_points)
    ]
    threshold = draw(st.floats(0.05, 0.95))
    return objects, points, threshold


@settings(max_examples=40, deadline=None)
@given(batch_cases_1d(), st.sampled_from(Strategy.ALL))
def test_batch_equals_sequential_1d(case, strategy):
    objects, points, threshold = case
    engine = CPNNEngine(objects)
    batch = engine.query_batch(
        points, threshold=threshold, tolerance=0.0, strategy=strategy
    )
    for q, result in zip(points, batch):
        reference = engine.query(
            q, threshold=threshold, tolerance=0.0, strategy=strategy
        )
        assert set(result.answers) == set(reference.answers)


@settings(max_examples=20, deadline=None)
@given(batch_cases_2d(), st.sampled_from(Strategy.ALL))
def test_batch_equals_sequential_2d(case, strategy):
    objects, points, threshold = case
    engine = CPNNEngine(objects)
    batch = engine.query_batch(
        points, threshold=threshold, tolerance=0.0, strategy=strategy
    )
    for q, result in zip(points, batch):
        reference = engine.query(
            q, threshold=threshold, tolerance=0.0, strategy=strategy
        )
        assert set(result.answers) == set(reference.answers)


@settings(max_examples=25, deadline=None)
@given(batch_cases_1d(), st.floats(0.0, 0.3))
def test_batch_answers_satisfy_cpnn_contract(case, tolerance):
    """Batch answers obey Definition 1 against exact probabilities."""
    objects, points, threshold = case
    engine = CPNNEngine(objects)
    batch = engine.query_batch(points, threshold=threshold, tolerance=tolerance)
    slack = 1e-7
    for q, result in zip(points, batch):
        exact = engine.pnn(q)
        answers = set(result.answers)
        must = {k for k, p in exact.items() if p >= threshold + slack}
        may = {k for k, p in exact.items() if p >= threshold - tolerance - slack}
        assert must <= answers <= may


@settings(max_examples=20, deadline=None)
@given(batch_cases_1d())
def test_batch_repeat_is_deterministic(case):
    """Cache warm-up must not change any answer."""
    objects, points, threshold = case
    engine = CPNNEngine(objects)
    first = engine.query_batch(points, threshold=threshold, tolerance=0.0)
    second = engine.query_batch(points, threshold=threshold, tolerance=0.0)
    assert first.answers == second.answers


@settings(max_examples=15, deadline=None)
@given(batch_cases_1d())
def test_batch_linear_and_rtree_engines_agree(case):
    objects, points, threshold = case
    rtree = CPNNEngine(objects)
    linear = CPNNEngine(objects, EngineConfig(use_rtree=False))
    a = rtree.query_batch(points, threshold=threshold, tolerance=0.0)
    b = linear.query_batch(points, threshold=threshold, tolerance=0.0)
    assert [set(x.answers) for x in a] == [set(x.answers) for x in b]
