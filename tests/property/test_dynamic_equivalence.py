"""Property: interleaved update/query streams ≡ a freshly built engine.

The incremental-maintenance contract (DESIGN.md §11): after *any*
sequence of ``insert`` / ``remove`` / ``replace`` / ``execute`` /
``execute_batch`` operations, the engine must answer every spec type
exactly as a brand-new engine constructed over the same final object
sequence — same answers, same per-object records, same pruning radii —
and repeating the batch against the (now fully warm) caches must not
change a bit.  The mid-stream queries are the point: they populate the
batch filter, the distribution cache, the table cache, and the
memoised result snapshots that the subsequent mutations must keep
exactly consistent.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import EngineConfig, ShardedEngine, UncertainEngine
from repro.core.types import CKNNQuery, CPNNQuery, CRangeQuery
from repro.uncertainty.objects import UncertainObject


def fresh_object(counter: int, slot: int) -> UncertainObject:
    """A deterministic interval with collision-free geometry.

    Centers come from a coprime stride over [0, 60) and widths vary by
    counter, so no two objects in a stream share a near/far point —
    ordering ties (the one way two equal object sets could diverge at
    the bit level) cannot arise.
    """
    center = (slot * 7.3) % 60.0
    width = 1.0 + (counter % 5) * 0.7
    return UncertainObject.uniform(
        ("obj", counter), center - width / 2.0, center + width / 2.0
    )


def probe_specs(n_objects: int) -> list:
    """A mixed batch covering all three spec families, including the
    trivial k >= N case."""
    specs = []
    for q in (5.0, 23.0, 41.0, 59.0):
        specs.append(CPNNQuery(q, threshold=0.3, tolerance=0.0))
        specs.append(CKNNQuery(q, threshold=0.4, k=2))
        specs.append(CRangeQuery(q, threshold=0.5, radius=6.0))
    specs.append(CKNNQuery(30.0, threshold=0.3, k=max(1, n_objects + 3)))
    return specs


def assert_results_identical(got, want) -> None:
    assert len(got.results) == len(want.results)
    for a, b in zip(got.results, want.results):
        assert a.answers == b.answers
        assert (a.fmin == b.fmin) or (np.isnan(a.fmin) and np.isnan(b.fmin))
        assert len(a.records) == len(b.records)
        for x, y in zip(a.records, b.records):
            assert (x.key, x.label, x.lower, x.upper, x.exact) == (
                y.key,
                y.label,
                y.lower,
                y.upper,
                y.exact,
            )


@st.composite
def operation_streams(draw):
    n_initial = draw(st.integers(min_value=2, max_value=6))
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(
                    ["insert", "remove", "replace", "execute", "batch"]
                ),
                st.integers(min_value=0, max_value=31),
            ),
            min_size=1,
            max_size=12,
        )
    )
    return n_initial, ops


@given(stream=operation_streams(), use_rtree=st.booleans())
@settings(max_examples=40, deadline=None)
def test_interleaved_stream_matches_fresh_engine(stream, use_rtree):
    n_initial, ops = stream
    counter = n_initial
    mirror = [fresh_object(i, i) for i in range(n_initial)]
    engine = UncertainEngine(list(mirror), EngineConfig(use_rtree=use_rtree))

    for op, arg in ops:
        if op == "insert":
            obj = fresh_object(counter, counter)
            counter += 1
            engine.insert(obj)
            mirror.append(obj)
        elif op == "remove":
            if mirror:
                index = arg % len(mirror)
                assert engine.remove(mirror[index].key)
                del mirror[index]
        elif op == "replace":
            if mirror:
                index = arg % len(mirror)
                obj = fresh_object(counter, counter)
                counter += 1
                engine.replace(mirror[index].key, obj)
                mirror[index] = obj
        elif op == "execute":
            spec = probe_specs(len(mirror))[arg % 13]
            result = engine.execute(spec)
            if not mirror:
                assert result.answers == ()
        else:
            engine.execute_batch(probe_specs(len(mirror))[: 1 + arg % 13])

    # Final contract: the incrementally maintained engine must be
    # indistinguishable from a fresh build over the same sequence.
    specs = probe_specs(len(mirror))
    fresh = UncertainEngine(list(mirror), EngineConfig(use_rtree=use_rtree))
    warm = engine.execute_batch(specs)
    cold = fresh.execute_batch(specs)
    assert_results_identical(warm, cold)

    # Cache consistency: replaying the same batch against fully warm
    # caches must be exact too (result snapshots, tables, and filter
    # rows all hit now).
    assert_results_identical(engine.execute_batch(specs), cold)

    # Single-spec dispatch sees the same world (answer sets; single
    # C-PNN execution goes through the R-tree, whose traversal order
    # may differ from the fresh bulk-loaded tree only in record order).
    for spec in specs[:4]:
        assert frozenset(engine.execute(spec).answers) == frozenset(
            fresh.execute(spec).answers
        )

    # Internal alignment: the batch filter's rows mirror the object
    # sequence exactly after all maintenance flushed.
    if mirror and engine._batch_filter is not None:
        batch_filter = engine._batch_filter
        batch_filter._flush()
        assert batch_filter.objects == tuple(engine.objects)
        assert np.array_equal(
            batch_filter._lows,
            np.array([obj.mbr.lows for obj in engine.objects]),
        )
    assert len(engine) == len(mirror)
    assert [obj.key for obj in engine.objects] == [obj.key for obj in mirror]


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=15, deadline=None)
def test_churn_then_empty_then_refill(seed):
    """Draining the engine and refilling it keeps every path sane."""
    rng = np.random.default_rng(seed)
    objects = [fresh_object(i, i) for i in range(4)]
    engine = UncertainEngine(list(objects))
    engine.execute_batch(probe_specs(4)[:5])
    for obj in objects:
        assert engine.remove(obj.key)
    assert len(engine) == 0
    empty = engine.execute_batch(probe_specs(0)[:5])
    assert all(result.answers == () for result in empty.results)
    refill = [fresh_object(10 + i, int(rng.integers(0, 32))) for i in range(3)]
    seen = set()
    refill = [o for o in refill if o.key not in seen and not seen.add(o.key)]
    for obj in refill:
        engine.insert(obj)
    fresh = UncertainEngine(list(refill))
    assert_results_identical(
        engine.execute_batch(probe_specs(len(refill))),
        fresh.execute_batch(probe_specs(len(refill))),
    )


@given(
    stream=operation_streams(),
    use_rtree=st.booleans(),
    n_shards=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=25, deadline=None)
def test_sharded_stream_matches_fresh_single_engine(stream, use_rtree, n_shards):
    """The sharded engine honours the same incremental-maintenance
    contract as the single engine (DESIGN.md §12): after any interleaved
    insert/remove/replace/execute/execute_batch stream, answers,
    records, and bounds for all three spec families are bit-identical
    to a fresh :class:`UncertainEngine` over the same final sequence —
    and replaying against the warm lane caches changes nothing."""
    n_initial, ops = stream
    counter = n_initial
    mirror = [fresh_object(i, i) for i in range(n_initial)]
    config = EngineConfig(use_rtree=use_rtree)
    engine = ShardedEngine(
        list(mirror),
        config,
        n_shards=n_shards,
        max_workers=2,
        rebalance_threshold=2.0,
    )

    for op, arg in ops:
        if op == "insert":
            obj = fresh_object(counter, counter)
            counter += 1
            engine.insert(obj)
            mirror.append(obj)
        elif op == "remove":
            if mirror:
                index = arg % len(mirror)
                assert engine.remove(mirror[index].key)
                del mirror[index]
        elif op == "replace":
            if mirror:
                index = arg % len(mirror)
                obj = fresh_object(counter, counter)
                counter += 1
                engine.replace(mirror[index].key, obj)
                mirror[index] = obj
        elif op == "execute":
            spec = probe_specs(len(mirror))[arg % 13]
            result = engine.execute(spec)
            if not mirror:
                assert result.answers == ()
        else:
            engine.execute_batch(probe_specs(len(mirror))[: 1 + arg % 13])

    specs = probe_specs(len(mirror))
    fresh = UncertainEngine(list(mirror), EngineConfig(use_rtree=use_rtree))
    cold = fresh.execute_batch(specs)
    assert_results_identical(engine.execute_batch(specs), cold)
    # Warm replay: lane table caches and result snapshots all hit now.
    assert_results_identical(engine.execute_batch(specs), cold)

    # Contract bookkeeping: shards partition exactly the mirror set.
    assert len(engine) == len(mirror)
    assert [obj.key for obj in engine.objects] == [obj.key for obj in mirror]
    assert sum(len(shard) for shard in engine.shards) == len(mirror)
    assert engine.remove("no-such-key") is False
    with pytest.raises(KeyError):
        engine.replace("no-such-key", fresh_object(counter, counter))
    engine.close()


def test_pnn_after_interleaved_updates():
    """The exact-PNN scalar path flushes deferred maintenance too."""
    objects = [fresh_object(i, i) for i in range(5)]
    engine = UncertainEngine(list(objects))
    engine.execute_batch([CPNNQuery(10.0, threshold=0.2, tolerance=0.0)])
    newcomer = fresh_object(99, 13)
    engine.insert(newcomer)
    assert engine.remove(objects[0].key)
    survivors = objects[1:] + [newcomer]
    fresh = UncertainEngine(survivors)
    for q in (3.0, 17.0, 42.0):
        assert engine.pnn(q) == pytest.approx(fresh.pnn(q))
