"""Property-based tests for 2-D uncertainty regions."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.uncertainty.twod import (
    UncertainDisk,
    UncertainRectangle,
    UncertainSegment,
    circle_circle_intersection_area,
    disk_rect_intersection_area,
)
from repro.index.geometry import Rect

coords = st.floats(-20, 20)
radii = st.floats(0.1, 5.0)


@st.composite
def disks(draw):
    return UncertainDisk(
        "d", (draw(coords), draw(coords)), draw(radii), distance_bins=48
    )


@st.composite
def segments(draw):
    a = np.asarray([draw(coords), draw(coords)])
    delta = np.asarray([draw(st.floats(0.1, 6.0)), draw(st.floats(0.1, 6.0))])
    return UncertainSegment("s", a, a + delta, distance_bins=48)


@st.composite
def rectangles(draw):
    x, y = draw(coords), draw(coords)
    w, h = draw(st.floats(0.1, 6.0)), draw(st.floats(0.1, 6.0))
    return UncertainRectangle.from_bounds("r", x, y, x + w, y + h, distance_bins=48)


@st.composite
def query_points(draw):
    return (draw(coords), draw(coords))


def _check_region(region, q):
    near, far = region.mindist(q), region.maxdist(q)
    assert 0.0 <= near <= far + 1e-12
    # The exact cdf is monotone, 0 below near, 1 above far.
    assert region.distance_cdf(q, near - 1e-6) <= 1e-9
    assert region.distance_cdf(q, far + 1e-6) >= 1.0 - 1e-9
    rs = np.linspace(near, far, 9)
    values = [region.distance_cdf(q, r) for r in rs]
    assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))
    # The histogram distribution matches the exact cdf at its edges.
    dist = region.distance_distribution(q)
    assert dist.near >= near - 1e-9
    assert dist.far <= far + 1e-9
    for r in np.linspace(dist.near, dist.far, 5):
        assert abs(dist.cdf(r) - region.distance_cdf(q, r)) <= 0.05


@settings(max_examples=40, deadline=None)
@given(disks(), query_points())
def test_disk_distance_properties(disk, q):
    _check_region(disk, q)


@settings(max_examples=40, deadline=None)
@given(segments(), query_points())
def test_segment_distance_properties(segment, q):
    _check_region(segment, q)


@settings(max_examples=40, deadline=None)
@given(rectangles(), query_points())
def test_rectangle_distance_properties(rectangle, q):
    _check_region(rectangle, q)


@settings(max_examples=60, deadline=None)
@given(st.floats(0, 8), st.floats(0.05, 4), st.floats(0.05, 4))
def test_circle_circle_area_bounds(d, r1, r2):
    area = circle_circle_intersection_area(d, r1, r2)
    smaller = min(r1, r2)
    assert -1e-12 <= area <= np.pi * smaller * smaller + 1e-9
    # Symmetry in the two radii.
    assert abs(area - circle_circle_intersection_area(d, r2, r1)) < 1e-9


@settings(max_examples=60, deadline=None)
@given(
    st.floats(-5, 5), st.floats(-5, 5), st.floats(0.1, 4),
    st.floats(-5, 5), st.floats(-5, 5), st.floats(0.1, 5), st.floats(0.1, 5),
)
def test_disk_rect_area_bounds(qx, qy, r, x, y, w, h):
    rect = Rect([x, y], [x + w, y + h])
    area = disk_rect_intersection_area((qx, qy), r, rect)
    assert -1e-12 <= area <= min(np.pi * r * r, rect.area()) + 1e-9
    # Monotone in the radius.
    bigger = disk_rect_intersection_area((qx, qy), 1.5 * r, rect)
    assert bigger >= area - 1e-9
