"""Property: the service is observationally a sequential engine.

Any interleaving of single-query submissions and mutations through
:class:`~repro.service.service.QueryService` — whatever micro-batches
the coalescer forms, whatever order ``gather`` resolves futures — must
answer every query bit-identically to a plain sequential ``execute``
loop over a replica engine that applies the same operations in the
same arrival order.  All three spec families, cold caches and warm
(the whole sequence replays against the same service).
"""

import asyncio

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import ShardedEngine, UncertainEngine
from repro.core.types import CKNNQuery, CPNNQuery, CRangeQuery
from repro.service import QueryService, ServiceConfig
from tests.conftest import make_random_objects
from tests.core.test_sharded import assert_results_identical

BASE_N = 10


def spec_from(kind: str, q: float, threshold: float):
    if kind == "pnn":
        return CPNNQuery(q, threshold=threshold, tolerance=0.01)
    if kind == "knn":
        return CKNNQuery(q, threshold=threshold, k=2)
    return CRangeQuery(q, threshold=threshold, radius=5.0)


query_ops = st.tuples(
    st.just("query"),
    st.sampled_from(["pnn", "knn", "range"]),
    st.floats(0.0, 60.0, allow_nan=False),
    st.sampled_from([0.2, 0.35, 0.5]),
)
mutation_ops = st.one_of(
    st.just(("insert",)),
    st.tuples(st.just("remove"), st.integers(0, 10_000)),
    st.tuples(st.just("replace"), st.integers(0, 10_000)),
)
op_lists = st.lists(
    st.one_of(query_ops, mutation_ops), min_size=1, max_size=12
)


def resolve_ops(seed: int, ops: list) -> list:
    """Turn raw drawn ops into concrete (kind, payload) steps against a
    deterministic object population."""
    rng = np.random.default_rng(seed)
    population = make_random_objects(rng, BASE_N + 30)
    base = population[:BASE_N]
    spares = iter(population[BASE_N:])  # fresh keys 10..39
    keys = [obj.key for obj in base]
    steps = []
    for op in ops:
        if op[0] == "query":
            _, kind, q, threshold = op
            steps.append(("query", spec_from(kind, q, threshold)))
        elif op[0] == "insert":
            obj = next(spares, None)
            if obj is None:
                continue
            keys.append(obj.key)
            steps.append(("insert", obj))
        elif op[0] == "remove":
            if len(keys) <= 2:  # keep the population non-trivial
                continue
            key = keys.pop(op[1] % len(keys))
            steps.append(("remove", key))
        else:  # replace: swap an existing region for a fresh one
            obj = next(spares, None)
            if obj is None or not keys:
                continue
            index = op[1] % len(keys)
            old = keys[index]
            keys[index] = obj.key
            steps.append(("replace", (old, obj)))
    return base, steps


def replay_sequential(single: UncertainEngine, steps: list) -> list:
    """The reference: one engine, one operation at a time."""
    results = []
    for kind, payload in steps:
        if kind == "query":
            results.append(single.execute(payload))
        elif kind == "insert":
            single.insert(payload)
        elif kind == "remove":
            single.remove(payload)
        else:
            single.replace(*payload)
    return results


async def replay_service(service: QueryService, steps: list) -> list:
    """The same steps through the service: consecutive queries go up
    concurrently (so the coalescer actually batches them); mutations
    are awaited in order, as the barrier contract requires."""
    results: list = []
    burst: list = []

    async def flush():
        if burst:
            replies = await asyncio.gather(
                *[service.submit(spec) for spec in burst]
            )
            results.extend(reply.result for reply in replies)
            burst.clear()

    for kind, payload in steps:
        if kind == "query":
            burst.append(payload)
            continue
        await flush()
        if kind == "insert":
            await service.insert(payload)
        elif kind == "remove":
            await service.remove(payload)
        else:
            await service.replace(*payload)
    await flush()
    return results


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**16), ops=op_lists)
def test_any_interleaving_matches_sequential_execution(seed, ops):
    base, steps = resolve_ops(seed, ops)
    single = UncertainEngine(list(base))
    want_cold = replay_sequential(single, steps)
    # Warm pass: same queries again, caches now populated, mutations
    # already applied — only the query steps repeat.
    query_steps = [s for s in steps if s[0] == "query"]
    want_warm = replay_sequential(single, query_steps)

    async def main(engine):
        config = ServiceConfig(coalesce_window_s=0.005, max_batch=8)
        async with QueryService(engine, config) as service:
            cold = await replay_service(service, steps)
            warm = await replay_service(service, query_steps)
            return cold, warm

    with ShardedEngine(list(base), n_shards=2) as engine:
        got_cold, got_warm = asyncio.run(main(engine))
    assert len(got_cold) == len(want_cold)
    for got, want in zip(got_cold, want_cold):
        assert_results_identical(got, want)
    assert len(got_warm) == len(want_warm)
    for got, want in zip(got_warm, want_warm):
        assert_results_identical(got, want)
