"""Tests for workload generators."""

import numpy as np
import pytest

from repro.datasets.longbeach import (
    LONG_BEACH_DOMAIN,
    LONG_BEACH_SIZE,
    long_beach_surrogate,
)
from repro.datasets.queries import random_query_points
from repro.datasets.synthetic import (
    clustered_intervals,
    mixed_pdf_objects,
    uniform_intervals,
)
from repro.index.filtering import filter_candidates


class TestSynthetic:
    def test_uniform_intervals_shape(self, rng):
        objects = uniform_intervals(50, domain=(0, 100), mean_length=5, rng=rng)
        assert len(objects) == 50
        for obj in objects:
            assert obj.hi > obj.lo
            assert obj.histogram.total_mass == pytest.approx(1.0)

    def test_gaussian_family(self, rng):
        objects = uniform_intervals(5, pdf="gaussian", bars=32, rng=rng)
        assert all(o.histogram.nbins == 32 for o in objects)

    def test_invalid_pdf_family(self, rng):
        with pytest.raises(ValueError):
            uniform_intervals(5, pdf="cauchy", rng=rng)

    def test_clustered_intervals_cluster(self, rng):
        objects = clustered_intervals(
            400, domain=(0, 1000), n_clusters=3, cluster_spread=5.0, rng=rng
        )
        centers = np.asarray([(o.lo + o.hi) / 2 for o in objects])
        # With 3 tight clusters the center spread is far from uniform.
        hist, _ = np.histogram(centers, bins=20, range=(0, 1000))
        assert (hist == 0).sum() >= 10

    def test_mixed_pdf_objects_cycle_families(self, rng):
        objects = mixed_pdf_objects(9, rng=rng)
        assert len(objects) == 9
        kinds = {type(o.pdf).__name__ for o in objects}
        assert len(kinds) == 3

    def test_deterministic_given_rng(self):
        a = uniform_intervals(10, rng=np.random.default_rng(1))
        b = uniform_intervals(10, rng=np.random.default_rng(1))
        assert [(o.lo, o.hi) for o in a] == [(o.lo, o.hi) for o in b]


class TestLongBeachSurrogate:
    def test_full_size_constant(self):
        assert LONG_BEACH_SIZE == 53_144  # Section V-A

    def test_scaled_down_generation(self):
        objects = long_beach_surrogate(n=2000)
        assert len(objects) == 2000
        for obj in objects[:50]:
            assert LONG_BEACH_DOMAIN[0] - 200 <= obj.lo
            assert obj.hi <= LONG_BEACH_DOMAIN[1] + 200

    def test_deterministic_by_default(self):
        a = long_beach_surrogate(n=100)
        b = long_beach_surrogate(n=100)
        assert [(o.lo, o.hi) for o in a] == [(o.lo, o.hi) for o in b]

    def test_candidate_set_calibration(self):
        # The paper reports ~96 candidates on average; the surrogate is
        # calibrated to match within a reasonable band at full scale.
        objects = long_beach_surrogate()
        rng = np.random.default_rng(9)
        sizes = [
            len(filter_candidates(objects, float(q)))
            for q in random_query_points(15, rng=rng)
        ]
        assert 50 <= float(np.mean(sizes)) <= 160

    def test_gaussian_variant(self):
        objects = long_beach_surrogate(n=50, pdf="gaussian", bars=40)
        assert all(o.histogram.nbins == 40 for o in objects)


class TestQueryPoints:
    def test_range_and_count(self, rng):
        points = random_query_points(25, domain=(10.0, 20.0), rng=rng)
        assert points.shape == (25,)
        assert points.min() >= 10.0 and points.max() <= 20.0

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            random_query_points(0, rng=rng)
