"""Scenario generators: determinism, object families, and parametric /
histogram representation equivalence (DESIGN.md §15)."""

import numpy as np
import pytest

from repro.datasets import gps_ellipse_objects, sensor_noise_objects
from repro.uncertainty.objects import UncertainObject
from repro.uncertainty.parametric import (
    GaussianMixtureObject,
    GaussianObject,
    GpsEllipseObject,
)


class TestSensorNoise:
    def test_deterministic_by_default(self):
        a = sensor_noise_objects(40)
        b = sensor_noise_objects(40)
        for x, y in zip(a, b):
            assert type(x) is type(y)
            assert (x.lo, x.hi) == (y.lo, y.hi)

    def test_object_families(self):
        objects = sensor_noise_objects(120, bimodal_fraction=0.25)
        kinds = {type(o) for o in objects}
        assert kinds == {GaussianObject, GaussianMixtureObject}
        mixtures = sum(isinstance(o, GaussianMixtureObject) for o in objects)
        assert 10 <= mixtures <= 50, "~25% of sensors should be bimodal"
        assert [o.key for o in objects] == list(range(120))

    def test_no_bimodal_sensors_when_fraction_zero(self):
        objects = sensor_noise_objects(30, bimodal_fraction=0.0)
        assert all(isinstance(o, GaussianObject) for o in objects)

    def test_histogram_representation_equivalent(self):
        """Same rng stream on both paths: the eager histogram twin of
        each parametric object is byte-identical."""
        parametric = sensor_noise_objects(25)
        histogram = sensor_noise_objects(25, representation="histogram")
        for p, h in zip(parametric, histogram):
            assert isinstance(h, UncertainObject)
            assert not isinstance(h, (GaussianObject, GaussianMixtureObject))
            np.testing.assert_array_equal(p.histogram.edges, h.histogram.edges)
            np.testing.assert_array_equal(
                p.histogram.densities, h.histogram.densities
            )

    def test_truncation_and_domain(self):
        objects = sensor_noise_objects(
            50, domain=(0.0, 100.0), sigma_range=(1.0, 2.0), k=3.0,
            bimodal_fraction=0.0,
        )
        for obj in objects:
            width = obj.hi - obj.lo
            assert 6.0 - 1e-9 <= width <= 12.0 + 1e-9  # 2·k·sigma
            center = (obj.lo + obj.hi) / 2.0
            assert 0.0 <= center <= 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            sensor_noise_objects(0)
        with pytest.raises(ValueError):
            sensor_noise_objects(5, bimodal_fraction=1.5)
        with pytest.raises(ValueError):
            sensor_noise_objects(5, representation="wavelet")

    def test_explicit_rng_shifts_the_draw(self):
        default = sensor_noise_objects(10)
        shifted = sensor_noise_objects(10, rng=np.random.default_rng(7))
        assert any(
            x.lo != y.lo for x, y in zip(default, shifted)
        ), "a custom rng must change the sample"


class TestGpsEllipses:
    def test_deterministic_by_default(self):
        a = gps_ellipse_objects(20)
        b = gps_ellipse_objects(20)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x.mbr.lows, y.mbr.lows)
            np.testing.assert_array_equal(x.mbr.highs, y.mbr.highs)

    def test_objects_and_extent(self):
        extent = (0.0, 500.0)
        objects = gps_ellipse_objects(30, extent=extent, sigma_range=(1.0, 4.0))
        assert all(isinstance(o, GpsEllipseObject) for o in objects)
        for obj in objects:
            center = (obj.mbr.lows + obj.mbr.highs) / 2.0
            assert np.all(center >= extent[0]) and np.all(center <= extent[1])

    def test_distance_law_is_parametric(self):
        obj = gps_ellipse_objects(1)[0]
        dist = obj.parametric_distance((0.0, 0.0))
        assert dist.cdf(dist.far) == pytest.approx(1.0, abs=1e-9)
        assert dist.near >= 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            gps_ellipse_objects(0)
