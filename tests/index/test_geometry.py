"""Tests for rectangles and the mindist/maxdist metrics."""

import math

import numpy as np
import pytest

from repro.index.geometry import Rect


class TestConstruction:
    def test_interval(self):
        r = Rect.interval(1.0, 3.0)
        assert r.dim == 1
        assert r.area() == pytest.approx(2.0)

    def test_point(self):
        p = Rect.point([2.0, 3.0])
        assert p.area() == 0.0
        assert p.contains_point((2.0, 3.0))

    def test_union_of(self):
        u = Rect.union_of([Rect.interval(0, 1), Rect.interval(5, 6)])
        assert u.lows[0] == 0.0 and u.highs[0] == 6.0

    def test_union_of_empty_raises(self):
        with pytest.raises(ValueError):
            Rect.union_of([])

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            Rect([2.0], [1.0])

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            Rect([0.0], [math.inf])


class TestRelations:
    def test_intersects(self):
        assert Rect.interval(0, 2).intersects(Rect.interval(1, 3))
        assert Rect.interval(0, 2).intersects(Rect.interval(2, 3))  # touching
        assert not Rect.interval(0, 1).intersects(Rect.interval(2, 3))

    def test_contains(self):
        assert Rect.interval(0, 10).contains(Rect.interval(2, 3))
        assert not Rect.interval(0, 10).contains(Rect.interval(5, 11))

    def test_enlargement(self):
        r = Rect([0, 0], [2, 2])
        assert r.enlargement(Rect([0, 0], [2, 4])) == pytest.approx(4.0)
        assert r.enlargement(Rect([1, 1], [2, 2])) == 0.0

    def test_margin(self):
        assert Rect([0, 0], [2, 3]).margin() == pytest.approx(5.0)

    def test_equality_and_hash(self):
        assert Rect.interval(0, 1) == Rect.interval(0, 1)
        assert hash(Rect.interval(0, 1)) == hash(Rect.interval(0, 1))
        assert Rect.interval(0, 1) != Rect.interval(0, 2)


class TestDistances:
    def test_mindist_1d(self):
        r = Rect.interval(2.0, 5.0)
        assert r.mindist(0.0) == pytest.approx(2.0)
        assert r.mindist(3.0) == 0.0
        assert r.mindist(7.0) == pytest.approx(2.0)

    def test_maxdist_1d(self):
        r = Rect.interval(2.0, 5.0)
        assert r.maxdist(0.0) == pytest.approx(5.0)
        assert r.maxdist(4.0) == pytest.approx(2.0)

    def test_mindist_2d_corner(self):
        r = Rect([1.0, 1.0], [2.0, 2.0])
        assert r.mindist((0.0, 0.0)) == pytest.approx(math.sqrt(2.0))

    def test_maxdist_2d(self):
        r = Rect([0.0, 0.0], [1.0, 1.0])
        assert r.maxdist((0.0, 0.0)) == pytest.approx(math.sqrt(2.0))

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            Rect.interval(0, 1).mindist((1.0, 2.0))

    def test_matches_numpy_reference(self, rng):
        # Cross-check the scalar fast path against a vector formula.
        for _ in range(50):
            lows = rng.uniform(-5, 0, 2)
            highs = lows + rng.uniform(0.1, 5, 2)
            r = Rect(lows, highs)
            q = rng.uniform(-8, 8, 2)
            gaps = np.maximum(np.maximum(lows - q, q - highs), 0.0)
            assert r.mindist(q) == pytest.approx(float(np.linalg.norm(gaps)))
            spans = np.maximum(np.abs(q - lows), np.abs(q - highs))
            assert r.maxdist(q) == pytest.approx(float(np.linalg.norm(spans)))

    def test_mindist_never_exceeds_maxdist(self, rng):
        for _ in range(50):
            lo = float(rng.uniform(-10, 10))
            hi = lo + float(rng.uniform(0, 5))
            q = float(rng.uniform(-20, 20))
            r = Rect.interval(lo, hi)
            assert r.mindist(q) <= r.maxdist(q) + 1e-12
