"""Tests for STR bulk loading."""

import pytest

from repro.index.geometry import Rect
from repro.index.rtree import RTree
from repro.index.str_pack import str_bulk_load


def pairs_1d(rng, n):
    lows = rng.uniform(0, 1000, n)
    widths = rng.uniform(0, 10, n)
    return [(Rect.interval(lo, lo + w), i) for i, (lo, w) in enumerate(zip(lows, widths))]


def pairs_2d(rng, n):
    lows = rng.uniform(0, 1000, (n, 2))
    widths = rng.uniform(0, 10, (n, 2))
    return [(Rect(lo, lo + w), i) for i, (lo, w) in enumerate(zip(lows, widths))]


class TestBulkLoad:
    def test_empty(self):
        tree = str_bulk_load([])
        assert len(tree) == 0

    def test_single_leaf(self, rng):
        tree = str_bulk_load(pairs_1d(rng, 5), max_entries=8)
        assert len(tree) == 5
        assert tree.height() == 1
        tree.check_invariants()

    @pytest.mark.parametrize("n", [9, 17, 64, 100, 257, 1000])
    def test_invariants_across_sizes_1d(self, rng, n):
        tree = str_bulk_load(pairs_1d(rng, n), max_entries=8)
        tree.check_invariants()
        assert len(tree) == n
        assert sorted(tree.items()) == list(range(n))

    @pytest.mark.parametrize("n", [65, 250, 777])
    def test_invariants_across_sizes_2d(self, rng, n):
        tree = str_bulk_load(pairs_2d(rng, n), max_entries=10)
        tree.check_invariants()
        assert len(tree) == n

    def test_search_matches_dynamic_tree(self, rng):
        pairs = pairs_1d(rng, 300)
        packed = str_bulk_load(pairs, max_entries=8)
        dynamic = RTree(max_entries=8)
        for rect, item in pairs:
            dynamic.insert(rect, item)
        for _ in range(20):
            lo = float(rng.uniform(0, 1000))
            window = Rect.interval(lo, lo + float(rng.uniform(0, 50)))
            assert set(packed.search(window)) == set(dynamic.search(window))

    def test_packed_tree_is_shallower(self, rng):
        pairs = pairs_1d(rng, 500)
        packed = str_bulk_load(pairs, max_entries=8)
        dynamic = RTree(max_entries=8)
        for rect, item in pairs:
            dynamic.insert(rect, item)
        assert packed.height() <= dynamic.height()

    def test_insertion_after_bulk_load(self, rng):
        tree = str_bulk_load(pairs_1d(rng, 100), max_entries=8)
        tree.insert(Rect.interval(-5, -4), "new")
        tree.check_invariants()
        assert "new" in set(tree.items())
        assert len(tree) == 101

    def test_deletion_after_bulk_load(self, rng):
        pairs = pairs_1d(rng, 100)
        tree = str_bulk_load(pairs, max_entries=8)
        rect, item = pairs[42]
        assert tree.delete(rect, lambda x: x == item)
        tree.check_invariants()
        assert len(tree) == 99

    def test_nearest_maxdist_after_bulk_load(self, rng):
        pairs = pairs_1d(rng, 400)
        tree = str_bulk_load(pairs, max_entries=16)
        rects = [rect for rect, _ in pairs]
        for q in rng.uniform(0, 1000, 10):
            expected = min(r.maxdist(float(q)) for r in rects)
            assert tree.nearest_maxdist(float(q)) == pytest.approx(expected)
