"""Tests for the dynamic R-tree."""

import numpy as np
import pytest

from repro.index.geometry import Rect
from repro.index.rtree import RTree, RTreeStats


def random_rects_1d(rng, n):
    lows = rng.uniform(0, 100, n)
    return [Rect.interval(lo, lo + w) for lo, w in zip(lows, rng.uniform(0, 5, n))]


def random_rects_2d(rng, n):
    lows = rng.uniform(0, 100, (n, 2))
    widths = rng.uniform(0, 5, (n, 2))
    return [Rect(lo, lo + w) for lo, w in zip(lows, widths)]


class TestConstructionAndValidation:
    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            RTree(max_entries=1)
        with pytest.raises(ValueError):
            RTree(max_entries=8, min_entries=5)

    def test_empty_tree(self):
        tree = RTree()
        assert len(tree) == 0
        assert tree.mbr() is None
        assert tree.height() == 1
        with pytest.raises(ValueError):
            tree.nearest_maxdist(0.0)


class TestInsertion:
    def test_insert_grows_and_checks(self, rng):
        tree = RTree(max_entries=4)
        for i, rect in enumerate(random_rects_1d(rng, 100)):
            tree.insert(rect, i)
            if i % 10 == 0:
                tree.check_invariants()
        tree.check_invariants()
        assert len(tree) == 100
        assert tree.height() >= 3
        assert sorted(tree.items()) == list(range(100))

    def test_insert_2d(self, rng):
        tree = RTree(max_entries=6)
        for i, rect in enumerate(random_rects_2d(rng, 200)):
            tree.insert(rect, i)
        tree.check_invariants()
        assert len(tree) == 200


class TestSearch:
    def test_search_equals_linear_scan_1d(self, rng):
        rects = random_rects_1d(rng, 150)
        tree = RTree(max_entries=5)
        for i, rect in enumerate(rects):
            tree.insert(rect, i)
        for _ in range(25):
            lo = float(rng.uniform(0, 100))
            window = Rect.interval(lo, lo + float(rng.uniform(0, 20)))
            expected = {i for i, r in enumerate(rects) if r.intersects(window)}
            assert set(tree.search(window)) == expected

    def test_search_equals_linear_scan_2d(self, rng):
        rects = random_rects_2d(rng, 150)
        tree = RTree(max_entries=5)
        for i, rect in enumerate(rects):
            tree.insert(rect, i)
        for _ in range(25):
            lo = rng.uniform(0, 100, 2)
            window = Rect(lo, lo + rng.uniform(0, 20, 2))
            expected = {i for i, r in enumerate(rects) if r.intersects(window)}
            assert set(tree.search(window)) == expected

    def test_stab(self, rng):
        rects = random_rects_1d(rng, 80)
        tree = RTree()
        for i, rect in enumerate(rects):
            tree.insert(rect, i)
        q = 50.0
        expected = {i for i, r in enumerate(rects) if r.contains_point(q)}
        assert set(tree.stab(q)) == expected

    def test_stats_counters(self, rng):
        tree = RTree(max_entries=4)
        for i, rect in enumerate(random_rects_1d(rng, 60)):
            tree.insert(rect, i)
        stats = RTreeStats()
        tree.search(Rect.interval(0, 100), stats=stats)
        assert stats.nodes_visited > 1
        assert stats.entries_scanned >= 60


class TestBestFirst:
    def test_nearest_maxdist_equals_bruteforce(self, rng):
        rects = random_rects_1d(rng, 120)
        tree = RTree(max_entries=4)
        for i, rect in enumerate(rects):
            tree.insert(rect, i)
        for q in rng.uniform(-10, 110, 15):
            expected = min(r.maxdist(q) for r in rects)
            assert tree.nearest_maxdist(float(q)) == pytest.approx(expected)

    def test_within_mindist_equals_bruteforce(self, rng):
        rects = random_rects_1d(rng, 120)
        tree = RTree(max_entries=4)
        for i, rect in enumerate(rects):
            tree.insert(rect, i)
        for q in rng.uniform(0, 100, 10):
            radius = float(rng.uniform(0, 10))
            expected = {
                i for i, r in enumerate(rects) if r.mindist(float(q)) <= radius
            }
            assert set(tree.within_mindist(float(q), radius)) == expected


class TestDeletion:
    def test_delete_and_condense(self, rng):
        rects = random_rects_1d(rng, 80)
        tree = RTree(max_entries=4)
        for i, rect in enumerate(rects):
            tree.insert(rect, i)
        order = list(rng.permutation(80))
        for count, i in enumerate(order[:60]):
            removed = tree.delete(rects[i], lambda item: item == i)
            assert removed
            if count % 7 == 0:
                tree.check_invariants()
        tree.check_invariants()
        assert len(tree) == 20
        remaining = set(order[60:])
        assert set(tree.items()) == remaining

    def test_delete_missing_returns_false(self, rng):
        tree = RTree()
        tree.insert(Rect.interval(0, 1), "a")
        assert not tree.delete(Rect.interval(5, 6), lambda item: True)
        assert not tree.delete(Rect.interval(0, 1), lambda item: item == "b")
        assert len(tree) == 1

    def test_delete_everything(self, rng):
        rects = random_rects_1d(rng, 30)
        tree = RTree(max_entries=4)
        for i, rect in enumerate(rects):
            tree.insert(rect, i)
        for i in range(30):
            assert tree.delete(rects[i], lambda item: item == i)
        assert len(tree) == 0

    def test_queries_after_heavy_churn(self, rng):
        tree = RTree(max_entries=4)
        live = {}
        next_id = 0
        for _ in range(400):
            if live and rng.random() < 0.4:
                victim = int(rng.choice(list(live)))
                assert tree.delete(live.pop(victim), lambda item: item == victim)
            else:
                lo = float(rng.uniform(0, 100))
                rect = Rect.interval(lo, lo + float(rng.uniform(0, 5)))
                tree.insert(rect, next_id)
                live[next_id] = rect
                next_id += 1
        tree.check_invariants()
        window = Rect.interval(20, 60)
        expected = {i for i, r in live.items() if r.intersects(window)}
        assert set(tree.search(window)) == expected
