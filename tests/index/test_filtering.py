"""Tests for the PNN filtering phase (Figure 3, first stage)."""

import numpy as np
import pytest

from repro.baselines.montecarlo import monte_carlo_pnn_probabilities
from repro.index.filtering import PnnFilter, filter_candidates
from repro.index.linear import LinearScanIndex
from repro.index.str_pack import str_bulk_load
from repro.uncertainty.objects import UncertainObject
from tests.conftest import make_random_objects


def build_tree(objects, max_entries=8):
    return str_bulk_load([(o.mbr, o) for o in objects], max_entries=max_entries)


class TestLinearFilter:
    def test_fmin_is_min_far_distance(self, rng):
        objects = make_random_objects(rng, 25)
        q = 30.0
        result = filter_candidates(objects, q)
        assert result.fmin == pytest.approx(min(o.maxdist(q) for o in objects))

    def test_survivors_have_near_within_fmin(self, rng):
        objects = make_random_objects(rng, 25)
        result = filter_candidates(objects, 30.0)
        for obj in result.candidates:
            assert obj.mindist(30.0) <= result.fmin + 1e-12

    def test_empty_collection_raises(self):
        with pytest.raises(ValueError):
            filter_candidates([], 0.0)

    def test_never_prunes_positive_probability_object(self, rng):
        # Soundness: any object the filter drops must have zero
        # qualification probability (checked by Monte Carlo).
        for trial in range(5):
            objects = make_random_objects(rng, 12, families=("uniform",))
            q = float(rng.uniform(0, 60))
            result = filter_candidates(objects, q)
            dropped = [o for o in objects if o not in result.candidates]
            if not dropped:
                continue
            mc = monte_carlo_pnn_probabilities(objects, q, trials=20_000, rng=rng)
            for obj in dropped:
                assert mc[obj.key] == 0.0


class TestRTreeFilter:
    def test_matches_linear_scan(self, rng):
        objects = make_random_objects(rng, 60)
        pnn_filter = PnnFilter(build_tree(objects))
        for q in rng.uniform(-5, 65, 12):
            via_tree = pnn_filter(float(q))
            via_scan = filter_candidates(objects, float(q))
            assert via_tree.fmin == pytest.approx(via_scan.fmin)
            assert {o.key for o in via_tree.candidates} == {
                o.key for o in via_scan.candidates
            }

    def test_records_traversal_stats(self, rng):
        objects = make_random_objects(rng, 60)
        result = PnnFilter(build_tree(objects, max_entries=4))(30.0)
        assert result.stats.nodes_visited > 0
        assert result.stats.entries_scanned > 0

    def test_empty_tree_rejected(self):
        from repro.index.rtree import RTree

        with pytest.raises(ValueError):
            PnnFilter(RTree())

    def test_single_object(self):
        obj = UncertainObject.uniform("only", 0.0, 1.0)
        result = PnnFilter(build_tree([obj]))(5.0)
        assert len(result) == 1
        assert result.fmin == pytest.approx(5.0)


class TestLinearScanIndex:
    def test_parity_with_rtree(self, rng):
        objects = make_random_objects(rng, 40)
        index = LinearScanIndex.from_objects(objects)
        tree = build_tree(objects)
        assert len(index) == len(tree)
        q = 25.0
        assert index.nearest_maxdist(q) == pytest.approx(tree.nearest_maxdist(q))
        radius = index.nearest_maxdist(q)
        assert {o.key for o in index.within_mindist(q, radius)} == {
            o.key for o in tree.within_mindist(q, radius)
        }

    def test_filter_method(self, rng):
        objects = make_random_objects(rng, 20)
        index = LinearScanIndex.from_objects(objects)
        result = index.filter(10.0)
        reference = filter_candidates(objects, 10.0)
        assert {o.key for o in result.candidates} == {
            o.key for o in reference.candidates
        }

    def test_search_and_stab(self, rng):
        objects = make_random_objects(rng, 20)
        index = LinearScanIndex.from_objects(objects)
        hits = index.stab(30.0)
        for obj in hits:
            assert obj.lo <= 30.0 <= obj.hi

    def test_empty_index_raises(self):
        with pytest.raises(ValueError):
            LinearScanIndex().nearest_maxdist(0.0)


class TestDegenerateGeometry:
    def test_identical_objects(self):
        objects = [UncertainObject.uniform(i, 0.0, 2.0) for i in range(4)]
        result = filter_candidates(objects, 1.0)
        assert len(result) == 4

    def test_query_far_from_everything(self, rng):
        objects = make_random_objects(rng, 15)
        result = filter_candidates(objects, 1e6)
        assert len(result) >= 1
