"""Tests for the PNN filtering phase (Figure 3, first stage)."""

import numpy as np
import pytest

from repro.baselines.montecarlo import monte_carlo_pnn_probabilities
from repro.index.filtering import BatchMbrFilter, PnnFilter, filter_candidates
from repro.index.linear import LinearScanIndex
from repro.index.str_pack import str_bulk_load
from repro.uncertainty.objects import UncertainObject
from tests.conftest import make_random_objects


def build_tree(objects, max_entries=8):
    return str_bulk_load([(o.mbr, o) for o in objects], max_entries=max_entries)


class TestLinearFilter:
    def test_fmin_is_min_far_distance(self, rng):
        objects = make_random_objects(rng, 25)
        q = 30.0
        result = filter_candidates(objects, q)
        assert result.fmin == pytest.approx(min(o.maxdist(q) for o in objects))

    def test_survivors_have_near_within_fmin(self, rng):
        objects = make_random_objects(rng, 25)
        result = filter_candidates(objects, 30.0)
        for obj in result.candidates:
            assert obj.mindist(30.0) <= result.fmin + 1e-12

    def test_empty_collection_raises(self):
        with pytest.raises(ValueError):
            filter_candidates([], 0.0)

    def test_never_prunes_positive_probability_object(self, rng):
        # Soundness: any object the filter drops must have zero
        # qualification probability (checked by Monte Carlo).
        for trial in range(5):
            objects = make_random_objects(rng, 12, families=("uniform",))
            q = float(rng.uniform(0, 60))
            result = filter_candidates(objects, q)
            dropped = [o for o in objects if o not in result.candidates]
            if not dropped:
                continue
            mc = monte_carlo_pnn_probabilities(objects, q, trials=20_000, rng=rng)
            for obj in dropped:
                assert mc[obj.key] == 0.0


class TestRTreeFilter:
    def test_matches_linear_scan(self, rng):
        objects = make_random_objects(rng, 60)
        pnn_filter = PnnFilter(build_tree(objects))
        for q in rng.uniform(-5, 65, 12):
            via_tree = pnn_filter(float(q))
            via_scan = filter_candidates(objects, float(q))
            assert via_tree.fmin == pytest.approx(via_scan.fmin)
            assert {o.key for o in via_tree.candidates} == {
                o.key for o in via_scan.candidates
            }

    def test_records_traversal_stats(self, rng):
        objects = make_random_objects(rng, 60)
        result = PnnFilter(build_tree(objects, max_entries=4))(30.0)
        assert result.stats.nodes_visited > 0
        assert result.stats.entries_scanned > 0

    def test_empty_tree_rejected(self):
        from repro.index.rtree import RTree

        with pytest.raises(ValueError):
            PnnFilter(RTree())

    def test_single_object(self):
        obj = UncertainObject.uniform("only", 0.0, 1.0)
        result = PnnFilter(build_tree([obj]))(5.0)
        assert len(result) == 1
        assert result.fmin == pytest.approx(5.0)


class TestLinearScanIndex:
    def test_parity_with_rtree(self, rng):
        objects = make_random_objects(rng, 40)
        index = LinearScanIndex.from_objects(objects)
        tree = build_tree(objects)
        assert len(index) == len(tree)
        q = 25.0
        assert index.nearest_maxdist(q) == pytest.approx(tree.nearest_maxdist(q))
        radius = index.nearest_maxdist(q)
        assert {o.key for o in index.within_mindist(q, radius)} == {
            o.key for o in tree.within_mindist(q, radius)
        }

    def test_filter_method(self, rng):
        objects = make_random_objects(rng, 20)
        index = LinearScanIndex.from_objects(objects)
        result = index.filter(10.0)
        reference = filter_candidates(objects, 10.0)
        assert {o.key for o in result.candidates} == {
            o.key for o in reference.candidates
        }

    def test_search_and_stab(self, rng):
        objects = make_random_objects(rng, 20)
        index = LinearScanIndex.from_objects(objects)
        hits = index.stab(30.0)
        for obj in hits:
            assert obj.lo <= 30.0 <= obj.hi

    def test_empty_index_raises(self):
        with pytest.raises(ValueError):
            LinearScanIndex().nearest_maxdist(0.0)


class TestBatchFilterMaintenance:
    """Incremental append/mask-removal/replace on BatchMbrFilter must
    stay bit-identical to a freshly built filter (DESIGN.md §11)."""

    def _assert_same_as_fresh(self, incremental, objects, points):
        fresh = BatchMbrFilter(objects)
        inc_min, inc_max = incremental.matrices(points)
        ref_min, ref_max = fresh.matrices(points)
        assert np.array_equal(inc_min, ref_min)
        assert np.array_equal(inc_max, ref_max)
        assert incremental.objects == tuple(objects)
        for a, b in zip(incremental(points), fresh(points)):
            assert a.fmin == b.fmin
            assert a.candidates == b.candidates

    def test_append_matches_fresh(self, rng):
        objects = make_random_objects(rng, 12)
        batch = BatchMbrFilter(objects[:8])
        for obj in objects[8:]:
            batch.append(obj)
        self._assert_same_as_fresh(batch, objects, [5.0, 30.0, 55.0])

    def test_remove_matches_fresh(self, rng):
        objects = make_random_objects(rng, 12)
        batch = BatchMbrFilter(objects)
        survivors = list(objects)
        for index in (9, 3, 0):
            batch.remove_at(index)
            del survivors[index]
        self._assert_same_as_fresh(batch, survivors, [5.0, 30.0, 55.0])

    def test_replace_matches_fresh(self, rng):
        objects = make_random_objects(rng, 10)
        batch = BatchMbrFilter(objects)
        current = list(objects)
        for index in (2, 7):
            newcomer = UncertainObject.uniform(("r", index), 20.0, 24.0)
            batch.replace_at(index, newcomer)
            current[index] = newcomer
        self._assert_same_as_fresh(batch, current, [5.0, 22.0, 55.0])

    def test_interleaved_churn_matches_fresh(self, rng):
        objects = make_random_objects(rng, 15)
        batch = BatchMbrFilter(objects)
        current = list(objects)
        points = [float(q) for q in rng.uniform(0, 60, 6)]
        for step in range(12):
            op = step % 3
            if op == 0:
                obj = UncertainObject.uniform(("a", step), 5.0 + step, 9.0 + step)
                batch.append(obj)
                current.append(obj)
            elif op == 1:
                index = int(rng.integers(0, len(current)))
                batch.remove_at(index)
                del current[index]
            else:
                index = int(rng.integers(0, len(current)))
                obj = UncertainObject.uniform(("s", step), 30.0, 33.0)
                batch.replace_at(index, obj)
                current[index] = obj
            # Query mid-stream: flushes pending maintenance each time.
            self._assert_same_as_fresh(batch, current, points)

    def test_pending_ops_before_any_query(self, rng):
        """Maintenance queued before the first matrices() call."""
        objects = make_random_objects(rng, 6)
        batch = BatchMbrFilter(objects)
        extra = UncertainObject.uniform("x", 1.0, 2.0)
        batch.append(extra)
        batch.remove_at(0)
        batch.replace_at(0, UncertainObject.uniform("y", 3.0, 4.0))
        current = [UncertainObject.uniform("y", 3.0, 4.0)] + list(objects[2:]) + [extra]
        fresh = BatchMbrFilter(current)
        got_min, got_max = batch.matrices([10.0])
        ref_min, ref_max = fresh.matrices([10.0])
        assert np.array_equal(got_min, ref_min)
        assert np.array_equal(got_max, ref_max)

    def test_remove_out_of_range_raises(self, rng):
        batch = BatchMbrFilter(make_random_objects(rng, 3))
        with pytest.raises(IndexError):
            batch.remove_at(3)
        with pytest.raises(IndexError):
            batch.replace_at(-1, make_random_objects(rng, 1)[0])

    def test_dimension_mismatch_rejected(self, rng):
        from repro.uncertainty.twod import UncertainDisk

        batch = BatchMbrFilter(make_random_objects(rng, 3))
        with pytest.raises(ValueError):
            batch.append(UncertainDisk("d", (0, 0), 1.0))

    def test_kth_filter_error_names_bad_k(self, rng):
        batch = BatchMbrFilter(make_random_objects(rng, 4))
        with pytest.raises(ValueError, match=r"k=9 \(query 0\)"):
            batch.kth_filter([30.0], [9])


class TestDegenerateGeometry:
    def test_identical_objects(self):
        objects = [UncertainObject.uniform(i, 0.0, 2.0) for i in range(4)]
        result = filter_candidates(objects, 1.0)
        assert len(result) == 4

    def test_query_far_from_everything(self, rng):
        objects = make_random_objects(rng, 15)
        result = filter_candidates(objects, 1e6)
        assert len(result) >= 1
