"""Sort-Tile-Recursive (STR) bulk loading for the R-tree.

Building a tree by repeated insertion is O(n log n) with large
constants and produces poor page utilisation; STR packs leaves at
~100% fill by tiling the space, which is how the spatial index library
the paper uses ([18]) bulk-loads static datasets such as Long Beach.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.index.geometry import Rect
from repro.index.rtree import RTree, RTreeEntry, RTreeNode

__all__ = ["str_bulk_load"]


def str_bulk_load(
    rects_and_items: Sequence[tuple[Rect, object]],
    max_entries: int = 8,
    min_entries: int | None = None,
) -> RTree:
    """Build an R-tree from ``(rect, item)`` pairs using STR packing.

    The resulting tree satisfies every invariant of the dynamic tree
    (checked by ``RTree.check_invariants``) and further insertions or
    deletions behave normally.
    """
    tree = RTree(max_entries=max_entries, min_entries=min_entries)
    pairs = list(rects_and_items)
    if not pairs:
        return tree
    if len(pairs) <= max_entries:
        root = RTreeNode(is_leaf=True)
        root.entries = [RTreeEntry(rect, item=item) for rect, item in pairs]
        tree._root = root
        tree._size = len(pairs)
        return tree

    dim = pairs[0][0].dim
    entries = [RTreeEntry(rect, item=item) for rect, item in pairs]
    nodes = _pack_level(entries, max_entries, dim, is_leaf=True)
    while len(nodes) > 1:
        upper_entries = [RTreeEntry(node.mbr(), child=node) for node in nodes]
        nodes = _pack_level(upper_entries, max_entries, dim, is_leaf=False)
    root = nodes[0]
    root.parent = None
    tree._root = root
    tree._size = len(pairs)
    return tree


def _pack_level(
    entries: list[RTreeEntry], max_entries: int, dim: int, is_leaf: bool
) -> list[RTreeNode]:
    """Tile one level of entries into nodes of up to ``max_entries``."""
    groups = _tile(entries, max_entries, dim, axis=0)
    nodes: list[RTreeNode] = []
    for group in groups:
        node = RTreeNode(is_leaf=is_leaf)
        node.entries = group
        if not is_leaf:
            for entry in group:
                entry.child.parent = node  # type: ignore[union-attr]
        nodes.append(node)
    return nodes


def _tile(
    entries: list[RTreeEntry], max_entries: int, dim: int, axis: int
) -> list[list[RTreeEntry]]:
    """Recursively sort by center along ``axis`` and slice into tiles."""
    entries = sorted(entries, key=lambda e: float(e.rect.center[axis]))
    pages = math.ceil(len(entries) / max_entries)
    if axis == dim - 1 or pages <= 1:
        groups = [
            entries[i : i + max_entries] for i in range(0, len(entries), max_entries)
        ]
        return _rebalance_tail(groups, max_entries)
    slabs = math.ceil(pages ** (1.0 / (dim - axis)))
    slab_size = math.ceil(len(entries) / slabs) if slabs else len(entries)
    slab_size = max(slab_size, max_entries)
    groups: list[list[RTreeEntry]] = []
    for start in range(0, len(entries), slab_size):
        slab = entries[start : start + slab_size]
        groups.extend(_tile(slab, max_entries, dim, axis + 1))
    return groups


def _rebalance_tail(
    groups: list[list[RTreeEntry]], max_entries: int
) -> list[list[RTreeEntry]]:
    """Even out the final tile so no node falls below half fill.

    Plain slicing can leave a runt tile (e.g. 8 + 8 + 1); moving
    entries from its predecessor keeps both above ``max_entries // 2``,
    preserving the dynamic tree's minimum-fill invariant.
    """
    min_fill = max(1, max_entries // 2)
    if len(groups) >= 2 and len(groups[-1]) < min_fill:
        deficit = min_fill - len(groups[-1])
        groups[-1] = groups[-2][-deficit:] + groups[-1]
        groups[-2] = groups[-2][:-deficit]
    return groups
