"""Axis-aligned rectangles and the point-to-rectangle distance metrics.

``mindist`` (smallest distance from a point to anywhere in the
rectangle) and ``maxdist`` (largest such distance) are the two bounds
that drive the branch-and-bound PNN filter: an R-tree node can be
pruned as soon as its ``mindist`` exceeds the best ``maxdist`` seen so
far, because no object inside it can ever be the nearest neighbour.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

__all__ = ["Rect"]


def _as_point(q) -> np.ndarray:
    point = np.atleast_1d(np.asarray(q, dtype=float))
    if point.ndim != 1:
        raise ValueError("query point must be one-dimensional")
    return point


class Rect:
    """A closed axis-aligned box in ``d`` dimensions.

    Degenerate boxes (zero width in some or all dimensions) are valid;
    1-D intervals and points are represented this way.
    """

    __slots__ = ("_lows", "_highs", "_lows_t", "_highs_t")

    def __init__(self, lows: Sequence[float], highs: Sequence[float]) -> None:
        self._lows = np.asarray(lows, dtype=float)
        self._highs = np.asarray(highs, dtype=float)
        if self._lows.shape != self._highs.shape or self._lows.ndim != 1:
            raise ValueError("lows and highs must be 1-D arrays of equal length")
        if not (np.all(np.isfinite(self._lows)) and np.all(np.isfinite(self._highs))):
            raise ValueError("rectangle bounds must be finite")
        if np.any(self._lows > self._highs):
            raise ValueError("every low bound must not exceed its high bound")
        # Plain-float mirrors for the distance hot path: branch-and-bound
        # filtering calls mindist/maxdist tens of thousands of times per
        # query, where numpy's per-call overhead dominates at d ≤ 3.
        self._lows_t = tuple(self._lows.tolist())
        self._highs_t = tuple(self._highs.tolist())

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def interval(cls, lo: float, hi: float) -> "Rect":
        """A 1-D interval as a degenerate rectangle."""
        return cls([lo], [hi])

    @classmethod
    def point(cls, coords: Sequence[float] | float) -> "Rect":
        point = _as_point(coords)
        return cls(point, point)

    @classmethod
    def union_of(cls, rects: Iterable["Rect"]) -> "Rect":
        rects = list(rects)
        if not rects:
            raise ValueError("union_of requires at least one rectangle")
        lows = np.min([r._lows for r in rects], axis=0)
        highs = np.max([r._highs for r in rects], axis=0)
        return cls(lows, highs)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def lows(self) -> np.ndarray:
        view = self._lows.view()
        view.flags.writeable = False
        return view

    @property
    def highs(self) -> np.ndarray:
        view = self._highs.view()
        view.flags.writeable = False
        return view

    @property
    def dim(self) -> int:
        return self._lows.size

    @property
    def center(self) -> np.ndarray:
        return 0.5 * (self._lows + self._highs)

    @property
    def extents(self) -> np.ndarray:
        return self._highs - self._lows

    def area(self) -> float:
        """Hyper-volume (width for 1-D, area for 2-D, ...)."""
        return float(np.prod(self.extents))

    def margin(self) -> float:
        """Sum of side lengths (used as a split tie-breaker)."""
        return float(np.sum(self.extents))

    def __repr__(self) -> str:  # pragma: no cover
        pairs = ", ".join(
            f"[{lo:.6g}, {hi:.6g}]" for lo, hi in zip(self._lows, self._highs)
        )
        return f"Rect({pairs})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rect):
            return NotImplemented
        return np.array_equal(self._lows, other._lows) and np.array_equal(
            self._highs, other._highs
        )

    def __hash__(self) -> int:
        return hash((self._lows.tobytes(), self._highs.tobytes()))

    # ------------------------------------------------------------------
    # Relations
    # ------------------------------------------------------------------

    def union(self, other: "Rect") -> "Rect":
        return Rect(
            np.minimum(self._lows, other._lows),
            np.maximum(self._highs, other._highs),
        )

    def intersects(self, other: "Rect") -> bool:
        return bool(
            np.all(self._lows <= other._highs) and np.all(other._lows <= self._highs)
        )

    def contains(self, other: "Rect") -> bool:
        return bool(
            np.all(self._lows <= other._lows) and np.all(other._highs <= self._highs)
        )

    def contains_point(self, q) -> bool:
        point = _as_point(q)
        return bool(np.all(self._lows <= point) and np.all(point <= self._highs))

    def enlargement(self, other: "Rect") -> float:
        """Area growth needed to absorb ``other`` (choose-leaf metric)."""
        return self.union(other).area() - self.area()

    # ------------------------------------------------------------------
    # Distance metrics
    # ------------------------------------------------------------------

    @staticmethod
    def _coords(q) -> tuple[float, ...]:
        if isinstance(q, (int, float)):
            return (float(q),)
        return tuple(float(c) for c in q)

    def mindist(self, q) -> float:
        """Euclidean distance from ``q`` to the nearest point of the box."""
        coords = self._coords(q)
        if len(coords) != len(self._lows_t):
            raise ValueError("query point dimensionality mismatch")
        total = 0.0
        for x, lo, hi in zip(coords, self._lows_t, self._highs_t):
            if x < lo:
                gap = lo - x
            elif x > hi:
                gap = x - hi
            else:
                continue
            total += gap * gap
        return math.sqrt(total)

    def maxdist(self, q) -> float:
        """Euclidean distance from ``q`` to the farthest point of the box.

        For an index *node* this upper-bounds the far distance of every
        object inside, which is what makes ``f_min`` pruning safe.
        """
        coords = self._coords(q)
        if len(coords) != len(self._lows_t):
            raise ValueError("query point dimensionality mismatch")
        total = 0.0
        for x, lo, hi in zip(coords, self._lows_t, self._highs_t):
            span = max(abs(x - lo), abs(x - hi))
            total += span * span
        return math.sqrt(total)
