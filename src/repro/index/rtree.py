"""A classic R-tree (Guttman) with quadratic split.

This is the index substrate the paper's filtering phase relies on
(references [8] and [18]).  It supports insertion, deletion with
re-insertion, rectangle range search, point stabbing, and the two
best-first traversals the PNN filter needs (see
:mod:`repro.index.filtering`).

The tree stores arbitrary items; each item is indexed by the
:class:`~repro.index.geometry.Rect` supplied at insertion time (for
uncertain objects, the MBR of their uncertainty region).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Iterator, Sequence

from repro.index.geometry import Rect

__all__ = ["RTree", "RTreeEntry", "RTreeNode", "RTreeStats"]


class RTreeEntry:
    """A node slot: a rectangle plus either a child node or a leaf item."""

    __slots__ = ("rect", "child", "item")

    def __init__(self, rect: Rect, child: "RTreeNode | None" = None, item=None):
        self.rect = rect
        self.child = child
        self.item = item

    @property
    def is_leaf_entry(self) -> bool:
        return self.child is None

    def __repr__(self) -> str:  # pragma: no cover
        kind = "item" if self.is_leaf_entry else "child"
        return f"RTreeEntry({self.rect!r}, {kind})"


class RTreeNode:
    """An R-tree node holding up to ``max_entries`` entries."""

    __slots__ = ("entries", "is_leaf", "parent")

    def __init__(self, is_leaf: bool) -> None:
        self.entries: list[RTreeEntry] = []
        self.is_leaf = is_leaf
        self.parent: "RTreeNode | None" = None

    def mbr(self) -> Rect:
        return Rect.union_of(entry.rect for entry in self.entries)

    def __len__(self) -> int:
        return len(self.entries)


class RTreeStats:
    """Counters describing the work done by the most recent traversal."""

    __slots__ = ("nodes_visited", "entries_scanned")

    def __init__(self) -> None:
        self.nodes_visited = 0
        self.entries_scanned = 0

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"RTreeStats(nodes_visited={self.nodes_visited}, "
            f"entries_scanned={self.entries_scanned})"
        )


class RTree:
    """Dynamic R-tree with Guttman's quadratic split.

    Parameters
    ----------
    max_entries:
        Node capacity; nodes split when it is exceeded.
    min_entries:
        Minimum fill after a split / before condensation.  Defaults to
        ``max_entries // 2`` (at least 1).
    """

    def __init__(self, max_entries: int = 8, min_entries: int | None = None) -> None:
        if max_entries < 2:
            raise ValueError("max_entries must be >= 2")
        self._max = int(max_entries)
        self._min = int(min_entries) if min_entries is not None else max(1, self._max // 2)
        if not 1 <= self._min <= self._max // 2:
            raise ValueError("min_entries must satisfy 1 <= min <= max/2")
        self._root = RTreeNode(is_leaf=True)
        self._size = 0

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def max_entries(self) -> int:
        return self._max

    @property
    def min_entries(self) -> int:
        return self._min

    def __len__(self) -> int:
        return self._size

    @property
    def root(self) -> RTreeNode:
        return self._root

    def height(self) -> int:
        """Number of levels (a lone leaf root has height 1)."""
        height = 1
        node = self._root
        while not node.is_leaf:
            node = node.entries[0].child  # type: ignore[assignment]
            height += 1
        return height

    def items(self) -> Iterator:
        """All stored items, in arbitrary order."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            for entry in node.entries:
                if node.is_leaf:
                    yield entry.item
                else:
                    stack.append(entry.child)  # type: ignore[arg-type]

    def mbr(self) -> Rect | None:
        """Bounding rectangle of the whole tree, or None when empty."""
        if not self._root.entries:
            return None
        return self._root.mbr()

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def insert(self, rect: Rect, item) -> None:
        """Insert ``item`` with bounding rectangle ``rect``."""
        self._insert_entry(RTreeEntry(rect, item=item))
        self._size += 1

    def _insert_entry(self, entry: RTreeEntry) -> None:
        leaf = self._choose_leaf(self._root, entry.rect)
        leaf.entries.append(entry)
        self._handle_overflow(leaf)

    def _choose_leaf(self, node: RTreeNode, rect: Rect) -> RTreeNode:
        while not node.is_leaf:
            best = min(
                node.entries,
                key=lambda e: (e.rect.enlargement(rect), e.rect.area()),
            )
            best.rect = best.rect.union(rect)
            node = best.child  # type: ignore[assignment]
        return node

    def _handle_overflow(self, node: RTreeNode) -> None:
        while len(node.entries) > self._max:
            sibling = self._split(node)
            parent = node.parent
            if parent is None:
                new_root = RTreeNode(is_leaf=False)
                for child in (node, sibling):
                    child.parent = new_root
                    new_root.entries.append(
                        RTreeEntry(child.mbr(), child=child)
                    )
                self._root = new_root
                return
            self._replace_child_rect(parent, node)
            sibling.parent = parent
            parent.entries.append(RTreeEntry(sibling.mbr(), child=sibling))
            node = parent

    @staticmethod
    def _replace_child_rect(parent: RTreeNode, child: RTreeNode) -> None:
        for entry in parent.entries:
            if entry.child is child:
                entry.rect = child.mbr()
                return
        raise AssertionError("child not found in its parent")  # pragma: no cover

    def _split(self, node: RTreeNode) -> RTreeNode:
        """Quadratic split: returns the new sibling node."""
        entries = node.entries
        seed_a, seed_b = self._pick_seeds(entries)
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        rect_a = entries[seed_a].rect
        rect_b = entries[seed_b].rect
        remaining = [
            entry for i, entry in enumerate(entries) if i not in (seed_a, seed_b)
        ]
        while remaining:
            # Force assignment when one group must absorb all leftovers.
            if len(group_a) + len(remaining) == self._min:
                group_a.extend(remaining)
                rect_a = Rect.union_of([rect_a] + [e.rect for e in remaining])
                remaining = []
                break
            if len(group_b) + len(remaining) == self._min:
                group_b.extend(remaining)
                rect_b = Rect.union_of([rect_b] + [e.rect for e in remaining])
                remaining = []
                break
            entry, prefer_a = self._pick_next(remaining, rect_a, rect_b)
            remaining.remove(entry)
            if prefer_a:
                group_a.append(entry)
                rect_a = rect_a.union(entry.rect)
            else:
                group_b.append(entry)
                rect_b = rect_b.union(entry.rect)
        node.entries = group_a
        sibling = RTreeNode(is_leaf=node.is_leaf)
        sibling.entries = group_b
        if not sibling.is_leaf:
            for entry in sibling.entries:
                entry.child.parent = sibling  # type: ignore[union-attr]
        return sibling

    @staticmethod
    def _pick_seeds(entries: Sequence[RTreeEntry]) -> tuple[int, int]:
        worst_pair = (0, 1)
        worst_waste = -float("inf")
        for i, j in itertools.combinations(range(len(entries)), 2):
            union = entries[i].rect.union(entries[j].rect)
            waste = union.area() - entries[i].rect.area() - entries[j].rect.area()
            if waste > worst_waste:
                worst_waste = waste
                worst_pair = (i, j)
        return worst_pair

    @staticmethod
    def _pick_next(
        remaining: Sequence[RTreeEntry], rect_a: Rect, rect_b: Rect
    ) -> tuple[RTreeEntry, bool]:
        best_entry = remaining[0]
        best_diff = -1.0
        prefer_a = True
        for entry in remaining:
            growth_a = rect_a.enlargement(entry.rect)
            growth_b = rect_b.enlargement(entry.rect)
            diff = abs(growth_a - growth_b)
            if diff > best_diff:
                best_diff = diff
                best_entry = entry
                prefer_a = growth_a < growth_b or (
                    growth_a == growth_b and rect_a.area() <= rect_b.area()
                )
        return best_entry, prefer_a

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------

    def delete(self, rect: Rect, match: Callable[[object], bool]) -> bool:
        """Remove the first item under ``rect`` for which ``match`` holds.

        Returns True when an item was removed.  Underfull nodes are
        condensed and their remaining entries re-inserted, as in
        Guttman's original algorithm.
        """
        found = self._find_leaf(self._root, rect, match)
        if found is None:
            return False
        leaf, entry = found
        leaf.entries.remove(entry)
        self._condense(leaf)
        self._size -= 1
        if not self._root.is_leaf and len(self._root.entries) == 1:
            self._root = self._root.entries[0].child  # type: ignore[assignment]
            self._root.parent = None
        return True

    def _find_leaf(
        self, node: RTreeNode, rect: Rect, match: Callable[[object], bool]
    ) -> tuple[RTreeNode, RTreeEntry] | None:
        if node.is_leaf:
            for entry in node.entries:
                if entry.rect == rect and match(entry.item):
                    return node, entry
            return None
        for entry in node.entries:
            if entry.rect.contains(rect):
                found = self._find_leaf(entry.child, rect, match)  # type: ignore[arg-type]
                if found is not None:
                    return found
        return None

    def _condense(self, node: RTreeNode) -> None:
        orphans: list[RTreeEntry] = []
        orphan_levels: list[bool] = []
        while node.parent is not None:
            parent = node.parent
            if len(node.entries) < self._min:
                for entry in parent.entries:
                    if entry.child is node:
                        parent.entries.remove(entry)
                        break
                orphans.extend(node.entries)
                orphan_levels.extend([node.is_leaf] * len(node.entries))
            else:
                self._replace_child_rect(parent, node)
            node = parent
        for entry, was_leaf in zip(orphans, orphan_levels):
            if was_leaf:
                self._insert_entry(entry)
            else:
                # Re-insert every item from the orphaned subtree.
                stack = [entry]
                while stack:
                    current = stack.pop()
                    if current.is_leaf_entry:
                        self._insert_entry(
                            RTreeEntry(current.rect, item=current.item)
                        )
                    else:
                        stack.extend(current.child.entries)  # type: ignore[union-attr]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def search(self, rect: Rect, stats: RTreeStats | None = None) -> list:
        """All items whose rectangle intersects ``rect``."""
        results: list = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if stats is not None:
                stats.nodes_visited += 1
            for entry in node.entries:
                if stats is not None:
                    stats.entries_scanned += 1
                if not entry.rect.intersects(rect):
                    continue
                if node.is_leaf:
                    results.append(entry.item)
                else:
                    stack.append(entry.child)  # type: ignore[arg-type]
        return results

    def stab(self, q, stats: RTreeStats | None = None) -> list:
        """All items whose rectangle contains the point ``q``."""
        return self.search(Rect.point(q), stats=stats)

    def nearest_maxdist(self, q, stats: RTreeStats | None = None) -> float:
        """``f_min``: the smallest over items of ``maxdist(q, item mbr)``.

        Best-first branch-and-bound: a subtree is pruned when its
        ``mindist`` already exceeds the best item ``maxdist`` found,
        since every item below has ``maxdist >= mindist(subtree)``.
        """
        if self._size == 0:
            raise ValueError("nearest_maxdist on an empty tree")
        best = float("inf")
        counter = itertools.count()
        heap: list[tuple[float, int, RTreeNode]] = [(0.0, next(counter), self._root)]
        while heap:
            mind, _, node = heapq.heappop(heap)
            if mind > best:
                break
            if stats is not None:
                stats.nodes_visited += 1
            for entry in node.entries:
                if stats is not None:
                    stats.entries_scanned += 1
                entry_mind = entry.rect.mindist(q)
                if entry_mind > best:
                    continue
                if node.is_leaf:
                    best = min(best, entry.rect.maxdist(q))
                else:
                    heapq.heappush(heap, (entry_mind, next(counter), entry.child))
        return best

    def within_mindist(
        self, q, radius: float, stats: RTreeStats | None = None
    ) -> list:
        """All items with ``mindist(q, item mbr) <= radius``."""
        results: list = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if stats is not None:
                stats.nodes_visited += 1
            for entry in node.entries:
                if stats is not None:
                    stats.entries_scanned += 1
                if entry.rect.mindist(q) > radius:
                    continue
                if node.is_leaf:
                    results.append(entry.item)
                else:
                    stack.append(entry.child)  # type: ignore[arg-type]
        return results

    # ------------------------------------------------------------------
    # Validation (used heavily by the test-suite)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError when any structural invariant is broken."""
        leaf_depths: set[int] = set()

        def visit(node: RTreeNode, depth: int, expected_parent: RTreeNode | None):
            assert node.parent is expected_parent, "broken parent pointer"
            if node is not self._root:
                assert len(node.entries) >= self._min, "underfull node"
            assert len(node.entries) <= self._max, "overfull node"
            if node.is_leaf:
                leaf_depths.add(depth)
                return
            assert node.entries, "empty internal node"
            for entry in node.entries:
                assert entry.child is not None, "internal entry without child"
                assert entry.rect.contains(entry.child.mbr()), "MBR does not cover child"
                visit(entry.child, depth + 1, node)

        visit(self._root, 0, None)
        assert len(leaf_depths) <= 1, "leaves at different depths"
        assert sum(1 for _ in self.items()) == self._size, "size counter drifted"
