"""Spatial indexing substrate: an R-tree and the PNN filtering step.

The paper's solution framework (Figure 3) first *filters* objects that
cannot possibly be the nearest neighbour of the query point using an
R-tree method from reference [8]: compute ``f_min``, the smallest of
the candidate far distances, and prune every object whose near distance
exceeds it.  This package provides

* :class:`~repro.index.geometry.Rect` — d-dimensional rectangles with
  the ``mindist``/``maxdist`` metrics branch-and-bound needs,
* :class:`~repro.index.rtree.RTree` — a quadratic-split R-tree with
  insertion, deletion, range and best-first search,
* :func:`~repro.index.str_pack.str_bulk_load` — Sort-Tile-Recursive
  packing for bulk construction,
* :func:`~repro.index.filtering.filter_candidates` and
  :class:`~repro.index.filtering.PnnFilter` — the pruning step itself,
  plus a linear-scan reference implementation used for testing.
"""

from repro.index.filtering import FilterResult, PnnFilter, filter_candidates
from repro.index.geometry import Rect
from repro.index.linear import LinearScanIndex
from repro.index.rtree import RTree
from repro.index.str_pack import str_bulk_load

__all__ = [
    "FilterResult",
    "LinearScanIndex",
    "PnnFilter",
    "RTree",
    "Rect",
    "filter_candidates",
    "str_bulk_load",
]
