"""A no-index baseline with the same interface as the R-tree filter.

Used in tests to validate the R-tree (query equivalence) and in
benchmarks to isolate how much the index itself contributes to the
filtering phase measured in Figure 9.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.index.filtering import FilterResult, filter_candidates
from repro.index.geometry import Rect

__all__ = ["LinearScanIndex"]


class LinearScanIndex:
    """Stores ``(rect, item)`` pairs in a flat list."""

    def __init__(self) -> None:
        self._rects: list[Rect] = []
        self._items: list = []

    def insert(self, rect: Rect, item) -> None:
        self._rects.append(rect)
        self._items.append(item)

    def __len__(self) -> int:
        return len(self._items)

    def items(self) -> Iterator:
        return iter(self._items)

    def search(self, rect: Rect) -> list:
        return [
            item
            for stored, item in zip(self._rects, self._items)
            if stored.intersects(rect)
        ]

    def stab(self, q) -> list:
        return self.search(Rect.point(q))

    def nearest_maxdist(self, q) -> float:
        if not self._rects:
            raise ValueError("nearest_maxdist on an empty index")
        return min(rect.maxdist(q) for rect in self._rects)

    def within_mindist(self, q, radius: float) -> list:
        return [
            item
            for rect, item in zip(self._rects, self._items)
            if rect.mindist(q) <= radius
        ]

    def filter(self, q) -> FilterResult:
        """Linear-scan PNN filtering over the stored items."""
        return filter_candidates(list(self._items), q)

    @classmethod
    def from_objects(cls, objects: Sequence) -> "LinearScanIndex":
        index = cls()
        for obj in objects:
            index.insert(obj.mbr, obj)
        return index
