"""PNN filtering: prune objects with zero qualification probability.

This is the first phase of the paper's framework (Figure 3), based on
reference [8]: let ``f_min`` be the minimum over all objects of their
*far* distance from the query point.  Any object whose *near* distance
exceeds ``f_min`` can never be the nearest neighbour — some other
object is certainly closer — so only objects with ``near <= f_min``
survive as the *candidate set* ``C``.

Two implementations are provided with identical semantics:

* :class:`PnnFilter` — R-tree branch-and-bound (two best-first passes);
* :func:`filter_candidates` — a vectorisable linear scan used as the
  correctness reference and for small datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.index.rtree import RTree, RTreeStats

__all__ = [
    "BatchMbrFilter",
    "FilterResult",
    "PnnFilter",
    "filter_candidates",
    "kth_from_matrices",
    "pnn_results_from_matrices",
]


@dataclass(frozen=True)
class FilterResult:
    """Outcome of the filtering phase.

    Attributes
    ----------
    candidates:
        Objects that may have non-zero qualification probability,
        i.e. ``mindist(q) <= f_min``.
    fmin:
        The pruning radius: minimum over all objects of ``maxdist(q)``.
    stats:
        Index traversal counters (empty for the linear scan).
    """

    candidates: tuple
    fmin: float
    stats: RTreeStats = field(default_factory=RTreeStats)

    def __len__(self) -> int:
        return len(self.candidates)


def filter_candidates(objects: Sequence, q) -> FilterResult:
    """Reference linear-scan filter over ``SpatialUncertain`` objects."""
    if not objects:
        raise ValueError("cannot filter an empty object collection")
    fmin = min(obj.maxdist(q) for obj in objects)
    candidates = tuple(obj for obj in objects if obj.mindist(q) <= fmin)
    return FilterResult(candidates=candidates, fmin=fmin)


class PnnFilter:
    """R-tree-backed filtering with branch-and-bound pruning.

    Pass 1 computes ``f_min`` by best-first descent ordered by node
    ``mindist`` (a node whose ``mindist`` exceeds the best ``maxdist``
    found so far cannot improve it).  Pass 2 reports every object whose
    MBR ``mindist`` is within ``f_min``.

    Because an object's MBR min/max distances equal its uncertainty
    region's near/far distance, the survivors are exactly the paper's
    candidate set.
    """

    def __init__(self, tree: RTree) -> None:
        if len(tree) == 0:
            raise ValueError("cannot filter with an empty index")
        self._tree = tree

    @property
    def tree(self) -> RTree:
        return self._tree

    def __call__(self, q) -> FilterResult:
        stats = RTreeStats()
        fmin = self._tree.nearest_maxdist(q, stats=stats)
        candidates = tuple(self._tree.within_mindist(q, fmin, stats=stats))
        return FilterResult(candidates=candidates, fmin=fmin, stats=stats)


def pnn_results_from_matrices(
    objects: Sequence, mindist: np.ndarray, maxdist: np.ndarray
) -> list[FilterResult]:
    """PNN candidate sets from precomputed ``(B, N)`` MBR matrices.

    The reduction behind :meth:`BatchMbrFilter.__call__`, factored out
    so a sharded engine can apply the *same* pruning rule to matrices
    assembled from per-shard sweeps: ``f_min`` per query is the row
    minimum of ``maxdist`` (order-independent, so scattering shard
    columns into the global matrix cannot change it), and candidates
    are reported in ascending object order.  ``stats`` counters are
    left at zero — there is no tree traversal to count.
    """
    fmins = maxdist.min(axis=1)
    keep = mindist <= fmins[:, None]
    results = []
    for b in range(keep.shape[0]):
        candidates = tuple(objects[i] for i in np.flatnonzero(keep[b]))
        results.append(FilterResult(candidates=candidates, fmin=float(fmins[b])))
    return results


def kth_from_matrices(
    mindist: np.ndarray, maxdist: np.ndarray, ks: Sequence[int]
) -> list[tuple[np.ndarray, float]]:
    """k-NN survivors from precomputed ``(B, N)`` MBR matrices.

    The reduction behind :meth:`BatchMbrFilter.kth_filter`, factored
    out for the same reason as :func:`pnn_results_from_matrices`: the
    ``f_min^k`` pruning radius is the k-th smallest ``maxdist`` of the
    row (a selection, not an arithmetic reduction — bit-identical under
    any column permutation), survivors are ascending object indices.
    """
    n = maxdist.shape[1]
    results = []
    for b, k in enumerate(ks):
        k = int(k)
        if not 1 <= k <= n:
            raise ValueError(
                f"kth_filter: k={k} (query {b}) must lie in [1, {n}]; "
                "the engine clamps k > N to the trivial all-satisfy "
                "case before filtering (DESIGN.md §8)"
            )
        fmin_k = float(np.partition(maxdist[b], k - 1)[k - 1])
        survivors = np.flatnonzero(mindist[b] <= fmin_k)
        results.append((survivors, fmin_k))
    return results


class BatchMbrFilter:
    """Vectorised MBR filtering for a whole batch of query points.

    Materialises the object MBRs into two ``(N, d)`` coordinate arrays
    once, then answers any number of query points with a handful of
    whole-matrix numpy operations: per-dimension gaps give ``mindist``
    and ``maxdist`` for every (query, object) pair, row minima give
    ``f_min`` per query, and one comparison yields every candidate set.
    This replaces ``B`` best-first R-tree traversals with a single
    O(B·N·d) sweep — for Python-level trees the matrix sweep wins by a
    wide margin at realistic batch sizes.

    The arithmetic mirrors :meth:`repro.index.geometry.Rect.mindist` /
    ``maxdist`` operation for operation (same per-dimension gap
    expressions, same accumulation order for d ≤ 2, correctly rounded
    square roots), so ``f_min`` and the candidate sets are bit-identical
    to a :class:`PnnFilter` over the same objects.  Candidates are
    reported in object insertion order rather than tree traversal
    order; the downstream subregion table re-sorts them by near point,
    so this is observable only through record ordering.

    The filter is **incrementally maintainable** (DESIGN.md §11):
    :meth:`append` queues one new coordinate row, :meth:`remove_at`
    masks one row out through an alive-mask, and :meth:`replace_at`
    overwrites one row in place (the dead-reckoning fast path).
    Masked rows and queued appends are folded into the contiguous
    coordinate arrays by one vectorised compaction at the next query
    (:meth:`_flush`), so a whole tick of churn costs one boolean mask
    plus one concatenate instead of a per-update rebuild of the arrays
    from Python objects.
    """

    def __init__(self, objects: Sequence) -> None:
        if not objects:
            raise ValueError("cannot filter an empty object collection")
        self._objects = list(objects)
        self._lows = np.array([obj.mbr.lows for obj in self._objects])
        self._highs = np.array([obj.mbr.highs for obj in self._objects])
        self._dim = self._lows.shape[1]
        #: Alive-mask over the physical rows of ``_lows``/``_highs``
        #: (None = all alive), plus objects appended since the last
        #: compaction.  Logical row order is always "alive physical
        #: rows, then pending appends" — removals preserve relative
        #: order, so it matches the engine's object tuple.
        self._alive: np.ndarray | None = None
        self._n_dead = 0
        self._pending: list = []

    @property
    def dim(self) -> int:
        return self._dim

    @property
    def objects(self) -> tuple:
        """The filtered objects, in logical row order."""
        return tuple(self._objects)

    def __len__(self) -> int:
        return len(self._objects)

    # ------------------------------------------------------------------
    # Shared-memory transport (DESIGN.md §13)
    # ------------------------------------------------------------------

    def to_shared(self):
        """Export the flushed ``(N, d)`` coordinate arrays into one
        shared-memory segment.

        Returns ``(segment, descriptor)`` from
        :func:`repro.shm.export_arrays`; the caller owns the segment,
        the descriptor rehydrates via :meth:`from_shared` (objects ship
        separately — coordinates are the bulk, objects pickle once per
        worker).  Pending appends and masked rows are compacted first so
        the exported rows equal the logical row order.
        """
        from repro.shm import export_arrays

        self._flush()
        return export_arrays({"lows": self._lows, "highs": self._highs})

    @classmethod
    def from_shared(cls, descriptor, objects: Sequence) -> "BatchMbrFilter":
        """Rebuild a filter over an exported coordinate segment, zero-copy.

        ``objects`` must be the same sequence (same order) the exporter
        held.  The coordinate arrays are read-only views over the
        mapped segment; every sweep is bit-identical to the exporter's
        because the arithmetic reads the same bytes.  Mutations remain
        supported: appends/removals already build fresh arrays on the
        next :meth:`_flush`, and :meth:`replace_at` copies the views
        out of the segment before its first in-place write
        (copy-on-write), so an attached filter never writes into the
        shared segment.
        """
        from repro.shm import attach_arrays

        objects = list(objects)
        shm, views = attach_arrays(descriptor)
        lows, highs = views["lows"], views["highs"]
        if lows.shape[0] != len(objects):
            raise ValueError(
                f"descriptor carries {lows.shape[0]} rows for "
                f"{len(objects)} objects"
            )
        flt = cls.__new__(cls)
        flt._objects = objects
        flt._lows = lows
        flt._highs = highs
        flt._dim = lows.shape[1]
        flt._alive = None
        flt._n_dead = 0
        flt._pending = []
        flt._shm = shm  # pins the attachment for the filter's lifetime
        return flt

    def _ensure_writable(self) -> None:
        """Copy-on-write: detach from a shared segment before an
        in-place coordinate write."""
        if not self._lows.flags.writeable:
            self._lows = self._lows.copy()
            self._highs = self._highs.copy()

    def _check_dim(self, obj) -> None:
        if obj.mbr.dim != self._dim:
            raise ValueError("object dimensionality mismatch")

    def _physical_row(self, index: int) -> int:
        """The physical array row behind logical ``index`` (< alive)."""
        if self._n_dead == 0:
            return index
        return int(np.flatnonzero(self._alive)[index])

    def append(self, obj) -> None:
        """Add one object: queues one new coordinate row, no rebuild.

        The object's logical row is ``len(self) - 1`` afterwards —
        insertion order, matching the engine's object tuple.
        """
        self._check_dim(obj)
        self._objects.append(obj)
        self._pending.append(obj)

    def remove_at(self, index: int) -> None:
        """Mask one object's row out of the coordinate arrays.

        Later rows shift down by one logical position, mirroring an
        order-preserving removal from the caller's object sequence.
        The filter may become empty; callers must then stop querying it
        (the engine drops it entirely, per its empty-input semantics).
        """
        n = len(self._objects)
        if not 0 <= index < n:
            raise IndexError(f"row {index} out of range for {n} objects")
        del self._objects[index]
        alive_rows = self._lows.shape[0] - self._n_dead
        if index >= alive_rows:
            del self._pending[index - alive_rows]
            return
        if self._alive is None:
            self._alive = np.ones(self._lows.shape[0], dtype=bool)
        self._alive[self._physical_row(index)] = False
        self._n_dead += 1

    def replace_at(self, index: int, obj) -> None:
        """Overwrite one object's row in place (same logical position).

        The dead-reckoning fast path: replacing an uncertainty region
        with a fresh report costs O(d), no masking or compaction.
        """
        n = len(self._objects)
        if not 0 <= index < n:
            raise IndexError(f"row {index} out of range for {n} objects")
        self._check_dim(obj)
        self._objects[index] = obj
        alive_rows = self._lows.shape[0] - self._n_dead
        if index >= alive_rows:
            self._pending[index - alive_rows] = obj
            return
        row = self._physical_row(index)
        mbr = obj.mbr
        self._ensure_writable()
        self._lows[row] = mbr.lows
        self._highs[row] = mbr.highs

    def _flush(self) -> None:
        """Fold masked rows and queued appends into contiguous arrays."""
        if self._n_dead:
            self._lows = self._lows[self._alive]
            self._highs = self._highs[self._alive]
            self._alive = None
            self._n_dead = 0
        if self._pending:
            self._lows = np.concatenate(
                [self._lows, np.array([o.mbr.lows for o in self._pending])]
            )
            self._highs = np.concatenate(
                [self._highs, np.array([o.mbr.highs for o in self._pending])]
            )
            self._pending = []

    def _as_matrix(self, points: Sequence) -> np.ndarray:
        matrix = np.asarray(points, dtype=float)
        if matrix.ndim == 1:
            if self._dim != 1:
                raise ValueError("query point dimensionality mismatch")
            matrix = matrix.reshape(-1, 1)
        if matrix.ndim != 2 or matrix.shape[1] != self._dim:
            raise ValueError("query point dimensionality mismatch")
        return matrix

    def matrices(self, points: Sequence) -> tuple[np.ndarray, np.ndarray]:
        """MBR ``mindist`` / ``maxdist`` of every (query, object) pair.

        Returns two ``(B, N)`` matrices.  The arithmetic mirrors
        :meth:`repro.index.geometry.Rect.mindist` / ``maxdist``
        operation for operation, so the values are bit-identical to the
        per-object methods (for 1-D objects they also equal the
        objects' own ``mindist``/``maxdist``; 2-D regions may be
        strictly tighter than their MBR, so callers needing the exact
        region distances must re-check straddling objects).
        """
        self._flush()
        queries = self._as_matrix(points)  # (B, d)
        return self._sweep(queries, self._lows, self._highs)

    def matrices_rows(
        self, points: Sequence, rows: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """:meth:`matrices` restricted to the row subset ``rows``.

        Returns ``(B, len(rows))`` matrices whose column ``j`` equals
        column ``rows[j]`` of the full sweep — the same element-wise
        arithmetic over the same coordinate values, so every cell is
        bit-identical.  This is the process-executor's per-shard work
        item: each worker sweeps only its assigned columns of the
        global matrix (DESIGN.md §13).
        """
        self._flush()
        queries = self._as_matrix(points)
        rows = np.asarray(rows, dtype=np.intp)
        return self._sweep(queries, self._lows[rows], self._highs[rows])

    @staticmethod
    def _sweep(
        queries: np.ndarray, lows: np.ndarray, highs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        diff_lo = lows[None, :, :] - queries[:, None, :]  # lo - q
        diff_hi = queries[:, None, :] - highs[None, :, :]  # q - hi
        span = np.maximum(np.abs(diff_lo), np.abs(diff_hi))
        np.multiply(span, span, out=span)
        maxdist = span.sum(axis=2)
        np.sqrt(maxdist, out=maxdist)
        gap = np.maximum(diff_lo, diff_hi, out=diff_lo)
        np.maximum(gap, 0.0, out=gap)
        np.multiply(gap, gap, out=gap)
        mindist = gap.sum(axis=2)
        np.sqrt(mindist, out=mindist)
        return mindist, maxdist

    def __call__(self, points: Sequence) -> list[FilterResult]:
        """Filter every query point; returns one result per point.

        ``stats`` counters are left at zero — there is no tree
        traversal to count.
        """
        mindist, maxdist = self.matrices(points)
        return pnn_results_from_matrices(self._objects, mindist, maxdist)

    def kth_filter(
        self, points: Sequence, ks: Sequence[int]
    ) -> list[tuple[np.ndarray, float]]:
        """k-NN filtering: survivors of the ``f_min^k`` pruning rule.

        For query ``b`` with ``ks[b] = k``, let ``f_min^k`` be the
        k-th smallest MBR ``maxdist``: any object whose MBR ``mindist``
        exceeds it certainly has at least ``k`` objects closer, so its
        probability of being among the ``k`` nearest is exactly zero
        (the generalisation of reference [8]'s PNN rule).  Returns, per
        query, the surviving object *indices* (ascending insertion
        order) and the pruning radius.  Guaranteed to keep at least
        ``k`` objects.  ``ks[b]`` must lie in [1, N].
        """
        mindist, maxdist = self.matrices(points)
        return kth_from_matrices(mindist, maxdist, ks)
