"""PNN filtering: prune objects with zero qualification probability.

This is the first phase of the paper's framework (Figure 3), based on
reference [8]: let ``f_min`` be the minimum over all objects of their
*far* distance from the query point.  Any object whose *near* distance
exceeds ``f_min`` can never be the nearest neighbour — some other
object is certainly closer — so only objects with ``near <= f_min``
survive as the *candidate set* ``C``.

Two implementations are provided with identical semantics:

* :class:`PnnFilter` — R-tree branch-and-bound (two best-first passes);
* :func:`filter_candidates` — a vectorisable linear scan used as the
  correctness reference and for small datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.index.rtree import RTree, RTreeStats

__all__ = ["FilterResult", "PnnFilter", "filter_candidates"]


@dataclass(frozen=True)
class FilterResult:
    """Outcome of the filtering phase.

    Attributes
    ----------
    candidates:
        Objects that may have non-zero qualification probability,
        i.e. ``mindist(q) <= f_min``.
    fmin:
        The pruning radius: minimum over all objects of ``maxdist(q)``.
    stats:
        Index traversal counters (empty for the linear scan).
    """

    candidates: tuple
    fmin: float
    stats: RTreeStats = field(default_factory=RTreeStats)

    def __len__(self) -> int:
        return len(self.candidates)


def filter_candidates(objects: Sequence, q) -> FilterResult:
    """Reference linear-scan filter over ``SpatialUncertain`` objects."""
    if not objects:
        raise ValueError("cannot filter an empty object collection")
    fmin = min(obj.maxdist(q) for obj in objects)
    candidates = tuple(obj for obj in objects if obj.mindist(q) <= fmin)
    return FilterResult(candidates=candidates, fmin=fmin)


class PnnFilter:
    """R-tree-backed filtering with branch-and-bound pruning.

    Pass 1 computes ``f_min`` by best-first descent ordered by node
    ``mindist`` (a node whose ``mindist`` exceeds the best ``maxdist``
    found so far cannot improve it).  Pass 2 reports every object whose
    MBR ``mindist`` is within ``f_min``.

    Because an object's MBR min/max distances equal its uncertainty
    region's near/far distance, the survivors are exactly the paper's
    candidate set.
    """

    def __init__(self, tree: RTree) -> None:
        if len(tree) == 0:
            raise ValueError("cannot filter with an empty index")
        self._tree = tree

    @property
    def tree(self) -> RTree:
        return self._tree

    def __call__(self, q) -> FilterResult:
        stats = RTreeStats()
        fmin = self._tree.nearest_maxdist(q, stats=stats)
        candidates = tuple(self._tree.within_mindist(q, fmin, stats=stats))
        return FilterResult(candidates=candidates, fmin=fmin, stats=stats)
