"""PNN filtering: prune objects with zero qualification probability.

This is the first phase of the paper's framework (Figure 3), based on
reference [8]: let ``f_min`` be the minimum over all objects of their
*far* distance from the query point.  Any object whose *near* distance
exceeds ``f_min`` can never be the nearest neighbour — some other
object is certainly closer — so only objects with ``near <= f_min``
survive as the *candidate set* ``C``.

Two implementations are provided with identical semantics:

* :class:`PnnFilter` — R-tree branch-and-bound (two best-first passes);
* :func:`filter_candidates` — a vectorisable linear scan used as the
  correctness reference and for small datasets.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.index.rtree import RTree, RTreeStats

#: Byte budget of one chunked-sweep block's output (the two (B, rows)
#: matrices plus the transient (B, rows, d) gap scratch).  Determines
#: how many coordinate rows a store-backed filter pulls per block.
_SWEEP_BLOCK_BYTES = 4 << 20

__all__ = [
    "BatchMbrFilter",
    "FilterResult",
    "PnnFilter",
    "filter_candidates",
    "kth_from_matrices",
    "pnn_results_from_matrices",
]


@dataclass(frozen=True)
class FilterResult:
    """Outcome of the filtering phase.

    Attributes
    ----------
    candidates:
        Objects that may have non-zero qualification probability,
        i.e. ``mindist(q) <= f_min``.
    fmin:
        The pruning radius: minimum over all objects of ``maxdist(q)``.
    stats:
        Index traversal counters (empty for the linear scan).
    """

    candidates: tuple
    fmin: float
    stats: RTreeStats = field(default_factory=RTreeStats)

    def __len__(self) -> int:
        return len(self.candidates)


def filter_candidates(objects: Sequence, q) -> FilterResult:
    """Reference linear-scan filter over ``SpatialUncertain`` objects."""
    if not objects:
        raise ValueError("cannot filter an empty object collection")
    fmin = min(obj.maxdist(q) for obj in objects)
    candidates = tuple(obj for obj in objects if obj.mindist(q) <= fmin)
    return FilterResult(candidates=candidates, fmin=fmin)


class PnnFilter:
    """R-tree-backed filtering with branch-and-bound pruning.

    Pass 1 computes ``f_min`` by best-first descent ordered by node
    ``mindist`` (a node whose ``mindist`` exceeds the best ``maxdist``
    found so far cannot improve it).  Pass 2 reports every object whose
    MBR ``mindist`` is within ``f_min``.

    Because an object's MBR min/max distances equal its uncertainty
    region's near/far distance, the survivors are exactly the paper's
    candidate set.
    """

    def __init__(self, tree: RTree) -> None:
        if len(tree) == 0:
            raise ValueError("cannot filter with an empty index")
        self._tree = tree

    @property
    def tree(self) -> RTree:
        return self._tree

    def __call__(self, q) -> FilterResult:
        stats = RTreeStats()
        fmin = self._tree.nearest_maxdist(q, stats=stats)
        candidates = tuple(self._tree.within_mindist(q, fmin, stats=stats))
        return FilterResult(candidates=candidates, fmin=fmin, stats=stats)


def pnn_results_from_matrices(
    objects: Sequence, mindist: np.ndarray, maxdist: np.ndarray
) -> list[FilterResult]:
    """PNN candidate sets from precomputed ``(B, N)`` MBR matrices.

    The reduction behind :meth:`BatchMbrFilter.__call__`, factored out
    so a sharded engine can apply the *same* pruning rule to matrices
    assembled from per-shard sweeps: ``f_min`` per query is the row
    minimum of ``maxdist`` (order-independent, so scattering shard
    columns into the global matrix cannot change it), and candidates
    are reported in ascending object order.  ``stats`` counters are
    left at zero — there is no tree traversal to count.
    """
    fmins = maxdist.min(axis=1)
    keep = mindist <= fmins[:, None]
    results = []
    for b in range(keep.shape[0]):
        candidates = tuple(objects[i] for i in np.flatnonzero(keep[b]))
        results.append(FilterResult(candidates=candidates, fmin=float(fmins[b])))
    return results


def kth_from_matrices(
    mindist: np.ndarray, maxdist: np.ndarray, ks: Sequence[int]
) -> list[tuple[np.ndarray, float]]:
    """k-NN survivors from precomputed ``(B, N)`` MBR matrices.

    The reduction behind :meth:`BatchMbrFilter.kth_filter`, factored
    out for the same reason as :func:`pnn_results_from_matrices`: the
    ``f_min^k`` pruning radius is the k-th smallest ``maxdist`` of the
    row (a selection, not an arithmetic reduction — bit-identical under
    any column permutation), survivors are ascending object indices.
    """
    n = maxdist.shape[1]
    results = []
    for b, k in enumerate(ks):
        k = int(k)
        if not 1 <= k <= n:
            raise ValueError(
                f"kth_filter: k={k} (query {b}) must lie in [1, {n}]; "
                "the engine clamps k > N to the trivial all-satisfy "
                "case before filtering (DESIGN.md §8)"
            )
        fmin_k = float(np.partition(maxdist[b], k - 1)[k - 1])
        survivors = np.flatnonzero(mindist[b] <= fmin_k)
        results.append((survivors, fmin_k))
    return results


class BatchMbrFilter:
    """Vectorised MBR filtering for a whole batch of query points.

    Materialises the object MBRs into two ``(N, d)`` coordinate arrays
    once, then answers any number of query points with a handful of
    whole-matrix numpy operations: per-dimension gaps give ``mindist``
    and ``maxdist`` for every (query, object) pair, row minima give
    ``f_min`` per query, and one comparison yields every candidate set.
    This replaces ``B`` best-first R-tree traversals with a single
    O(B·N·d) sweep — for Python-level trees the matrix sweep wins by a
    wide margin at realistic batch sizes.

    The arithmetic mirrors :meth:`repro.index.geometry.Rect.mindist` /
    ``maxdist`` operation for operation (same per-dimension gap
    expressions, same accumulation order for d ≤ 2, correctly rounded
    square roots), so ``f_min`` and the candidate sets are bit-identical
    to a :class:`PnnFilter` over the same objects.  Candidates are
    reported in object insertion order rather than tree traversal
    order; the downstream subregion table re-sorts them by near point,
    so this is observable only through record ordering.

    The filter is **incrementally maintainable** (DESIGN.md §11):
    :meth:`append` queues one new coordinate row, :meth:`remove_at`
    masks one row out through an alive-mask, and :meth:`replace_at`
    overwrites one row in place (the dead-reckoning fast path).
    Masked rows and queued appends are folded into the contiguous
    coordinate arrays by one vectorised compaction at the next query
    (:meth:`_flush`), so a whole tick of churn costs one boolean mask
    plus one concatenate instead of a per-update rebuild of the arrays
    from Python objects.
    """

    def __init__(self, objects: Sequence) -> None:
        if not objects:
            raise ValueError("cannot filter an empty object collection")
        self._objects = list(objects)
        self._lows = np.array([obj.mbr.lows for obj in self._objects])
        self._highs = np.array([obj.mbr.highs for obj in self._objects])
        self._dim = self._lows.shape[1]
        #: Alive-mask over the physical rows of ``_lows``/``_highs``
        #: (None = all alive), plus objects appended since the last
        #: compaction.  Logical row order is always "alive physical
        #: rows, then pending appends" — removals preserve relative
        #: order, so it matches the engine's object tuple.
        self._alive: np.ndarray | None = None
        self._n_dead = 0
        self._pending: list = []
        #: A pinned column store.  For resident backends the coordinate
        #: arrays are zero-copy views over it; for chunked backends
        #: (``_lows is None``) sweeps stream row blocks through
        #: :meth:`_sweep` instead (same arithmetic, same bits).
        self._store = None

    @property
    def dim(self) -> int:
        return self._dim

    @property
    def objects(self) -> tuple:
        """The filtered objects, in logical row order."""
        return tuple(self._objects)

    def __len__(self) -> int:
        return len(self._objects)

    # ------------------------------------------------------------------
    # Column-store transport (DESIGN.md §13/§16)
    # ------------------------------------------------------------------

    def to_store(self, backend: str = "shm", **options):
        """Export the flushed ``(N, d)`` coordinate arrays into a fresh
        column store of ``backend``.

        The caller owns the store; the descriptor rehydrates via
        :meth:`from_store` (objects ship separately — coordinates are
        the bulk, objects pickle once per worker).  Pending appends and
        masked rows are compacted first so the exported rows equal the
        logical row order.
        """
        from repro.storage import create_store

        self._flush()
        if self._lows is None:
            # Unmutated chunk-backed filter: re-export from the store.
            lows = self._store.get("lows")
            highs = self._store.get("highs")
        else:
            lows, highs = self._lows, self._highs
        return create_store(backend, {"lows": lows, "highs": highs}, **options)

    @classmethod
    def from_store(cls, store, objects: Sequence) -> "BatchMbrFilter":
        """Rebuild a filter over an exported coordinate store.

        ``objects`` must be the same sequence (same order) the exporter
        held.  Resident backends (``ram``/``shm``) hand out read-only
        zero-copy coordinate views; the chunked ``mmap`` backend keeps
        the coordinates on disk and streams sweeps block by block —
        bit-identical either way because :meth:`_sweep` is elementwise
        per row.  Mutations remain supported: appends/removals build
        fresh arrays on the next :meth:`_flush` (a chunk-backed filter
        materialises its columns first, once), and :meth:`replace_at`
        copies before its first in-place write (copy-on-write), so an
        attached filter never writes into the shared backing.
        """
        objects = list(objects)
        rows = store.shape("lows")[0]
        if rows != len(objects):
            raise ValueError(
                f"descriptor carries {rows} rows for {len(objects)} objects"
            )
        flt = cls.__new__(cls)
        flt._objects = objects
        if store.chunked:
            flt._lows = None
            flt._highs = None
        else:
            flt._lows = store.get("lows")
            flt._highs = store.get("highs")
        flt._dim = store.shape("lows")[1]
        flt._alive = None
        flt._n_dead = 0
        flt._pending = []
        flt._store = store  # pins the backing for the filter's lifetime
        return flt

    # -- legacy shared-memory surface (deprecated, one release) ---------

    def to_shared(self):
        """Deprecated: use ``to_store('shm')``."""
        warnings.warn(
            "BatchMbrFilter.to_shared is deprecated; use to_store('shm') "
            "(repro.storage)",
            DeprecationWarning,
            stacklevel=2,
        )
        store = self.to_store("shm")
        return store.segment, store.shm_descriptor

    @classmethod
    def from_shared(cls, descriptor, objects: Sequence) -> "BatchMbrFilter":
        """Deprecated: use ``from_store(open_store(descriptor), objects)``."""
        warnings.warn(
            "BatchMbrFilter.from_shared is deprecated; use "
            "from_store(open_store(descriptor), objects) (repro.storage)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.storage import ShmStore

        flt = cls.from_store(ShmStore.attach(descriptor), objects)
        flt._shm = flt._store.segment
        return flt

    # ------------------------------------------------------------------

    @property
    def chunked(self) -> bool:
        """True while sweeps stream from a chunked store (no resident
        coordinate arrays)."""
        return self._lows is None

    def _physical_count(self) -> int:
        """Physical coordinate rows (before masks/pending)."""
        if self._lows is not None:
            return self._lows.shape[0]
        return self._store.shape("lows")[0]

    def _materialize(self) -> None:
        """Pull the full coordinate columns resident (chunk-backed
        filters do this once, on first mutation flush or write)."""
        if self._lows is None:
            self._lows = self._store.get("lows")
            self._highs = self._store.get("highs")

    def _ensure_writable(self) -> None:
        """Copy-on-write: detach from a shared backing before an
        in-place coordinate write."""
        self._materialize()
        if not self._lows.flags.writeable:
            self._lows = self._lows.copy()
            self._highs = self._highs.copy()

    def _check_dim(self, obj) -> None:
        if obj.mbr.dim != self._dim:
            raise ValueError("object dimensionality mismatch")

    def _physical_row(self, index: int) -> int:
        """The physical array row behind logical ``index`` (< alive)."""
        if self._n_dead == 0:
            return index
        return int(np.flatnonzero(self._alive)[index])

    def append(self, obj) -> None:
        """Add one object: queues one new coordinate row, no rebuild.

        The object's logical row is ``len(self) - 1`` afterwards —
        insertion order, matching the engine's object tuple.
        """
        self._check_dim(obj)
        self._objects.append(obj)
        self._pending.append(obj)

    def remove_at(self, index: int) -> None:
        """Mask one object's row out of the coordinate arrays.

        Later rows shift down by one logical position, mirroring an
        order-preserving removal from the caller's object sequence.
        The filter may become empty; callers must then stop querying it
        (the engine drops it entirely, per its empty-input semantics).
        """
        n = len(self._objects)
        if not 0 <= index < n:
            raise IndexError(f"row {index} out of range for {n} objects")
        del self._objects[index]
        alive_rows = self._physical_count() - self._n_dead
        if index >= alive_rows:
            del self._pending[index - alive_rows]
            return
        if self._alive is None:
            self._alive = np.ones(self._physical_count(), dtype=bool)
        self._alive[self._physical_row(index)] = False
        self._n_dead += 1

    def replace_at(self, index: int, obj) -> None:
        """Overwrite one object's row in place (same logical position).

        The dead-reckoning fast path: replacing an uncertainty region
        with a fresh report costs O(d), no masking or compaction.
        """
        n = len(self._objects)
        if not 0 <= index < n:
            raise IndexError(f"row {index} out of range for {n} objects")
        self._check_dim(obj)
        self._objects[index] = obj
        alive_rows = self._physical_count() - self._n_dead
        if index >= alive_rows:
            self._pending[index - alive_rows] = obj
            return
        row = self._physical_row(index)
        mbr = obj.mbr
        self._ensure_writable()
        self._lows[row] = mbr.lows
        self._highs[row] = mbr.highs

    def _flush(self) -> None:
        """Fold masked rows and queued appends into contiguous arrays.

        A chunk-backed filter materialises its columns first (once) —
        the streaming representation is immutable, so the first
        structural mutation pays one full-column read and the filter
        behaves residently from then on.
        """
        if self._lows is None:
            if not (self._n_dead or self._pending):
                return
            self._materialize()
        if self._n_dead:
            self._lows = self._lows[self._alive]
            self._highs = self._highs[self._alive]
            self._alive = None
            self._n_dead = 0
        if self._pending:
            self._lows = np.concatenate(
                [self._lows, np.array([o.mbr.lows for o in self._pending])]
            )
            self._highs = np.concatenate(
                [self._highs, np.array([o.mbr.highs for o in self._pending])]
            )
            self._pending = []

    def _as_matrix(self, points: Sequence) -> np.ndarray:
        matrix = np.asarray(points, dtype=float)
        if matrix.ndim == 1:
            if self._dim != 1:
                raise ValueError("query point dimensionality mismatch")
            matrix = matrix.reshape(-1, 1)
        if matrix.ndim != 2 or matrix.shape[1] != self._dim:
            raise ValueError("query point dimensionality mismatch")
        return matrix

    def matrices(self, points: Sequence) -> tuple[np.ndarray, np.ndarray]:
        """MBR ``mindist`` / ``maxdist`` of every (query, object) pair.

        Returns two ``(B, N)`` matrices.  The arithmetic mirrors
        :meth:`repro.index.geometry.Rect.mindist` / ``maxdist``
        operation for operation, so the values are bit-identical to the
        per-object methods (for 1-D objects they also equal the
        objects' own ``mindist``/``maxdist``; 2-D regions may be
        strictly tighter than their MBR, so callers needing the exact
        region distances must re-check straddling objects).
        """
        self._flush()
        queries = self._as_matrix(points)  # (B, d)
        if self._lows is None:
            return self._sweep_chunked(queries)
        return self._sweep(queries, self._lows, self._highs)

    def matrices_rows(
        self, points: Sequence, rows: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """:meth:`matrices` restricted to the row subset ``rows``.

        Returns ``(B, len(rows))`` matrices whose column ``j`` equals
        column ``rows[j]`` of the full sweep — the same element-wise
        arithmetic over the same coordinate values, so every cell is
        bit-identical.  This is the process-executor's per-shard work
        item: each worker sweeps only its assigned columns of the
        global matrix (DESIGN.md §13).
        """
        self._flush()
        queries = self._as_matrix(points)
        rows = np.asarray(rows, dtype=np.intp)
        if self._lows is None:
            lows, highs = self._gather_chunked(rows)
            return self._sweep(queries, lows, highs)
        return self._sweep(queries, self._lows[rows], self._highs[rows])

    def _sweep_chunked(
        self, queries: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Full sweep streamed in row blocks from the chunked store.

        :meth:`_sweep` is elementwise per object row (each output cell
        depends only on its own row's coordinates), so filling the
        ``(B, N)`` matrices block by block is bit-identical to one
        resident sweep.
        """
        n = self._physical_count()
        block = self._sweep_block_rows(queries.shape[0])
        mindist = np.empty((queries.shape[0], n))
        maxdist = np.empty((queries.shape[0], n))
        for r0 in range(0, n, block):
            r1 = min(n, r0 + block)
            lows = self._store.read("lows", r0, r1)
            highs = self._store.read("highs", r0, r1)
            mindist[:, r0:r1], maxdist[:, r0:r1] = self._sweep(
                queries, lows, highs
            )
        return mindist, maxdist

    def _sweep_block_rows(self, n_queries: int) -> int:
        """Rows per chunked-sweep block within ``_SWEEP_BLOCK_BYTES``."""
        per_row = 8 * max(1, n_queries) * (2 + self._dim)
        return max(1, _SWEEP_BLOCK_BYTES // per_row)

    def _gather_chunked(
        self, rows: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Gather an arbitrary row subset from the chunked store.

        Consecutive runs become single range reads (the process
        executor's shard rows are contiguous or low-stride, so this
        degenerates to a handful of reads in practice).
        """
        n = self._physical_count()
        norm = np.where(rows < 0, rows + n, rows)
        if norm.size and (int(norm.min()) < 0 or int(norm.max()) >= n):
            raise IndexError(
                f"row index out of range for {n} physical rows"
            )
        lows = np.empty((norm.size, self._dim))
        highs = np.empty((norm.size, self._dim))
        j = 0
        while j < norm.size:
            k = j + 1
            while k < norm.size and norm[k] == norm[k - 1] + 1:
                k += 1
            r0, r1 = int(norm[j]), int(norm[k - 1]) + 1
            lows[j:k] = self._store.read("lows", r0, r1)
            highs[j:k] = self._store.read("highs", r0, r1)
            j = k
        return lows, highs

    @staticmethod
    def _sweep(
        queries: np.ndarray, lows: np.ndarray, highs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        diff_lo = lows[None, :, :] - queries[:, None, :]  # lo - q
        diff_hi = queries[:, None, :] - highs[None, :, :]  # q - hi
        span = np.maximum(np.abs(diff_lo), np.abs(diff_hi))
        np.multiply(span, span, out=span)
        maxdist = span.sum(axis=2)
        np.sqrt(maxdist, out=maxdist)
        gap = np.maximum(diff_lo, diff_hi, out=diff_lo)
        np.maximum(gap, 0.0, out=gap)
        np.multiply(gap, gap, out=gap)
        mindist = gap.sum(axis=2)
        np.sqrt(mindist, out=mindist)
        return mindist, maxdist

    def __call__(self, points: Sequence) -> list[FilterResult]:
        """Filter every query point; returns one result per point.

        ``stats`` counters are left at zero — there is no tree
        traversal to count.
        """
        mindist, maxdist = self.matrices(points)
        return pnn_results_from_matrices(self._objects, mindist, maxdist)

    def kth_filter(
        self, points: Sequence, ks: Sequence[int]
    ) -> list[tuple[np.ndarray, float]]:
        """k-NN filtering: survivors of the ``f_min^k`` pruning rule.

        For query ``b`` with ``ks[b] = k``, let ``f_min^k`` be the
        k-th smallest MBR ``maxdist``: any object whose MBR ``mindist``
        exceeds it certainly has at least ``k`` objects closer, so its
        probability of being among the ``k`` nearest is exactly zero
        (the generalisation of reference [8]'s PNN rule).  Returns, per
        query, the surviving object *indices* (ascending insertion
        order) and the pruning radius.  Guaranteed to keep at least
        ``k`` objects.  ``ks[b]`` must lie in [1, N].
        """
        mindist, maxdist = self.matrices(points)
        return kth_from_matrices(mindist, maxdist, ks)
