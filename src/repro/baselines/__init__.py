"""Baseline PNN evaluators used for comparison and cross-validation.

* :mod:`repro.baselines.basic` — the traditional numerical-integration
  method of [5] (Cheng, Kalashnikov, Prabhakar, SIGMOD 2003), an
  implementation independent from the engine's Gauss–Legendre path;
* :mod:`repro.baselines.montecarlo` — the sampling method of [9]
  (Kriegel, Kunath, Renz, DASFAA 2007).
"""

from repro.baselines.basic import basic_pnn_probabilities
from repro.baselines.montecarlo import (
    monte_carlo_knn_probabilities,
    monte_carlo_pnn_probabilities,
)

__all__ = [
    "basic_pnn_probabilities",
    "monte_carlo_knn_probabilities",
    "monte_carlo_pnn_probabilities",
]
