"""The Basic method: direct numerical integration of [5]'s formula.

The qualification probability of object ``i`` is

    p_i = ∫_{n_i}^{f_i} d_i(r) · Π_{k≠i} (1 − D_k(r)) dr

This module evaluates it with composite Simpson's rule over a grid
refined below every breakpoint, mirroring the paper's description of
the Basic strategy ("requires the use of numerical integration", whose
accuracy "depends on the precision of the integration").  It is
deliberately *independent* of the engine's exact Gauss–Legendre path
(:meth:`repro.core.refinement.Refiner.exact_all`), so the two act as
cross-checks in the test-suite.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from repro.uncertainty.distance import DistanceDistribution

__all__ = ["basic_pnn_probabilities"]


def _integration_grid(
    distributions: Sequence[DistanceDistribution], subdivisions: int
) -> np.ndarray:
    """All breakpoints up to ``f_min``, each piece split ``subdivisions``-fold."""
    fmin = min(d.far for d in distributions)
    lo = min(d.near for d in distributions)
    pool = [np.asarray([lo, fmin])]
    for dist in distributions:
        edges = dist.breakpoints
        pool.append(edges[(edges > lo) & (edges < fmin)])
    base = np.unique(np.concatenate(pool))
    if base.size < 2:
        return base
    pieces = []
    for a, b in zip(base[:-1], base[1:]):
        pieces.append(np.linspace(a, b, subdivisions + 1)[:-1])
    pieces.append(np.asarray([base[-1]]))
    return np.concatenate(pieces)


def basic_pnn_probabilities(
    objects: Sequence,
    q=None,
    subdivisions: int = 8,
) -> dict[Hashable, float]:
    """Qualification probabilities by composite Simpson integration.

    ``objects`` may be ``SpatialUncertain`` objects (then ``q`` is
    required) or ready-made distance distributions.  ``subdivisions``
    controls the per-piece resolution; accuracy improves as
    O(subdivisions⁻⁴), the classic trade-off the paper attributes to
    the Basic method.
    """
    distributions = [
        obj
        if isinstance(obj, DistanceDistribution)
        else obj.distance_distribution(q)
        for obj in objects
    ]
    if not distributions:
        raise ValueError("need at least one object")
    if len(distributions) == 1:
        return {distributions[0].key: 1.0}
    if subdivisions < 1:
        raise ValueError("subdivisions must be >= 1")
    grid = _integration_grid(distributions, subdivisions)
    # Simpson needs midpoints too: evaluate at knots and midpoints.
    mids = 0.5 * (grid[:-1] + grid[1:])
    cdf_knots = np.vstack([np.asarray(d.cdf(grid)) for d in distributions])
    cdf_mids = np.vstack([np.asarray(d.cdf(mids)) for d in distributions])
    # The pdf is constant inside each grid piece (the grid contains all
    # breakpoints), so sample the piece's density at its midpoint; the
    # survival product is continuous and may be read at the knots.
    pdf_mids = np.vstack([np.asarray(d.pdf(mids)) for d in distributions])
    surv_knots = np.clip(1.0 - cdf_knots, 0.0, 1.0)
    surv_mids = np.clip(1.0 - cdf_mids, 0.0, 1.0)

    results: dict[Hashable, float] = {}
    n = len(distributions)
    for i, dist in enumerate(distributions):
        others = [k for k in range(n) if k != i]
        prod_knots = np.prod(surv_knots[others], axis=0)
        prod_mids = np.prod(surv_mids[others], axis=0)
        density = pdf_mids[i]
        widths = np.diff(grid)
        # Composite Simpson: (h/6) (f(a) + 4 f(m) + f(b)) per piece.
        integral = np.sum(
            widths
            / 6.0
            * density
            * (prod_knots[:-1] + 4.0 * prod_mids + prod_knots[1:])
        )
        results[dist.key] = float(min(max(integral, 0.0), 1.0))
    return results
