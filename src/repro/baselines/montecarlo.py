"""Monte-Carlo PNN evaluation — the sampling baseline of [9].

Each object's pdf is represented by a set of sampled points; the
qualification probability is estimated as the fraction of joint draws
in which the object's sample is the closest to the query point.  As
the paper notes, "this sampling process may introduce another source
of error if there are not enough samples" — the standard error of the
estimate is O(1/sqrt(trials)), which the test-suite uses to set its
agreement tolerances.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

__all__ = [
    "DEFAULT_BASELINE_SEED",
    "monte_carlo_pnn_probabilities",
    "monte_carlo_knn_probabilities",
]

#: Trials processed per vectorised batch (bounds peak memory).
_BATCH = 50_000

#: Seed of the default rng.  The baseline used to default to fresh OS
#: entropy, which made "same inputs, same estimate" fail across runs —
#: agreement tolerances in the test-suite were silently absorbing a
#: re-rolled sampling error on every invocation.  Callers wanting
#: independent replications pass their own ``rng``.
DEFAULT_BASELINE_SEED = 20080199


def _resolve_rng(rng: np.random.Generator | None) -> np.random.Generator:
    """Deterministic by default; an explicit generator wins."""
    if rng is None:
        return np.random.default_rng(DEFAULT_BASELINE_SEED)
    return rng


def _sample_distances(
    objects: Sequence, q, trials: int, rng: np.random.Generator
) -> np.ndarray:
    """(n_objects, trials) matrix of sampled distances from ``q``."""
    rows = []
    for obj in objects:
        if hasattr(obj, "sample_distances"):  # parametric: exact joint law
            rows.append(obj.sample_distances(q, trials, rng))
        elif hasattr(obj, "histogram"):  # 1-D uncertain object
            values = obj.histogram.sample(rng, trials)
            rows.append(np.abs(values - float(np.atleast_1d(q)[0])))
        elif hasattr(obj, "sample"):  # 2-D region with point sampling
            points = obj.sample(rng, trials)
            rows.append(np.linalg.norm(points - np.asarray(q, dtype=float), axis=1))
        else:  # a bare DistanceDistribution
            rows.append(obj.sample(rng, trials))
    return np.vstack(rows)


def monte_carlo_pnn_probabilities(
    objects: Sequence,
    q,
    trials: int = 100_000,
    rng: np.random.Generator | None = None,
) -> dict[Hashable, float]:
    """Estimate qualification probabilities by joint sampling.

    Deterministic by default (``DEFAULT_BASELINE_SEED``); pass ``rng``
    for independent replications.  Objects exposing the parametric
    ``sample_distances`` contract are sampled from their exact distance
    law — no histogram materialisation.
    """
    if trials < 1:
        raise ValueError("trials must be positive")
    rng = _resolve_rng(rng)
    keys = [obj.key for obj in objects]
    wins = np.zeros(len(objects), dtype=np.int64)
    remaining = trials
    while remaining > 0:
        batch = min(remaining, _BATCH)
        distances = _sample_distances(objects, q, batch, rng)
        winners = np.argmin(distances, axis=0)
        wins += np.bincount(winners, minlength=len(objects))
        remaining -= batch
    return {key: float(w / trials) for key, w in zip(keys, wins)}


def monte_carlo_knn_probabilities(
    objects: Sequence,
    q,
    k: int,
    trials: int = 100_000,
    rng: np.random.Generator | None = None,
) -> dict[Hashable, float]:
    """Estimate ``Pr[object among the k nearest]`` by joint sampling."""
    if k < 1:
        raise ValueError("k must be at least 1")
    rng = _resolve_rng(rng)
    keys = [obj.key for obj in objects]
    if k >= len(objects):
        return {key: 1.0 for key in keys}
    hits = np.zeros(len(objects), dtype=np.int64)
    remaining = trials
    while remaining > 0:
        batch = min(remaining, _BATCH)
        distances = _sample_distances(objects, q, batch, rng)
        ranks = np.argsort(distances, axis=0, kind="stable")[:k, :]
        for row in ranks:
            hits += np.bincount(row, minlength=len(objects))
        remaining -= batch
    return {key: float(h / trials) for key, h in zip(keys, hits)}
