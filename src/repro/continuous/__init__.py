"""Continuous-query tier: safe regions + dominance-index invalidation.

``register(spec)`` installs a monitoring query once; every
:meth:`~repro.continuous.monitor.ContinuousMonitor.tick` re-enters the
full pipeline only for queries whose point moved or whose **safe
region** a mutation invalidated — everything else replays its memoised
:class:`~repro.core.types.QueryResult` snapshot for free, bit-identical
to full re-execution (DESIGN.md §17).
"""

from repro.continuous.index import DominanceIndex
from repro.continuous.monitor import (
    ContinuousHandle,
    ContinuousMonitor,
    TickReport,
)
from repro.continuous.region import SafeRegion

__all__ = [
    "ContinuousHandle",
    "ContinuousMonitor",
    "DominanceIndex",
    "SafeRegion",
    "TickReport",
]
