"""Continuous-query monitor: register once, tick cheaply, replay exactly.

:class:`ContinuousMonitor` fronts an engine
(:class:`~repro.core.engine.UncertainEngine` or
:class:`~repro.core.engine.sharded.ShardedEngine`) for monitoring
workloads: :meth:`~ContinuousMonitor.register` runs a spec once and
installs a :class:`ContinuousHandle` carrying the memoised
:class:`~repro.core.types.QueryResult` and its
:class:`~repro.continuous.region.SafeRegion` certificate; each
:meth:`~ContinuousMonitor.tick` re-enters the pipeline — one
``execute_batch`` micro-batch riding the engine's executor substrate
unchanged — **only** for handles whose query point moved or whose
certificate a mutation invalidated.  Every other handle's snapshot is
exact by the certificate argument (DESIGN.md §17) and is not even
visited: tick cost scales with the disturbance, not with the number of
registered queries.

Mutations must flow **through the monitor** (:meth:`insert`,
:meth:`remove`, :meth:`replace`, which forward to the engine and record
the certificate-relevant MBRs), or be declared out-of-band via
``tick(moved_keys=...)`` / :meth:`note_mutation`.  A mutation applied
directly to the engine and never declared silently breaks the replay
contract — exactly as it would break any external cache.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Mapping, Sequence

import numpy as np

from repro.continuous.index import DominanceIndex
from repro.continuous.region import SafeRegion
from repro.core.engine.pnn import _replay_result
from repro.core.types import QueryResult, QuerySpec

__all__ = ["ContinuousHandle", "ContinuousMonitor", "TickReport"]


@dataclass(eq=False)  # identity semantics: a handle is its registration
class ContinuousHandle:
    """One registered monitoring query.

    Holds the latest memoised result and its safe-region certificate;
    all mutation/tick machinery lives on the owning monitor.  Counters
    are observational: ``reexecutions`` counts pipeline re-entries
    (including registration), while replays are tracked globally — a
    replayed handle is never visited, which is the whole point.
    """

    id: int
    spec: QuerySpec
    result: QueryResult | None = None
    region: SafeRegion | None = None
    #: C-PNN only: the candidate keys of the memoised result, serving
    #: the out-of-band ``moved_keys`` membership test.  ``None`` for
    #: structural families (k-NN / range).
    candidate_keys: frozenset | None = None
    reexecutions: int = 0
    registered_at: int = 0

    @property
    def answers(self) -> tuple:
        """The current (memoised) answer tuple."""
        return self.result.answers

    def snapshot(self) -> QueryResult:
        """A caller-owned replay of the memoised result.

        Records are deep-copied (the stored snapshot shares no mutable
        state with what callers hold) and timings are zero — nothing
        ran, matching the engine's own replay-tier convention.
        """
        result = _replay_result(self.result)
        result.spec = self.spec
        return result


@dataclass
class TickReport:
    """What one :meth:`ContinuousMonitor.tick` actually did.

    ``results`` carries a fresh snapshot for every re-executed handle
    and ``changed`` the subset whose *answer tuple* differs from the
    previous tick — the streaming payload.  Replayed handles appear
    only as a count: they were never visited.
    """

    index: int
    registered: int
    reexecuted: tuple[int, ...]
    replayed: int
    escaped: tuple[int, ...]
    invalidated: tuple[int, ...]
    mutations: int
    results: dict[int, QueryResult] = field(default_factory=dict)
    changed: dict[int, QueryResult] = field(default_factory=dict)

    @property
    def escape_rate(self) -> float:
        """Fraction of registered queries that re-entered the pipeline."""
        return len(self.reexecuted) / self.registered if self.registered else 0.0


class ContinuousMonitor:
    """The continuous-query tier over one engine.

    Parameters
    ----------
    engine:
        Any engine exposing the façade (``execute_batch``, the mutation
        contract, ``object_for``).  The monitor attaches itself as
        ``engine._continuous`` so ``stats()["continuous"]`` and
        ``explain()`` report this tier; a later monitor on the same
        engine takes the slot over.
    strategy:
        Optional C-PNN strategy override, passed through to every
        ``execute_batch`` call.
    group_size:
        Dominance-index group width
        (:class:`~repro.continuous.index.DominanceIndex`).
    """

    def __init__(self, engine, *, strategy: str | None = None, group_size: int = 32):
        self._engine = engine
        self._strategy = strategy
        self._index = DominanceIndex(group_size)
        self._handles: dict[int, ContinuousHandle] = {}
        self._ids = itertools.count(1)
        #: Mutation MBRs recorded since the last tick, as
        #: ``(lows, highs)`` float-vector pairs.
        self._pending_boxes: list[tuple[np.ndarray, np.ndarray]] = []
        #: Whether a census change (insert/remove/key-changing replace)
        #: happened since the last tick — invalidates every structural
        #: (k-NN / range) handle.
        self._pending_structural = False
        self._ticks = 0
        self._reexecuted_total = 0
        self._replayed_total = 0
        self._escaped_total = 0
        self._invalidated_total = 0
        self._mutations_total = 0
        self._opportunities = 0
        engine._continuous = self

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(self, spec) -> ContinuousHandle:
        """Install one monitoring query (executed immediately)."""
        return self.register_many([spec])[0]

    def register_many(self, specs: Sequence) -> list[ContinuousHandle]:
        """Install many monitoring queries with one micro-batch."""
        specs = [self._engine._as_spec(s) for s in specs]
        batch = self._engine.execute_batch(specs, strategy=self._strategy)
        handles = []
        for spec, result in zip(specs, batch.results):
            handle = ContinuousHandle(
                id=next(self._ids), spec=spec, registered_at=self._ticks
            )
            self._install(handle, result)
            self._handles[handle.id] = handle
            handles.append(handle)
        return handles

    def unregister(self, handle) -> bool:
        """Remove a handle (or handle id); ``True`` when it was live."""
        handle_id = handle.id if isinstance(handle, ContinuousHandle) else int(handle)
        if self._handles.pop(handle_id, None) is None:
            return False
        self._index.discard(handle_id)
        return True

    def _resolve(self, target) -> ContinuousHandle:
        handle_id = target.id if isinstance(target, ContinuousHandle) else int(target)
        try:
            return self._handles[handle_id]
        except KeyError:
            raise KeyError(f"no registered handle {handle_id!r}") from None

    def _install(self, handle: ContinuousHandle, result: QueryResult) -> None:
        """Memoise a fresh result and refresh the handle's certificate."""
        handle.result = result
        handle.region = SafeRegion.from_result(handle.spec, result)
        handle.candidate_keys = (
            None
            if handle.region.structural
            else frozenset(record.key for record in result.records)
        )
        handle.reexecutions += 1
        self._index.put(
            handle.id,
            handle.region.center,
            handle.region.radius,
            handle.region.structural,
        )

    # ------------------------------------------------------------------
    # Mutations (the monitored front of the mutation contract)
    # ------------------------------------------------------------------

    def _note_box(self, mbr) -> None:
        self._pending_boxes.append(
            (
                np.atleast_1d(np.asarray(mbr.lows, dtype=float)),
                np.atleast_1d(np.asarray(mbr.highs, dtype=float)),
            )
        )

    def note_mutation(self, lows, highs, *, structural: bool = False) -> None:
        """Declare an out-of-band mutation MBR (advanced use).

        For callers that mutate the engine directly but know the
        affected boxes: declare the *old* and *new* MBR of a
        replacement (two calls), or pass ``structural=True`` for
        anything that changes the object census.
        """
        self._pending_boxes.append(
            (
                np.atleast_1d(np.asarray(lows, dtype=float)),
                np.atleast_1d(np.asarray(highs, dtype=float)),
            )
        )
        if structural:
            self._pending_structural = True

    def insert(self, obj) -> None:
        """Insert through the engine and certify the mutation."""
        self._engine.insert(obj)
        self._note_box(obj.mbr)
        self._pending_structural = True

    def remove(self, key: Hashable) -> bool:
        """Remove through the engine and certify the mutation."""
        victim = self._engine.object_for(key)
        removed = self._engine.remove(key)
        if removed:
            self._note_box(victim.mbr)
            self._pending_structural = True
        return removed

    def replace(self, key: Hashable, obj) -> None:
        """Replace through the engine and certify both MBRs.

        In-place replacement is non-structural (the census is
        unchanged) unless the object's key changes — k-NN and range
        records enumerate keys, so a key swap invalidates them like a
        census change.
        """
        victim = self._engine.object_for(key)
        self._engine.replace(key, obj)
        self._note_box(victim.mbr)
        self._note_box(obj.mbr)
        if obj.key != key:
            self._pending_structural = True

    # ------------------------------------------------------------------
    # The tick
    # ------------------------------------------------------------------

    def tick(
        self,
        moved_keys: Iterable[Hashable] | None = None,
        query_moves: Mapping | None = None,
    ) -> TickReport:
        """Advance one monitoring step.

        Parameters
        ----------
        moved_keys:
            Keys of objects replaced in place *directly on the engine*
            (out-of-band) since the last tick.  Their old MBR is
            unknown, so certification degrades: structural handles all
            re-execute, C-PNN handles re-execute when the key was in
            their candidate set or the object's current MBR touches
            their ball.  Prefer routing mutations through the monitor.
        query_moves:
            ``{handle_or_id: new_query_point}`` — dead-reckoning for
            the queries themselves.  A genuinely moved point always
            re-executes (results are pointwise in ``q``); a report
            equal to the registered point replays.

        Returns a :class:`TickReport`; ``report.changed`` holds fresh
        snapshots only for handles whose answer tuple changed.
        """
        self._ticks += 1
        boxes = self._pending_boxes
        self._pending_boxes = []
        structural = self._pending_structural
        self._pending_structural = False

        invalidated: set[int] = set()
        escaped: list[int] = []
        moves: dict[int, QuerySpec] = {}
        if query_moves:
            for target, q in query_moves.items():
                handle = self._resolve(target)
                if handle.region.contains_point(q):
                    continue  # stationary report: the snapshot stands
                moves[handle.id] = dataclasses.replace(handle.spec, q=q)
                escaped.append(handle.id)
        if moved_keys:
            for key in moved_keys:
                structural = True  # old MBR unknown: degrade k-NN/range
                obj = self._engine.object_for(key)
                if obj is not None:
                    self._note_box(obj.mbr)
                for handle in self._handles.values():
                    if handle.candidate_keys and key in handle.candidate_keys:
                        invalidated.add(handle.id)
            boxes = boxes + self._pending_boxes
            self._pending_boxes = []

        if boxes:
            # One vectorised certificate sweep per dimensionality (a
            # drained-and-refilled engine can mix box dims in one tick).
            by_dim: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {}
            for lows, highs in boxes:
                by_dim.setdefault(lows.shape[0], []).append((lows, highs))
            for dim_boxes in by_dim.values():
                invalidated |= self._index.hit_by_boxes(
                    np.stack([lows for lows, _ in dim_boxes]),
                    np.stack([highs for _, highs in dim_boxes]),
                )
        if structural:
            invalidated |= self._index.structural_ids()
        invalidated &= self._handles.keys()

        to_run = sorted(invalidated | moves.keys())
        results: dict[int, QueryResult] = {}
        changed: dict[int, QueryResult] = {}
        if to_run:
            for handle_id, spec in moves.items():
                self._handles[handle_id].spec = spec
            specs = [self._handles[h].spec for h in to_run]
            batch = self._engine.execute_batch(specs, strategy=self._strategy)
            for handle_id, result in zip(to_run, batch.results):
                handle = self._handles[handle_id]
                previous = handle.result.answers
                self._install(handle, result)
                snapshot = handle.snapshot()
                results[handle_id] = snapshot
                if result.answers != previous:
                    changed[handle_id] = snapshot

        registered = len(self._handles)
        replayed = registered - len(to_run)
        self._reexecuted_total += len(to_run)
        self._replayed_total += replayed
        self._escaped_total += len(escaped)
        self._invalidated_total += len(invalidated)
        self._mutations_total += len(boxes)
        self._opportunities += registered
        return TickReport(
            index=self._ticks,
            registered=registered,
            reexecuted=tuple(to_run),
            replayed=replayed,
            escaped=tuple(escaped),
            invalidated=tuple(sorted(invalidated)),
            mutations=len(boxes),
            results=results,
            changed=changed,
        )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._handles)

    @property
    def handles(self) -> tuple[ContinuousHandle, ...]:
        """Live handles, in registration order."""
        return tuple(self._handles.values())

    def results(self) -> dict[int, QueryResult]:
        """Fresh snapshots of every registered handle (O(Q); the tick
        path never does this — it returns only what changed)."""
        return {h.id: h.snapshot() for h in self._handles.values()}

    def stats(self) -> dict:
        """Counter snapshot for ``stats()["continuous"]``."""
        opportunities = self._opportunities
        return {
            "registered": len(self._handles),
            "ticks": self._ticks,
            "reexecuted": self._reexecuted_total,
            "replayed": self._replayed_total,
            "escaped": self._escaped_total,
            "invalidated": self._invalidated_total,
            "mutations": self._mutations_total,
            "hit_rate": (self._replayed_total / opportunities) if opportunities else 1.0,
            "index": self._index.stats(),
        }
