"""Per-query safe regions reified from the ``f_min`` filter bound.

The ``TableCache`` invalidation rule (DESIGN.md §11) already decides,
per mutation, whether a cached C-PNN table for point ``q`` can have
changed: it survives iff ``mindist(mutated MBR, q) > f_min(q)``.  A
:class:`SafeRegion` turns that per-mutation *check* into a per-query
geometric *certificate* — the closed ball of radius ``f_min`` around
the query point, stored once at (re)execution time and tested against
mutation MBRs on every tick.  While no mutation box touches the ball
and the query point itself has not moved, the memoised
:class:`~repro.core.types.QueryResult` is exact and replays for free.

Soundness per family (the full argument is DESIGN.md §17):

* **C-PNN** — the ball radius is the filter bound ``f_min``.  An
  insert/remove/replace whose MBR stays outside the ball cannot enter
  or leave the candidate set, nor change ``f_min`` itself (the
  ``f_min``-determining object is always a candidate), so the table,
  bounds, and answers are untouched.  These mutations are
  *non-structural* for C-PNN: distance tests alone decide.
* **k-NN** — the ball radius is ``f_min^k`` (the k-th smallest
  ``maxdist``), which bounds which objects can affect the k-NN
  probability bounds.  But the *result shape* also depends on the
  object census: records list every object (pruned ones carry 0/0
  bounds) and the Poisson-binomial arithmetic depends on ``n`` and on
  the trivial ``k >= n`` switch.  Inserts and removes therefore always
  invalidate (``structural=True``); only in-place replacements get the
  distance test.
* **Range** — the ball radius is the query radius itself: an object
  whose MBR stays outside the ball has ``mindist > radius`` before and
  after, remains certainly-outside, and its record is the
  position-independent ``FAIL 0/0``.  Like k-NN, records list every
  object, so census changes always invalidate (``structural=True``).

A non-finite radius (empty engine at registration time, or the trivial
``k >= n`` k-NN case with ``f_min^k = inf``) normalises to ``inf``:
the certificate is unbounded and *every* mutation invalidates — always
sound, never fast, and self-correcting on the next re-execution.

Query motion is deliberately **not** covered by the ball: a
:class:`~repro.core.types.QueryResult` depends pointwise on ``q``
(bounds, ``f_min``, and records all change with the point), so the
replay region for query motion is the point itself.  Any reported move
re-executes; the win of this tier is that *unmoved* queries with
untouched certificates are never visited at all.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import CKNNQuery, CRangeQuery, QueryResult, QuerySpec

__all__ = ["SafeRegion"]


def _center_of(q) -> np.ndarray:
    """The query point as a float vector (scalars become 1-D)."""
    return np.atleast_1d(np.asarray(q, dtype=float))


@dataclass(frozen=True)
class SafeRegion:
    """The mutation-certificate ball of one registered query.

    Attributes
    ----------
    center:
        The query point, as a float vector.
    radius:
        Certificate radius — ``f_min`` (C-PNN), ``f_min^k`` (k-NN), or
        the query radius (range).  ``inf`` means unbounded (every
        mutation invalidates).
    structural:
        Whether census changes (insert/remove, or a key-changing
        replace) invalidate regardless of distance — true for k-NN and
        range, whose records enumerate every object.
    """

    center: np.ndarray
    radius: float
    structural: bool

    @classmethod
    def from_result(cls, spec: QuerySpec, result: QueryResult) -> "SafeRegion":
        """Derive the certificate from a just-computed result.

        ``result.fmin`` already carries the family's pruning radius
        (``f_min`` / ``f_min^k`` / query radius); a NaN (empty engine)
        or infinite radius becomes the unbounded certificate.
        """
        radius = float(result.fmin)
        if not np.isfinite(radius):
            radius = float("inf")
        structural = isinstance(spec, (CKNNQuery, CRangeQuery))
        return cls(center=_center_of(spec.q), radius=radius, structural=structural)

    def hit_by(self, lows, highs) -> bool:
        """Does the box ``[lows, highs]`` touch the certificate ball?

        The same arithmetic as ``TableCache.invalidate_boxes`` (and
        therefore the same float behaviour): per-axis gap between the
        box and the point, clamped at zero, Euclidean-combined, then
        compared ``<= radius``.
        """
        lows = np.atleast_1d(np.asarray(lows, dtype=float))
        highs = np.atleast_1d(np.asarray(highs, dtype=float))
        if lows.shape != self.center.shape:
            # Dimensionality drift (engine drained and refilled with a
            # different dimensionality): conservatively invalidate; the
            # re-execution surfaces whatever the engine decides.
            return True
        gap = np.maximum(lows - self.center, self.center - highs)
        np.maximum(gap, 0.0, out=gap)
        mindist = float(np.sqrt(np.sum(gap * gap)))
        return mindist <= self.radius

    def contains_point(self, q) -> bool:
        """Is ``q`` a point this region certifies replay for?

        Exactly the registered point (compared as floats): results are
        pointwise functions of ``q``, so any actual motion re-executes
        (see the module docstring).
        """
        point = _center_of(q)
        return point.shape == self.center.shape and bool(
            np.all(point == self.center)
        )
