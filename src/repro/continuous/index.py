"""Coarse probabilistic-Voronoi dominance index over safe regions.

A probabilistic Voronoi diagram assigns each region of space the set of
queries an object there could influence; maintaining one exactly is as
expensive as the queries it would save.  This index keeps the useful
half at grouped-MBR precision: registered certificates (center +
radius, :class:`~repro.continuous.region.SafeRegion`) are sorted by
center and chunked into small groups, each summarised by the bounding
box of its centers and the maximum radius it contains.  A mutation MBR
then tests *groups* first — one vectorised sweep over all group
summaries — and descends to exact per-handle distance tests only inside
groups it can possibly touch, so invalidation work scales with the
queries a mutation can actually affect, not with every registered
query.

Both tiers use the ``TableCache.invalidate_boxes`` arithmetic (per-axis
clamped gap, Euclidean norm, ``<= radius``), so the index can prune but
never miss: ``mindist(box, center) >= mindist(box, center-bbox)``, and
a group's max radius dominates every member's — a group that fails the
coarse test contains no handle that could pass the exact one.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DominanceIndex"]


class DominanceIndex:
    """Grouped certificate index: mutation MBR → affected handle ids.

    Parameters
    ----------
    group_size:
        Handles per group.  Small groups descend precisely but pay more
        group tests; the default suits tens-to-thousands of handles.
    """

    def __init__(self, group_size: int = 32) -> None:
        if group_size < 1:
            raise ValueError("group_size must be positive")
        self._group_size = int(group_size)
        #: handle id -> (center vector, radius, structural flag)
        self._entries: dict[int, tuple[np.ndarray, float, bool]] = {}
        self._structural: set[int] = set()
        self._groups: dict[int, dict] | None = None  # dim -> partition, rebuilt lazily
        # Observability: exact vs. coarse test volume.
        self.group_tests = 0
        self.handle_tests = 0
        self.groups_pruned = 0

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def put(self, handle_id: int, center: np.ndarray, radius: float, structural: bool) -> None:
        """Install or refresh one handle's certificate."""
        self._entries[handle_id] = (np.asarray(center, dtype=float), float(radius), structural)
        if structural:
            self._structural.add(handle_id)
        else:
            self._structural.discard(handle_id)
        self._groups = None

    def discard(self, handle_id: int) -> None:
        """Drop a handle's certificate (no-op when absent)."""
        if self._entries.pop(handle_id, None) is not None:
            self._structural.discard(handle_id)
            self._groups = None

    def structural_ids(self) -> set[int]:
        """Handles invalidated by any census change (k-NN / range)."""
        return set(self._structural)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _rebuild(self) -> dict[int, dict]:
        """Sort certificates by center, chunk, summarise each chunk.

        Handles are partitioned by dimensionality first (a drained and
        refilled engine can change the world's dimensionality under
        long-lived registrations); each partition is sorted
        lexicographically by center so groups cover compact slabs, and
        every partition's group summaries are stacked into one
        ``(G, d)`` bbox matrix so the coarse sweep is a single
        vectorised pass per partition — the tick-path hot loop.
        """
        by_dim: dict[int, list[int]] = {}
        for handle_id, (center, _, _) in self._entries.items():
            by_dim.setdefault(center.shape[0], []).append(handle_id)
        partitions: dict[int, dict] = {}
        for dim, ids in by_dim.items():
            ids.sort(key=lambda h: tuple(self._entries[h][0]))
            groups: list[dict] = []
            for start in range(0, len(ids), self._group_size):
                chunk = ids[start : start + self._group_size]
                centers = np.stack([self._entries[h][0] for h in chunk])
                radii = np.array([self._entries[h][1] for h in chunk])
                groups.append(
                    {
                        "ids": chunk,
                        "centers": centers,
                        "radii": radii,
                    }
                )
            partitions[dim] = {
                "groups": groups,
                "lows": np.stack(
                    [g["centers"].min(axis=0) for g in groups]
                ),  # (G, d)
                "highs": np.stack([g["centers"].max(axis=0) for g in groups]),
                "max_radii": np.array(
                    [float(g["radii"].max()) for g in groups]
                ),
            }
        self._groups = partitions
        return partitions

    def hit_by_boxes(self, lows: np.ndarray, highs: np.ndarray) -> set[int]:
        """Handle ids whose certificate ball any box ``[lows, highs]``
        touches.

        ``lows``/``highs`` are ``(m, d)`` arrays of mutation MBRs (one
        row per box).  All group summaries of the matching partition
        are swept in one vectorised pass; only groups a box can reach
        pay exact per-handle tests.  Handles registered at a different
        dimensionality than the boxes are returned as hits
        (conservative; re-execution surfaces the mismatch).
        """
        partitions = self._groups if self._groups is not None else self._rebuild()
        if not partitions:
            return set()
        lows = np.atleast_2d(np.asarray(lows, dtype=float))
        highs = np.atleast_2d(np.asarray(highs, dtype=float))
        m, dim = lows.shape
        hit: set[int] = set()
        for part_dim, part in partitions.items():
            groups = part["groups"]
            if part_dim != dim:
                for group in groups:
                    hit.update(group["ids"])
                continue
            n_groups = len(groups)
            self.group_tests += m * n_groups
            # mindist(box, center-bbox) for every (box, group) pair in
            # one (m, G, d) pass — a lower bound on the distance from
            # the box to any member center of that group.
            gap = np.maximum(
                lows[:, None, :] - part["highs"][None, :, :],
                part["lows"][None, :, :] - highs[:, None, :],
            )
            np.maximum(gap, 0.0, out=gap)
            reachable = (
                np.sqrt(np.sum(gap * gap, axis=2)) <= part["max_radii"][None, :]
            ).any(axis=0)  # (G,)
            self.groups_pruned += n_groups - int(reachable.sum())
            for g in np.flatnonzero(reachable):
                group = groups[int(g)]
                centers = group["centers"]  # (s, d)
                self.handle_tests += m * centers.shape[0]
                gap = np.maximum(
                    lows[:, None, :] - centers[None, :, :],
                    centers[None, :, :] - highs[:, None, :],
                )
                np.maximum(gap, 0.0, out=gap)
                mindist = np.sqrt(np.sum(gap * gap, axis=2))  # (m, s)
                members = (mindist <= group["radii"][None, :]).any(axis=0)
                for j in np.flatnonzero(members):
                    hit.add(group["ids"][int(j)])
        return hit

    def stats(self) -> dict:
        """Counter snapshot for ``stats()["continuous"]["index"]``."""
        partitions = (
            self._groups if self._groups is not None else self._rebuild()
        )
        return {
            "handles": len(self._entries),
            "structural": len(self._structural),
            "groups": sum(len(p["groups"]) for p in partitions.values()),
            "group_size": self._group_size,
            "group_tests": self.group_tests,
            "handle_tests": self.handle_tests,
            "groups_pruned": self.groups_pruned,
        }
