"""repro — reproduction of *Probabilistic Verifiers: Evaluating
Constrained Nearest-Neighbor Queries over Uncertain Data* (Cheng, Chen,
Mokbel, Chow — ICDE 2008).

Quickstart::

    from repro import CPNNQuery, CKNNQuery, CRangeQuery, UncertainEngine, UncertainObject

    objects = [
        UncertainObject.uniform("A", 0.0, 4.0),
        UncertainObject.uniform("B", 1.0, 3.0),
        UncertainObject.gaussian("C", 2.0, 6.0),
    ]
    engine = UncertainEngine(objects)

    result = engine.execute(CPNNQuery(q=2.0, threshold=0.3, tolerance=0.01))
    print(result.answers)

    # The same surface serves k-NN and range specs, and whole batches:
    engine.execute(CKNNQuery(q=2.0, threshold=0.5, k=2)).answers
    engine.execute(CRangeQuery(q=2.0, threshold=0.5, radius=1.5)).answers
    engine.execute_batch([CPNNQuery(1.0), CKNNQuery(2.0, k=2)]).answers

See DESIGN.md for the system inventory (spec hierarchy, result shape,
deprecation table) and README.md for the performance architecture and
the reproduction of the paper's evaluation.
"""

from repro.core import (
    BatchResult,
    CKNNEngine,
    CKNNQuery,
    CPNNEngine,
    CPNNQuery,
    CPNNResult,
    CRangeQuery,
    EngineConfig,
    Label,
    QueryPlan,
    QueryResult,
    QuerySpec,
    ShardedEngine,
    Strategy,
    SubregionTable,
    UncertainEngine,
    knn_qualification_probabilities,
)
from repro.uncertainty import (
    DistanceDistribution,
    Histogram,
    UncertainDisk,
    UncertainObject,
    UncertainRectangle,
    UncertainSegment,
)

__version__ = "2.0.0"

__all__ = [
    "BatchResult",
    "CKNNEngine",
    "CKNNQuery",
    "CPNNEngine",
    "CPNNQuery",
    "CPNNResult",
    "CRangeQuery",
    "DistanceDistribution",
    "EngineConfig",
    "Histogram",
    "Label",
    "QueryPlan",
    "QueryResult",
    "QuerySpec",
    "ShardedEngine",
    "Strategy",
    "SubregionTable",
    "UncertainDisk",
    "UncertainEngine",
    "UncertainObject",
    "UncertainRectangle",
    "UncertainSegment",
    "knn_qualification_probabilities",
    "__version__",
]
