"""repro — reproduction of *Probabilistic Verifiers: Evaluating
Constrained Nearest-Neighbor Queries over Uncertain Data* (Cheng, Chen,
Mokbel, Chow — ICDE 2008).

Quickstart::

    from repro import CPNNEngine, CPNNQuery, UncertainObject

    objects = [
        UncertainObject.uniform("A", 0.0, 4.0),
        UncertainObject.uniform("B", 1.0, 3.0),
        UncertainObject.gaussian("C", 2.0, 6.0),
    ]
    engine = CPNNEngine(objects)
    result = engine.query(CPNNQuery(q=2.0, threshold=0.3, tolerance=0.01))
    print(result.answers)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reproduction of every figure and table in the paper's evaluation.
"""

from repro.core import (
    BatchResult,
    CKNNEngine,
    CPNNEngine,
    CPNNQuery,
    CPNNResult,
    EngineConfig,
    Label,
    Strategy,
    SubregionTable,
    knn_qualification_probabilities,
)
from repro.uncertainty import (
    DistanceDistribution,
    Histogram,
    UncertainDisk,
    UncertainObject,
    UncertainRectangle,
    UncertainSegment,
)

__version__ = "1.0.0"

__all__ = [
    "BatchResult",
    "CKNNEngine",
    "CPNNEngine",
    "CPNNQuery",
    "CPNNResult",
    "DistanceDistribution",
    "EngineConfig",
    "Histogram",
    "Label",
    "Strategy",
    "SubregionTable",
    "UncertainDisk",
    "UncertainObject",
    "UncertainRectangle",
    "UncertainSegment",
    "knn_qualification_probabilities",
    "__version__",
]
