"""Figure 13 — effect of the tolerance Δ on verification completeness.

Paper observation to reproduce: "as Δ increases from 0 to 0.2, more
queries are completed [by verification alone].  When Δ = 0.16, about
10 % more queries will be completed than when Δ = 0."

A query is *finished after verification* when the verifier chain
leaves no candidate unknown, so no refinement (integration) is needed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import CPNNQuery
from repro.experiments.report import ExperimentResult, Series
from repro.experiments.workloads import DEFAULT_QUERY_SEED, cached_engine, query_points

__all__ = ["Fig13Params", "run"]


@dataclass
class Fig13Params:
    tolerances: tuple[float, ...] = (0.0, 0.04, 0.08, 0.12, 0.16, 0.20)
    #: The paper does not state Fig. 13's threshold.  At the default
    #: P = 0.3 our verifiers already finish 100% of queries with Δ = 0
    #: (see Fig. 11), leaving nothing for tolerance to improve, so the
    #: driver defaults to P = 0.1 where the Δ effect is measurable.
    threshold: float = 0.1
    n_queries: int = 40
    dataset_size: int = 53_144
    seed: int = DEFAULT_QUERY_SEED


def run(params: Fig13Params | None = None) -> ExperimentResult:
    params = params or Fig13Params()
    engine = cached_engine(params.dataset_size)
    points = query_points(params.n_queries, seed=params.seed)
    result = ExperimentResult(
        experiment_id="fig13",
        title="Effect of tolerance Δ",
        x_label="tolerance Δ",
        y_label="fraction of queries finished after verification",
        params={"n_queries": params.n_queries, "threshold": params.threshold},
    )
    finished = Series("finished_fraction")
    refine_time = Series("refinement_ms")
    for tolerance in params.tolerances:
        flags, r_times = [], []
        for q in points:
            res = engine.execute(
                CPNNQuery(float(q), threshold=params.threshold, tolerance=tolerance),
                strategy="vr",
            )
            flags.append(1.0 if res.finished_after_verification else 0.0)
            r_times.append(res.timings.refinement)
        finished.add(tolerance, float(np.mean(flags)))
        refine_time.add(tolerance, 1e3 * float(np.mean(r_times)))
    result.series = [finished, refine_time]
    result.notes.append(
        "paper shape: completion fraction increases with Δ; Δ=0.16 "
        "completes ≈10% more queries than Δ=0"
    )
    return result
