"""Figure 9 — cost of the Basic method vs filtering as |T| grows.

The paper: "As the total table size |T| increases, the time spent on
the Basic solution increases more than filtering, and so its running
time starts to dominate the filtering time when the data set size is
larger than 5000."

We sweep the surrogate dataset size, answer queries with the Basic
strategy, and report the average filtering and probability-evaluation
times plus Basic's share of the total — the quantity the figure plots.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import CPNNQuery
from repro.experiments.report import ExperimentResult, Series
from repro.experiments.workloads import DEFAULT_QUERY_SEED, cached_engine, query_points

__all__ = ["Fig09Params", "run"]


@dataclass
class Fig09Params:
    sizes: tuple[int, ...] = (1000, 2000, 5000, 10000, 20000, 40000)
    n_queries: int = 10
    seed: int = DEFAULT_QUERY_SEED
    #: Keep interval lengths fixed across sizes so that overlap (and
    #: hence candidate-set size) grows with density, as in real data.
    mean_length: float = 16.0


def run(params: Fig09Params | None = None) -> ExperimentResult:
    params = params or Fig09Params()
    result = ExperimentResult(
        experiment_id="fig9",
        title="Basic vs. Filtering",
        x_label="total set size |T|",
        y_label="avg time per query (ms)",
        params={"n_queries": params.n_queries},
    )
    filtering = Series("filtering_ms")
    basic = Series("basic_ms")
    share = Series("basic_share_%")
    candidates = Series("avg_candidates")
    for n in params.sizes:
        engine = cached_engine(n, mean_length=params.mean_length)
        filter_times, basic_times, cand_sizes = [], [], []
        for q in query_points(params.n_queries, seed=params.seed):
            res = engine.execute(
                CPNNQuery(float(q), threshold=0.3, tolerance=0.0), strategy="basic"
            )
            filter_times.append(res.timings.filtering)
            basic_times.append(res.timings.refinement)
            cand_sizes.append(len(res.records))
        f_ms = 1e3 * float(np.mean(filter_times))
        b_ms = 1e3 * float(np.mean(basic_times))
        filtering.add(n, f_ms)
        basic.add(n, b_ms)
        share.add(n, 100.0 * b_ms / (f_ms + b_ms))
        candidates.add(n, float(np.mean(cand_sizes)))
    result.series = [filtering, basic, share, candidates]
    result.notes.append(
        "paper shape: Basic grows faster than filtering and dominates "
        "total time beyond |T| ≈ 5000"
    )
    return result
