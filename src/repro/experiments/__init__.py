"""Experiment drivers reproducing every figure and table of Section V.

Each module exposes a ``Params`` dataclass (scaled-down defaults so the
full suite runs on a laptop in minutes; raise ``n_queries`` / sizes to
approach the paper's exact setup) and a ``run(params) -> ExperimentResult``
function that returns the same series the paper plots.

Run from the command line::

    python -m repro.experiments fig10
    python -m repro.experiments all --queries 20

Index (see DESIGN.md §9 for the full mapping):

=========  ====================================================
fig9       Basic vs Filtering time as table size grows
fig10      Query time vs threshold P for Basic / Refine / VR
fig11      VR phase breakdown (filter / verify / refine) vs P
fig12      Unknown fraction after RS / L-SR / U-SR vs P
fig13      Queries finished after verification vs tolerance Δ
fig14      Gaussian-pdf workload: time vs P (log scale)
table3     Verifier cost scaling vs |C| and M (Table III)
=========  ====================================================
"""

from repro.experiments.report import ExperimentResult, Series

__all__ = ["ExperimentResult", "Series"]
