"""Command-line entry point: regenerate any figure/table of the paper.

Examples::

    python -m repro.experiments fig10
    python -m repro.experiments fig12 --queries 50
    python -m repro.experiments all --out results.txt
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time

from repro.experiments import fig09_basic_vs_filtering as fig09
from repro.experiments import fig10_time_vs_threshold as fig10
from repro.experiments import fig11_vr_breakdown as fig11
from repro.experiments import fig12_verifier_comparison as fig12
from repro.experiments import fig13_tolerance as fig13
from repro.experiments import fig14_gaussian as fig14
from repro.experiments import table3_verifier_costs as table3

__all__ = ["main"]

_EXPERIMENTS = {
    "fig9": (fig09.run, fig09.Fig09Params),
    "fig10": (fig10.run, fig10.Fig10Params),
    "fig11": (fig11.run, fig11.Fig11Params),
    "fig12": (fig12.run, fig12.Fig12Params),
    "fig13": (fig13.run, fig13.Fig13Params),
    "fig14": (fig14.run, fig14.Fig14Params),
    "table3": (table3.run, table3.Table3Params),
}


def _with_overrides(params_cls, args: argparse.Namespace):
    params = params_cls()
    if args.queries is not None and hasattr(params, "n_queries"):
        params = dataclasses.replace(params, n_queries=args.queries)
    if args.size is not None and hasattr(params, "dataset_size"):
        params = dataclasses.replace(params, dataset_size=args.size)
    if args.bars is not None and hasattr(params, "bars"):
        params = dataclasses.replace(params, bars=args.bars)
    return params


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the figures/tables of the C-PNN paper (ICDE 2008).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + ["all"],
        help="which figure/table to regenerate",
    )
    parser.add_argument("--queries", type=int, default=None, help="queries per point")
    parser.add_argument("--size", type=int, default=None, help="dataset size |T|")
    parser.add_argument("--bars", type=int, default=None, help="Gaussian histogram bars")
    parser.add_argument("--out", type=str, default=None, help="also write to this file")
    args = parser.parse_args(argv)

    names = sorted(_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    chunks = []
    for name in names:
        runner, params_cls = _EXPERIMENTS[name]
        tick = time.perf_counter()
        result = runner(_with_overrides(params_cls, args))
        elapsed = time.perf_counter() - tick
        text = result.to_text() + f"\n(driver wall-clock: {elapsed:.1f}s)\n"
        print(text)
        chunks.append(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write("\n".join(chunks))
    return 0


if __name__ == "__main__":
    sys.exit(main())
