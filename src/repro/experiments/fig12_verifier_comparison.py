"""Figure 12 — fraction of objects still *unknown* after each verifier
in the chain {RS, L-SR, U-SR}, across thresholds.

Paper observations to reproduce:

* at P = 0.1 roughly 75 % of objects remain unknown after RS; L-SR
  removes ≈ 7 % more; ≈ 15 % remain after U-SR;
* RS and U-SR (upper-bound verifiers) get stronger as P grows: more
  objects can be failed outright;
* L-SR (the lower-bound verifier) helps mostly at small P, where
  objects can be proven to satisfy;
* U-SR outperforms L-SR on this workload because candidate sets are
  large (≈ 96), so individual probabilities are small and failing
  objects is easier than satisfying them.

When the chain terminates early the remaining verifiers never run; the
unknown fraction is then carried forward (it is 0 by definition).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import CPNNQuery
from repro.experiments.report import ExperimentResult, Series
from repro.experiments.workloads import DEFAULT_QUERY_SEED, cached_engine, query_points

__all__ = ["Fig12Params", "run"]

_VERIFIER_ORDER = ("RS", "L-SR", "U-SR")


@dataclass
class Fig12Params:
    thresholds: tuple[float, ...] = (0.10, 0.15, 0.20, 0.25, 0.30, 0.35)
    tolerance: float = 0.01
    n_queries: int = 20
    dataset_size: int = 53_144
    seed: int = DEFAULT_QUERY_SEED


def run(params: Fig12Params | None = None) -> ExperimentResult:
    params = params or Fig12Params()
    engine = cached_engine(params.dataset_size)
    points = query_points(params.n_queries, seed=params.seed)
    result = ExperimentResult(
        experiment_id="fig12",
        title="Comparison of verifiers (unknown fraction)",
        x_label="threshold P",
        y_label="fraction of candidates labelled unknown",
        params={"n_queries": params.n_queries, "tolerance": params.tolerance},
    )
    series = {name: Series(f"after_{name}") for name in _VERIFIER_ORDER}
    for threshold in params.thresholds:
        sums = {name: [] for name in _VERIFIER_ORDER}
        for q in points:
            res = engine.execute(
                CPNNQuery(float(q), threshold=threshold, tolerance=params.tolerance),
                strategy="vr",
            )
            last = 1.0
            for name in _VERIFIER_ORDER:
                last = res.unknown_after_verifier.get(name, 0.0 if last == 0.0 else last)
                sums[name].append(last)
        for name in _VERIFIER_ORDER:
            series[name].add(threshold, float(np.mean(sums[name])))
    result.series = list(series.values())
    result.notes.append(
        "paper shape at P=0.1: ~0.75 after RS, L-SR removes ~0.07 more, "
        "~0.15 left after U-SR; all curves fall as P grows"
    )
    return result
