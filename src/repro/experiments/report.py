"""Result containers and plain-text table rendering.

The harness reports the same rows/series a figure plots; rendering is
deliberately dependency-free (aligned text tables) so results can be
diffed and committed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["ExperimentResult", "Series", "format_table"]


@dataclass
class Series:
    """One plotted line: a name plus aligned x/y values."""

    name: str
    xs: list[float] = field(default_factory=list)
    ys: list[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.xs.append(float(x))
        self.ys.append(float(y))


@dataclass
class ExperimentResult:
    """Everything an experiment driver reports."""

    experiment_id: str
    title: str
    x_label: str
    y_label: str
    series: list[Series] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    params: dict = field(default_factory=dict)

    def series_by_name(self, name: str) -> Series:
        for s in self.series:
            if s.name == name:
                return s
        raise KeyError(name)

    def to_text(self) -> str:
        """Render as the rows/series the paper's figure shows."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        if self.params:
            rendered = ", ".join(f"{k}={v}" for k, v in self.params.items())
            lines.append(f"params: {rendered}")
        if self.series:
            xs = self.series[0].xs
            headers = [self.x_label] + [s.name for s in self.series]
            rows = []
            for idx, x in enumerate(xs):
                row = [_fmt(x)]
                for s in self.series:
                    row.append(_fmt(s.ys[idx]) if idx < len(s.ys) else "-")
                rows.append(row)
            lines.append(format_table(headers, rows))
            lines.append(f"(y: {self.y_label})")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    if abs(value) >= 100 or (abs(value) < 0.001 and value != 0):
        return f"{value:.4g}"
    return f"{value:.4f}"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Align columns of a text table."""
    columns = [list(col) for col in zip(headers, *rows)]
    widths = [max(len(cell) for cell in col) for col in columns]
    def render(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))
    lines = [render(headers), render(["-" * w for w in widths])]
    lines.extend(render(row) for row in rows)
    return "\n".join(lines)
