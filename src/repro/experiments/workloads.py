"""Shared experiment workloads: cached engines and dynamic streams.

Two workload shapes feed the experiments and benchmarks:

* the *static* Long Beach surrogate behind :func:`cached_engine`
  (building 53,144 objects plus a bulk-loaded R-tree takes a couple of
  seconds; every figure reuses the same workload, so engines are cached
  per configuration within the process);
* the *streaming* moving-objects scenario behind
  :class:`StreamingWorkload` — the dead-reckoning setting of Section I,
  where objects churn continuously and the same monitoring points are
  probed tick after tick.  The stream is deterministic and memoised so
  the identical update/query sequence can drive both an incrementally
  maintained engine and a full-rebuild replica
  (``benchmarks/test_dynamic_updates.py`` asserts they answer
  bit-identically and gates the steady-state speedup).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Hashable, Iterator, Sequence

import numpy as np

from repro.continuous import ContinuousMonitor, TickReport
from repro.core.batch import BatchResult
from repro.core.engine import EngineConfig, ShardedEngine, UncertainEngine
from repro.core.types import CPNNQuery, QuerySpec
from repro.datasets.longbeach import LONG_BEACH_DOMAIN, long_beach_surrogate
from repro.datasets.queries import random_query_points
from repro.uncertainty.objects import UncertainObject

__all__ = [
    "DEFAULT_QUERY_SEED",
    "StreamingTick",
    "StreamingWorkload",
    "cached_engine",
    "query_points",
]

DEFAULT_QUERY_SEED = 12345


@lru_cache(maxsize=8)
def cached_engine(
    n: int,
    pdf: str = "uniform",
    bars: int = 300,
    mean_length: float | None = None,
    representation: str = "parametric",
) -> UncertainEngine:
    """An engine over the Long Beach surrogate (memoised).

    ``representation`` picks how Gaussian objects are built (ignored
    for uniform pdfs): ``'parametric'`` (default) enables the engine's
    analytic fast path, ``'histogram'`` replays the paper-faithful
    eager 300-bar construction.
    """
    kwargs = {} if mean_length is None else {"mean_length": mean_length}
    objects = long_beach_surrogate(
        n=n, pdf=pdf, bars=bars, representation=representation, **kwargs
    )
    return UncertainEngine(objects, EngineConfig())


def query_points(n_queries: int, seed: int = DEFAULT_QUERY_SEED) -> np.ndarray:
    """Deterministic random query points over the surrogate domain."""
    rng = np.random.default_rng(seed)
    return random_query_points(n_queries, domain=LONG_BEACH_DOMAIN, rng=rng)


# ----------------------------------------------------------------------
# Streaming moving-objects workload (dead-reckoning churn)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class StreamingTick:
    """One step of a :class:`StreamingWorkload` stream.

    Attributes
    ----------
    index:
        0-based tick number.
    replacements:
        ``(key, new_object)`` pairs — the dead-reckoning reports of
        this tick.  Applying one means ``engine.remove(key)`` followed
        by ``engine.insert(new_object)`` (the new object reuses the
        key, so the order matters under duplicate-key rejection).
    specs:
        The query specs to answer after the updates are applied.  The
        monitoring points are fixed across ticks — the repeated-probe
        shape the engine's caches are built for.
    """

    index: int
    replacements: tuple[tuple[Hashable, UncertainObject], ...]
    specs: tuple[QuerySpec, ...]


class StreamingWorkload:
    """A deterministic moving-objects stream: churn ticks + query ticks.

    Models Section I's location-based-service setting under the
    dead-reckoning update policy: every tick all objects drift, a
    ``churn`` fraction of them report in (their uncertainty region is
    replaced by a fresh interval centred on the reported position), and
    a fixed set of monitoring specs is answered.

    The entire stream — initial objects, per-tick reports, specs — is
    generated from one seed and memoised, so calling :meth:`tick`
    twice, or driving two different engines with :meth:`apply` /
    :meth:`drive`, replays the *same* update objects.  That is what
    makes the full-rebuild-replica comparison in
    ``benchmarks/test_dynamic_updates.py`` a bit-identity check rather
    than an approximate one.

    Parameters
    ----------
    n_objects:
        Moving objects in the stream.
    churn:
        Fraction of objects replaced per tick (``0 <= churn <= 1``).
    n_queries:
        Fixed monitoring points probed every tick.
    halfwidth:
        Dead-reckoning report threshold: an object's uncertainty
        region is ``reported position ± halfwidth``.
    drift_sigma:
        Per-tick Gaussian drift of the true positions.
    threshold / tolerance:
        Constraint pair of the default C-PNN specs.
    spec_factory:
        Optional ``point -> QuerySpec`` hook replacing the default
        C-PNN spec per monitoring point (e.g. to stream k-NN or range
        specs instead).
    seed:
        Deterministic stream seed.
    """

    def __init__(
        self,
        n_objects: int = 2_000,
        churn: float = 0.10,
        n_queries: int = 24,
        *,
        domain: tuple[float, float] = LONG_BEACH_DOMAIN,
        halfwidth: float = 2.0,
        drift_sigma: float = 5.0,
        threshold: float = 0.3,
        tolerance: float = 0.0,
        spec_factory: Callable[[float], QuerySpec] | None = None,
        seed: int = 20080407,
    ) -> None:
        if n_objects < 1:
            raise ValueError("n_objects must be positive")
        if not 0.0 <= churn <= 1.0:
            raise ValueError("churn must lie in [0, 1]")
        self._domain = (float(domain[0]), float(domain[1]))
        self._halfwidth = float(halfwidth)
        self._drift_sigma = float(drift_sigma)
        self._rng = np.random.default_rng(seed)
        self._positions = self._rng.uniform(*self._domain, size=n_objects)
        self._reports_per_tick = int(round(churn * n_objects))
        points = self._rng.uniform(*self._domain, size=n_queries)
        if spec_factory is None:
            spec_factory = lambda q: CPNNQuery(  # noqa: E731
                q, threshold=threshold, tolerance=tolerance
            )
        self._specs = tuple(spec_factory(float(q)) for q in points)
        self._initial = tuple(
            self._region(i, self._positions[i]) for i in range(n_objects)
        )
        self._ticks: list[StreamingTick] = []

    def _region(self, i: int, reported: float) -> UncertainObject:
        """The database's view of object ``i``: report ± halfwidth."""
        obj = UncertainObject.uniform(
            ("mob", i), float(reported) - self._halfwidth,
            float(reported) + self._halfwidth,
        )
        obj.mbr  # warm the cached MBR at generation time, outside any  # noqa: B018
        # engine's measured path, so timed comparisons are symmetric
        return obj

    # ------------------------------------------------------------------

    @property
    def specs(self) -> tuple[QuerySpec, ...]:
        """The per-tick monitoring specs (fixed across ticks)."""
        return self._specs

    @property
    def n_objects(self) -> int:
        return len(self._initial)

    @property
    def reports_per_tick(self) -> int:
        return self._reports_per_tick

    def initial_objects(self) -> list[UncertainObject]:
        """The tick-0 object set (fresh list, same memoised objects)."""
        return list(self._initial)

    def make_engine(self, config: EngineConfig | None = None) -> UncertainEngine:
        """A fresh engine over the initial object set."""
        return UncertainEngine(self.initial_objects(), config)

    def make_sharded_engine(
        self,
        config: EngineConfig | None = None,
        *,
        n_shards: int | None = None,
        max_workers: int | None = None,
        rebalance_threshold: float = 4.0,
        executor: str | None = None,
    ) -> ShardedEngine:
        """The sharded streaming scenario: a
        :class:`~repro.core.engine.ShardedEngine` over the same initial
        object set, so the identical memoised stream can drive the
        sharded and single engines side by side.  Because the stream's
        ``replace`` churn moves objects between spatial tiles,
        :meth:`apply`/:meth:`drive` against this engine also exercise
        shard migration and the rebalance policy — while
        ``benchmarks/test_sharded_parallel.py`` asserts every tick's
        batch is bit-identical to the single engine's (DESIGN.md §12).
        """
        return ShardedEngine(
            self.initial_objects(),
            config,
            n_shards=n_shards,
            max_workers=max_workers,
            rebalance_threshold=rebalance_threshold,
            executor=executor,
        )

    def tick(self, index: int) -> StreamingTick:
        """The ``index``-th tick, generated on first demand and memoised."""
        while len(self._ticks) <= index:
            i = len(self._ticks)
            n = len(self._positions)
            self._positions = np.clip(
                self._positions
                + self._rng.normal(0.0, self._drift_sigma, size=n),
                *self._domain,
            )
            reporters = self._rng.choice(
                n, size=self._reports_per_tick, replace=False
            )
            replacements = tuple(
                (("mob", int(j)), self._region(int(j), self._positions[j]))
                for j in reporters
            )
            self._ticks.append(
                StreamingTick(index=i, replacements=replacements, specs=self._specs)
            )
        return self._ticks[index]

    def ticks(self, n: int, start: int = 0) -> Iterator[StreamingTick]:
        """Ticks ``start .. start + n`` in order (memoised)."""
        for i in range(start, start + n):
            yield self.tick(i)

    # ------------------------------------------------------------------

    @staticmethod
    def apply(engine: UncertainEngine, tick: StreamingTick) -> None:
        """Apply one tick's dead-reckoning reports to ``engine``.

        Uses :meth:`UncertainEngine.replace` — the in-place update
        primitive the streaming setting is built around (each report
        keeps the object's position in the engine's order, so the
        comparison replica below can mirror it with a list
        assignment).
        """
        for key, obj in tick.replacements:
            engine.replace(key, obj)

    def drive(
        self,
        engine: UncertainEngine,
        n_ticks: int,
        start: int = 0,
        specs: Sequence[QuerySpec] | None = None,
        *,
        continuous: bool = False,
        on_tick: Callable[[TickReport], None] | None = None,
    ) -> list[BatchResult] | list[TickReport]:
        """Run ``n_ticks`` ticks against ``engine``: updates, then the
        monitoring step.

        In the default (batch) mode every tick re-submits the full
        monitoring batch and the return value is one
        :class:`BatchResult` per tick.  With ``continuous=True`` the
        specs are registered once on a
        :class:`~repro.continuous.ContinuousMonitor` (reusing a monitor
        already attached to the engine, else creating one), each tick's
        dead-reckoning reports flow through :meth:`ContinuousMonitor.replace`
        so their MBRs certify the safe regions, and the monitoring step
        is one :meth:`ContinuousMonitor.tick` — only invalidated
        handles re-enter the pipeline.  The return value is then one
        :class:`~repro.continuous.TickReport` per tick (counts plus the
        handle ids re-executed vs replayed; fresh snapshots only for
        what actually ran).  ``on_tick``, when given, observes each
        report as it is produced — the streaming side-channel.
        """
        spec_list = list(self._specs if specs is None else specs)
        if not continuous:
            if on_tick is not None:
                raise ValueError("on_tick requires continuous=True")
            results: list[BatchResult] = []
            for tick in self.ticks(n_ticks, start=start):
                self.apply(engine, tick)
                results.append(engine.execute_batch(spec_list))
            return results
        monitor = getattr(engine, "_continuous", None)
        if not isinstance(monitor, ContinuousMonitor):
            monitor = ContinuousMonitor(engine)
        if not len(monitor):
            monitor.register_many(spec_list)
        reports: list[TickReport] = []
        for tick in self.ticks(n_ticks, start=start):
            for key, obj in tick.replacements:
                monitor.replace(key, obj)
            report = monitor.tick()
            if on_tick is not None:
                on_tick(report)
            reports.append(report)
        return reports
