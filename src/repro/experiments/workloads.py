"""Shared experiment setup: cached engines over the surrogate workload.

Building 53,144 objects plus a bulk-loaded R-tree takes a couple of
seconds; every figure reuses the same workload, so engines are cached
per (size, pdf family, bars, mean length) within the process.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.core.engine import EngineConfig, UncertainEngine
from repro.datasets.longbeach import LONG_BEACH_DOMAIN, long_beach_surrogate
from repro.datasets.queries import random_query_points

__all__ = ["cached_engine", "query_points", "DEFAULT_QUERY_SEED"]

DEFAULT_QUERY_SEED = 12345


@lru_cache(maxsize=8)
def cached_engine(
    n: int,
    pdf: str = "uniform",
    bars: int = 300,
    mean_length: float | None = None,
) -> UncertainEngine:
    """An engine over the Long Beach surrogate (memoised)."""
    kwargs = {} if mean_length is None else {"mean_length": mean_length}
    objects = long_beach_surrogate(n=n, pdf=pdf, bars=bars, **kwargs)
    return UncertainEngine(objects, EngineConfig())


def query_points(n_queries: int, seed: int = DEFAULT_QUERY_SEED) -> np.ndarray:
    """Deterministic random query points over the surrogate domain."""
    rng = np.random.default_rng(seed)
    return random_query_points(n_queries, domain=LONG_BEACH_DOMAIN, rng=rng)
