"""Figure 11 — decomposition of VR's time into filtering,
verification and refinement, across thresholds.

Paper observations to reproduce:

* filtering time is flat in P;
* verification is cheap ("only 1 ms on average");
* refinement time falls as P grows and vanishes for P > 0.3 —
  verifiers settle everything at high thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import CPNNQuery
from repro.experiments.report import ExperimentResult, Series
from repro.experiments.workloads import DEFAULT_QUERY_SEED, cached_engine, query_points

__all__ = ["Fig11Params", "run"]


@dataclass
class Fig11Params:
    #: The paper's x-axis runs 0..1; P must be positive so 0 → 0.01.
    thresholds: tuple[float, ...] = (0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0)
    tolerance: float = 0.01
    n_queries: int = 20
    dataset_size: int = 53_144
    seed: int = DEFAULT_QUERY_SEED


def run(params: Fig11Params | None = None) -> ExperimentResult:
    params = params or Fig11Params()
    engine = cached_engine(params.dataset_size)
    points = query_points(params.n_queries, seed=params.seed)
    result = ExperimentResult(
        experiment_id="fig11",
        title="Analysis of VR (phase breakdown)",
        x_label="threshold P",
        y_label="avg time per query (ms)",
        params={"n_queries": params.n_queries, "tolerance": params.tolerance},
    )
    filtering = Series("filtering_ms")
    verification = Series("verification_ms")
    refinement = Series("refinement_ms")
    refined_objects = Series("avg_refined_objects")
    for threshold in params.thresholds:
        f, v, r, n_ref = [], [], [], []
        for q in points:
            res = engine.execute(
                CPNNQuery(float(q), threshold=threshold, tolerance=params.tolerance),
                strategy="vr",
            )
            f.append(res.timings.filtering)
            # The paper's three-phase accounting charges initialisation
            # (distance pdfs/cdfs + subregion table) to verification.
            v.append(res.timings.initialization + res.timings.verification)
            r.append(res.timings.refinement)
            n_ref.append(res.refined_objects)
        filtering.add(threshold, 1e3 * float(np.mean(f)))
        verification.add(threshold, 1e3 * float(np.mean(v)))
        refinement.add(threshold, 1e3 * float(np.mean(r)))
        refined_objects.add(threshold, float(np.mean(n_ref)))
    result.series = [filtering, verification, refinement, refined_objects]
    result.notes.append(
        "paper shape: filtering flat, verification ~1 ms, refinement "
        "decreasing in P and ≈0 for P > 0.3"
    )
    return result
