"""Figure 14 — the Gaussian-pdf workload: time vs P (log scale).

Each object's pdf is a truncated Gaussian "approximated by a 300-bar
histogram, [with] a mean at the center of its range, and a standard
deviation of 1/6 of the width of the uncertainty region".

Paper observations to reproduce:

* VR outperforms Basic and Refine at every threshold;
* the saving is *larger* than with uniform pdfs, because exact
  probability evaluation over 300-bar histograms is expensive while
  verification cost barely changes;
* at P = 1 both Refine and VR collapse to almost zero cost (at most
  one candidate can have probability 1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import CPNNQuery
from repro.experiments.report import ExperimentResult, Series
from repro.experiments.workloads import DEFAULT_QUERY_SEED, cached_engine, query_points

__all__ = ["Fig14Params", "run"]


@dataclass
class Fig14Params:
    thresholds: tuple[float, ...] = (0.1, 0.3, 0.5, 0.7, 0.9, 1.0)
    tolerance: float = 0.01
    n_queries: int = 5
    dataset_size: int = 53_144
    #: Histogram bars per Gaussian; the paper uses 300.
    bars: int = 300
    #: ``'parametric'`` (default) builds closed-form Gaussian objects —
    #: VR runs on the analytic fast path with zero histogram
    #: constructions; ``'histogram'`` replays the paper-faithful eager
    #: 300-bar build (DESIGN.md §15).
    representation: str = "parametric"
    seed: int = DEFAULT_QUERY_SEED


def run(params: Fig14Params | None = None) -> ExperimentResult:
    params = params or Fig14Params()
    engine = cached_engine(
        params.dataset_size,
        pdf="gaussian",
        bars=params.bars,
        representation=params.representation,
    )
    points = query_points(params.n_queries, seed=params.seed)
    result = ExperimentResult(
        experiment_id="fig14",
        title="Gaussian pdf: time vs. P",
        x_label="threshold P",
        y_label="avg time per query (ms, log scale in the paper)",
        params={
            "n_queries": params.n_queries,
            "bars": params.bars,
            "tolerance": params.tolerance,
            "representation": params.representation,
        },
    )
    series = {name: Series(f"{name}_ms") for name in ("basic", "refine", "vr")}
    for threshold in params.thresholds:
        for name in ("basic", "refine", "vr"):
            times = []
            for q in points:
                res = engine.execute(
                    CPNNQuery(
                        float(q), threshold=threshold, tolerance=params.tolerance
                    ),
                    strategy=name,
                )
                times.append(res.timings.total)
            series[name].add(threshold, 1e3 * float(np.mean(times)))
    result.series = list(series.values())
    vr = result.series_by_name("vr_ms")
    basic = result.series_by_name("basic_ms")
    speedups = [b / v for b, v in zip(basic.ys, vr.ys) if v > 0]
    if speedups:
        result.notes.append(
            f"VR speed-up over Basic: min {min(speedups):.1f}x, "
            f"max {max(speedups):.1f}x (paper: larger than the uniform case)"
        )
    return result
