"""Figure 10 — query response time vs threshold P for the three
evaluation strategies (Basic, Refine, VR) on the uniform-pdf workload.

Paper observations to reproduce:

* both Refine and VR beat Basic at every threshold;
* at P = 0.3, Refine ≈ 80 % and VR ≈ 16 % of Basic's cost;
* VR is consistently faster than Refine — ≈ 5× at P = 0.3 and up to
  ≈ 40× at P = 0.7 (most objects fail quickly via upper bounds).

Strategy times are end-to-end (filtering + initialisation +
verification + refinement), matching the paper's total response time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import CPNNQuery
from repro.experiments.report import ExperimentResult, Series
from repro.experiments.workloads import DEFAULT_QUERY_SEED, cached_engine, query_points

__all__ = ["Fig10Params", "run"]


@dataclass
class Fig10Params:
    thresholds: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)
    tolerance: float = 0.01
    n_queries: int = 20
    dataset_size: int = 53_144
    seed: int = DEFAULT_QUERY_SEED


def run(params: Fig10Params | None = None) -> ExperimentResult:
    params = params or Fig10Params()
    engine = cached_engine(params.dataset_size)
    points = query_points(params.n_queries, seed=params.seed)
    result = ExperimentResult(
        experiment_id="fig10",
        title="Time vs. P (uniform pdf)",
        x_label="threshold P",
        y_label="avg time per query (ms)",
        params={
            "n_queries": params.n_queries,
            "tolerance": params.tolerance,
            "|T|": params.dataset_size,
        },
    )
    series = {name: Series(f"{name}_ms") for name in ("basic", "refine", "vr")}
    for threshold in params.thresholds:
        for name in ("basic", "refine", "vr"):
            times = []
            for q in points:
                res = engine.execute(
                    CPNNQuery(
                        float(q), threshold=threshold, tolerance=params.tolerance
                    ),
                    strategy=name,
                )
                times.append(res.timings.total)
            series[name].add(threshold, 1e3 * float(np.mean(times)))
    result.series = list(series.values())
    basic = result.series_by_name("basic_ms")
    vr = result.series_by_name("vr_ms")
    refine = result.series_by_name("refine_ms")
    idx03 = params.thresholds.index(0.3) if 0.3 in params.thresholds else None
    if idx03 is not None and basic.ys[idx03] > 0:
        result.notes.append(
            f"at P=0.3: VR/Basic = {vr.ys[idx03] / basic.ys[idx03]:.2f}, "
            f"Refine/Basic = {refine.ys[idx03] / basic.ys[idx03]:.2f} "
            "(paper: 0.16 and 0.80)"
        )
    return result
