"""Table III — empirical verifier cost scaling.

The paper's cost model:

=========  =============  ===========
Algorithm  Bound          Cost
=========  =============  ===========
RS         upper          O(|C|)
L-SR       lower          O(|C|·M)
U-SR       upper          O(|C|·M)
exact      —              O(|C|²·M)
=========  =============  ===========

We construct candidate sets of controlled size (every interval stabs
the query point, so |C| = n and M grows linearly with |C|), time each
verifier and the exact evaluation, and report per-size times plus the
empirical growth factor per doubling of |C| (≈2 for linear-in-C
stages, ≈4 for the inner-verifier product stage where M itself doubles
too, ≈8 for exact evaluation).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.refinement import Refiner
from repro.core.subregions import SubregionTable
from repro.core.verifiers import (
    LowerSubregionVerifier,
    RightmostSubregionVerifier,
    UpperSubregionVerifier,
)
from repro.experiments.report import ExperimentResult, Series
from repro.uncertainty.objects import UncertainObject

__all__ = ["Table3Params", "run", "build_candidate_table"]


@dataclass
class Table3Params:
    sizes: tuple[int, ...] = (16, 32, 64, 128, 256)
    repeats: int = 5
    seed: int = 7


def build_candidate_table(size: int, rng: np.random.Generator) -> SubregionTable:
    """A candidate set of exactly ``size`` objects, all stabbing q=0.

    Every interval reaches just past ``f_min`` on one side and folds at
    a distinct distance on the other, so each object contributes one
    end-point below ``f_min`` and ``M`` grows linearly with ``|C|`` —
    the regime Table III's O(|C|·M) terms describe.
    """
    objects = []
    for i in range(size):
        fold = float(rng.uniform(0.1, 9.0))
        reach = float(rng.uniform(10.0, 20.0))
        if rng.random() < 0.5:
            objects.append(UncertainObject.uniform(i, -fold, reach))
        else:
            objects.append(UncertainObject.uniform(i, -reach, fold))
    distributions = [obj.distance_distribution(0.0) for obj in objects]
    return SubregionTable(distributions)


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        tick = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - tick)
    return best


def run(params: Table3Params | None = None) -> ExperimentResult:
    params = params or Table3Params()
    rng = np.random.default_rng(params.seed)
    result = ExperimentResult(
        experiment_id="table3",
        title="Complexity of verifiers (empirical)",
        x_label="|C|",
        y_label="best-of runtime (ms)",
        params={"repeats": params.repeats},
    )
    m_series = Series("M")
    rs_series = Series("RS_ms")
    lsr_series = Series("L-SR_ms")
    usr_series = Series("U-SR_ms")
    exact_series = Series("exact_ms")
    rs, lsr, usr = (
        RightmostSubregionVerifier(),
        LowerSubregionVerifier(),
        UpperSubregionVerifier(),
    )
    for size in params.sizes:
        tables = [build_candidate_table(size, rng) for _ in range(params.repeats)]
        m_series.add(size, float(np.mean([t.n_subregions for t in tables])))

        def time_verifier(verifier) -> float:
            best = float("inf")
            for table in tables:
                fresh = SubregionTable(table.distributions)
                tick = time.perf_counter()
                verifier.compute(fresh)
                best = min(best, time.perf_counter() - tick)
            return best

        rs_series.add(size, 1e3 * time_verifier(rs))
        lsr_series.add(size, 1e3 * time_verifier(lsr))
        usr_series.add(size, 1e3 * time_verifier(usr))
        exact_best = float("inf")
        for table in tables:
            refiner = Refiner(table)
            tick = time.perf_counter()
            refiner.exact_all()
            exact_best = min(exact_best, time.perf_counter() - tick)
        exact_series.add(size, 1e3 * exact_best)
    result.series = [m_series, rs_series, lsr_series, usr_series, exact_series]
    for series, label in (
        (lsr_series, "L-SR"),
        (usr_series, "U-SR"),
        (exact_series, "exact"),
    ):
        if len(series.ys) >= 2 and series.ys[0] > 0:
            factor = (series.ys[-1] / series.ys[0]) ** (
                1.0 / (len(series.ys) - 1)
            )
            result.notes.append(
                f"{label}: avg growth factor per |C| doubling ≈ {factor:.1f}"
            )
    result.notes.append(
        "expected: RS ≈ flat/linear, L-SR & U-SR ≈ ×4 per doubling "
        "(C and M both double), exact ≈ ×8 (extra factor of C)"
    )
    return result
