"""Typed service failures: every rejection names its policy.

The service never answers with a partially-wrong result — failure is
always one of these exceptions (or an explicitly ``approximate``-marked
reply under the ε-early-answer policy).  Callers branch on the type:
``QueueFull`` means back off and resubmit, ``DeadlineExceeded`` means
the budget was too small, ``RequestFailed`` wraps an engine error that
survived the retry policy, ``ServiceClosed`` means stop submitting.
"""

from __future__ import annotations

__all__ = [
    "DeadlineExceeded",
    "QueueFull",
    "RequestFailed",
    "ServiceClosed",
    "ServiceError",
]


class ServiceError(Exception):
    """Base of every service-level failure."""


class ServiceClosed(ServiceError):
    """The service is shut down (or shutting down); submissions are
    no longer accepted.  In-flight requests at close time still
    complete."""


class QueueFull(ServiceError):
    """Admission control shed this request: the bounded queue was at
    capacity.  Carries the observed ``depth`` and the configured
    ``limit`` so callers can log the pressure they hit."""

    def __init__(self, depth: int, limit: int) -> None:
        super().__init__(
            f"admission queue full ({depth}/{limit}): request shed"
        )
        self.depth = depth
        self.limit = limit


class DeadlineExceeded(ServiceError, TimeoutError):
    """The request's deadline expired before an exact answer was ready
    and no ε-early answer was allowed (``epsilon == 0``)."""


class RequestFailed(ServiceError):
    """The engine kept failing past the retry policy.  ``cause`` is the
    last underlying exception; ``attempts`` how many times the request
    was tried."""

    def __init__(self, cause: BaseException, attempts: int) -> None:
        super().__init__(
            f"request failed after {attempts} attempt(s): {cause!r}"
        )
        self.cause = cause
        self.attempts = attempts
