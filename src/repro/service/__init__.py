"""repro.service — serve the engine under failure (DESIGN.md §14).

An asyncio front end over one engine: micro-batch coalescing, mutation
barriers, bounded admission, per-request deadlines with executor-level
cancellation, retry-with-backoff, and opt-in ε-early answers — plus a
deterministic fault-injection harness (:mod:`repro.service.faults`)
that scripts worker kills, delays, and shared-memory failures at exact
hook occurrences.

Quickstart::

    import asyncio
    from repro import ShardedEngine
    from repro.service import QueryService, ServiceConfig

    async def main():
        engine = ShardedEngine(objects, executor="process")
        async with QueryService(engine, ServiceConfig()) as service:
            reply = await service.submit(CPNNQuery(2.0), deadline_s=0.05)
            print(reply.result.answers, reply.coalesced)

    asyncio.run(main())
"""

from repro.service.config import ServiceConfig
from repro.service.coalescer import Coalescer, Request
from repro.service.errors import (
    DeadlineExceeded,
    QueueFull,
    RequestFailed,
    ServiceClosed,
    ServiceError,
)
from repro.service.faults import FaultPlan
from repro.service.service import QueryService, ServiceReply, Subscription

__all__ = [
    "Coalescer",
    "DeadlineExceeded",
    "FaultPlan",
    "QueryService",
    "QueueFull",
    "Request",
    "RequestFailed",
    "ServiceClosed",
    "ServiceConfig",
    "ServiceError",
    "ServiceReply",
    "Subscription",
]
