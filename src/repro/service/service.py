"""The async query service: coalescing, deadlines, retries, ε-early.

:class:`QueryService` wraps one engine (single or sharded) behind an
asyncio front end (DESIGN.md §14):

* **Coalescing** — single-query submissions gather into micro-batches
  on a short window, so the engine's batch amortisation (vectorised
  sweeps, shared subregion tables, parallel lanes) serves ad-hoc
  traffic, not just callers who already hold a batch.
* **Mutation barriers** — inserts/removes/replaces run alone, in
  arrival order, through the engine's incremental-maintenance path;
  a query submitted after a mutation always sees its effect.
* **Admission control** — a bounded queue sheds load with typed
  :class:`~repro.service.errors.QueueFull` instead of letting the
  backlog (and every deadline behind it) grow without bound.
* **Deadlines** — each request carries a budget; engine work runs
  inside ``engine.deadline(...)`` so expiry propagates into the
  executor substrate as true cancellation (the process backend
  terminates in-flight workers).
* **Retries** — a failed engine dispatch is retried with exponential
  backoff; persistent failure surfaces as
  :class:`~repro.service.errors.RequestFailed`, never a wrong answer.
* **Subscriptions** — :meth:`QueryService.subscribe` installs a spec
  on a service-owned :class:`~repro.continuous.ContinuousMonitor`;
  every mutation barrier then ticks the monitor and pushes fresh
  snapshots *only* to subscriptions whose answer actually changed
  (DESIGN.md §17).
* **ε-early answers** — a request that opts in (``epsilon > 0``) and
  misses its deadline is re-answered with the tolerance widened to ε:
  still bound-certified by the C-PNN contract
  ``{p ≥ P} ⊆ answer ⊆ {p ≥ P − max(Δ, ε)}``, and explicitly marked
  ``approximate``.  With ``epsilon == 0`` (the default) answers are
  exact or the request fails — never silently loosened.

The service is single-flight: one dispatcher task owns the engine, so
engine internals need no locking and the sequential-equivalence
property (any interleaving of submissions answers bit-identically to a
sequential ``execute`` loop) holds by construction.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from dataclasses import dataclass

from repro import hooks
from repro.core.engine.executors.base import ExecutionTimeout
from repro.core.types import QueryResult
from repro.service.coalescer import Coalescer, Request
from repro.service.config import ServiceConfig
from repro.service.errors import (
    DeadlineExceeded,
    QueueFull,
    RequestFailed,
    ServiceClosed,
)

__all__ = ["QueryService", "ServiceReply", "Subscription"]


@dataclass
class ServiceReply:
    """What :meth:`QueryService.submit` resolves to.

    ``result`` is the engine's :class:`~repro.core.types.QueryResult`.
    ``approximate`` marks an ε-early answer (``epsilon`` is the widened
    tolerance it was certified against; 0 for exact answers).
    ``coalesced`` is the micro-batch size this query rode in, and
    ``attempts`` how many engine dispatches it took.
    """

    result: QueryResult
    approximate: bool = False
    epsilon: float = 0.0
    attempts: int = 1
    coalesced: int = 1
    latency_s: float = 0.0


@dataclass(eq=False)  # identity semantics, like the handle it fronts
class Subscription:
    """A streaming continuous query (:meth:`QueryService.subscribe`).

    ``initial`` is the registration-time answer; every subsequent
    mutation barrier whose monitor tick *changes* this query's answer
    tuple pushes a fresh :class:`~repro.core.types.QueryResult`
    snapshot onto ``updates`` (unbounded; unchanged ticks push
    nothing).  Consume with ``await sub.updates.get()`` and stop with
    :meth:`QueryService.unsubscribe`.
    """

    spec: object
    handle_id: int
    initial: QueryResult
    updates: "asyncio.Queue[QueryResult]"


@dataclass
class _Counters:
    submitted: int = 0
    mutations: int = 0
    batches: int = 0
    coalesced_queries: int = 0
    shed: int = 0
    retries: int = 0
    failed: int = 0
    deadline_misses: int = 0
    approximate: int = 0
    subscriptions: int = 0
    notifications: int = 0


class QueryService:
    """Async façade over one engine; see the module docstring.

    Use as an async context manager::

        async with QueryService(engine, ServiceConfig()) as service:
            reply = await service.submit(CPNNQuery(2.0))
            await service.insert(obj)

    Not thread-safe: all submissions must come from the event loop the
    service was started on (the engine work itself runs on a worker
    thread so the loop never blocks).
    """

    def __init__(self, engine, config: ServiceConfig | None = None) -> None:
        self._engine = engine
        self._config = config or ServiceConfig()
        self._coalescer = Coalescer(
            window_s=self._config.coalesce_window_s,
            max_batch=self._config.max_batch,
            max_queue=self._config.max_queue,
        )
        self._counters = _Counters()
        self._task: asyncio.Task | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._closing = False
        #: Lazy continuous tier (created on first subscribe).  All
        #: monitor traffic rides the mutation-barrier path, so the
        #: single-flight invariant covers it without extra locking.
        self._monitor = None
        self._subscriptions: dict[int, Subscription] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def __aenter__(self) -> "QueryService":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def start(self) -> None:
        if self._task is not None:
            raise RuntimeError("service already started")
        self._loop = asyncio.get_running_loop()
        self._task = self._loop.create_task(
            self._dispatch_loop(), name="repro-query-service"
        )

    async def close(self) -> None:
        """Stop accepting work, drain what was admitted, then return.

        Every request admitted before ``close`` resolves (answer or
        typed error); anything submitted after raises
        :class:`~repro.service.errors.ServiceClosed`.
        """
        if self._task is None:
            return
        self._closing = True
        self._coalescer.wake()
        await self._task
        self._task = None

    @property
    def closed(self) -> bool:
        return self._closing

    # ------------------------------------------------------------------
    # Submission surface
    # ------------------------------------------------------------------

    def _admit(self, request: Request) -> None:
        if self._closing or self._task is None:
            raise ServiceClosed("service is not accepting requests")
        try:
            self._coalescer.offer(request)
        except QueueFull:
            self._counters.shed += 1
            raise

    async def submit(
        self,
        spec,
        *,
        deadline_s: float | None = None,
        epsilon: float | None = None,
    ) -> ServiceReply:
        """Answer one query spec (or bare point) through the service.

        ``deadline_s`` bounds this request (falling back to the
        config's default); ``epsilon`` opts into ε-early answers on
        deadline expiry (falling back to the config's default, 0 =
        exact-or-fail).
        """
        assert self._loop is not None, "service not started"
        spec = self._engine._as_spec(spec)
        now = self._loop.time()
        budget = (
            deadline_s if deadline_s is not None else self._config.default_deadline_s
        )
        request = Request(
            kind="query",
            future=self._loop.create_future(),
            spec=spec,
            deadline=None if budget is None else now + budget,
            epsilon=(
                epsilon if epsilon is not None else self._config.default_epsilon
            ),
            submitted=now,
        )
        self._admit(request)
        self._counters.submitted += 1
        return await request.future

    async def _mutate(self, op: tuple):
        assert self._loop is not None, "service not started"
        request = Request(
            kind="mutate",
            future=self._loop.create_future(),
            op=op,
            submitted=self._loop.time(),
        )
        self._admit(request)
        self._counters.mutations += 1
        return await request.future

    async def insert(self, obj) -> None:
        """Insert ``obj`` (a barrier: later queries see it)."""
        await self._mutate(("insert", obj))

    async def remove(self, key) -> bool:
        """Remove the object with ``key``; resolves to whether it
        existed (the engine contract)."""
        return await self._mutate(("remove", key))

    async def replace(self, key, obj) -> None:
        """Replace the object with ``key`` by ``obj``."""
        await self._mutate(("replace", key, obj))

    async def subscribe(self, spec) -> Subscription:
        """Register ``spec`` as a continuous query and stream changes.

        The spec is installed on a service-owned
        :class:`~repro.continuous.ContinuousMonitor` (created lazily on
        first subscribe) and executed once; the registration answer is
        the subscription's ``initial`` result.  After every mutation
        barrier the monitor ticks, and only subscriptions whose answer
        tuple actually changed receive a fresh snapshot on their
        ``updates`` queue — the safe-region certificates make unchanged
        answers free.  Registration rides the barrier path, so a
        subscription observes every mutation submitted before it.
        """
        assert self._loop is not None, "service not started"
        spec = self._engine._as_spec(spec)
        handle = await self._mutate(("subscribe", spec))
        subscription = Subscription(
            spec=spec,
            handle_id=handle.id,
            initial=handle.snapshot(),
            updates=asyncio.Queue(),
        )
        self._subscriptions[handle.id] = subscription
        self._counters.subscriptions += 1
        return subscription

    async def unsubscribe(self, subscription: Subscription) -> bool:
        """Tear down a subscription; ``True`` when it was live."""
        self._subscriptions.pop(subscription.handle_id, None)
        return await self._mutate(("unsubscribe", subscription.handle_id))

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            batch = await self._coalescer.take(closing=lambda: self._closing)
            if batch is None:
                return
            if batch[0].kind == "mutate":
                await self._serve_mutation(batch[0])
            else:
                await self._serve_queries(batch)

    async def _engine_call(self, fn):
        assert self._loop is not None
        return await self._loop.run_in_executor(None, fn)

    def _ensure_monitor(self):
        if self._monitor is None:
            from repro.continuous import ContinuousMonitor

            self._monitor = ContinuousMonitor(self._engine)
        return self._monitor

    async def _serve_mutation(self, request: Request) -> None:
        """One barrier op: a mutation, or continuous-tier maintenance.

        When subscriptions are live, mutations flow through the monitor
        (so their MBRs certify the safe regions) and the barrier ends
        with a monitor tick; changed answers fan out to subscriber
        queues before the barrier's future resolves.
        """
        op = request.op
        engine = self._engine
        assert op is not None

        def run():
            if op[0] == "subscribe":
                return self._ensure_monitor().register(op[1]), None
            if op[0] == "unsubscribe":
                monitor = self._monitor
                return (
                    monitor.unregister(op[1]) if monitor is not None else False
                ), None
            monitor = self._monitor if self._subscriptions else None
            front = monitor if monitor is not None else engine
            if op[0] == "insert":
                value = front.insert(op[1])
            elif op[0] == "remove":
                value = front.remove(op[1])
            else:
                value = front.replace(op[1], op[2])
            report = monitor.tick() if monitor is not None else None
            return value, report

        try:
            value, report = await self._engine_call(run)
        except Exception as exc:
            if not request.future.cancelled():
                request.future.set_exception(
                    RequestFailed(exc, attempts=1)
                )
            return
        if report is not None:
            for handle_id, snapshot in report.changed.items():
                subscription = self._subscriptions.get(handle_id)
                if subscription is not None:
                    subscription.updates.put_nowait(snapshot)
                    self._counters.notifications += 1
        if not request.future.cancelled():
            request.future.set_result(value)

    async def _serve_queries(self, requests: list[Request]) -> None:
        """Answer one coalesced micro-batch, chunking when deadlines
        are present and retrying engine failures with backoff."""
        assert self._loop is not None
        self._counters.batches += 1
        self._counters.coalesced_queries += len(requests)
        batch_size = len(requests)
        hooks.fire("service.batch", size=batch_size)
        pending = list(requests)
        while pending:
            bounded = any(r.deadline is not None for r in pending)
            if bounded and len(pending) > self._config.deadline_chunk:
                group = pending[: self._config.deadline_chunk]
                rest = pending[self._config.deadline_chunk:]
            else:
                group, rest = pending, []
            now = self._loop.time()
            expired = [r for r in group if r.remaining(now) <= 0.0]
            group = [r for r in group if r.remaining(now) > 0.0]
            for request in expired:
                await self._deadline_path(request, batch_size)
            if not group:
                pending = rest
                continue
            budget = min(r.remaining(now) for r in group)
            engine = self._engine
            specs = [r.spec for r in group]

            def run():
                if budget == float("inf"):
                    return engine.execute_batch(specs)
                with engine.deadline(budget):
                    return engine.execute_batch(specs)

            for request in group:
                request.attempts += 1
            tick = time.perf_counter()
            try:
                batch = await self._engine_call(run)
            except ExecutionTimeout:
                now = self._loop.time()
                missed = [r for r in group if r.remaining(now) <= 0.0]
                alive = [r for r in group if r.remaining(now) > 0.0]
                if not missed:
                    # The scope was cut short without any deadline
                    # actually lapsing (clock skew between chunk
                    # budget and re-check); treat as a failed attempt.
                    await self._retry_or_fail(
                        group, ExecutionTimeout("deadline scope expired")
                    )
                    pending = [r for r in group if not r.future.done()] + rest
                    continue
                for request in missed:
                    await self._deadline_path(request, batch_size)
                pending = alive + rest
                continue
            except Exception as exc:
                await self._retry_or_fail(group, exc)
                pending = [r for r in group if not r.future.done()] + rest
                continue
            latency = time.perf_counter() - tick
            for request, result in zip(group, batch.results):
                if request.future.cancelled():
                    continue
                request.future.set_result(
                    ServiceReply(
                        result=result,
                        attempts=request.attempts,
                        coalesced=batch_size,
                        latency_s=latency,
                    )
                )
            pending = rest

    async def _retry_or_fail(
        self, group: list[Request], exc: BaseException
    ) -> None:
        """Apply the retry policy after a failed dispatch: requests
        with budget left go back to the front of the batch after a
        backoff; exhausted ones fail with the typed wrapper."""
        survivors = []
        for request in group:
            if request.attempts > self._config.retry_limit:
                self._counters.failed += 1
                if not request.future.cancelled():
                    request.future.set_exception(
                        RequestFailed(exc, attempts=request.attempts)
                    )
            else:
                survivors.append(request)
        if survivors:
            self._counters.retries += 1
            attempt = max(r.attempts for r in survivors)
            backoff = self._config.retry_backoff_s * (
                self._config.retry_backoff_factor ** max(0, attempt - 1)
            )
            if backoff > 0:
                await asyncio.sleep(backoff)

    async def _deadline_path(self, request: Request, batch_size: int) -> None:
        """A request's deadline lapsed: ε-early answer if it opted in,
        typed rejection otherwise."""
        self._counters.deadline_misses += 1
        if request.future.cancelled():
            return
        epsilon = request.epsilon
        if epsilon <= 0.0:
            request.future.set_exception(
                DeadlineExceeded(
                    f"deadline expired after {request.attempts} attempt(s)"
                )
            )
            return
        engine = self._engine
        spec = dataclasses.replace(
            request.spec,
            tolerance=max(request.spec.tolerance, epsilon),
        )

        def run():
            return engine.execute(spec)

        try:
            result = await self._engine_call(run)
        except Exception as exc:
            self._counters.failed += 1
            request.future.set_exception(
                RequestFailed(exc, attempts=request.attempts + 1)
            )
            return
        self._counters.approximate += 1
        result.diagnostics["approximate"] = {
            "reason": "deadline",
            "epsilon": epsilon,
            "certified_tolerance": spec.tolerance,
        }
        request.future.set_result(
            ServiceReply(
                result=result,
                approximate=True,
                epsilon=epsilon,
                attempts=request.attempts + 1,
                coalesced=batch_size,
            )
        )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Service counters plus the engine's executor failure story."""
        counters = self._counters
        return {
            "queue_depth": len(self._coalescer),
            "submitted": counters.submitted,
            "mutations": counters.mutations,
            "batches": counters.batches,
            "coalesced_queries": counters.coalesced_queries,
            "mean_batch": (
                counters.coalesced_queries / counters.batches
                if counters.batches
                else 0.0
            ),
            "shed": counters.shed,
            "retries": counters.retries,
            "failed": counters.failed,
            "deadline_misses": counters.deadline_misses,
            "approximate": counters.approximate,
            "subscriptions": len(self._subscriptions),
            "notifications": counters.notifications,
            "executor": self._engine.stats()["executor"],
        }
