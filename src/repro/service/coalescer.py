"""Micro-batch coalescing over a bounded admission queue.

The coalescer is the service's only queue: one deque in arrival order,
bounded by the admission limit.  ``take()`` draws the next unit of
work — either one mutation (mutations are barriers: they never share a
batch and never reorder around queries) or up to ``max_batch``
consecutive queries, holding the first one open for
``coalesce_window_s`` so followers can ride along.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.service.errors import QueueFull

__all__ = ["Coalescer", "Request"]


@dataclass
class Request:
    """One queued submission (query or mutation) and its bookkeeping."""

    kind: str  # "query" | "mutate"
    future: asyncio.Future
    spec: Any = None
    op: tuple | None = None
    deadline: float | None = None  # absolute loop time, None = unbounded
    epsilon: float = 0.0
    submitted: float = 0.0
    attempts: int = 0

    def remaining(self, now: float) -> float:
        if self.deadline is None:
            return float("inf")
        return self.deadline - now


class Coalescer:
    """Bounded arrival-order queue with windowed micro-batch draws."""

    def __init__(
        self, *, window_s: float, max_batch: int, max_queue: int
    ) -> None:
        self._window_s = float(window_s)
        self._max_batch = int(max_batch)
        self._max_queue = int(max_queue)
        self._queue: deque[Request] = deque()
        self._arrival = asyncio.Event()

    def __len__(self) -> int:
        return len(self._queue)

    def offer(self, request: Request) -> None:
        """Admit one request, or shed it with :class:`QueueFull`."""
        if len(self._queue) >= self._max_queue:
            raise QueueFull(len(self._queue), self._max_queue)
        self._queue.append(request)
        self._arrival.set()

    def wake(self) -> None:
        """Nudge a ``take()`` that is waiting for arrivals (used by
        service shutdown)."""
        self._arrival.set()

    def _batch_ready(self) -> bool:
        """Whether a draw could already fill itself without waiting:
        ``max_batch`` queries at the head, or a mutation barrier."""
        count = 0
        for request in self._queue:
            if request.kind != "query":
                return True
            count += 1
            if count >= self._max_batch:
                return True
        return False

    async def take(self, *, closing=lambda: False) -> list[Request] | None:
        """The next unit of work, in arrival order.

        Returns a single-element list for a mutation, a list of up to
        ``max_batch`` query requests for a micro-batch, or ``None``
        when ``closing()`` is true and the queue has drained.
        """
        while not self._queue:
            if closing():
                return None
            self._arrival.clear()
            await self._arrival.wait()
        head = self._queue[0]
        if head.kind != "query":
            self._queue.popleft()
            return [head]
        if self._window_s > 0.0:
            loop = asyncio.get_running_loop()
            horizon = loop.time() + self._window_s
            while not self._batch_ready() and not closing():
                remaining = horizon - loop.time()
                if remaining <= 0.0:
                    break
                self._arrival.clear()
                try:
                    await asyncio.wait_for(self._arrival.wait(), remaining)
                except asyncio.TimeoutError:
                    break
        batch: list[Request] = []
        while (
            self._queue
            and self._queue[0].kind == "query"
            and len(batch) < self._max_batch
        ):
            batch.append(self._queue.popleft())
        return batch
