"""Deterministic fault injection over the :mod:`repro.hooks` points.

A :class:`FaultPlan` scripts *which occurrence* of *which hook point*
does *what* — "the 2nd ``process.send`` kills the worker", "the 1st
``shm.attach`` unlinks the segment first" — so failure tests replay the
exact same fault sequence every run, with no sleeps-and-hope timing.

The plan is a context manager installing one handler on the global
hook registry::

    plan = FaultPlan()
    plan.script("process.send", kill_worker, at=2)
    with plan:
        service_or_engine_work()
    assert plan.fired == [("process.send", 2, "kill_worker")]

Actions are plain callables taking the hook's context dict.  The
module ships the ones the failure suite needs: :func:`kill_worker`
(SIGKILL the worker a message is about to be sent to — a crash
*mid-batch*, between send and reply), :func:`unlink_segment` (make the
upcoming shared-memory attach fail), :func:`delay` (hold the point
long enough for a deadline to lapse), and :func:`raise_error` (the
injected fault *is* the exception).
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Callable

from repro import hooks

__all__ = [
    "FaultPlan",
    "delay",
    "kill_worker",
    "raise_error",
    "unlink_segment",
]


def kill_worker(context: dict) -> None:
    """SIGKILL the pool worker named in a ``process.send`` context —
    the parent discovers the death when it tries to use the pipe,
    exactly like a real mid-batch crash."""
    worker = context["worker"]
    os.kill(worker.proc.pid, signal.SIGKILL)
    worker.proc.join(timeout=5.0)


def unlink_segment(context: dict) -> None:
    """Unlink the coordinate backing named in the context before
    whoever fired the hook attaches it, forcing the attach to fail.
    Handles both transports: a shared-memory segment name or an mmap
    column-file path (``config.storage == "mmap"``)."""
    name = context["segment"]
    if os.path.sep in name and os.path.exists(name):
        os.unlink(name)
        return
    segment = shared_memory.SharedMemory(name=name)
    try:
        segment.unlink()
    finally:
        segment.close()


def delay(seconds: float) -> Callable[[dict], None]:
    """An action that simply holds the hook point for ``seconds`` —
    long enough for a caller-side deadline or window to lapse."""

    def action(context: dict) -> None:
        time.sleep(seconds)

    action.__name__ = f"delay({seconds})"
    return action


def raise_error(exc_factory: Callable[[], BaseException]) -> Callable[[dict], None]:
    """An action that raises — the exception propagates out of the
    hook point as if the underlying operation failed there."""

    def action(context: dict) -> None:
        raise exc_factory()

    action.__name__ = "raise_error"
    return action


@dataclass
class _Fault:
    point: str
    action: Callable[[dict], None]
    at: frozenset
    match: dict | None
    #: Occurrences of (point, match) seen so far — each fault counts
    #: only the firings its ``match`` filter accepts, so "the 2nd pnn
    #: send" means the 2nd *pnn* send regardless of interleaved sweeps.
    seen: int = 0

    def matches(self, context: dict) -> bool:
        if self.match:
            for key, want in self.match.items():
                if context.get(key) != want:
                    return False
        return True


@dataclass
class FaultPlan:
    """A deterministic script of faults over hook occurrences.

    Each scripted fault counts occurrences among the firings its own
    ``match`` filter accepts, starting at 1, over the plan's installed
    lifetime — "the 2nd ``kind='pnn'`` send" is unaffected by how many
    sweep sends interleave.  ``fired`` records every triggered fault
    as ``(point, occurrence, action_name)`` so tests can assert the
    script actually ran (a plan that never fires is a broken test, not
    a passing one).
    """

    _faults: list[_Fault] = field(default_factory=list)
    _seen: dict = field(default_factory=dict)
    fired: list = field(default_factory=list)

    def script(
        self,
        point: str,
        action: Callable[[dict], None],
        *,
        at: int | tuple = 1,
        match: dict | None = None,
    ) -> "FaultPlan":
        """Arm ``action`` for the ``at``-th occurrence(s) of ``point``
        (optionally only when the context matches ``match``'s items).
        Returns ``self`` for chaining."""
        occurrences = (at,) if isinstance(at, int) else tuple(at)
        self._faults.append(
            _Fault(
                point=point,
                action=action,
                at=frozenset(occurrences),
                match=dict(match) if match else None,
            )
        )
        return self

    def _handle(self, point: str, context: dict) -> None:
        self._seen[point] = self._seen.get(point, 0) + 1
        for fault in self._faults:
            if fault.point != point or not fault.matches(context):
                continue
            fault.seen += 1
            if fault.at and fault.seen not in fault.at:
                continue
            self.fired.append(
                (point, fault.seen, getattr(fault.action, "__name__", "?"))
            )
            fault.action(context)

    def seen(self, point: str) -> int:
        """How many times ``point`` has fired while installed."""
        return self._seen.get(point, 0)

    def __enter__(self) -> "FaultPlan":
        hooks.install(self._handle)
        return self

    def __exit__(self, *exc) -> None:
        hooks.uninstall(self._handle)
