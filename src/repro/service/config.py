"""Service tuning knobs: coalescing, admission, deadlines, retries."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ServiceConfig"]


@dataclass
class ServiceConfig:
    """Tuning knobs for :class:`~repro.service.QueryService`.

    Attributes
    ----------
    coalesce_window_s:
        How long the dispatcher holds the first query of a micro-batch
        open for followers (seconds).  The window is the latency the
        service *spends* to buy batch amortisation — the engine's
        vectorised sweeps, shared tables, and parallel lanes only pay
        off across a batch.  0 disables coalescing (every query ships
        alone, the naive baseline).
    max_batch:
        Hard cap on queries per micro-batch; a full batch ships before
        the window expires.
    max_queue:
        Admission bound: requests beyond this many waiting are shed
        with :class:`~repro.service.errors.QueueFull` instead of
        building an unbounded backlog whose tail latency nobody can
        meet.
    default_deadline_s:
        Deadline applied to requests that don't carry their own
        (``None`` = no deadline).
    default_epsilon:
        ε-early-answer tolerance for requests that don't carry their
        own.  0 (the default) keeps every answer exact: a missed
        deadline is a :class:`~repro.service.errors.DeadlineExceeded`,
        never a silently loosened result.
    retry_limit:
        How many times a failed engine dispatch is retried before the
        request fails with
        :class:`~repro.service.errors.RequestFailed`.
    retry_backoff_s / retry_backoff_factor:
        First retry delay and its multiplier (exponential backoff).
    deadline_chunk:
        When a batch carries deadlines, execute at most this many
        queries per engine call so expiry is re-checked between chunks
        (one huge batch would hold every answer hostage to the
        earliest deadline).
    """

    coalesce_window_s: float = 0.002
    max_batch: int = 64
    max_queue: int = 256
    default_deadline_s: float | None = None
    default_epsilon: float = 0.0
    retry_limit: int = 2
    retry_backoff_s: float = 0.01
    retry_backoff_factor: float = 2.0
    deadline_chunk: int = 16

    def __post_init__(self) -> None:
        if self.coalesce_window_s < 0:
            raise ValueError("coalesce_window_s must be >= 0")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise ValueError("default_deadline_s must be positive or None")
        if not 0.0 <= self.default_epsilon <= 1.0:
            raise ValueError("default_epsilon must lie in [0, 1]")
        if self.retry_limit < 0:
            raise ValueError("retry_limit must be >= 0")
        if self.retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be >= 0")
        if self.retry_backoff_factor < 1.0:
            raise ValueError("retry_backoff_factor must be >= 1")
        if self.deadline_chunk < 1:
            raise ValueError("deadline_chunk must be >= 1")
