"""Distance pdfs and cdfs (Definition 2 of the paper).

For an uncertain object ``X_i`` and a query point ``q`` the random
variable ``R_i = |X_i - q|`` is the object's distance from the query.
Verifiers, refinement and the Basic method all operate purely on the
pdf ``d_i(r)`` and cdf ``D_i(r)`` of ``R_i`` — this is what lets the
1-D machinery extend to 2-D regions (Section IV-A).

A :class:`DistanceDistribution` also records the *near point* ``n_i``
and *far point* ``f_i`` (Definition 3): the minimum and maximum of the
distance's support, after zero-density margins are trimmed so that the
paper's assumption "the distance pdf of X_i has a non-zero value at any
point in U_i" is re-established mechanically.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from repro.uncertainty.histogram import Histogram, HistogramError

__all__ = ["DistanceDistribution"]


class DistanceDistribution:
    """The distribution of an object's distance from a query point.

    Parameters
    ----------
    histogram:
        Distance histogram; it is normalised and trimmed of
        zero-density margins on construction.
    key:
        Identifier of the owning uncertain object (carried through the
        pipeline so answers can name objects).
    """

    __slots__ = ("_histogram", "_key")

    def __init__(self, histogram: Histogram, key: Hashable = None) -> None:
        total = histogram.total_mass
        if total <= 0:
            raise HistogramError("distance histogram must carry positive mass")
        trimmed = histogram.trimmed()
        if abs(total - 1.0) > 1e-12:
            trimmed = trimmed.normalized()
        if trimmed.lo < -1e-12:
            raise HistogramError("distances must be non-negative")
        self._histogram = trimmed
        self._key = key

    # ------------------------------------------------------------------

    @property
    def key(self) -> Hashable:
        return self._key

    @property
    def histogram(self) -> Histogram:
        return self._histogram

    @property
    def near(self) -> float:
        """Near point ``n_i`` — the minimum possible distance."""
        return self._histogram.lo

    @property
    def far(self) -> float:
        """Far point ``f_i`` — the maximum possible distance."""
        return self._histogram.hi

    @property
    def interval(self) -> tuple[float, float]:
        """The interval ``U_i = [n_i, f_i]``."""
        return (self.near, self.far)

    @property
    def breakpoints(self) -> np.ndarray:
        """Points where the distance pdf changes value."""
        return self._histogram.edges

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"DistanceDistribution(key={self._key!r}, "
            f"near={self.near:.6g}, far={self.far:.6g}, "
            f"nbins={self._histogram.nbins})"
        )

    # ------------------------------------------------------------------

    def pdf(self, r: float | np.ndarray) -> float | np.ndarray:
        """Distance pdf ``d_i(r)``."""
        return self._histogram.pdf(r)

    def cdf(self, r: float | np.ndarray) -> float | np.ndarray:
        """Distance cdf ``D_i(r)`` (piecewise linear)."""
        return self._histogram.cdf(r)

    def sf(self, r: float | np.ndarray) -> float | np.ndarray:
        """Survival ``1 - D_i(r)`` — used by every verifier product."""
        return 1.0 - self._histogram.cdf(r)

    def mass_between(self, a: float, b: float) -> float:
        """``Pr[a <= R_i <= b]`` — a subregion probability ``s_ij``."""
        return self._histogram.mass_between(a, b)

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw iid distances (used by the Monte-Carlo baseline)."""
        return self._histogram.sample(rng, size)

    def overlaps(self, a: float, b: float) -> bool:
        """Whether ``U_i`` intersects the open interval ``(a, b)``."""
        return self.near < b and self.far > a

    # ------------------------------------------------------------------

    @classmethod
    def from_value_histogram(
        cls, histogram: Histogram, q: float, key: Hashable = None
    ) -> "DistanceDistribution":
        """Fold a 1-D value histogram about ``q`` (Figure 6), exactly."""
        return cls(histogram.fold_abs(q), key=key)

    @classmethod
    def from_cdf(
        cls,
        cdf,
        lo: float,
        hi: float,
        bins: int,
        key: Hashable = None,
    ) -> "DistanceDistribution":
        """Discretise an exact distance cdf on [lo, hi] into ``bins`` bins.

        Used by the 2-D uncertainty regions, whose distance cdfs are
        known analytically (disk, segment) or via robust geometric
        integration (rectangle).  The histogram cdf agrees with ``cdf``
        exactly at every bin edge.
        """
        if not hi > lo:
            raise HistogramError("distance support must have positive width")
        return cls(Histogram.from_cdf(cdf, lo, hi, bins), key=key)
