"""Uncertain-data model substrate.

This package implements the *attribute uncertainty* model used by the
paper: each object's value lies in a closed region with an arbitrary
probability density function (pdf) whose integral over the region is one.

Everything in the query engine operates on two derived artifacts:

* :class:`~repro.uncertainty.histogram.Histogram` — a piecewise-constant
  density with a piecewise-linear cdf.  Uniform pdfs are exact one-bin
  histograms; Gaussians are binned exactly through ``Phi`` differences
  (the paper's experiments use 300-bar histograms, Section V).
* :class:`~repro.uncertainty.distance.DistanceDistribution` — the pdf/cdf
  of an object's distance ``R_i = |X_i - q|`` from a query point
  (Definition 2 of the paper), computed exactly by folding the value
  histogram about ``q``.
"""

from repro.uncertainty.columnar import DistributionPack
from repro.uncertainty.distance import DistanceDistribution
from repro.uncertainty.histogram import Histogram, HistogramError
from repro.uncertainty.objects import UncertainObject
from repro.uncertainty.pdfs import (
    HistogramPdf,
    MixturePdf,
    TriangularPdf,
    TruncatedGaussianPdf,
    UncertaintyPdf,
    UniformPdf,
)
from repro.uncertainty.twod import (
    UncertainDisk,
    UncertainRectangle,
    UncertainSegment,
)

__all__ = [
    "DistanceDistribution",
    "DistributionPack",
    "Histogram",
    "HistogramError",
    "HistogramPdf",
    "MixturePdf",
    "TriangularPdf",
    "TruncatedGaussianPdf",
    "UncertainDisk",
    "UncertainObject",
    "UncertainRectangle",
    "UncertainSegment",
    "UncertaintyPdf",
    "UniformPdf",
]
