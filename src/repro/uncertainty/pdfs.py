"""Uncertainty pdf models over closed 1-D intervals.

The paper's model (Section I) bounds each uncertain attribute inside a
closed *uncertainty region* carrying an arbitrary pdf.  This module
provides the pdf families used in the paper and its experiments:

* :class:`UniformPdf` — the Long Beach workload (Section V-A) treats
  every interval as uniform;
* :class:`TruncatedGaussianPdf` — Section V-B experiment 5 uses
  Gaussians "approximated by a 300-bar histogram" with the mean at the
  interval centre and sigma = width / 6;
* :class:`HistogramPdf` — arbitrary histograms (Figure 1(b));
* :class:`TriangularPdf` and :class:`MixturePdf` — extra shapes used by
  tests and examples to exercise the "arbitrary pdf" claim.

Every pdf can be converted to a :class:`~repro.uncertainty.histogram.Histogram`
via :meth:`UncertaintyPdf.to_histogram`; the query engine operates on
that histogram form exclusively, exactly as the paper's implementation
does.
"""

from __future__ import annotations

import abc
import math
from typing import Sequence

import numpy as np
from scipy import stats

from repro.uncertainty.histogram import Histogram, HistogramError

__all__ = [
    "UncertaintyPdf",
    "UniformPdf",
    "TruncatedGaussianPdf",
    "HistogramPdf",
    "TriangularPdf",
    "MixturePdf",
    "DEFAULT_GAUSSIAN_BARS",
]

#: Number of histogram bars the paper uses to discretise Gaussians.
DEFAULT_GAUSSIAN_BARS = 300


class UncertaintyPdf(abc.ABC):
    """A probability density supported on the closed interval [lo, hi]."""

    @property
    @abc.abstractmethod
    def lo(self) -> float:
        """Left end of the uncertainty region."""

    @property
    @abc.abstractmethod
    def hi(self) -> float:
        """Right end of the uncertainty region."""

    @abc.abstractmethod
    def to_histogram(self, bins: int | None = None) -> Histogram:
        """A normalised histogram representation of this pdf.

        For intrinsically piecewise-constant pdfs the result is exact
        and ``bins`` is ignored; for smooth pdfs the result matches the
        true cdf exactly at every bin edge.
        """

    @property
    def width(self) -> float:
        return self.hi - self.lo

    def cdf(self, x: float | np.ndarray) -> float | np.ndarray:
        """Cumulative distribution function of the *histogram* form."""
        return self.to_histogram().cdf(x)

    def pdf(self, x: float | np.ndarray) -> float | np.ndarray:
        """Density of the *histogram* form."""
        return self.to_histogram().pdf(x)

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Samples drawn from the histogram form."""
        return self.to_histogram().sample(rng, size)

    def _validate_interval(self) -> None:
        if not (math.isfinite(self.lo) and math.isfinite(self.hi)):
            raise HistogramError("uncertainty region must be finite")
        if not self.hi > self.lo:
            raise HistogramError("uncertainty region must have positive width")


class UniformPdf(UncertaintyPdf):
    """Uniform density on [lo, hi]; its histogram form is exact."""

    __slots__ = ("_lo", "_hi")

    def __init__(self, lo: float, hi: float) -> None:
        self._lo = float(lo)
        self._hi = float(hi)
        self._validate_interval()

    @property
    def lo(self) -> float:
        return self._lo

    @property
    def hi(self) -> float:
        return self._hi

    def to_histogram(self, bins: int | None = None) -> Histogram:
        if bins is None or bins <= 1:
            return Histogram.uniform(self._lo, self._hi)
        edges = np.linspace(self._lo, self._hi, bins + 1)
        return Histogram(edges, np.full(bins, 1.0 / (self._hi - self._lo)))

    def __repr__(self) -> str:  # pragma: no cover
        return f"UniformPdf({self._lo:.6g}, {self._hi:.6g})"


class TruncatedGaussianPdf(UncertaintyPdf):
    """Gaussian truncated to [lo, hi], discretised into histogram bars.

    Parameters
    ----------
    lo, hi:
        Uncertainty region.
    mean:
        Defaults to the interval centre (the paper's setting).
    sigma:
        Defaults to ``(hi - lo) / 6`` (the paper's setting).
    bars:
        Number of histogram bars used by :meth:`to_histogram` when no
        explicit ``bins`` is requested; defaults to the paper's 300.
    """

    __slots__ = ("_lo", "_hi", "_mean", "_sigma", "_bars")

    def __init__(
        self,
        lo: float,
        hi: float,
        mean: float | None = None,
        sigma: float | None = None,
        bars: int = DEFAULT_GAUSSIAN_BARS,
    ) -> None:
        self._lo = float(lo)
        self._hi = float(hi)
        self._validate_interval()
        self._mean = float(mean) if mean is not None else 0.5 * (lo + hi)
        self._sigma = float(sigma) if sigma is not None else (hi - lo) / 6.0
        if self._sigma <= 0:
            raise HistogramError("sigma must be positive")
        if bars < 1:
            raise HistogramError("bars must be >= 1")
        self._bars = int(bars)

    @property
    def lo(self) -> float:
        return self._lo

    @property
    def hi(self) -> float:
        return self._hi

    @property
    def mean_parameter(self) -> float:
        return self._mean

    @property
    def sigma(self) -> float:
        return self._sigma

    @property
    def bars(self) -> int:
        return self._bars

    def to_histogram(self, bins: int | None = None) -> Histogram:
        nbins = self._bars if bins is None else int(bins)
        if nbins < 1:
            raise HistogramError("bins must be >= 1")
        edges = np.linspace(self._lo, self._hi, nbins + 1)
        z = (edges - self._mean) / self._sigma
        cdf = stats.norm.cdf(z)
        masses = np.diff(cdf)
        total = cdf[-1] - cdf[0]
        if total <= 0:
            raise HistogramError("truncation removed all Gaussian mass")
        return Histogram.from_masses(edges, masses / total)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"TruncatedGaussianPdf([{self._lo:.6g}, {self._hi:.6g}], "
            f"mean={self._mean:.6g}, sigma={self._sigma:.6g}, bars={self._bars})"
        )


class HistogramPdf(UncertaintyPdf):
    """An arbitrary histogram pdf (Figure 1(b) of the paper)."""

    __slots__ = ("_histogram",)

    def __init__(
        self,
        edges: Sequence[float] | np.ndarray,
        masses_or_densities: Sequence[float] | np.ndarray,
        *,
        as_masses: bool = True,
    ) -> None:
        if as_masses:
            histogram = Histogram.from_masses(edges, masses_or_densities)
        else:
            histogram = Histogram(edges, masses_or_densities)
        if histogram.total_mass <= 0:
            raise HistogramError("histogram pdf must carry positive mass")
        self._histogram = histogram.normalized()

    @classmethod
    def from_histogram(cls, histogram: Histogram) -> "HistogramPdf":
        return cls(histogram.edges, histogram.densities, as_masses=False)

    @property
    def lo(self) -> float:
        return self._histogram.lo

    @property
    def hi(self) -> float:
        return self._histogram.hi

    def to_histogram(self, bins: int | None = None) -> Histogram:
        return self._histogram

    def __repr__(self) -> str:  # pragma: no cover
        return f"HistogramPdf({self._histogram!r})"


class TriangularPdf(UncertaintyPdf):
    """Triangular density with apex at ``mode``; discretised on demand."""

    __slots__ = ("_lo", "_hi", "_mode", "_bars")

    def __init__(self, lo: float, hi: float, mode: float | None = None, bars: int = 64):
        self._lo = float(lo)
        self._hi = float(hi)
        self._validate_interval()
        self._mode = float(mode) if mode is not None else 0.5 * (lo + hi)
        if not (self._lo <= self._mode <= self._hi):
            raise HistogramError("mode must lie inside the uncertainty region")
        if bars < 2:
            raise HistogramError("bars must be >= 2")
        self._bars = int(bars)

    @property
    def lo(self) -> float:
        return self._lo

    @property
    def hi(self) -> float:
        return self._hi

    @property
    def mode(self) -> float:
        return self._mode

    def _exact_cdf(self, x: np.ndarray) -> np.ndarray:
        lo, hi, mode = self._lo, self._hi, self._mode
        x = np.clip(x, lo, hi)
        width = hi - lo
        left = mode - lo
        right = hi - mode
        result = np.empty_like(x)
        rising = x <= mode
        if left > 0:
            result[rising] = (x[rising] - lo) ** 2 / (width * left)
        else:
            result[rising] = 0.0
        falling = ~rising
        if right > 0:
            result[falling] = 1.0 - (hi - x[falling]) ** 2 / (width * right)
        else:
            result[falling] = 1.0
        return result

    def to_histogram(self, bins: int | None = None) -> Histogram:
        nbins = self._bars if bins is None else int(bins)
        if nbins < 2:
            raise HistogramError("bins must be >= 2")
        # Keep the mode on the grid so both linear flanks are sampled.
        edges = np.unique(
            np.concatenate(
                (np.linspace(self._lo, self._hi, nbins + 1), [self._mode])
            )
        )
        masses = np.diff(self._exact_cdf(edges))
        return Histogram.from_masses(edges, np.clip(masses, 0.0, None))

    def __repr__(self) -> str:  # pragma: no cover
        return f"TriangularPdf({self._lo:.6g}, {self._hi:.6g}, mode={self._mode:.6g})"


class MixturePdf(UncertaintyPdf):
    """A finite mixture of component pdfs (multi-modal uncertainty)."""

    __slots__ = ("_components", "_weights")

    def __init__(
        self,
        components: Sequence[UncertaintyPdf],
        weights: Sequence[float] | None = None,
    ) -> None:
        if not components:
            raise HistogramError("mixture requires at least one component")
        if weights is None:
            weights = [1.0 / len(components)] * len(components)
        if len(weights) != len(components):
            raise HistogramError("one weight per component required")
        weight_arr = np.asarray(weights, dtype=float)
        if np.any(weight_arr < 0) or weight_arr.sum() <= 0:
            raise HistogramError("weights must be non-negative with positive sum")
        self._components = tuple(components)
        self._weights = tuple(float(w) for w in weight_arr / weight_arr.sum())

    @property
    def lo(self) -> float:
        return min(component.lo for component in self._components)

    @property
    def hi(self) -> float:
        return max(component.hi for component in self._components)

    def to_histogram(self, bins: int | None = None) -> Histogram:
        parts = [component.to_histogram(bins) for component in self._components]
        return Histogram.mixture(parts, list(self._weights)).normalized()

    def __repr__(self) -> str:  # pragma: no cover
        return f"MixturePdf({len(self._components)} components)"
