"""Two-dimensional uncertainty regions and their distance distributions.

Section IV-A of the paper notes that the whole solution "can be
extended to 2D space, by computing the distance pdf and cdf from the
2D uncertainty regions, using the formulae discussed in [8]".  [8]
derives distance cdfs for circular and line-segment regions; we
implement those exactly and add axis-aligned rectangles via robust
geometric integration.  The resulting
:class:`~repro.uncertainty.distance.DistanceDistribution` objects feed
the *same* verifier/refinement machinery as the 1-D objects.

Each class satisfies :class:`~repro.uncertainty.objects.SpatialUncertain`:

* :class:`UncertainDisk` — uniform pdf over a disk; cdf via the exact
  circle–circle intersection (lens) area;
* :class:`UncertainSegment` — uniform pdf along a segment; cdf by
  solving the quadratic ``|A + t(B - A) - q|^2 <= r^2`` in closed form;
* :class:`UncertainRectangle` — uniform pdf over a box; cdf via exact
  breakpoint analysis plus Gauss–Legendre chord integration (accurate
  to ~1e-12, far below the histogram discretisation used downstream).
"""

from __future__ import annotations

import math
from typing import Hashable, Sequence

import numpy as np

from repro.index.geometry import Rect
from repro.numerics.quadrature import gauss_legendre_nodes
from repro.uncertainty.distance import DistanceDistribution

__all__ = [
    "UncertainDisk",
    "UncertainRectangle",
    "UncertainSegment",
    "circle_circle_intersection_area",
    "disk_rect_intersection_area",
]

#: Default number of histogram bins for a 2-D distance distribution.
DEFAULT_DISTANCE_BINS = 256


def circle_circle_intersection_area(d: float, r1: float, r2: float) -> float:
    """Area of the intersection of two circles with centre distance ``d``."""
    if r1 < 0 or r2 < 0 or d < 0:
        raise ValueError("distances and radii must be non-negative")
    if r1 == 0.0 or r2 == 0.0 or d >= r1 + r2:
        return 0.0
    if d <= abs(r1 - r2):
        smaller = min(r1, r2)
        return math.pi * smaller * smaller
    denom1 = 2.0 * d * r1
    denom2 = 2.0 * d * r2
    if denom1 == 0.0 or denom2 == 0.0:
        # d is subnormal (can slip past the containment guard when
        # r1 == r2): the circles are concentric for all purposes.
        smaller = min(r1, r2)
        return math.pi * smaller * smaller
    # Standard lens-area formula; clamp the acos arguments against
    # floating-point drift at tangency.
    cos1 = (d * d + r1 * r1 - r2 * r2) / denom1
    cos2 = (d * d + r2 * r2 - r1 * r1) / denom2
    cos1 = min(1.0, max(-1.0, cos1))
    cos2 = min(1.0, max(-1.0, cos2))
    term1 = r1 * r1 * math.acos(cos1)
    term2 = r2 * r2 * math.acos(cos2)
    radicand = (
        (-d + r1 + r2) * (d + r1 - r2) * (d - r1 + r2) * (d + r1 + r2)
    )
    term3 = 0.5 * math.sqrt(max(radicand, 0.0))
    return term1 + term2 - term3


def disk_rect_intersection_area(
    q: Sequence[float], radius: float, rect: Rect
) -> float:
    """Area of ``disk(q, radius)`` intersected with a 2-D rectangle.

    The chord length ``overlap(y-range, q_y ± sqrt(r^2 - dx^2))`` is a
    smooth function of ``x`` between breakpoints where the circle
    crosses the rectangle's horizontal edges; integrating each smooth
    piece with 48-node Gauss–Legendre yields ~1e-12 accuracy.
    """
    if rect.dim != 2:
        raise ValueError("disk_rect_intersection_area requires a 2-D rectangle")
    if radius < 0:
        raise ValueError("radius must be non-negative")
    if radius == 0.0:
        return 0.0
    qx, qy = float(q[0]), float(q[1])
    x1, y1 = float(rect.lows[0]), float(rect.lows[1])
    x2, y2 = float(rect.highs[0]), float(rect.highs[1])
    lo = max(x1, qx - radius)
    hi = min(x2, qx + radius)
    if lo >= hi:
        return 0.0
    breakpoints = {lo, hi}
    for edge_y in (y1, y2):
        dy = edge_y - qy
        if radius * radius > dy * dy:
            half = math.sqrt(radius * radius - dy * dy)
            for x in (qx - half, qx + half):
                if lo < x < hi:
                    breakpoints.add(x)
    # Substitute x = qx + r sin(theta): the chord half-length becomes
    # r cos(theta), removing the square-root singularity at the circle's
    # extremes, so Gauss-Legendre per smooth piece converges to ~1e-14.
    def to_theta(x: float) -> float:
        return math.asin(min(1.0, max(-1.0, (x - qx) / radius)))

    cuts = sorted(to_theta(x) for x in breakpoints)
    nodes, weights = gauss_legendre_nodes(48)
    total = 0.0
    for a, b in zip(cuts[:-1], cuts[1:]):
        if b <= a:
            continue
        mid = 0.5 * (a + b)
        half_width = 0.5 * (b - a)
        thetas = mid + half_width * nodes
        cos_t = np.cos(thetas)
        half_chord = radius * cos_t
        top = np.minimum(y2, qy + half_chord)
        bottom = np.maximum(y1, qy - half_chord)
        overlap = np.maximum(top - bottom, 0.0)
        total += half_width * float(
            np.sum(weights * overlap * radius * cos_t)
        )
    return total


def _as_point2d(q) -> np.ndarray:
    point = np.asarray(q, dtype=float)
    if point.shape != (2,):
        raise ValueError("2-D uncertain objects require a 2-D query point")
    return point


class UncertainDisk:
    """A uniform pdf over the disk of ``radius`` around ``center``."""

    __slots__ = ("_key", "_center", "_radius", "_bins", "_mbr")

    def __init__(
        self,
        key: Hashable,
        center: Sequence[float],
        radius: float,
        distance_bins: int = DEFAULT_DISTANCE_BINS,
    ) -> None:
        self._key = key
        self._center = np.asarray(center, dtype=float)
        if self._center.shape != (2,):
            raise ValueError("center must be a 2-D point")
        if radius <= 0:
            raise ValueError("radius must be positive")
        self._radius = float(radius)
        self._bins = int(distance_bins)
        self._mbr: Rect | None = None

    @property
    def key(self) -> Hashable:
        return self._key

    @property
    def center(self) -> np.ndarray:
        return self._center.copy()

    @property
    def radius(self) -> float:
        return self._radius

    @property
    def mbr(self) -> Rect:
        if self._mbr is None:
            self._mbr = Rect(
                self._center - self._radius, self._center + self._radius
            )
        return self._mbr

    def mindist(self, q) -> float:
        d = float(np.linalg.norm(_as_point2d(q) - self._center))
        return max(0.0, d - self._radius)

    def maxdist(self, q) -> float:
        d = float(np.linalg.norm(_as_point2d(q) - self._center))
        return d + self._radius

    def distance_cdf(self, q, r: float) -> float:
        """Exact ``Pr[|X - q| <= r]`` via the lens area."""
        d = float(np.linalg.norm(_as_point2d(q) - self._center))
        area = circle_circle_intersection_area(d, self._radius, max(float(r), 0.0))
        return area / (math.pi * self._radius * self._radius)

    def distance_distribution(self, q) -> DistanceDistribution:
        point = _as_point2d(q)
        return DistanceDistribution.from_cdf(
            lambda r: self.distance_cdf(point, r),
            self.mindist(point),
            self.maxdist(point),
            self._bins,
            key=self._key,
        )

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Uniform samples from the disk (for the Monte-Carlo baseline)."""
        angles = rng.uniform(0.0, 2.0 * math.pi, size)
        radii = self._radius * np.sqrt(rng.uniform(0.0, 1.0, size))
        return self._center + np.column_stack(
            (radii * np.cos(angles), radii * np.sin(angles))
        )

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"UncertainDisk(key={self._key!r}, center={tuple(self._center)}, "
            f"radius={self._radius:.6g})"
        )


class UncertainSegment:
    """A uniform pdf along the segment from ``a`` to ``b``."""

    __slots__ = ("_key", "_a", "_b", "_bins", "_mbr")

    def __init__(
        self,
        key: Hashable,
        a: Sequence[float],
        b: Sequence[float],
        distance_bins: int = DEFAULT_DISTANCE_BINS,
    ) -> None:
        self._key = key
        self._a = np.asarray(a, dtype=float)
        self._b = np.asarray(b, dtype=float)
        if self._a.shape != (2,) or self._b.shape != (2,):
            raise ValueError("segment endpoints must be 2-D points")
        if np.allclose(self._a, self._b):
            raise ValueError("segment must have positive length")
        self._bins = int(distance_bins)
        self._mbr: Rect | None = None

    @property
    def key(self) -> Hashable:
        return self._key

    @property
    def endpoints(self) -> tuple[np.ndarray, np.ndarray]:
        return self._a.copy(), self._b.copy()

    @property
    def mbr(self) -> Rect:
        if self._mbr is None:
            self._mbr = Rect(
                np.minimum(self._a, self._b), np.maximum(self._a, self._b)
            )
        return self._mbr

    def _distance_bounds(self, q: np.ndarray) -> tuple[float, float]:
        direction = self._b - self._a
        alpha = float(direction @ direction)
        offset = self._a - q
        t_star = -float(offset @ direction) / alpha
        candidates = [0.0, 1.0]
        if 0.0 < t_star < 1.0:
            candidates.append(t_star)
        distances = [
            float(np.linalg.norm(self._a + t * direction - q)) for t in candidates
        ]
        return min(distances), max(
            float(np.linalg.norm(self._a - q)), float(np.linalg.norm(self._b - q))
        )

    def mindist(self, q) -> float:
        return self._distance_bounds(_as_point2d(q))[0]

    def maxdist(self, q) -> float:
        return self._distance_bounds(_as_point2d(q))[1]

    def distance_cdf(self, q, r: float) -> float:
        """Exact ``Pr[|X - q| <= r]`` via the quadratic in ``t``.

        With ``X(t) = A + t(B - A)``, ``|X(t) - q|^2`` is a convex
        quadratic; the sub-level set ``{t : |X(t)-q| <= r}`` is an
        interval whose overlap with [0, 1] is the cdf value.
        """
        point = _as_point2d(q)
        r = float(r)
        if r < 0:
            return 0.0
        direction = self._b - self._a
        offset = self._a - point
        alpha = float(direction @ direction)
        beta = 2.0 * float(offset @ direction)
        gamma = float(offset @ offset) - r * r
        discriminant = beta * beta - 4.0 * alpha * gamma
        if discriminant < 0:
            return 0.0
        root = math.sqrt(discriminant)
        t_lo = (-beta - root) / (2.0 * alpha)
        t_hi = (-beta + root) / (2.0 * alpha)
        return max(0.0, min(t_hi, 1.0) - max(t_lo, 0.0))

    def distance_distribution(self, q) -> DistanceDistribution:
        point = _as_point2d(q)
        near, far = self._distance_bounds(point)
        return DistanceDistribution.from_cdf(
            lambda r: self.distance_cdf(point, r),
            near,
            far,
            self._bins,
            key=self._key,
        )

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        ts = rng.uniform(0.0, 1.0, size)
        return self._a + ts[:, None] * (self._b - self._a)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"UncertainSegment(key={self._key!r}, a={tuple(self._a)}, "
            f"b={tuple(self._b)})"
        )


class UncertainRectangle:
    """A uniform pdf over an axis-aligned 2-D rectangle."""

    __slots__ = ("_key", "_rect", "_bins")

    def __init__(
        self,
        key: Hashable,
        rect: Rect,
        distance_bins: int = DEFAULT_DISTANCE_BINS,
    ) -> None:
        if rect.dim != 2:
            raise ValueError("UncertainRectangle requires a 2-D rectangle")
        if rect.area() <= 0:
            raise ValueError("rectangle must have positive area")
        self._key = key
        self._rect = rect
        self._bins = int(distance_bins)

    @classmethod
    def from_bounds(
        cls,
        key: Hashable,
        x1: float,
        y1: float,
        x2: float,
        y2: float,
        distance_bins: int = DEFAULT_DISTANCE_BINS,
    ) -> "UncertainRectangle":
        return cls(key, Rect([x1, y1], [x2, y2]), distance_bins=distance_bins)

    @property
    def key(self) -> Hashable:
        return self._key

    @property
    def rect(self) -> Rect:
        return self._rect

    @property
    def mbr(self) -> Rect:
        return self._rect

    def mindist(self, q) -> float:
        return self._rect.mindist(_as_point2d(q))

    def maxdist(self, q) -> float:
        return self._rect.maxdist(_as_point2d(q))

    def distance_cdf(self, q, r: float) -> float:
        point = _as_point2d(q)
        area = disk_rect_intersection_area(point, max(float(r), 0.0), self._rect)
        return area / self._rect.area()

    def distance_distribution(self, q) -> DistanceDistribution:
        point = _as_point2d(q)
        return DistanceDistribution.from_cdf(
            lambda r: self.distance_cdf(point, r),
            self.mindist(point),
            self.maxdist(point),
            self._bins,
            key=self._key,
        )

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        xs = rng.uniform(self._rect.lows[0], self._rect.highs[0], size)
        ys = rng.uniform(self._rect.lows[1], self._rect.highs[1], size)
        return np.column_stack((xs, ys))

    def __repr__(self) -> str:  # pragma: no cover
        return f"UncertainRectangle(key={self._key!r}, rect={self._rect!r})"
