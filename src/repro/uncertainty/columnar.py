"""Columnar distribution kernels: batched cdf/sf evaluation, no per-object dispatch.

The VR pipeline's two hot loops — building the subregion table's cdf
matrix during initialisation and evaluating exclusion-product
quadrature during refinement — both reduce to "evaluate *every*
candidate's piecewise-linear cdf at a shared, sorted set of points".
Executing that as ``|C|`` separate :meth:`Histogram.cdf` calls makes
Python dispatch, not numpy arithmetic, the bottleneck once candidate
sets grow past a few dozen objects.

:class:`DistributionPack` removes the loop.  It concatenates all
candidates' histogram edges, densities, and cdf knots into flat ragged
arrays (values + offsets) once, then answers

* :meth:`DistributionPack.cdf_many`,
* :meth:`DistributionPack.sf_many`, and
* :meth:`DistributionPack.mass_between_many`

for the whole candidate set with a handful of ``np.searchsorted`` /
``bincount`` / gather passes.

Bit-identity
------------
The kernels reproduce ``np.interp`` (the scalar path used by
:meth:`Histogram.cdf`) **bit for bit**, so every downstream quantity —
subregion matrices, verifier bounds, refinement integrals — is
unchanged by the columnar rewrite:

* the bracketing index is the largest ``j`` with ``edges[j] <= x``
  (numpy's ``binary_search_with_guess`` contract), recovered here
  without per-row searches by the searchsorted duality
  ``edges[j] <= x_n  ⟺  searchsorted(xs, edges[j], 'left') <= n``
  followed by one ``bincount``/``cumsum`` over the packed rows;
* interior values use ``np.interp``'s exact expression
  ``(k1 - k0) / (e1 - e0) * (x - e0) + k0`` with the same operand
  order, exact hits return the knot itself, and points outside the
  support return ``0`` / the row's total mass, matching the
  ``left=0.0, right=knots[-1]`` arguments the scalar path passes.
"""

from __future__ import annotations

from operator import attrgetter
from typing import Sequence

import numpy as np

__all__ = ["DistributionPack"]

#: Cap on ``|C| * n`` cells processed per internal block.  Bounds the
#: transient integer scratch of the bincount/cumsum index recovery to a
#: few hundred MB regardless of how many evaluation points are passed.
_MAX_CELLS = 1 << 23

#: Below this many rows the fixed cost of the batched index-recovery
#: kernel exceeds a few direct ``np.interp`` calls, so ``cdf_many``
#: falls back to the row loop.  Both paths are bit-identical, so the
#: dispatch is purely a latency decision.
_SMALL_PACK = 8

#: Beyond this many evaluation points per row, arithmetic dominates
#: per-row call overhead and compiled ``np.interp`` (≈3 element passes)
#: beats the batched kernel (≈7 element passes), measured crossover
#: ≈200 points independent of row count; below it, eliminating |C|
#: Python-level calls is the win.  Same bits either way — the batched
#: kernel exists for the many-rows × moderate-width shape of
#: subregion-table initialisation.
_WIDE_EVAL = 256


class DistributionPack:
    """Flat ragged-array view of a candidate set's distance histograms.

    Parameters
    ----------
    distributions:
        A sequence of :class:`~repro.uncertainty.distance.DistanceDistribution`
        objects (anything with a ``.histogram`` attribute) or bare
        :class:`~repro.uncertainty.histogram.Histogram` instances.  Row
        ``i`` of every kernel output corresponds to ``distributions[i]``.

    Notes
    -----
    The pack is immutable: it snapshots each histogram's edges,
    densities, and cdf knots at construction.  All kernels return dense
    ``(|C|, n)`` matrices evaluated without any per-object Python
    dispatch.
    """

    __slots__ = (
        "_shm",
        "_edges",
        "_knots",
        "_densities",
        "_offsets",
        "_dens_offsets",
        "_nbins",
        "_totals",
        "_size",
        "_run_slope",
        "_run_e0",
        "_run_k0",
        "_run_lead",
        "_run_trail",
        "_run_is_bin",
        "_bin_edge_idx",
    )

    def __init__(self, distributions: Sequence) -> None:
        if not len(distributions):
            raise ValueError("DistributionPack requires at least one distribution")
        # C-level attrgetter maps over private slots keep packing cost
        # near list-copy speed; the public properties would build one
        # read-only view per object per field, which is exactly the
        # per-object overhead this class exists to amortise.
        try:
            histograms = list(map(attrgetter("_histogram"), distributions))
        except AttributeError:
            histograms = [getattr(d, "histogram", d) for d in distributions]
        try:
            edges_parts = list(map(attrgetter("_edges"), histograms))
            knots_parts = list(map(attrgetter("_cdf_knots"), histograms))
            dens_parts = list(map(attrgetter("_densities"), histograms))
        except AttributeError:
            bad = next(
                type(h).__name__
                for h in histograms
                if not hasattr(h, "_edges")
            )
            raise TypeError(
                "DistributionPack takes DistanceDistributions or "
                f"Histograms, got {bad}"
            ) from None
        self._finish(
            np.concatenate(edges_parts),
            np.concatenate(knots_parts),
            np.concatenate(dens_parts),
            np.fromiter(
                map(len, edges_parts), dtype=np.intp, count=len(edges_parts)
            ),
        )

    def _finish(
        self,
        edges: np.ndarray,
        knots: np.ndarray,
        densities: np.ndarray,
        sizes: np.ndarray,
    ) -> None:
        """Derive offsets/row maps from flat columns (shared with take
        and from_shared)."""
        try:
            self._shm
        except AttributeError:
            self._shm = None  # only from_shared packs hold an attachment
        self._size = sizes.size
        self._offsets = np.zeros(self._size + 1, dtype=np.intp)
        np.cumsum(sizes, out=self._offsets[1:])
        self._edges = edges
        self._knots = knots
        self._densities = densities
        self._dens_offsets = self._offsets - np.arange(
            self._size + 1, dtype=np.intp
        )
        self._nbins = sizes - 1
        self._totals = self._knots[self._offsets[1:] - 1]
        self._run_slope = None  # run tables built on first kernel use
        for arr in (
            self._edges,
            self._knots,
            self._densities,
            self._offsets,
            self._dens_offsets,
            self._nbins,
            self._totals,
        ):
            arr.flags.writeable = False

    def _ensure_run_tables(self) -> None:
        """Build the run-length kernel tables (lazily; kernel use only).

        Evaluated against ascending points, each row is a sequence of
        runs — one "left of support" run (value 0), one run per bin
        (np.interp's interior expression), one "right of support" run
        (value = total mass).  Per-run (slope, e0, k0) triples are
        static; only run lengths depend on the evaluation points.
        Small packs route to the row-interp fallback and never pay for
        this.
        """
        if self._run_slope is not None:
            return
        # Row r owns runs [off[r]+r, off[r+1]+r+1) — sizes[r]+1 runs.
        run_offsets = self._offsets + np.arange(self._size + 1, dtype=np.intp)
        n_runs = int(run_offsets[-1])
        lead = run_offsets[:-1]
        trail = run_offsets[1:] - 1
        is_bin = np.ones(n_runs, dtype=bool)
        is_bin[lead] = False
        is_bin[trail] = False
        bin_edge = np.ones(self._edges.size, dtype=bool)
        bin_edge[self._offsets[1:] - 1] = False  # last edge of each row
        bin_edge_idx = np.flatnonzero(bin_edge)
        e0 = self._edges[bin_edge_idx]
        k0 = self._knots[bin_edge_idx]
        slope = (self._knots[bin_edge_idx + 1] - k0) / (
            self._edges[bin_edge_idx + 1] - e0
        )
        run_slope = np.zeros(n_runs)
        run_e0 = np.zeros(n_runs)
        run_k0 = np.zeros(n_runs)
        run_slope[is_bin] = slope
        run_e0[is_bin] = e0
        run_k0[is_bin] = k0
        run_k0[trail] = self._totals
        self._run_e0 = run_e0
        self._run_k0 = run_k0
        self._run_lead = lead
        self._run_trail = trail
        self._run_is_bin = is_bin
        self._bin_edge_idx = bin_edge_idx
        for arr in (run_slope, run_e0, run_k0, lead, trail, is_bin, bin_edge_idx):
            arr.flags.writeable = False
        self._run_slope = run_slope

    def take(self, perm: np.ndarray) -> "DistributionPack":
        """A new pack whose row ``r`` is this pack's row ``perm[r]``.

        Pure ragged-array gathers — no per-object Python.  Used by
        :class:`~repro.core.subregions.SubregionTable` to apply the
        near-point sort without re-walking the histograms.
        """
        perm = np.asarray(perm, dtype=np.intp)
        sizes = np.diff(self._offsets)[perm]
        new_offsets = np.zeros(perm.size + 1, dtype=np.intp)
        np.cumsum(sizes, out=new_offsets[1:])
        starts = self._offsets[:-1][perm]
        gather = np.repeat(starts - new_offsets[:-1], sizes) + np.arange(
            int(new_offsets[-1]), dtype=np.intp
        )
        dens_sizes = sizes - 1
        dens_offsets = new_offsets - np.arange(perm.size + 1, dtype=np.intp)
        dens_starts = self._dens_offsets[:-1][perm]
        dens_gather = np.repeat(
            dens_starts - dens_offsets[:-1], dens_sizes
        ) + np.arange(int(dens_offsets[-1]), dtype=np.intp)
        pack = object.__new__(DistributionPack)
        pack._finish(
            self._edges[gather],
            self._knots[gather],
            self._densities[dens_gather],
            sizes,
        )
        return pack

    # ------------------------------------------------------------------
    # Shared-memory transport (DESIGN.md §13)
    # ------------------------------------------------------------------

    def to_shared(self):
        """Export the pack's flat columns into one shared-memory segment.

        Returns ``(segment, descriptor)`` from
        :func:`repro.shm.export_arrays`: the caller owns the segment
        (``release_segment`` it when every attacher is done); the
        descriptor pickles in O(1) and rehydrates via
        :meth:`from_shared` in any process.  Only the four flat columns
        ship — offsets and run tables are derived metadata and are
        rebuilt on attach.
        """
        from repro.shm import export_arrays

        return export_arrays(
            {
                "edges": self._edges,
                "knots": self._knots,
                "densities": self._densities,
                "sizes": np.diff(self._offsets),
            }
        )

    @classmethod
    def from_shared(cls, descriptor) -> "DistributionPack":
        """Rehydrate a pack from an exported segment, zero-copy.

        The returned pack's columns are read-only views over the mapped
        segment — no element is copied, so attaching is O(descriptor),
        not O(data).  Kernels are bit-identical to the exporting pack's
        (same flat columns, same derived metadata).  The pack pins its
        attachment for its lifetime; the segment's *creator* still owns
        the unlink.
        """
        from repro.shm import attach_arrays

        shm, views = attach_arrays(descriptor)
        pack = object.__new__(cls)
        pack._shm = shm
        pack._finish(
            views["edges"], views["knots"], views["densities"], views["sizes"]
        )
        return pack

    # ------------------------------------------------------------------
    # Shape and raw columns
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """|C| — number of packed distributions."""
        return self._size

    @property
    def offsets(self) -> np.ndarray:
        """Row boundaries into :attr:`edges_flat` / :attr:`knots_flat`."""
        return self._offsets

    @property
    def edges_flat(self) -> np.ndarray:
        """All histogram edges, concatenated row by row."""
        return self._edges

    @property
    def knots_flat(self) -> np.ndarray:
        """All cdf knots, concatenated row by row (aligned with edges)."""
        return self._knots

    @property
    def densities_flat(self) -> np.ndarray:
        """All per-bin densities, concatenated row by row."""
        return self._densities

    @property
    def density_offsets(self) -> np.ndarray:
        """Row boundaries into :attr:`densities_flat`."""
        return self._dens_offsets

    @property
    def nbins(self) -> np.ndarray:
        """Bins per row, ``(|C|,)``."""
        return self._nbins

    @property
    def totals(self) -> np.ndarray:
        """Total mass per row (the cdf's right limit), ``(|C|,)``."""
        return self._totals

    @property
    def near(self) -> np.ndarray:
        """First support point per row (``histogram.lo``), ``(|C|,)``."""
        return self._edges[self._offsets[:-1]]

    @property
    def far(self) -> np.ndarray:
        """Last support point per row (``histogram.hi``), ``(|C|,)``."""
        return self._edges[self._offsets[1:] - 1]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DistributionPack(size={self._size}, "
            f"edges={self._edges.size}, bins={int(self._nbins.sum())})"
        )

    # ------------------------------------------------------------------
    # Batched kernels
    # ------------------------------------------------------------------

    def cdf_many(self, xs: float | np.ndarray) -> np.ndarray:
        """``D_i(x)`` for every row ``i`` and evaluation point ``x``.

        Returns a ``(|C|, n)`` matrix for 1-D input (``(|C|,)`` for a
        scalar), bit-identical to evaluating each row's
        :meth:`Histogram.cdf` separately.
        """
        arr = np.asarray(xs, dtype=float)
        scalar = arr.ndim == 0
        flat = np.atleast_1d(arr)
        if flat.ndim != 1:
            raise ValueError("evaluation points must be a scalar or 1-D array")
        n = flat.size
        if n == 0:
            return np.zeros((self._size, 0))
        if (
            self._size <= _SMALL_PACK
            or n > _WIDE_EVAL
            or not np.isfinite(flat).all()
        ):
            # Tiny packs and very wide evaluations are faster row by
            # row (same bits); non-finite points only have defined
            # semantics through np.interp's boundary handling.
            return self._cdf_rows_interp(flat, scalar)
        if np.all(flat[1:] >= flat[:-1]):
            out = self._cdf_sorted(flat)
        else:
            order = np.argsort(flat, kind="stable")
            inverse = np.empty(n, dtype=np.intp)
            inverse[order] = np.arange(n, dtype=np.intp)
            out = self._cdf_sorted(flat[order])[:, inverse]
        if scalar:
            return out[:, 0]
        return out

    def sf_many(self, xs: float | np.ndarray) -> np.ndarray:
        """``1 - D_i(x)`` for every row — the survival matrix.

        Matches ``1.0 - cdf`` (the expression every verifier product
        uses) rather than ``total_mass - cdf``, so rows whose mass is
        one only up to rounding behave exactly as on the scalar path.
        """
        return 1.0 - self.cdf_many(xs)

    def mass_between_many(
        self, a: float | np.ndarray, b: float | np.ndarray
    ) -> np.ndarray:
        """``Pr[a <= R_i <= b]`` for every row (``cdf(b) - cdf(a)``)."""
        a_arr, b_arr = np.broadcast_arrays(
            np.asarray(a, dtype=float), np.asarray(b, dtype=float)
        )
        if np.any(b_arr < a_arr):
            raise ValueError("mass_between_many requires a <= b")
        return self.cdf_many(b_arr) - self.cdf_many(a_arr)

    # ------------------------------------------------------------------
    # Core kernel
    # ------------------------------------------------------------------

    def _cdf_rows_interp(self, xs: np.ndarray, scalar: bool) -> np.ndarray:
        """Row-loop evaluation for tiny packs (same bits, less latency)."""
        offsets = self._offsets
        out = np.empty((self._size, xs.size))
        for i in range(self._size):
            lo, hi = offsets[i], offsets[i + 1]
            knots = self._knots[lo:hi]
            out[i] = np.interp(
                xs, self._edges[lo:hi], knots, left=0.0, right=knots[-1]
            )
        if scalar:
            return out[:, 0]
        return out

    def _cdf_sorted(self, xs: np.ndarray) -> np.ndarray:
        """cdf matrix for ascending ``xs`` (blocked over columns)."""
        n = xs.size
        block = max(1, _MAX_CELLS // self._size)
        if n <= block:
            return self._cdf_sorted_block(xs)
        out = np.empty((self._size, n))
        for start in range(0, n, block):
            stop = min(start + block, n)
            out[:, start:stop] = self._cdf_sorted_block(xs[start:stop])
        return out

    def _cdf_sorted_block(self, xs: np.ndarray) -> np.ndarray:
        n = xs.size
        # Duality: for ascending xs, edge e <= xs[t] ⟺
        # searchsorted(xs, e, 'left') <= t.  Each row therefore splits
        # the evaluation points into contiguous *runs* — left of the
        # support, one run per bin, right of the support — whose
        # (slope, e0, k0) triples were precomputed in _finish; only the
        # run lengths depend on xs.  Three np.repeat gathers and
        # np.interp's interior expression finish the job with no
        # per-object dispatch.
        self._ensure_run_tables()
        positions = np.searchsorted(xs, self._edges, side="left")
        reps = np.empty(self._run_slope.size, dtype=np.intp)
        reps[self._run_lead] = positions[self._offsets[:-1]]
        reps[self._run_trail] = n - positions[self._offsets[1:] - 1]
        reps[self._run_is_bin] = (
            positions[self._bin_edge_idx + 1] - positions[self._bin_edge_idx]
        )
        slope = np.repeat(self._run_slope, reps)
        e0 = np.repeat(self._run_e0, reps)
        k0 = np.repeat(self._run_k0, reps)
        # np.interp's interior expression, same operand order; the
        # boundary runs use (slope=0, e0=0) so they evaluate to exactly
        # k0 — 0.0 left of the support, the total mass right of it.
        out = slope * (np.tile(xs, self._size) - e0) + k0
        return out.reshape(self._size, n)
