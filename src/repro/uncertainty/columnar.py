"""Columnar distribution kernels: batched cdf/sf evaluation, no per-object dispatch.

The VR pipeline's two hot loops — building the subregion table's cdf
matrix during initialisation and evaluating exclusion-product
quadrature during refinement — both reduce to "evaluate *every*
candidate's piecewise-linear cdf at a shared, sorted set of points".
Executing that as ``|C|`` separate :meth:`Histogram.cdf` calls makes
Python dispatch, not numpy arithmetic, the bottleneck once candidate
sets grow past a few dozen objects.

:class:`DistributionPack` removes the loop.  It concatenates all
candidates' histogram edges, densities, and cdf knots into flat ragged
arrays (values + offsets) once, then answers

* :meth:`DistributionPack.cdf_many`,
* :meth:`DistributionPack.sf_many`, and
* :meth:`DistributionPack.mass_between_many`

for the whole candidate set with a handful of ``np.searchsorted`` /
``bincount`` / gather passes.

Bit-identity
------------
The kernels reproduce ``np.interp`` (the scalar path used by
:meth:`Histogram.cdf`) **bit for bit**, so every downstream quantity —
subregion matrices, verifier bounds, refinement integrals — is
unchanged by the columnar rewrite:

* the bracketing index is the largest ``j`` with ``edges[j] <= x``
  (numpy's ``binary_search_with_guess`` contract), recovered here
  without per-row searches by the searchsorted duality
  ``edges[j] <= x_n  ⟺  searchsorted(xs, edges[j], 'left') <= n``
  followed by one ``bincount``/``cumsum`` over the packed rows;
* interior values use ``np.interp``'s exact expression
  ``(k1 - k0) / (e1 - e0) * (x - e0) + k0`` with the same operand
  order, exact hits return the knot itself, and points outside the
  support return ``0`` / the row's total mass, matching the
  ``left=0.0, right=knots[-1]`` arguments the scalar path passes.
"""

from __future__ import annotations

import warnings
from operator import attrgetter
from typing import Sequence

import numpy as np

__all__ = ["DistributionPack", "PagedDistributionPack"]

#: Cap on ``|C| * n`` cells processed per internal block.  Bounds the
#: transient integer scratch of the bincount/cumsum index recovery to a
#: few hundred MB regardless of how many evaluation points are passed.
_MAX_CELLS = 1 << 23

#: Below this many rows the fixed cost of the batched index-recovery
#: kernel exceeds a few direct ``np.interp`` calls, so ``cdf_many``
#: falls back to the row loop.  Both paths are bit-identical, so the
#: dispatch is purely a latency decision.
_SMALL_PACK = 8

#: Beyond this many evaluation points per row, arithmetic dominates
#: per-row call overhead and compiled ``np.interp`` (≈3 element passes)
#: beats the batched kernel (≈7 element passes), measured crossover
#: ≈200 points independent of row count; below it, eliminating |C|
#: Python-level calls is the win.  Same bits either way — the batched
#: kernel exists for the many-rows × moderate-width shape of
#: subregion-table initialisation.
_WIDE_EVAL = 256


class DistributionPack:
    """Flat ragged-array view of a candidate set's distance histograms.

    Parameters
    ----------
    distributions:
        A sequence of :class:`~repro.uncertainty.distance.DistanceDistribution`
        objects (anything with a ``.histogram`` attribute) or bare
        :class:`~repro.uncertainty.histogram.Histogram` instances.  Row
        ``i`` of every kernel output corresponds to ``distributions[i]``.

    Notes
    -----
    The pack is immutable: it snapshots each histogram's edges,
    densities, and cdf knots at construction.  All kernels return dense
    ``(|C|, n)`` matrices evaluated without any per-object Python
    dispatch.
    """

    __slots__ = (
        "_shm",
        "_store",
        "_edges",
        "_knots",
        "_densities",
        "_offsets",
        "_dens_offsets",
        "_nbins",
        "_totals",
        "_size",
        "_run_slope",
        "_run_e0",
        "_run_k0",
        "_run_lead",
        "_run_trail",
        "_run_is_bin",
        "_bin_edge_idx",
    )

    def __init__(self, distributions: Sequence) -> None:
        if not len(distributions):
            raise ValueError("DistributionPack requires at least one distribution")
        # C-level attrgetter maps over private slots keep packing cost
        # near list-copy speed; the public properties would build one
        # read-only view per object per field, which is exactly the
        # per-object overhead this class exists to amortise.
        try:
            histograms = list(map(attrgetter("_histogram"), distributions))
        except AttributeError:
            histograms = [getattr(d, "histogram", d) for d in distributions]
        try:
            edges_parts = list(map(attrgetter("_edges"), histograms))
            knots_parts = list(map(attrgetter("_cdf_knots"), histograms))
            dens_parts = list(map(attrgetter("_densities"), histograms))
        except AttributeError:
            bad = next(
                type(h).__name__
                for h in histograms
                if not hasattr(h, "_edges")
            )
            raise TypeError(
                "DistributionPack takes DistanceDistributions or "
                f"Histograms, got {bad}"
            ) from None
        self._finish(
            np.concatenate(edges_parts),
            np.concatenate(knots_parts),
            np.concatenate(dens_parts),
            np.fromiter(
                map(len, edges_parts), dtype=np.intp, count=len(edges_parts)
            ),
        )

    def _finish(
        self,
        edges: np.ndarray,
        knots: np.ndarray,
        densities: np.ndarray,
        sizes: np.ndarray,
    ) -> None:
        """Derive offsets/row maps from flat columns (shared with take
        and from_shared)."""
        try:
            self._shm
        except AttributeError:
            self._shm = None  # only from_shared packs hold an attachment
        try:
            self._store
        except AttributeError:
            self._store = None  # only from_store packs pin a column store
        self._size = sizes.size
        self._offsets = np.zeros(self._size + 1, dtype=np.intp)
        np.cumsum(sizes, out=self._offsets[1:])
        self._edges = edges
        self._knots = knots
        self._densities = densities
        self._dens_offsets = self._offsets - np.arange(
            self._size + 1, dtype=np.intp
        )
        self._nbins = sizes - 1
        self._totals = self._knots[self._offsets[1:] - 1]
        self._run_slope = None  # run tables built on first kernel use
        for arr in (
            self._edges,
            self._knots,
            self._densities,
            self._offsets,
            self._dens_offsets,
            self._nbins,
            self._totals,
        ):
            arr.flags.writeable = False

    def _ensure_run_tables(self) -> None:
        """Build the run-length kernel tables (lazily; kernel use only).

        Evaluated against ascending points, each row is a sequence of
        runs — one "left of support" run (value 0), one run per bin
        (np.interp's interior expression), one "right of support" run
        (value = total mass).  Per-run (slope, e0, k0) triples are
        static; only run lengths depend on the evaluation points.
        Small packs route to the row-interp fallback and never pay for
        this.
        """
        if self._run_slope is not None:
            return
        # Row r owns runs [off[r]+r, off[r+1]+r+1) — sizes[r]+1 runs.
        run_offsets = self._offsets + np.arange(self._size + 1, dtype=np.intp)
        n_runs = int(run_offsets[-1])
        lead = run_offsets[:-1]
        trail = run_offsets[1:] - 1
        is_bin = np.ones(n_runs, dtype=bool)
        is_bin[lead] = False
        is_bin[trail] = False
        bin_edge = np.ones(self._edges.size, dtype=bool)
        bin_edge[self._offsets[1:] - 1] = False  # last edge of each row
        bin_edge_idx = np.flatnonzero(bin_edge)
        e0 = self._edges[bin_edge_idx]
        k0 = self._knots[bin_edge_idx]
        slope = (self._knots[bin_edge_idx + 1] - k0) / (
            self._edges[bin_edge_idx + 1] - e0
        )
        run_slope = np.zeros(n_runs)
        run_e0 = np.zeros(n_runs)
        run_k0 = np.zeros(n_runs)
        run_slope[is_bin] = slope
        run_e0[is_bin] = e0
        run_k0[is_bin] = k0
        run_k0[trail] = self._totals
        self._run_e0 = run_e0
        self._run_k0 = run_k0
        self._run_lead = lead
        self._run_trail = trail
        self._run_is_bin = is_bin
        self._bin_edge_idx = bin_edge_idx
        for arr in (run_slope, run_e0, run_k0, lead, trail, is_bin, bin_edge_idx):
            arr.flags.writeable = False
        self._run_slope = run_slope

    def take(self, perm: np.ndarray) -> "DistributionPack":
        """A new pack whose row ``r`` is this pack's row ``perm[r]``.

        Pure ragged-array gathers — no per-object Python.  Used by
        :class:`~repro.core.subregions.SubregionTable` to apply the
        near-point sort without re-walking the histograms.
        """
        perm = np.asarray(perm, dtype=np.intp)
        sizes = np.diff(self._offsets)[perm]
        new_offsets = np.zeros(perm.size + 1, dtype=np.intp)
        np.cumsum(sizes, out=new_offsets[1:])
        starts = self._offsets[:-1][perm]
        gather = np.repeat(starts - new_offsets[:-1], sizes) + np.arange(
            int(new_offsets[-1]), dtype=np.intp
        )
        dens_sizes = sizes - 1
        dens_offsets = new_offsets - np.arange(perm.size + 1, dtype=np.intp)
        dens_starts = self._dens_offsets[:-1][perm]
        dens_gather = np.repeat(
            dens_starts - dens_offsets[:-1], dens_sizes
        ) + np.arange(int(dens_offsets[-1]), dtype=np.intp)
        pack = object.__new__(DistributionPack)
        pack._finish(
            self._edges[gather],
            self._knots[gather],
            self._densities[dens_gather],
            sizes,
        )
        return pack

    # ------------------------------------------------------------------
    # Column-store transport (DESIGN.md §13/§16)
    # ------------------------------------------------------------------

    def to_store(self, backend: str = "shm", **options):
        """Export the pack's columns into a fresh
        :class:`~repro.storage.base.ColumnStore` of ``backend``.

        Besides the four defining columns (``edges``/``knots``/
        ``densities``/``sizes``) three small derived columns ship too
        (``totals``/``near``/``far``) so a chunked consumer keeps its
        O(|C|) row metadata resident without touching the flats.  The
        caller owns the store (``close`` unlinks); the descriptor
        rehydrates via :meth:`from_store` in any process.
        """
        from repro.storage import create_store

        return create_store(
            backend,
            {
                "edges": self._edges,
                "knots": self._knots,
                "densities": self._densities,
                "sizes": np.asarray(np.diff(self._offsets), dtype=np.int64),
                "totals": self._totals,
                "near": self.near,
                "far": self.far,
            },
            **options,
        )

    @classmethod
    def from_store(cls, store) -> "DistributionPack":
        """A pack view over a column store.

        Resident backends (``ram``/``shm``) rehydrate zero-copy: the
        flat columns are read-only views, kernels are bit-identical to
        the exporting pack's.  Chunked backends (``mmap``) return a
        :class:`PagedDistributionPack`, which keeps only O(|C|) row
        metadata resident and streams the flats block by block —
        same bits, bounded memory.  Either way the pack pins the store
        for its lifetime; the store's *creator* owns the unlink.
        """
        if store.chunked:
            return PagedDistributionPack(store)
        pack = object.__new__(cls)
        pack._store = store
        pack._finish(
            store.get("edges"),
            store.get("knots"),
            store.get("densities"),
            np.asarray(store.get("sizes"), dtype=np.intp),
        )
        return pack

    # -- legacy shared-memory surface (deprecated, one release) ---------

    def to_shared(self):
        """Deprecated: use ``to_store('shm')``.

        Returns the legacy ``(segment, descriptor)`` pair; the segment
        is the store's and :func:`repro.shm.release_segment` still
        releases it.
        """
        warnings.warn(
            "DistributionPack.to_shared is deprecated; use "
            "to_store('shm') (repro.storage)",
            DeprecationWarning,
            stacklevel=2,
        )
        store = self.to_store("shm")
        return store.segment, store.shm_descriptor

    @classmethod
    def from_shared(cls, descriptor) -> "DistributionPack":
        """Deprecated: use ``from_store(open_store(descriptor))``."""
        warnings.warn(
            "DistributionPack.from_shared is deprecated; use "
            "from_store(open_store(descriptor)) (repro.storage)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.storage import ShmStore

        store = ShmStore.attach(descriptor)
        pack = object.__new__(cls)
        pack._store = store
        pack._shm = store.segment
        pack._finish(
            store.get("edges"),
            store.get("knots"),
            store.get("densities"),
            np.asarray(store.get("sizes"), dtype=np.intp),
        )
        return pack

    # ------------------------------------------------------------------
    # Shape and raw columns
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """|C| — number of packed distributions."""
        return self._size

    @property
    def offsets(self) -> np.ndarray:
        """Row boundaries into :attr:`edges_flat` / :attr:`knots_flat`."""
        return self._offsets

    @property
    def edges_flat(self) -> np.ndarray:
        """All histogram edges, concatenated row by row."""
        return self._edges

    @property
    def knots_flat(self) -> np.ndarray:
        """All cdf knots, concatenated row by row (aligned with edges)."""
        return self._knots

    @property
    def densities_flat(self) -> np.ndarray:
        """All per-bin densities, concatenated row by row."""
        return self._densities

    @property
    def density_offsets(self) -> np.ndarray:
        """Row boundaries into :attr:`densities_flat`."""
        return self._dens_offsets

    @property
    def nbins(self) -> np.ndarray:
        """Bins per row, ``(|C|,)``."""
        return self._nbins

    @property
    def totals(self) -> np.ndarray:
        """Total mass per row (the cdf's right limit), ``(|C|,)``."""
        return self._totals

    @property
    def near(self) -> np.ndarray:
        """First support point per row (``histogram.lo``), ``(|C|,)``."""
        return self._edges[self._offsets[:-1]]

    @property
    def far(self) -> np.ndarray:
        """Last support point per row (``histogram.hi``), ``(|C|,)``."""
        return self._edges[self._offsets[1:] - 1]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DistributionPack(size={self._size}, "
            f"edges={self._edges.size}, bins={int(self._nbins.sum())})"
        )

    # ------------------------------------------------------------------
    # Batched kernels
    # ------------------------------------------------------------------

    def cdf_many(self, xs: float | np.ndarray) -> np.ndarray:
        """``D_i(x)`` for every row ``i`` and evaluation point ``x``.

        Returns a ``(|C|, n)`` matrix for 1-D input (``(|C|,)`` for a
        scalar), bit-identical to evaluating each row's
        :meth:`Histogram.cdf` separately.
        """
        arr = np.asarray(xs, dtype=float)
        scalar = arr.ndim == 0
        flat = np.atleast_1d(arr)
        if flat.ndim != 1:
            raise ValueError("evaluation points must be a scalar or 1-D array")
        n = flat.size
        if n == 0:
            return np.zeros((self._size, 0))
        if (
            self._size <= _SMALL_PACK
            or n > _WIDE_EVAL
            or not np.isfinite(flat).all()
        ):
            # Tiny packs and very wide evaluations are faster row by
            # row (same bits); non-finite points only have defined
            # semantics through np.interp's boundary handling.
            return self._cdf_rows_interp(flat, scalar)
        if np.all(flat[1:] >= flat[:-1]):
            out = self._cdf_sorted(flat)
        else:
            order = np.argsort(flat, kind="stable")
            inverse = np.empty(n, dtype=np.intp)
            inverse[order] = np.arange(n, dtype=np.intp)
            out = self._cdf_sorted(flat[order])[:, inverse]
        if scalar:
            return out[:, 0]
        return out

    def sf_many(self, xs: float | np.ndarray) -> np.ndarray:
        """``1 - D_i(x)`` for every row — the survival matrix.

        Matches ``1.0 - cdf`` (the expression every verifier product
        uses) rather than ``total_mass - cdf``, so rows whose mass is
        one only up to rounding behave exactly as on the scalar path.
        """
        return 1.0 - self.cdf_many(xs)

    def mass_between_many(
        self, a: float | np.ndarray, b: float | np.ndarray
    ) -> np.ndarray:
        """``Pr[a <= R_i <= b]`` for every row (``cdf(b) - cdf(a)``)."""
        a_arr, b_arr = np.broadcast_arrays(
            np.asarray(a, dtype=float), np.asarray(b, dtype=float)
        )
        if np.any(b_arr < a_arr):
            raise ValueError("mass_between_many requires a <= b")
        return self.cdf_many(b_arr) - self.cdf_many(a_arr)

    def ppf_many(self, u: np.ndarray) -> np.ndarray:
        """Per-row inverse cdf: ``ppf_i(u[i])`` for a ``(|C|, T)`` input.

        Row ``i`` reproduces :meth:`Histogram.ppf` on row ``i``'s knots
        bit for bit — same range check, same clip, same ``np.interp``
        call — so drawing ``U ~ uniform(0, 1)`` row-major and scaling
        row ``i`` by ``totals[i]`` yields *exactly* the stream
        ``histogram.sample(rng, T)`` would produce per row (numpy's
        ``uniform(0, m)`` evaluates ``0 + m·u`` on the same doubles).
        This is how the MC verifier samples through the pack instead of
        row objects (DESIGN.md §15/§16).
        """
        u = np.asarray(u, dtype=float)
        if u.ndim != 2 or u.shape[0] != self._size:
            raise ValueError(
                f"ppf_many expects a ({self._size}, T) matrix, got "
                f"shape {u.shape}"
            )
        return self._ppf_rows(u)

    def _ppf_rows(self, u: np.ndarray) -> np.ndarray:
        offsets = self._offsets
        totals = self._totals
        out = np.empty_like(u)
        for i in range(self._size):
            row = u[i]
            if np.any((row < -1e-12) | (row > totals[i] + 1e-12)):
                raise ValueError(
                    f"ppf_many argument outside [0, total_mass] in row {i}"
                )
            lo, hi = offsets[i], offsets[i + 1]
            out[i] = np.interp(
                np.clip(row, 0.0, totals[i]),
                self._knots[lo:hi],
                self._edges[lo:hi],
            )
        return out

    # ------------------------------------------------------------------
    # Core kernel
    # ------------------------------------------------------------------

    def _cdf_rows_interp(self, xs: np.ndarray, scalar: bool) -> np.ndarray:
        """Row-loop evaluation for tiny packs (same bits, less latency)."""
        offsets = self._offsets
        out = np.empty((self._size, xs.size))
        for i in range(self._size):
            lo, hi = offsets[i], offsets[i + 1]
            knots = self._knots[lo:hi]
            out[i] = np.interp(
                xs, self._edges[lo:hi], knots, left=0.0, right=knots[-1]
            )
        if scalar:
            return out[:, 0]
        return out

    def _cdf_sorted(self, xs: np.ndarray) -> np.ndarray:
        """cdf matrix for ascending ``xs`` (blocked over columns)."""
        n = xs.size
        block = max(1, _MAX_CELLS // self._size)
        if n <= block:
            return self._cdf_sorted_block(xs)
        out = np.empty((self._size, n))
        for start in range(0, n, block):
            stop = min(start + block, n)
            out[:, start:stop] = self._cdf_sorted_block(xs[start:stop])
        return out

    def _cdf_sorted_block(self, xs: np.ndarray) -> np.ndarray:
        n = xs.size
        # Duality: for ascending xs, edge e <= xs[t] ⟺
        # searchsorted(xs, e, 'left') <= t.  Each row therefore splits
        # the evaluation points into contiguous *runs* — left of the
        # support, one run per bin, right of the support — whose
        # (slope, e0, k0) triples were precomputed in _finish; only the
        # run lengths depend on xs.  Three np.repeat gathers and
        # np.interp's interior expression finish the job with no
        # per-object dispatch.
        self._ensure_run_tables()
        positions = np.searchsorted(xs, self._edges, side="left")
        reps = np.empty(self._run_slope.size, dtype=np.intp)
        reps[self._run_lead] = positions[self._offsets[:-1]]
        reps[self._run_trail] = n - positions[self._offsets[1:] - 1]
        reps[self._run_is_bin] = (
            positions[self._bin_edge_idx + 1] - positions[self._bin_edge_idx]
        )
        slope = np.repeat(self._run_slope, reps)
        e0 = np.repeat(self._run_e0, reps)
        k0 = np.repeat(self._run_k0, reps)
        # np.interp's interior expression, same operand order; the
        # boundary runs use (slope=0, e0=0) so they evaluate to exactly
        # k0 — 0.0 left of the support, the total mass right of it.
        out = slope * (np.tile(xs, self._size) - e0) + k0
        return out.reshape(self._size, n)


class PagedDistributionPack(DistributionPack):
    """A pack view over a *chunked* column store (mmap): same kernels,
    bounded memory.

    Only O(|C|) row metadata stays resident — sizes/offsets, totals,
    and the near/far support columns.  Every kernel walks the flat
    columns in blocks of at most ``block_flat`` elements: each block's
    slice of ``edges``/``knots``/``densities`` is read out of the
    store's window pool, finished into a transient in-RAM sub-pack,
    and evaluated with the ordinary kernels.  Because every
    :class:`DistributionPack` kernel is row-independent and
    bit-identical to the scalar ``np.interp`` path, the blocked
    evaluation produces *exactly* the matrix the resident pack would —
    the chunk boundary is invisible in the bits (property-tested).
    """

    __slots__ = ("_block_flat", "_near_col", "_far_col")

    #: Required columns; ``to_store`` writes all of them.
    REQUIRED = ("edges", "knots", "densities", "sizes", "totals", "near", "far")

    def __init__(self, store, *, block_flat: int | None = None) -> None:
        missing = [name for name in self.REQUIRED if name not in store]
        if missing:
            raise ValueError(
                f"paged pack store is missing columns {missing}; export "
                "with DistributionPack.to_store (or write the derived "
                "metadata columns alongside the flats)"
            )
        self._shm = None
        self._store = store
        sizes = np.asarray(store.get("sizes"), dtype=np.intp)
        self._size = sizes.size
        offsets = np.zeros(self._size + 1, dtype=np.intp)
        np.cumsum(sizes, out=offsets[1:])
        self._offsets = offsets
        self._dens_offsets = offsets - np.arange(self._size + 1, dtype=np.intp)
        self._nbins = sizes - 1
        self._totals = np.asarray(store.get("totals"), dtype=float)
        self._near_col = np.asarray(store.get("near"), dtype=float)
        self._far_col = np.asarray(store.get("far"), dtype=float)
        for arr in (
            self._offsets,
            self._dens_offsets,
            self._nbins,
            self._totals,
            self._near_col,
            self._far_col,
        ):
            if arr.flags.writeable:
                arr.flags.writeable = False
        if block_flat is None:
            page_bytes = getattr(store, "page_bytes", 1 << 20)
            pool_pages = getattr(store, "pool_pages", 64)
            # Budget roughly a quarter of the window pool per block so
            # one block's three column slices never thrash their own
            # pages back out mid-read.
            block_flat = (page_bytes * max(1, pool_pages // 4)) // 8
        self._block_flat = max(4096, int(block_flat))

    # -- block iteration -------------------------------------------------

    def _iter_blocks(self):
        """Yield ``(r0, r1, sub_pack)`` covering all rows in order."""
        offsets = self._offsets
        r0 = 0
        while r0 < self._size:
            target = offsets[r0] + self._block_flat
            r1 = int(np.searchsorted(offsets, target, side="right")) - 1
            r1 = min(max(r1, r0 + 1), self._size)
            yield r0, r1, self._materialize_rows(r0, r1)
            r0 = r1

    def _materialize_rows(self, r0: int, r1: int) -> DistributionPack:
        """Rows ``[r0, r1)`` as a transient resident sub-pack."""
        store = self._store
        offsets = self._offsets
        o0, o1 = int(offsets[r0]), int(offsets[r1])
        sub = object.__new__(DistributionPack)
        sub._finish(
            store.read("edges", o0, o1),
            store.read("knots", o0, o1),
            store.read("densities", o0 - r0, o1 - r1),
            np.asarray(np.diff(offsets[r0 : r1 + 1]), dtype=np.intp),
        )
        return sub

    # -- kernels (blocked, bit-identical) --------------------------------

    def cdf_many(self, xs: float | np.ndarray) -> np.ndarray:
        arr = np.asarray(xs, dtype=float)
        scalar = arr.ndim == 0
        flat = np.atleast_1d(arr)
        if flat.ndim != 1:
            raise ValueError("evaluation points must be a scalar or 1-D array")
        n = flat.size
        if n == 0:
            return np.zeros((self._size, 0))
        out = np.empty((self._size, n))
        for r0, r1, sub in self._iter_blocks():
            out[r0:r1] = sub.cdf_many(flat)
        if scalar:
            return out[:, 0]
        return out

    def ppf_many(self, u: np.ndarray) -> np.ndarray:
        u = np.asarray(u, dtype=float)
        if u.ndim != 2 or u.shape[0] != self._size:
            raise ValueError(
                f"ppf_many expects a ({self._size}, T) matrix, got "
                f"shape {u.shape}"
            )
        out = np.empty_like(u)
        for r0, r1, sub in self._iter_blocks():
            out[r0:r1] = sub._ppf_rows(u[r0:r1])
        return out

    def take(self, perm: np.ndarray) -> DistributionPack:
        """Materialise rows ``perm`` into a resident pack.

        Reads maximal consecutive runs of ``perm`` in single store
        ranges; the result is an ordinary in-RAM pack (candidate sets
        that survive filtering are assumed to fit — only the full
        corpus is out-of-core).
        """
        perm = np.asarray(perm, dtype=np.intp)
        if perm.size == 0:
            raise ValueError("take requires at least one row")
        edges_parts, knots_parts, dens_parts, sizes_parts = [], [], [], []
        start = 0
        while start < perm.size:
            stop = start + 1
            while stop < perm.size and perm[stop] == perm[stop - 1] + 1:
                stop += 1
            r0, r1 = int(perm[start]), int(perm[stop - 1]) + 1
            sub = self._materialize_rows(r0, r1)
            edges_parts.append(sub.edges_flat)
            knots_parts.append(sub.knots_flat)
            dens_parts.append(sub.densities_flat)
            sizes_parts.append(np.diff(sub.offsets))
            start = stop
        pack = object.__new__(DistributionPack)
        pack._finish(
            np.concatenate(edges_parts),
            np.concatenate(knots_parts),
            np.concatenate(dens_parts),
            np.asarray(np.concatenate(sizes_parts), dtype=np.intp),
        )
        return pack

    # -- resident metadata / materialising columns -----------------------

    @property
    def near(self) -> np.ndarray:
        return self._near_col

    @property
    def far(self) -> np.ndarray:
        return self._far_col

    @property
    def edges_flat(self) -> np.ndarray:
        """The whole column, materialised (prefer blocked kernels)."""
        return self._store.get("edges")

    @property
    def knots_flat(self) -> np.ndarray:
        """The whole column, materialised (prefer blocked kernels)."""
        return self._store.get("knots")

    @property
    def densities_flat(self) -> np.ndarray:
        """The whole column, materialised (prefer blocked kernels)."""
        return self._store.get("densities")

    @property
    def store(self):
        """The backing chunked column store."""
        return self._store

    def to_store(self, backend: str = "shm", **options):
        from repro.storage import create_store

        return create_store(
            backend,
            {
                "edges": self._store.get("edges"),
                "knots": self._store.get("knots"),
                "densities": self._store.get("densities"),
                "sizes": np.asarray(np.diff(self._offsets), dtype=np.int64),
                "totals": self._totals,
                "near": self._near_col,
                "far": self._far_col,
            },
            **options,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PagedDistributionPack(size={self._size}, "
            f"edges={int(self._offsets[-1])}, block_flat={self._block_flat})"
        )
