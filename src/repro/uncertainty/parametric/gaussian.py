"""Closed-form distance distributions for truncated-Gaussian objects.

For a 1-D value distribution ``X`` with truncated-normal law on
``[lo, hi]`` and a query point ``q``, the distance ``R = |X - q|``
has the exact folded cdf

    D(r) = F(min(hi, q + r)) - F(max(lo, q - r))

where ``F`` is the truncated-normal cdf.  Everything here is a couple
of ``ndtr`` calls per evaluation — no 300-bar histogram, no fold.

:class:`GaussianMixtureDistance` is the weighted sum of component
folds; mixtures model multi-modal sensor error (a reading that is
usually near the truth but occasionally glitches to a biased mode).

Materialisation reproduces the histogram pipeline *exactly*:
``TruncatedGaussianPdf(...).to_histogram().normalized()`` folded about
``q`` is byte-identical to what
:meth:`UncertainObject.distance_distribution` builds, so fallbacks are
bit-for-bit comparable with the histogram engine.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np
from scipy.special import ndtr, ndtri

from repro.uncertainty.distance import DistanceDistribution
from repro.uncertainty.parametric.base import (
    ParametricDistance,
    as_float_array,
    register_family,
    scalar_or_array,
)
from repro.uncertainty.pdfs import (
    DEFAULT_GAUSSIAN_BARS,
    MixturePdf,
    TruncatedGaussianPdf,
)

__all__ = ["GaussianMixtureDistance", "TruncatedGaussianDistance"]


@register_family
class TruncatedGaussianDistance(ParametricDistance):
    """Exact ``|X - q|`` distribution for a truncated-Gaussian object."""

    __slots__ = (
        "_q",
        "_lo",
        "_hi",
        "_mean",
        "_sigma",
        "_bars",
        "_phi_lo",
        "_denom",
        "_near",
        "_far",
    )

    family = "truncated_gaussian"

    def __init__(
        self,
        q: float,
        lo: float,
        hi: float,
        mean: float | None = None,
        sigma: float | None = None,
        bars: int = DEFAULT_GAUSSIAN_BARS,
        key: Hashable = None,
    ) -> None:
        super().__init__(key)
        if not hi > lo:
            raise ValueError("truncated Gaussian needs hi > lo")
        self._q = float(q)
        self._lo = float(lo)
        self._hi = float(hi)
        # Same default expressions as TruncatedGaussianPdf, so passing
        # the resolved values back to it materialises identically.
        self._mean = 0.5 * (lo + hi) if mean is None else float(mean)
        self._sigma = (hi - lo) / 6.0 if sigma is None else float(sigma)
        if self._sigma <= 0:
            raise ValueError("sigma must be positive")
        self._bars = int(bars)
        if self._bars < 1:
            raise ValueError("bars must be >= 1")
        self._phi_lo = float(ndtr((self._lo - self._mean) / self._sigma))
        phi_hi = float(ndtr((self._hi - self._mean) / self._sigma))
        self._denom = phi_hi - self._phi_lo
        if self._denom <= 0:
            raise ValueError("truncation interval carries no Gaussian mass")
        self._near = max(self._lo - self._q, self._q - self._hi, 0.0)
        self._far = max(self._q - self._lo, self._hi - self._q)

    # ------------------------------------------------------------------

    @property
    def near(self) -> float:
        return self._near

    @property
    def far(self) -> float:
        return self._far

    @property
    def q(self) -> float:
        return self._q

    def _value_cdf(self, x: np.ndarray) -> np.ndarray:
        """Truncated-normal ``F(x)``, clamped to the interval."""
        z = (np.clip(x, self._lo, self._hi) - self._mean) / self._sigma
        return np.clip((ndtr(z) - self._phi_lo) / self._denom, 0.0, 1.0)

    def cdf(self, r):
        arr, was_scalar = as_float_array(r)
        rr = np.maximum(arr, 0.0)
        values = self._value_cdf(self._q + rr) - self._value_cdf(self._q - rr)
        return scalar_or_array(np.clip(values, 0.0, 1.0), was_scalar)

    def pdf(self, r):
        arr, was_scalar = as_float_array(r)
        values = self._fold_density(self._q + arr) + self._fold_density(self._q - arr)
        values = np.where(arr < 0, 0.0, values)
        return scalar_or_array(values, was_scalar)

    def _fold_density(self, x: np.ndarray) -> np.ndarray:
        inside = (x >= self._lo) & (x <= self._hi)
        z = (x - self._mean) / self._sigma
        dens = np.exp(-0.5 * z * z) / (
            self._sigma * self._denom * np.sqrt(2.0 * np.pi)
        )
        return np.where(inside, dens, 0.0)

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        u = rng.random(size)
        x = self._mean + self._sigma * ndtri(self._phi_lo + u * self._denom)
        return np.abs(np.clip(x, self._lo, self._hi) - self._q)

    def knots(self) -> np.ndarray:
        pts = np.array([abs(self._q - self._lo), abs(self._q - self._hi)])
        return np.unique(pts[(pts > self._near) & (pts < self._far)])

    # ------------------------------------------------------------------

    def _materialize(self) -> DistanceDistribution:
        pdf = TruncatedGaussianPdf(
            self._lo, self._hi, mean=self._mean, sigma=self._sigma, bars=self._bars
        )
        return DistanceDistribution.from_value_histogram(
            pdf.to_histogram().normalized(), self._q, key=self._key
        )

    def pack_params(self) -> np.ndarray:
        return np.array(
            [self._q, self._lo, self._hi, self._mean, self._sigma, self._bars]
        )

    @classmethod
    def from_params(cls, params: np.ndarray) -> "TruncatedGaussianDistance":
        q, lo, hi, mean, sigma, bars = (float(v) for v in params)
        return cls(q, lo, hi, mean=mean, sigma=sigma, bars=int(bars))

    # ------------------------------------------------------------------
    # Family-level vectorisation (one ndtr over all rows x all points)
    # ------------------------------------------------------------------

    @staticmethod
    def cdf_rows(rows: Sequence["TruncatedGaussianDistance"], xs: np.ndarray):
        """``(len(rows), len(xs))`` cdf matrix in a single ``ndtr`` sweep."""
        q = np.array([d._q for d in rows])[:, None]
        lo = np.array([d._lo for d in rows])[:, None]
        hi = np.array([d._hi for d in rows])[:, None]
        mean = np.array([d._mean for d in rows])[:, None]
        sigma = np.array([d._sigma for d in rows])[:, None]
        phi_lo = np.array([d._phi_lo for d in rows])[:, None]
        denom = np.array([d._denom for d in rows])[:, None]
        rr = np.maximum(np.asarray(xs, dtype=float)[None, :], 0.0)
        z_hi = (np.clip(q + rr, lo, hi) - mean) / sigma
        z_lo = (np.clip(q - rr, lo, hi) - mean) / sigma
        upper = np.clip((ndtr(z_hi) - phi_lo) / denom, 0.0, 1.0)
        lower = np.clip((ndtr(z_lo) - phi_lo) / denom, 0.0, 1.0)
        return np.clip(upper - lower, 0.0, 1.0)


@register_family
class GaussianMixtureDistance(ParametricDistance):
    """Weighted sum of truncated-Gaussian folds (multi-modal error)."""

    __slots__ = ("_components", "_weights", "_near", "_far")

    family = "gaussian_mixture"

    def __init__(
        self,
        q: float,
        components: Sequence[TruncatedGaussianPdf | TruncatedGaussianDistance],
        weights: Sequence[float] | None = None,
        key: Hashable = None,
    ) -> None:
        super().__init__(key)
        if not components:
            raise ValueError("a mixture needs at least one component")
        parts = []
        for comp in components:
            if isinstance(comp, TruncatedGaussianDistance):
                parts.append(
                    TruncatedGaussianDistance(
                        q,
                        comp._lo,
                        comp._hi,
                        mean=comp._mean,
                        sigma=comp._sigma,
                        bars=comp._bars,
                    )
                )
            else:
                parts.append(
                    TruncatedGaussianDistance(
                        q,
                        comp.lo,
                        comp.hi,
                        mean=comp.mean_parameter,
                        sigma=comp.sigma,
                        bars=comp.bars,
                    )
                )
        self._components = tuple(parts)
        if weights is None:
            weights = np.ones(len(parts))
        w = np.asarray(weights, dtype=float)
        if w.shape != (len(parts),) or np.any(w < 0) or w.sum() <= 0:
            raise ValueError("weights must be non-negative with positive sum")
        self._weights = w / w.sum()
        self._near = min(c.near for c in parts)
        self._far = max(c.far for c in parts)

    # ------------------------------------------------------------------

    @property
    def near(self) -> float:
        return self._near

    @property
    def far(self) -> float:
        return self._far

    @property
    def components(self) -> tuple[TruncatedGaussianDistance, ...]:
        return self._components

    @property
    def weights(self) -> np.ndarray:
        return self._weights.copy()

    @property
    def q(self) -> float:
        return self._components[0].q

    def cdf(self, r):
        arr, was_scalar = as_float_array(r)
        total = np.zeros_like(arr)
        for w, comp in zip(self._weights, self._components):
            total += w * comp.cdf(arr)
        return scalar_or_array(np.clip(total, 0.0, 1.0), was_scalar)

    def pdf(self, r):
        arr, was_scalar = as_float_array(r)
        total = np.zeros_like(arr)
        for w, comp in zip(self._weights, self._components):
            total += w * comp.pdf(arr)
        return scalar_or_array(total, was_scalar)

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        choices = rng.choice(len(self._components), size=size, p=self._weights)
        out = np.empty(size)
        for i, comp in enumerate(self._components):
            mask = choices == i
            count = int(mask.sum())
            if count:
                out[mask] = comp.sample(rng, count)
        return out

    def knots(self) -> np.ndarray:
        pts = [c.knots() for c in self._components]
        pts.append(np.array([c.near for c in self._components]))
        pts.append(np.array([c.far for c in self._components]))
        merged = np.unique(np.concatenate(pts))
        return merged[(merged > self._near) & (merged < self._far)]

    # ------------------------------------------------------------------

    def _materialize(self) -> DistanceDistribution:
        pdfs = [
            TruncatedGaussianPdf(
                c._lo, c._hi, mean=c._mean, sigma=c._sigma, bars=c._bars
            )
            for c in self._components
        ]
        mixture = MixturePdf(pdfs, self._weights)
        return DistanceDistribution.from_value_histogram(
            mixture.to_histogram().normalized(), self.q, key=self._key
        )

    def pack_params(self) -> np.ndarray:
        rows = [np.array([self.q, float(len(self._components))])]
        for w, c in zip(self._weights, self._components):
            rows.append(
                np.array([w, c._lo, c._hi, c._mean, c._sigma, float(c._bars)])
            )
        return np.concatenate(rows)

    @classmethod
    def from_params(cls, params: np.ndarray) -> "GaussianMixtureDistance":
        q = float(params[0])
        count = int(params[1])
        comps = []
        weights = []
        for i in range(count):
            w, lo, hi, mean, sigma, bars = params[2 + 6 * i : 8 + 6 * i]
            weights.append(float(w))
            comps.append(
                TruncatedGaussianPdf(
                    float(lo),
                    float(hi),
                    mean=float(mean),
                    sigma=float(sigma),
                    bars=int(bars),
                )
            )
        return cls(q, comps, weights)
