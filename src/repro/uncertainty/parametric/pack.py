"""Mixed-representation columnar batches (parametric + histogram rows).

:class:`~repro.uncertainty.columnar.DistributionPack` materialises
every row into histogram columns.  :class:`MixedDistributionPack`
keeps parametric rows *parametric*: ``cdf_many``/``sf_many``/
``mass_between_many`` evaluate closed forms for those rows —
truncated-Gaussian rows in one family-batched ``ndtr`` sweep, other
families per row — and route only genuine histogram rows through an
inner ``DistributionPack``.  Row order is preserved, so the result
matrices are drop-in replacements for the all-histogram kernels.

``materialized()`` is the explicit knot fallback: a plain
``DistributionPack`` over every row (parametric rows materialise their
byte-identical histogram replicas through the lazy ``histogram``
property) for consumers that genuinely need breakpoints — exact
refinement being the only one in the engine.

Column-store transport mirrors ``DistributionPack.to_store``:
histogram columns ship as flat arrays, parametric rows ship as
per-family parameter matrices (``pack_params`` rows) plus row-index
columns, all in one store.  ``from_store`` rebuilds the pack —
zero-copy views for resident backends (``ram``/``shm``: histogram
rows become ``Histogram`` views over the mapped flats, parametric
rows are reconstructed from their parameter rows, O(rows) scalars
and no bulk copies); the chunked ``mmap`` backend *materialises* the
histogram flats on attach (mixed packs exist for candidate sets,
which fit in RAM — only the all-histogram corpus tier streams).
The legacy ``to_shared``/``from_shared`` pair is a deprecation shim
over the store API, kept one release.
"""

from __future__ import annotations

import warnings
from typing import Sequence

import numpy as np

from repro.uncertainty.columnar import DistributionPack
from repro.uncertainty.histogram import Histogram
from repro.uncertainty.parametric.base import FAMILY_REGISTRY, ParametricDistance
from repro.uncertainty.parametric.gaussian import TruncatedGaussianDistance

__all__ = ["MixedDistributionPack"]


def _support(dist) -> tuple[float, float]:
    """``(near, far)`` for a distance distribution or bare histogram."""
    near = getattr(dist, "near", None)
    if near is not None:
        return float(near), float(dist.far)
    return float(dist.lo), float(dist.hi)


class MixedDistributionPack:
    """Columnar cdf/sf kernels over mixed parametric/histogram rows."""

    def __init__(self, distributions: Sequence) -> None:
        self._distributions = tuple(distributions)
        if not self._distributions:
            raise ValueError("mixed pack requires at least one distribution")
        parametric_rows = []
        histogram_rows = []
        for i, dist in enumerate(self._distributions):
            if isinstance(dist, ParametricDistance):
                parametric_rows.append(i)
            else:
                histogram_rows.append(i)
        self._histogram_pack = (
            DistributionPack([self._distributions[i] for i in histogram_rows])
            if histogram_rows
            else None
        )
        self._index(parametric_rows, histogram_rows)
        self._shm = None
        self._store = None

    def _index(self, parametric_rows, histogram_rows) -> None:
        """Derive row maps and support columns (shared with from_shared)."""
        self._parametric_rows = np.asarray(parametric_rows, dtype=np.int64)
        self._histogram_rows = np.asarray(histogram_rows, dtype=np.int64)
        # Family-batch the dominant workload: plain truncated Gaussians
        # evaluate as one broadcast ndtr sweep over all rows at once.
        self._gauss_rows = np.asarray(
            [
                i
                for i in parametric_rows
                if type(self._distributions[i]) is TruncatedGaussianDistance
            ],
            dtype=np.int64,
        )
        gauss = set(self._gauss_rows.tolist())
        self._loop_rows = np.asarray(
            [i for i in parametric_rows if i not in gauss], dtype=np.int64
        )
        supports = [_support(d) for d in self._distributions]
        self._near = np.array([s[0] for s in supports])
        self._far = np.array([s[1] for s in supports])
        self._materialized_pack: DistributionPack | None = None

    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._distributions)

    @property
    def distributions(self) -> tuple:
        return self._distributions

    @property
    def near(self) -> np.ndarray:
        return self._near

    @property
    def far(self) -> np.ndarray:
        return self._far

    @property
    def n_parametric(self) -> int:
        return int(self._parametric_rows.size)

    @property
    def n_histogram(self) -> int:
        return int(self._histogram_rows.size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MixedDistributionPack(size={self.size}, "
            f"parametric={self.n_parametric}, histogram={self.n_histogram})"
        )

    # ------------------------------------------------------------------
    # Batched kernels
    # ------------------------------------------------------------------

    def cdf_many(self, xs) -> np.ndarray:
        """``(size, n)`` matrix of exact cdf values (``(size,)`` scalar)."""
        arr = np.asarray(xs, dtype=float)
        scalar = arr.ndim == 0
        points = np.atleast_1d(arr)
        out = np.empty((self.size, points.size))
        if self._gauss_rows.size:
            rows = [self._distributions[i] for i in self._gauss_rows]
            out[self._gauss_rows] = TruncatedGaussianDistance.cdf_rows(rows, points)
        for i in self._loop_rows:
            out[i] = self._distributions[i].cdf(points)
        if self._histogram_pack is not None:
            out[self._histogram_rows] = np.atleast_2d(
                self._histogram_pack.cdf_many(points)
            ).reshape(self._histogram_rows.size, points.size)
        if scalar:
            return out[:, 0]
        return out

    def sf_many(self, xs) -> np.ndarray:
        """``1 - D_i(x)`` for every row — the survival matrix."""
        return 1.0 - self.cdf_many(xs)

    def mass_between_many(self, a: float, b: float) -> np.ndarray:
        """Per-row ``Pr[a <= R <= b]`` for scalar bounds ``a <= b``."""
        lo, hi = float(a), float(b)
        if hi < lo:
            raise ValueError("mass_between_many requires a <= b")
        if hi == lo:
            return np.zeros(self.size)
        values = self.cdf_many(np.array([lo, hi]))
        return np.clip(values[:, 1] - values[:, 0], 0.0, 1.0)

    # ------------------------------------------------------------------

    def materialized(self) -> DistributionPack:
        """Knot fallback: an all-histogram pack over the same rows."""
        if self._materialized_pack is None:
            self._materialized_pack = DistributionPack(self._distributions)
        return self._materialized_pack

    # ------------------------------------------------------------------
    # Column-store transport (DESIGN.md §13/§15/§16)
    # ------------------------------------------------------------------

    def to_store(self, backend: str = "shm", **options):
        """Export all columns into a fresh column store of ``backend``."""
        from repro.storage import create_store

        arrays: dict[str, np.ndarray] = {
            "total_rows": np.array([self.size], dtype=np.int64),
            "histogram_rows": self._histogram_rows,
        }
        if self._histogram_pack is not None:
            arrays["hist_edges"] = self._histogram_pack.edges_flat
            arrays["hist_knots"] = self._histogram_pack.knots_flat
            arrays["hist_densities"] = self._histogram_pack.densities_flat
            arrays["hist_sizes"] = np.diff(self._histogram_pack.offsets)
        by_family: dict[str, list[int]] = {}
        for i in self._parametric_rows:
            by_family.setdefault(self._distributions[i].family, []).append(int(i))
        for family, rows in by_family.items():
            params = [self._distributions[i].pack_params() for i in rows]
            width = max(p.size for p in params)
            matrix = np.zeros((len(rows), width))
            lengths = np.empty(len(rows), dtype=np.int64)
            for j, p in enumerate(params):
                matrix[j, : p.size] = p
                lengths[j] = p.size
            arrays[f"param:{family}"] = matrix
            arrays[f"len:{family}"] = lengths
            arrays[f"rows:{family}"] = np.asarray(rows, dtype=np.int64)
        return create_store(backend, arrays, **options)

    @classmethod
    def from_store(cls, store) -> "MixedDistributionPack":
        """Rehydrate from a column store.

        Histogram columns become views over resident backends (the
        inner ``DistributionPack`` is finished directly on the flats —
        no concatenation) and copies for chunked ones; parametric rows
        rebuild their instances from the parameter rows.  The pack
        pins the store for its lifetime; the store's creator owns the
        unlink.
        """
        get = store.get
        total = int(get("total_rows")[0])
        slots: list = [None] * total
        histogram_rows = [int(i) for i in get("histogram_rows")]
        hist_pack = None
        if histogram_rows:
            hist_edges = get("hist_edges")
            hist_knots = get("hist_knots")
            hist_densities = get("hist_densities")
            hist_pack = object.__new__(DistributionPack)
            hist_pack._finish(
                hist_edges,
                hist_knots,
                hist_densities,
                np.asarray(get("hist_sizes"), dtype=np.intp),
            )
            offsets = hist_pack.offsets
            dens_offsets = hist_pack.density_offsets
            for j, i in enumerate(histogram_rows):
                row = Histogram.__new__(Histogram)
                row._edges = hist_edges[offsets[j] : offsets[j + 1]]
                row._densities = hist_densities[
                    dens_offsets[j] : dens_offsets[j + 1]
                ]
                row._cdf_knots = hist_knots[offsets[j] : offsets[j + 1]]
                slots[i] = row
        parametric_rows = []
        for name in store.columns():
            if not name.startswith("param:"):
                continue
            family = name.split(":", 1)[1]
            family_cls = FAMILY_REGISTRY[family]
            matrix = get(name)
            lengths = get(f"len:{family}")
            rows = get(f"rows:{family}")
            for j, i in enumerate(rows):
                index = int(i)
                slots[index] = family_cls.from_params(
                    np.asarray(matrix[j, : int(lengths[j])])
                )
                parametric_rows.append(index)
        pack = cls.__new__(cls)
        pack._distributions = tuple(slots)
        pack._histogram_pack = hist_pack
        pack._index(sorted(parametric_rows), histogram_rows)
        pack._shm = None
        pack._store = store
        return pack

    # -- legacy shared-memory surface (deprecated, one release) ---------

    def to_shared(self):
        """Deprecated: use ``to_store('shm')``."""
        warnings.warn(
            "MixedDistributionPack.to_shared is deprecated; use "
            "to_store('shm') (repro.storage)",
            DeprecationWarning,
            stacklevel=2,
        )
        store = self.to_store("shm")
        return store.segment, store.shm_descriptor

    @classmethod
    def from_shared(cls, descriptor) -> "MixedDistributionPack":
        """Deprecated: use ``from_store(open_store(descriptor))``."""
        warnings.warn(
            "MixedDistributionPack.from_shared is deprecated; use "
            "from_store(open_store(descriptor)) (repro.storage)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.storage import ShmStore

        pack = cls.from_store(ShmStore.attach(descriptor))
        pack._shm = pack._store.segment
        return pack
