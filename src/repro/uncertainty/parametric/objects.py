"""Spatial uncertain objects with parametric distance distributions.

These satisfy :class:`~repro.uncertainty.objects.SpatialUncertain`
*and* expose ``parametric_distance(q)``, which is what the engine's
parametric fast path probes for.  Each object defers every histogram
construction until something genuinely histogram-shaped is requested:

* :class:`GaussianObject` / :class:`GaussianMixtureObject` subclass
  :class:`UncertainObject` but skip its eager
  ``pdf.to_histogram().normalized()`` — the ``histogram`` property
  materialises on first access, byte-identically to the eager path
  (same pdf object, same call chain), so the standard pipeline and
  exact refinement see exactly what they would have seen.
* :class:`ParametricDisk` extends :class:`UncertainDisk`, which never
  builds histograms eagerly anyway.
* :class:`GpsEllipseObject` is a new 2-D model with no histogram
  twin; its fallback materialises from the same analytic cdf.

``lo``/``hi``/``mbr`` come from the model parameters, not the
histogram, so R-tree filtering runs without materialising.  (If
normalisation would trim zero-mass edge bars, the parametric bounds
are the wider, *conservative* ones — filtering stays sound.)
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from repro.index.geometry import Rect
from repro.uncertainty.distance import DistanceDistribution
from repro.uncertainty.histogram import Histogram
from repro.uncertainty.objects import UncertainObject, _scalar_query
from repro.uncertainty.parametric.ellipse import (
    GpsEllipseDistance,
    ellipse_half_extents,
)
from repro.uncertainty.parametric.disk import UniformDiskDistance
from repro.uncertainty.parametric.gaussian import (
    GaussianMixtureDistance,
    TruncatedGaussianDistance,
)
from repro.uncertainty.pdfs import (
    DEFAULT_GAUSSIAN_BARS,
    MixturePdf,
    TruncatedGaussianPdf,
)
from repro.uncertainty.twod import (
    DEFAULT_DISTANCE_BINS,
    UncertainDisk,
    _as_point2d,
)

__all__ = [
    "GaussianMixtureObject",
    "GaussianObject",
    "GpsEllipseObject",
    "ParametricDisk",
]


def _slots_state(obj, reset=()):
    """Slot dict across the MRO, with ``reset`` names nulled out."""
    state = {
        slot: getattr(obj, slot)
        for cls in type(obj).__mro__
        for slot in getattr(cls, "__slots__", ())
    }
    for name in reset:
        state[name] = None
    return state


class GaussianObject(UncertainObject):
    """Truncated-Gaussian object with a lazy histogram (DESIGN.md §15)."""

    __slots__ = ()

    def __init__(
        self,
        key: Hashable,
        lo: float,
        hi: float,
        mean: float | None = None,
        sigma: float | None = None,
        bars: int = DEFAULT_GAUSSIAN_BARS,
    ) -> None:
        # Deliberately no super().__init__: the base eagerly builds
        # the 300-bar histogram, which is the cost this class defers.
        self._key = key
        self._pdf = TruncatedGaussianPdf(lo, hi, mean=mean, sigma=sigma, bars=bars)
        self._histogram = None
        self._mbr = None

    @property
    def histogram(self) -> Histogram:
        if self._histogram is None:
            self._histogram = self._pdf.to_histogram().normalized()
        return self._histogram

    @property
    def lo(self) -> float:
        return self._pdf.lo

    @property
    def hi(self) -> float:
        return self._pdf.hi

    def distance_distribution(self, q) -> DistanceDistribution:
        """Histogram-path fold (materialises; the engine's fallback)."""
        return DistanceDistribution.from_value_histogram(
            self.histogram, _scalar_query(q), key=self._key
        )

    def parametric_distance(self, q) -> TruncatedGaussianDistance:
        """Closed-form ``|X - q|`` law — no histogram involved."""
        pdf = self._pdf
        return TruncatedGaussianDistance(
            _scalar_query(q),
            pdf.lo,
            pdf.hi,
            mean=pdf.mean_parameter,
            sigma=pdf.sigma,
            bars=pdf.bars,
            key=self._key,
        )

    def sample_distances(self, q, n: int, rng: np.random.Generator) -> np.ndarray:
        """``n`` iid draws of ``|X - q|`` from the exact model."""
        return self.parametric_distance(q).sample(rng, n)

    def __getstate__(self):
        return _slots_state(self, reset=("_histogram", "_mbr"))

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)


class GaussianMixtureObject(UncertainObject):
    """Mixture of truncated Gaussians with a lazy histogram."""

    __slots__ = ("_components", "_weights")

    def __init__(
        self,
        key: Hashable,
        components: Sequence[TruncatedGaussianPdf],
        weights: Sequence[float] | None = None,
    ) -> None:
        self._key = key
        self._pdf = MixturePdf(components, weights)
        self._components = tuple(components)
        if weights is None:
            weights = np.ones(len(components))
        w = np.asarray(weights, dtype=float)
        self._weights = w / w.sum()
        self._histogram = None
        self._mbr = None

    @property
    def histogram(self) -> Histogram:
        if self._histogram is None:
            self._histogram = self._pdf.to_histogram().normalized()
        return self._histogram

    @property
    def lo(self) -> float:
        return self._pdf.lo

    @property
    def hi(self) -> float:
        return self._pdf.hi

    @property
    def components(self) -> tuple[TruncatedGaussianPdf, ...]:
        return self._components

    @property
    def weights(self) -> np.ndarray:
        return self._weights.copy()

    def distance_distribution(self, q) -> DistanceDistribution:
        return DistanceDistribution.from_value_histogram(
            self.histogram, _scalar_query(q), key=self._key
        )

    def parametric_distance(self, q) -> GaussianMixtureDistance:
        return GaussianMixtureDistance(
            _scalar_query(q), self._components, self._weights, key=self._key
        )

    def sample_distances(self, q, n: int, rng: np.random.Generator) -> np.ndarray:
        return self.parametric_distance(q).sample(rng, n)

    def __getstate__(self):
        return _slots_state(self, reset=("_histogram", "_mbr"))

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)


class ParametricDisk(UncertainDisk):
    """Uniform disk whose distance law evaluates in closed form."""

    __slots__ = ()

    def parametric_distance(self, q) -> UniformDiskDistance:
        return UniformDiskDistance(
            q,
            self._center,
            self._radius,
            distance_bins=self._bins,
            key=self._key,
        )

    def sample_distances(self, q, n: int, rng: np.random.Generator) -> np.ndarray:
        return self.parametric_distance(q).sample(rng, n)


class GpsEllipseObject:
    """GPS fix with anisotropic Gaussian error, k-sigma truncated.

    ``mindist``/``maxdist`` use the ellipse's axis-aligned bounding
    box — conservative on both sides, which is all R-tree filtering
    needs to stay sound.
    """

    __slots__ = (
        "_key",
        "_center",
        "_sigma_x",
        "_sigma_y",
        "_angle",
        "_k",
        "_bins",
        "_mbr",
    )

    def __init__(
        self,
        key: Hashable,
        center,
        sigma_x: float,
        sigma_y: float,
        angle: float = 0.0,
        k: float = 3.0,
        distance_bins: int = DEFAULT_DISTANCE_BINS,
    ) -> None:
        self._key = key
        self._center = _as_point2d(center)
        if sigma_x <= 0 or sigma_y <= 0:
            raise ValueError("sigma_x and sigma_y must be positive")
        if k <= 0:
            raise ValueError("k must be positive")
        self._sigma_x = float(sigma_x)
        self._sigma_y = float(sigma_y)
        self._angle = float(angle)
        self._k = float(k)
        self._bins = int(distance_bins)
        half_x, half_y = ellipse_half_extents(sigma_x, sigma_y, angle, k)
        self._mbr = Rect(
            [self._center[0] - half_x, self._center[1] - half_y],
            [self._center[0] + half_x, self._center[1] + half_y],
        )

    @property
    def key(self) -> Hashable:
        return self._key

    @property
    def center(self) -> np.ndarray:
        return self._center.copy()

    @property
    def sigma_x(self) -> float:
        return self._sigma_x

    @property
    def sigma_y(self) -> float:
        return self._sigma_y

    @property
    def angle(self) -> float:
        return self._angle

    @property
    def k(self) -> float:
        return self._k

    @property
    def mbr(self) -> Rect:
        return self._mbr

    def mindist(self, q) -> float:
        return self._mbr.mindist(q)

    def maxdist(self, q) -> float:
        return self._mbr.maxdist(q)

    def distance_distribution(self, q) -> DistanceDistribution:
        """Materialised fallback (no histogram twin exists to match)."""
        return self.parametric_distance(q).materialized()

    def parametric_distance(self, q) -> GpsEllipseDistance:
        return GpsEllipseDistance(
            q,
            self._center,
            self._sigma_x,
            self._sigma_y,
            angle=self._angle,
            k=self._k,
            distance_bins=self._bins,
            key=self._key,
        )

    def sample_distances(self, q, n: int, rng: np.random.Generator) -> np.ndarray:
        return self.parametric_distance(q).sample(rng, n)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"GpsEllipseObject(key={self._key!r}, "
            f"center=({self._center[0]:.6g}, {self._center[1]:.6g}), "
            f"sigma=({self._sigma_x:.6g}, {self._sigma_y:.6g}), "
            f"angle={self._angle:.6g}, k={self._k:.6g})"
        )
