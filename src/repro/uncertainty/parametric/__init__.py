"""Analytic (parametric) distance distributions — DESIGN.md §15.

Closed-form ``pdf``/``cdf``/``sf``/``mass_between`` for the model
families the paper's experiments need (truncated Gaussian, Gaussian
mixture, uniform disk, GPS error ellipse), a mixed parametric +
histogram columnar pack, and the analytic subregion table the
verifier chain consumes on the parametric fast path.
"""

from repro.uncertainty.parametric.base import (
    FAMILY_REGISTRY,
    ParametricDistance,
    register_family,
)
from repro.uncertainty.parametric.disk import UniformDiskDistance
from repro.uncertainty.parametric.ellipse import (
    GpsEllipseDistance,
    ellipse_half_extents,
)
from repro.uncertainty.parametric.gaussian import (
    GaussianMixtureDistance,
    TruncatedGaussianDistance,
)
from repro.uncertainty.parametric.objects import (
    GaussianMixtureObject,
    GaussianObject,
    GpsEllipseObject,
    ParametricDisk,
)
from repro.uncertainty.parametric.pack import MixedDistributionPack
from repro.uncertainty.parametric.table import AnalyticTable

__all__ = [
    "AnalyticTable",
    "FAMILY_REGISTRY",
    "GaussianMixtureDistance",
    "GaussianMixtureObject",
    "GaussianObject",
    "GpsEllipseDistance",
    "GpsEllipseObject",
    "MixedDistributionPack",
    "ParametricDistance",
    "ParametricDisk",
    "TruncatedGaussianDistance",
    "UniformDiskDistance",
    "ellipse_half_extents",
    "register_family",
]
