"""Analytic subregion tables for parametric candidate sets.

:class:`AnalyticTable` duck-types the slice of
:class:`~repro.core.subregions.SubregionTable` the verifier chain
reads — ``keys``/``size``/``fmin``/``fmax``/``edges``/``s_inner``/
``s_right``/``q_lower``/``q_upper``/``distributions`` — but is built
from exact closed-form cdfs instead of histogram breakpoints, so its
grid is *chosen*, not dictated by 300 bars per candidate.

Soundness under arbitrary smooth cdfs
-------------------------------------
The histogram table's Lemma-2/Equation-5 bounds lean on pdfs being
constant inside every subregion.  Analytic models void that premise,
so this table uses the coarser-but-always-sound Riemann bracketing:
``Z_i(r) = Π_{k≠i}(1 − D_k(r))`` is non-increasing in ``r``, hence
for the inner subregion ``S_j = [e_j, e_{j+1}]``

    p_ij = ∫_{S_j} d_i(r) · Z_i(r) dr  ∈  [s_ij·Z_i(e_{j+1}), s_ij·Z_i(e_j)]

which is exactly what L-SR/U-SR compute from ``q_lower = Z[:, 1:]``
and ``q_upper = Z[:, :-1]``.  No ``1/c_j`` divisor appears: it would
*raise* the lower bound past what monotonicity alone guarantees.  The
rightmost subregion contributes exactly zero (some candidate's
support ends at ``f_min``, so beyond it either that candidate is
certainly closer or ``d_i`` is zero), which also keeps R-S's
``1 − s_iM = D_i(f_min)`` upper bound valid.  Both brackets converge
to ``p_i`` as the grid refines, so verification terminates for any
positive tolerance; callers escalate via :meth:`refined` and fall
back to the histogram pipeline only if escalation runs out.
"""

from __future__ import annotations

from functools import cached_property
from typing import Hashable, Sequence

import numpy as np

from repro.uncertainty.parametric.base import ParametricDistance
from repro.uncertainty.parametric.pack import MixedDistributionPack

__all__ = ["AnalyticTable"]

#: Relative tolerance for deduplicating pooled grid points.
_EDGE_RTOL = 1e-12


class AnalyticTable:
    """Verifier-facing subregion matrices over exact parametric cdfs.

    Parameters
    ----------
    distributions:
        The candidate set — parametric distances, or a mix with
        histogram-backed ones (any order; sorted by near point here).
    grid:
        Target number of inner subregions.  The pooled analytic knots
        and near points always stay in the grid; intervals are split
        uniformly until the count reaches the target.
    """

    def __init__(self, distributions: Sequence, grid: int = 64) -> None:
        if not distributions:
            raise ValueError("candidate set must not be empty")
        if grid < 1:
            raise ValueError("grid must be >= 1")
        self._grid = int(grid)
        ordered = sorted(distributions, key=lambda d: (d.near, d.far))
        self._distributions = tuple(ordered)
        self._pack = MixedDistributionPack(ordered)
        fars = self._pack.far
        self._fmin = float(fars.min())
        self._fmax = float(fars.max())
        self._edges = self._build_edges()
        cdf = np.clip(self._pack.cdf_many(self._edges), 0.0, 1.0)
        # Guard against last-ulp wiggle in the closed forms: the
        # downstream algebra assumes each row is a non-decreasing cdf.
        np.maximum.accumulate(cdf, axis=1, out=cdf)
        self._cdf_matrix = cdf

    # ------------------------------------------------------------------

    def _build_edges(self) -> np.ndarray:
        """Knot-pinned grid from ``n_min`` to ``f_min``, ≥ ``grid`` cells."""
        n_min = float(self._pack.near.min())
        if not self._fmin > n_min:
            raise ValueError(
                "f_min must exceed the smallest near point; the candidate "
                "set is degenerate (a zero-width distance support?)"
            )
        pool = [np.asarray([n_min, self._fmin])]
        for dist in self._distributions:
            if isinstance(dist, ParametricDistance):
                knots = dist.knots()
            else:
                knots = np.empty(0)
            pool.append(knots[(knots > n_min) & (knots < self._fmin)])
        nears = self._pack.near
        pool.append(nears[(nears > n_min) & (nears < self._fmin)])
        merged = np.sort(np.concatenate(pool))
        scale = max(abs(float(merged[0])), abs(float(merged[-1])), 1.0)
        keep = np.empty(merged.size, dtype=bool)
        keep[0] = True
        np.greater(np.diff(merged), _EDGE_RTOL * scale, out=keep[1:])
        edges = merged[keep]
        edges[-1] = self._fmin
        inner = edges.size - 1
        if inner < self._grid:
            parts = -(-self._grid // inner)
            steps = np.linspace(0.0, 1.0, parts + 1)[:-1]
            widths = np.diff(edges)
            fine = (edges[:-1, None] + widths[:, None] * steps[None, :]).reshape(-1)
            edges = np.concatenate((fine, edges[-1:]))
        return edges

    def refined(self, grid: int) -> "AnalyticTable":
        """A finer table over the same candidates (bounds only tighten)."""
        return AnalyticTable(self._distributions, grid=grid)

    # ------------------------------------------------------------------
    # Shape and identity (SubregionTable surface)
    # ------------------------------------------------------------------

    @property
    def distributions(self) -> tuple:
        return self._distributions

    @property
    def pack(self) -> MixedDistributionPack:
        return self._pack

    @property
    def keys(self) -> tuple[Hashable, ...]:
        return tuple(d.key for d in self._distributions)

    @property
    def size(self) -> int:
        return len(self._distributions)

    @property
    def grid(self) -> int:
        return self._grid

    @property
    def fmin(self) -> float:
        return self._fmin

    @property
    def fmax(self) -> float:
        return self._fmax

    @property
    def edges(self) -> np.ndarray:
        view = self._edges.view()
        view.flags.writeable = False
        return view

    @property
    def n_inner(self) -> int:
        return self._edges.size - 1

    @property
    def n_subregions(self) -> int:
        return self.n_inner + 1

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"AnalyticTable(|C|={self.size}, M={self.n_subregions}, "
            f"fmin={self._fmin:.6g}, fmax={self._fmax:.6g})"
        )

    # ------------------------------------------------------------------
    # Matrices consumed by the verifiers
    # ------------------------------------------------------------------

    @property
    def cdf_at_edges(self) -> np.ndarray:
        view = self._cdf_matrix.view()
        view.flags.writeable = False
        return view

    @cached_property
    def s_inner(self) -> np.ndarray:
        s = np.diff(self._cdf_matrix, axis=1)
        np.clip(s, 0.0, 1.0, out=s)
        s.flags.writeable = False
        return s

    @cached_property
    def s_right(self) -> np.ndarray:
        s = 1.0 - self._cdf_matrix[:, -1]
        np.clip(s, 0.0, 1.0, out=s)
        s.flags.writeable = False
        return s

    @cached_property
    def Z(self) -> np.ndarray:
        """``Z_ij = Π_{k≠i} (1 − D_k(e_j))`` — log-space, zero-aware."""
        survival = 1.0 - self._cdf_matrix
        zero = survival <= 0.0
        safe = np.where(zero, 1.0, survival)
        logs = np.log(safe)
        col_zero_count = zero.sum(axis=0)
        col_log_sum = logs.sum(axis=0)
        zeros_excluding_self = col_zero_count[None, :] - zero.astype(np.int64)
        log_excluding_self = col_log_sum[None, :] - logs
        z = np.where(zeros_excluding_self > 0, 0.0, np.exp(log_excluding_self))
        np.clip(z, 0.0, 1.0, out=z)
        z.flags.writeable = False
        return z

    @cached_property
    def q_lower(self) -> np.ndarray:
        """Right-edge Riemann bound: ``Z_i(e_{j+1})`` (see module docs)."""
        q = np.array(self.Z[:, 1:])
        q[self.s_inner <= 0.0] = 0.0
        q.flags.writeable = False
        return q

    @cached_property
    def q_upper(self) -> np.ndarray:
        """Left-edge Riemann bound: ``Z_i(e_j)`` (see module docs)."""
        q = np.array(self.Z[:, :-1])
        q[self.s_inner <= 0.0] = 0.0
        q.flags.writeable = False
        return q
