"""The parametric distance-distribution contract (DESIGN.md §15).

A :class:`ParametricDistance` is an *analytic* stand-in for
:class:`~repro.uncertainty.distance.DistanceDistribution`: it exposes
the same surface (``key``/``near``/``far``/``interval``/``pdf``/
``cdf``/``sf``/``mass_between``/``sample``/``overlaps``) but evaluates
closed forms instead of interpolating a 300-bar histogram.  The
contract every family must honour:

* ``cdf`` is the **exact** distribution function of ``|X - q|`` under
  the family's continuous model — monotone non-decreasing, 0 at
  ``near`` and 1 at ``far`` — and accepts numpy arrays (vectorised);
* ``materialized()`` produces the byte-identical
  :class:`DistanceDistribution` the histogram pipeline would have
  built for the same object, so any stage that genuinely needs
  breakpoints (exact refinement, knn/range packs) can fall back to it
  and stay bit-for-bit comparable with the histogram engine;
* ``knots()`` lists the few radii where the distance pdf is
  non-smooth (fold points, region boundaries) — grid-refinement hints
  for :class:`~repro.uncertainty.parametric.table.AnalyticTable`, not
  a piecewise-constant promise;
* ``pack_params()``/``from_params`` round-trip the instance through a
  flat float64 vector, which is how
  :class:`~repro.uncertainty.parametric.pack.MixedDistributionPack`
  ships parametric columns through shared memory.

The memoised histogram deliberately lives in a slot that is *not*
named ``_histogram``: ``DistributionPack`` probes
``attrgetter("_histogram")`` first and falls back to
``getattr(d, "histogram", d)``, so a parametric distance dropped into
a histogram pack transparently materialises instead of being treated
as an already-folded histogram.
"""

from __future__ import annotations

import abc
from typing import Hashable

import numpy as np

from repro.uncertainty.distance import DistanceDistribution

__all__ = ["FAMILY_REGISTRY", "ParametricDistance", "register_family"]


#: Family name -> ParametricDistance subclass, for rebuilding instances
#: from the flat parameter rows a shared-memory descriptor carries.
FAMILY_REGISTRY: dict[str, type["ParametricDistance"]] = {}


def register_family(cls: type["ParametricDistance"]) -> type["ParametricDistance"]:
    """Class decorator adding a family to :data:`FAMILY_REGISTRY`."""
    FAMILY_REGISTRY[cls.family] = cls
    return cls


class ParametricDistance(abc.ABC):
    """Analytic distance distribution of ``|X - q|`` for one object."""

    __slots__ = ("_key", "_materialized")

    #: Registry name of the family (subclasses override).
    family = "parametric"

    def __init__(self, key: Hashable = None) -> None:
        self._key = key
        self._materialized: DistanceDistribution | None = None

    # ------------------------------------------------------------------
    # Protocol surface shared with DistanceDistribution
    # ------------------------------------------------------------------

    @property
    def key(self) -> Hashable:
        return self._key

    @property
    @abc.abstractmethod
    def near(self) -> float:
        """Near point ``n_i`` — the minimum possible distance."""

    @property
    @abc.abstractmethod
    def far(self) -> float:
        """Far point ``f_i`` — the maximum possible distance."""

    @property
    def interval(self) -> tuple[float, float]:
        return (self.near, self.far)

    @abc.abstractmethod
    def cdf(self, r):
        """Exact ``D_i(r)`` — vectorised over numpy arrays."""

    @abc.abstractmethod
    def pdf(self, r):
        """Exact ``d_i(r)`` — vectorised over numpy arrays."""

    def sf(self, r):
        """Survival ``1 - D_i(r)``."""
        return 1.0 - self.cdf(r)

    def mass_between(self, a: float, b: float) -> float:
        """``Pr[a <= R_i <= b]`` via the exact cdf."""
        if b <= a:
            return 0.0
        return float(np.clip(self.cdf(b) - self.cdf(a), 0.0, 1.0))

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw iid distances from the exact model (MC tier/baseline)."""

    def overlaps(self, a: float, b: float) -> bool:
        return self.near < b and self.far > a

    # ------------------------------------------------------------------
    # Materialisation (the histogram fallback)
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def _materialize(self) -> DistanceDistribution:
        """Build the histogram-pipeline replica of this distance."""

    def materialized(self) -> DistanceDistribution:
        """The byte-identical histogram-path ``DistanceDistribution``.

        Memoised: repeated fallbacks (refinement after verification,
        knn/range packs over the same distance) pay the histogram
        construction once.
        """
        if self._materialized is None:
            self._materialized = self._materialize()
        return self._materialized

    @property
    def histogram(self):
        """Materialised distance histogram (lazy — see module docs)."""
        return self.materialized().histogram

    @property
    def breakpoints(self) -> np.ndarray:
        """Materialised histogram edges (forces materialisation)."""
        return self.materialized().breakpoints

    # ------------------------------------------------------------------
    # Grid hints + flat-parameter round-trip
    # ------------------------------------------------------------------

    def knots(self) -> np.ndarray:
        """Radii in ``(near, far)`` where the distance pdf is non-smooth."""
        return np.empty(0)

    @abc.abstractmethod
    def pack_params(self) -> np.ndarray:
        """Flat float64 parameter vector (shared-memory transport)."""

    @classmethod
    @abc.abstractmethod
    def from_params(cls, params: np.ndarray) -> "ParametricDistance":
        """Rebuild an instance from :meth:`pack_params` output."""

    # ------------------------------------------------------------------

    def __getstate__(self):
        # Drop the memoised histogram: pickles stay O(parameters) and
        # process workers re-materialise only if they genuinely need to.
        state = {
            slot: getattr(self, slot)
            for cls in type(self).__mro__
            for slot in getattr(cls, "__slots__", ())
        }
        state["_materialized"] = None
        return state

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"{type(self).__name__}(key={self._key!r}, "
            f"near={self.near:.6g}, far={self.far:.6g})"
        )


def as_float_array(r) -> tuple[np.ndarray, bool]:
    """``(array, was_scalar)`` — mirror DistanceDistribution's duality."""
    arr = np.asarray(r, dtype=float)
    return np.atleast_1d(arr), arr.ndim == 0


def scalar_or_array(values: np.ndarray, was_scalar: bool):
    if was_scalar:
        return float(values[0])
    return values
