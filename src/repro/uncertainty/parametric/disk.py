"""Closed-form distance distribution for uniform-disk objects.

For a uniform pdf over the disk of radius ``R`` around ``c`` and a
query point ``q`` at distance ``d = |q - c|``, the distance cdf is
the lens area of circle(q, r) ∩ disk(c, R) over ``πR²`` — exactly
the formula :meth:`UncertainDisk.distance_cdf` evaluates, vectorised
over ``r`` here.  The pdf follows from ``dA/dr = 2·α(r)·r`` where
``α`` is the half-angle of the arc of circle(q, r) inside the disk.
"""

from __future__ import annotations

import math
from typing import Hashable

import numpy as np

from repro.uncertainty.distance import DistanceDistribution
from repro.uncertainty.parametric.base import (
    ParametricDistance,
    as_float_array,
    register_family,
    scalar_or_array,
)
from repro.uncertainty.twod import (
    DEFAULT_DISTANCE_BINS,
    _as_point2d,
    circle_circle_intersection_area,
)

__all__ = ["UniformDiskDistance"]


@register_family
class UniformDiskDistance(ParametricDistance):
    """Exact ``|X - q|`` distribution for a uniform disk region."""

    __slots__ = ("_q", "_center", "_radius", "_d", "_bins", "_near", "_far")

    family = "uniform_disk"

    def __init__(
        self,
        q,
        center,
        radius: float,
        distance_bins: int = DEFAULT_DISTANCE_BINS,
        key: Hashable = None,
    ) -> None:
        super().__init__(key)
        self._q = _as_point2d(q)
        self._center = _as_point2d(center)
        if radius <= 0:
            raise ValueError("radius must be positive")
        self._radius = float(radius)
        self._bins = int(distance_bins)
        self._d = float(np.linalg.norm(self._q - self._center))
        self._near = max(0.0, self._d - self._radius)
        self._far = self._d + self._radius

    # ------------------------------------------------------------------

    @property
    def near(self) -> float:
        return self._near

    @property
    def far(self) -> float:
        return self._far

    def cdf(self, r):
        arr, was_scalar = as_float_array(r)
        rr = np.maximum(arr, 0.0)
        d, R = self._d, self._radius
        area = np.empty_like(rr)
        # Same case split as circle_circle_intersection_area, vectorised.
        disjoint = rr <= max(d - R, 0.0)
        disk_inside = rr >= d + R
        query_inside = (rr <= R - d) & ~disk_inside
        lens = ~(disjoint | disk_inside | query_inside)
        area[disjoint] = 0.0
        area[disk_inside] = math.pi * R * R
        area[query_inside] = math.pi * rr[query_inside] ** 2
        if np.any(lens):
            rl = rr[lens]
            cos_a = np.clip((d * d + rl * rl - R * R) / (2.0 * d * rl), -1.0, 1.0)
            cos_b = np.clip((d * d + R * R - rl * rl) / (2.0 * d * R), -1.0, 1.0)
            alpha = np.arccos(cos_a)
            beta = np.arccos(cos_b)
            kernel = (
                (-d + rl + R) * (d + rl - R) * (d - rl + R) * (d + rl + R)
            )
            area[lens] = (
                rl * rl * alpha
                + R * R * beta
                - 0.5 * np.sqrt(np.maximum(kernel, 0.0))
            )
        values = area / (math.pi * R * R)
        return scalar_or_array(np.clip(values, 0.0, 1.0), was_scalar)

    def pdf(self, r):
        arr, was_scalar = as_float_array(r)
        d, R = self._d, self._radius
        rr = np.maximum(arr, 0.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            cos_half = (d * d + rr * rr - R * R) / (2.0 * d * rr)
        alpha = np.arccos(np.clip(np.nan_to_num(cos_half, nan=-1.0), -1.0, 1.0))
        alpha = np.where(rr <= R - d, math.pi, alpha)
        alpha = np.where((rr <= max(d - R, 0.0)) | (rr >= d + R), 0.0, alpha)
        values = 2.0 * alpha * rr / (math.pi * R * R)
        return scalar_or_array(np.where(arr < 0, 0.0, values), was_scalar)

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        angles = rng.uniform(0.0, 2.0 * math.pi, size)
        radii = self._radius * np.sqrt(rng.uniform(0.0, 1.0, size))
        points = self._center + np.column_stack(
            (radii * np.cos(angles), radii * np.sin(angles))
        )
        return np.linalg.norm(points - self._q, axis=1)

    def knots(self) -> np.ndarray:
        # The arc half-angle saturates at π when r crosses R - d (query
        # point inside the disk) — the only interior non-smooth radius.
        pivot = self._radius - self._d
        if self._near < pivot < self._far:
            return np.array([pivot])
        return np.empty(0)

    # ------------------------------------------------------------------

    def _materialize(self) -> DistanceDistribution:
        d, R = self._d, self._radius

        def scalar_cdf(r: float) -> float:
            area = circle_circle_intersection_area(d, R, max(float(r), 0.0))
            return area / (math.pi * R * R)

        return DistanceDistribution.from_cdf(
            scalar_cdf, self._near, self._far, self._bins, key=self._key
        )

    def pack_params(self) -> np.ndarray:
        return np.array(
            [
                self._q[0],
                self._q[1],
                self._center[0],
                self._center[1],
                self._radius,
                float(self._bins),
            ]
        )

    @classmethod
    def from_params(cls, params: np.ndarray) -> "UniformDiskDistance":
        qx, qy, cx, cy, radius, bins = (float(v) for v in params)
        return cls((qx, qy), (cx, cy), radius, distance_bins=int(bins))
