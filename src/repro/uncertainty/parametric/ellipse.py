"""GPS error-ellipse distance distribution (anisotropic Gaussian).

GPS fixes are classically modelled as a 2-D anisotropic Gaussian
around the reported position — standard deviations ``sigma_x``/
``sigma_y`` along a rotated semi-major/minor axis pair — truncated at
the ``k``-sigma confidence ellipse (Mahalanobis distance ≤ ``k``).

The distance cdf ``D(r) = Pr[|X - q| <= r]`` integrates the truncated
density over disk(q, r).  In polar coordinates about ``q`` the
Mahalanobis form along a ray with direction ``u(φ)`` is a quadratic
``m(s) = a(φ)s² + 2b(φ)s + c0``, so the radial mass has the closed
form (``α = a/2``)

    ∫ s·e^{-m(s)/2} ds  =  (e^{-c0/2} - e^{-m(s)/2}) / (2α)
                         - (b/(2α))·(√π/(2√α))·e^{(b²-a·c0)/(2a)}
                           ·[erf(√α·s + b/(2√α)) - erf(b/(2√α))]

in ``exp``/``erf`` only (the combined exponent is ≤ 0 by
Cauchy–Schwarz, so nothing overflows).  The truncation enters as
per-angle ray limits from the quadratic's roots, and the angular
integral is fixed-order Gauss–Legendre per smooth piece — the same
technique ``disk_rect_intersection_area`` uses — with pieces split at
the tangency angles found by a discriminant sign-scan + bisection.

Because the angular rule is fixed at construction, the cdf is
*exactly* monotone in ``r`` and self-normalised to 1 at ``far``: it
is the true cdf of a well-defined probability model (the quadrature
mixture of exact 1-D radial laws), which is all the verifier bounds
and the materialised fallback need to stay mutually consistent.
"""

from __future__ import annotations

import math
from typing import Hashable

import numpy as np
from scipy.special import erf

from repro.numerics.quadrature import gauss_legendre_nodes
from repro.uncertainty.distance import DistanceDistribution
from repro.uncertainty.parametric.base import (
    ParametricDistance,
    as_float_array,
    register_family,
    scalar_or_array,
)
from repro.uncertainty.twod import DEFAULT_DISTANCE_BINS, _as_point2d

__all__ = ["GpsEllipseDistance", "ellipse_half_extents"]

#: Gauss–Legendre nodes per smooth angular piece.
_ANGLE_NODES = 96

#: Sign-scan resolution for locating tangency angles.
_SCAN = 1024

#: Boundary-scan resolution for the conservative near/far estimate.
_BOUNDARY_SCAN = 2048


def ellipse_half_extents(
    sigma_x: float, sigma_y: float, angle: float, k: float
) -> tuple[float, float]:
    """Axis-aligned half-extents of the rotated ``k``-sigma ellipse."""
    cos_a, sin_a = math.cos(angle), math.sin(angle)
    half_x = k * math.hypot(sigma_x * cos_a, sigma_y * sin_a)
    half_y = k * math.hypot(sigma_x * sin_a, sigma_y * cos_a)
    return half_x, half_y


@register_family
class GpsEllipseDistance(ParametricDistance):
    """Exact ``|X - q|`` law for a k-sigma-truncated GPS error ellipse."""

    __slots__ = (
        "_q",
        "_center",
        "_sigma_x",
        "_sigma_y",
        "_angle",
        "_k",
        "_bins",
        "_near",
        "_far",
        "_c0",
        "_node_w",
        "_node_a",
        "_node_b",
        "_node_lo",
        "_node_hi",
        "_mass_lo",
        "_mass_hi",
        "_total",
    )

    family = "gps_ellipse"

    def __init__(
        self,
        q,
        center,
        sigma_x: float,
        sigma_y: float,
        angle: float = 0.0,
        k: float = 3.0,
        distance_bins: int = DEFAULT_DISTANCE_BINS,
        key: Hashable = None,
    ) -> None:
        super().__init__(key)
        self._q = _as_point2d(q)
        self._center = _as_point2d(center)
        if sigma_x <= 0 or sigma_y <= 0:
            raise ValueError("sigma_x and sigma_y must be positive")
        if k <= 0:
            raise ValueError("k must be positive")
        self._sigma_x = float(sigma_x)
        self._sigma_y = float(sigma_y)
        self._angle = float(angle)
        self._k = float(k)
        self._bins = int(distance_bins)

        cos_a, sin_a = math.cos(self._angle), math.sin(self._angle)
        w = self._q - self._center
        # Ellipse-frame components of q - center.
        wx = w[0] * cos_a + w[1] * sin_a
        wy = -w[0] * sin_a + w[1] * cos_a
        sx2, sy2 = self._sigma_x**2, self._sigma_y**2
        self._c0 = wx * wx / sx2 + wy * wy / sy2

        phis, weights = self._angular_rule()
        ux = np.cos(phis) * cos_a + np.sin(phis) * sin_a
        uy = -np.cos(phis) * sin_a + np.sin(phis) * cos_a
        a = ux * ux / sx2 + uy * uy / sy2
        b = wx * ux / sx2 + wy * uy / sy2
        disc = b * b - a * (self._c0 - self._k**2)
        valid = disc > 0
        root = np.sqrt(np.maximum(disc, 0.0))
        s1 = np.where(valid, (-b - root) / a, 0.0)
        s2 = np.where(valid, (-b + root) / a, 0.0)
        lo = np.maximum(s1, 0.0)
        hi = np.maximum(s2, 0.0)
        keep = valid & (hi > lo)
        self._node_w = weights[keep]
        self._node_a = a[keep]
        self._node_b = b[keep]
        self._node_lo = lo[keep]
        self._node_hi = hi[keep]
        if self._node_w.size == 0:
            raise ValueError("query ray fan misses the truncation ellipse")
        self._mass_lo = self._radial_mass(self._node_lo)
        self._mass_hi = self._radial_mass(self._node_hi)
        self._total = float(self._node_w @ (self._mass_hi - self._mass_lo))
        if self._total <= 0:
            raise ValueError("truncation ellipse carries no mass")

        self._near, self._far = self._distance_range()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _angular_rule(self) -> tuple[np.ndarray, np.ndarray]:
        """Angular quadrature nodes/weights split at tangency angles."""
        if self._c0 <= self._k**2:
            # q inside the ellipse: every ray hits, one smooth piece.
            pieces = [(0.0, 2.0 * math.pi)]
        else:
            cuts = self._tangency_angles()
            pieces = []
            for start, end in cuts:
                if end > start:
                    pieces.append((start, end))
            if not pieces:  # pragma: no cover - tangency degeneracy
                pieces = [(0.0, 2.0 * math.pi)]
        nodes, gl_w = gauss_legendre_nodes(_ANGLE_NODES)
        phis, weights = [], []
        for start, end in pieces:
            mid = 0.5 * (start + end)
            half = 0.5 * (end - start)
            phis.append(mid + half * nodes)
            weights.append(half * gl_w)
        return np.concatenate(phis), np.concatenate(weights)

    def _disc_of(self, phis: np.ndarray) -> np.ndarray:
        cos_a, sin_a = math.cos(self._angle), math.sin(self._angle)
        w = self._q - self._center
        wx = w[0] * cos_a + w[1] * sin_a
        wy = -w[0] * sin_a + w[1] * cos_a
        sx2, sy2 = self._sigma_x**2, self._sigma_y**2
        ux = np.cos(phis) * cos_a + np.sin(phis) * sin_a
        uy = -np.cos(phis) * sin_a + np.sin(phis) * cos_a
        a = ux * ux / sx2 + uy * uy / sy2
        b = wx * ux / sx2 + wy * uy / sy2
        return b * b - a * (self._c0 - self._k**2)

    def _tangency_angles(self) -> list[tuple[float, float]]:
        """Angular intervals with ``disc > 0`` (rays that hit), located
        by a sign scan and sharpened by bisection."""
        phis = np.linspace(0.0, 2.0 * math.pi, _SCAN + 1)
        disc = self._disc_of(phis)
        positive = disc > 0

        def bisect(left: float, right: float) -> float:
            want = self._disc_of(np.array([right]))[0] > 0
            for _ in range(60):
                mid = 0.5 * (left + right)
                if (self._disc_of(np.array([mid]))[0] > 0) == want:
                    right = mid
                else:
                    left = mid
            return 0.5 * (left + right)

        intervals = []
        start = None
        for i in range(_SCAN + 1):
            if positive[i] and start is None:
                start = (
                    bisect(phis[i - 1], phis[i]) if i > 0 else phis[0]
                )
            elif not positive[i] and start is not None:
                intervals.append((start, bisect(phis[i - 1], phis[i])))
                start = None
        if start is not None:
            intervals.append((start, phis[-1]))
        # A hit cone straddling the 0/2π seam shows up as two pieces,
        # which is fine: the quadrature just splits there.
        return intervals

    def _radial_mass(self, s: np.ndarray) -> np.ndarray:
        """``∫_0^s t·e^{-(a t² + 2 b t + c0)/2} dt`` per node (exact)."""
        a, b, c0 = self._node_a, self._node_b, self._c0
        alpha = 0.5 * a
        sqrt_alpha = np.sqrt(alpha)
        v0 = b / (2.0 * sqrt_alpha)
        head = (
            np.exp(-0.5 * c0) - np.exp(-(alpha * s * s + b * s + 0.5 * c0))
        ) / (2.0 * alpha)
        # Combined exponent (b² - a·c0)/(2a) ≤ 0 by Cauchy–Schwarz.
        tail_scale = np.exp((b * b - a * c0) / (2.0 * a))
        tail = (
            (b / (2.0 * alpha))
            * (math.sqrt(math.pi) / (2.0 * sqrt_alpha))
            * tail_scale
            * (erf(sqrt_alpha * s + v0) - erf(v0))
        )
        return head - tail

    def _distance_range(self) -> tuple[float, float]:
        """Conservative ``[near, far]`` from a Lipschitz boundary scan."""
        ts = np.linspace(0.0, 2.0 * math.pi, _BOUNDARY_SCAN, endpoint=False)
        cos_a, sin_a = math.cos(self._angle), math.sin(self._angle)
        ex = self._k * self._sigma_x * np.cos(ts)
        ey = self._k * self._sigma_y * np.sin(ts)
        px = self._center[0] + ex * cos_a - ey * sin_a
        py = self._center[1] + ex * sin_a + ey * cos_a
        dist = np.hypot(px - self._q[0], py - self._q[1])
        step = 2.0 * math.pi / _BOUNDARY_SCAN
        margin = self._k * math.hypot(self._sigma_x, self._sigma_y) * step / 2.0
        far = float(dist.max()) + margin
        if self._c0 <= self._k**2:
            near = 0.0
        else:
            near = max(0.0, float(dist.min()) - margin)
        return near, far

    # ------------------------------------------------------------------
    # Protocol surface
    # ------------------------------------------------------------------

    @property
    def near(self) -> float:
        return self._near

    @property
    def far(self) -> float:
        return self._far

    def cdf(self, r):
        arr, was_scalar = as_float_array(r)
        rr = np.maximum(arr, 0.0)[:, None]
        s_eff = np.clip(rr, self._node_lo, self._node_hi)
        mass = self._radial_mass(s_eff) - self._mass_lo
        values = (mass @ self._node_w) / self._total
        return scalar_or_array(np.clip(values, 0.0, 1.0), was_scalar)

    def pdf(self, r):
        arr, was_scalar = as_float_array(r)
        rr = np.maximum(arr, 0.0)[:, None]
        inside = (rr >= self._node_lo) & (rr <= self._node_hi)
        density = rr * np.exp(
            -0.5 * (self._node_a * rr * rr + 2.0 * self._node_b * rr + self._c0)
        )
        values = (np.where(inside, density, 0.0) @ self._node_w) / self._total
        return scalar_or_array(np.where(arr < 0, 0.0, values), was_scalar)

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Rejection from the untruncated Gaussian (accept |z| ≤ k)."""
        cos_a, sin_a = math.cos(self._angle), math.sin(self._angle)
        out = np.empty((size, 2))
        filled = 0
        while filled < size:
            draw = max(size - filled, 16)
            z = rng.standard_normal((draw, 2))
            keep = z[(z * z).sum(axis=1) <= self._k**2]
            take = min(keep.shape[0], size - filled)
            out[filled : filled + take] = keep[:take]
            filled += take
        ex = self._sigma_x * out[:, 0]
        ey = self._sigma_y * out[:, 1]
        px = self._center[0] + ex * cos_a - ey * sin_a
        py = self._center[1] + ex * sin_a + ey * cos_a
        return np.hypot(px - self._q[0], py - self._q[1])

    def knots(self) -> np.ndarray:
        """Grid hints: quantiles of the per-ray entry/exit radii."""
        pts = np.concatenate([self._node_lo[self._node_lo > 0], self._node_hi])
        if pts.size == 0:
            return np.empty(0)
        qs = np.quantile(pts, np.linspace(0.0, 1.0, 17))
        qs = np.unique(qs)
        return qs[(qs > self._near) & (qs < self._far)]

    # ------------------------------------------------------------------

    def _materialize(self) -> DistanceDistribution:
        return DistanceDistribution.from_cdf(
            lambda r: float(self.cdf(float(r))),
            self._near,
            self._far,
            self._bins,
            key=self._key,
        )

    def pack_params(self) -> np.ndarray:
        return np.array(
            [
                self._q[0],
                self._q[1],
                self._center[0],
                self._center[1],
                self._sigma_x,
                self._sigma_y,
                self._angle,
                self._k,
                float(self._bins),
            ]
        )

    @classmethod
    def from_params(cls, params: np.ndarray) -> "GpsEllipseDistance":
        qx, qy, cx, cy, sx, sy, angle, k, bins = (float(v) for v in params)
        return cls(
            (qx, qy),
            (cx, cy),
            sx,
            sy,
            angle=angle,
            k=k,
            distance_bins=int(bins),
        )
