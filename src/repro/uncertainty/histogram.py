"""Piecewise-constant densities ("histograms") and their calculus.

The paper represents every uncertainty pdf as a histogram and every
distance pdf as a histogram whose cdf is therefore piecewise linear
(Section IV-A).  This module provides that representation together with
the exact operations the query engine needs:

* evaluation of pdf/cdf/quantiles,
* *folding* a value histogram about a query point to obtain the
  distance histogram of ``|X - q|`` (Figure 6 of the paper),
* refinement of the breakpoint grid (used to build subregions),
* conservative rebinning and mixing.

All operations are exact for piecewise-constant inputs: no sampling or
numerical integration error is introduced anywhere in this module.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["Histogram", "HistogramError"]

#: Relative tolerance used when deduplicating nearly-equal breakpoints.
_EDGE_RTOL = 1e-12

#: Absolute floor below which a bin width is treated as degenerate.
_EDGE_ATOL = 1e-15


class HistogramError(ValueError):
    """Raised when histogram inputs are structurally invalid."""


def _as_edge_array(values: Sequence[float] | np.ndarray) -> np.ndarray:
    edges = np.asarray(values, dtype=float)
    if edges.ndim != 1 or edges.size < 2:
        raise HistogramError("edges must be a 1-D array with at least two entries")
    if not np.all(np.isfinite(edges)):
        raise HistogramError("edges must be finite")
    if not np.all(np.diff(edges) > 0):
        raise HistogramError("edges must be strictly increasing")
    return edges


def _as_density_array(values: Sequence[float] | np.ndarray, nbins: int) -> np.ndarray:
    densities = np.asarray(values, dtype=float)
    if densities.shape != (nbins,):
        raise HistogramError(
            f"densities must have shape ({nbins},), got {densities.shape}"
        )
    if not np.all(np.isfinite(densities)):
        raise HistogramError("densities must be finite")
    if np.any(densities < 0):
        raise HistogramError("densities must be non-negative")
    return densities


def _dedupe_edges(edges: np.ndarray) -> np.ndarray:
    """Sort ``edges`` and drop entries closer than the numeric tolerance."""
    edges = np.sort(np.asarray(edges, dtype=float))
    if edges.size == 0:
        return edges
    scale = max(abs(float(edges[0])), abs(float(edges[-1])), 1.0)
    threshold = _EDGE_ATOL + _EDGE_RTOL * scale
    keep = np.empty(edges.size, dtype=bool)
    keep[0] = True
    np.greater(np.diff(edges), threshold, out=keep[1:])
    return edges[keep]


class Histogram:
    """A non-negative piecewise-constant function on a closed interval.

    Parameters
    ----------
    edges:
        Strictly increasing bin boundaries, shape ``(n + 1,)``.
    densities:
        Density value inside each bin, shape ``(n,)``.  Densities are
        per-unit-length, so the mass of bin ``i`` is
        ``densities[i] * (edges[i + 1] - edges[i])``.

    Notes
    -----
    A histogram is not required to integrate to one; use
    :meth:`normalized` to obtain a probability density.  The cdf is the
    piecewise-linear function interpolating the cumulative masses at the
    edges, exactly as the paper assumes ("the corresponding distance cdf
    is then a piecewise linear function", Section IV-A).
    """

    __slots__ = ("_edges", "_densities", "_cdf_knots")

    def __init__(
        self,
        edges: Sequence[float] | np.ndarray,
        densities: Sequence[float] | np.ndarray,
    ) -> None:
        self._edges = _as_edge_array(edges)
        self._densities = _as_density_array(densities, self._edges.size - 1)
        masses = self._densities * np.diff(self._edges)
        self._cdf_knots = np.concatenate(([0.0], np.cumsum(masses)))

    @classmethod
    def _raw(cls, edges: np.ndarray, densities: np.ndarray) -> "Histogram":
        """Internal fast constructor: skips validation.

        Used on the query hot path (distance folding, trimming,
        normalising) where the inputs are produced by this module and
        already satisfy the invariants; the public constructor keeps
        validating everything user-supplied.
        """
        instance = cls.__new__(cls)
        instance._edges = edges
        instance._densities = densities
        masses = densities * np.diff(edges)
        instance._cdf_knots = np.concatenate(([0.0], np.cumsum(masses)))
        return instance

    def _pdf_values(self, arr: np.ndarray) -> np.ndarray:
        """Vectorised pdf evaluation without scalar-conversion overhead."""
        idx = np.searchsorted(self._edges, arr, side="right") - 1
        np.clip(idx, 0, self._densities.size - 1, out=idx)
        values = self._densities[idx]
        inside = (arr >= self._edges[0]) & (arr <= self._edges[-1])
        return np.where(inside, values, 0.0)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def uniform(cls, lo: float, hi: float, mass: float = 1.0) -> "Histogram":
        """A single-bin histogram carrying ``mass`` uniformly on [lo, hi]."""
        if not hi > lo:
            raise HistogramError("uniform histogram requires hi > lo")
        return cls([lo, hi], [mass / (hi - lo)])

    @classmethod
    def from_masses(
        cls,
        edges: Sequence[float] | np.ndarray,
        masses: Sequence[float] | np.ndarray,
    ) -> "Histogram":
        """Build a histogram from per-bin probability masses."""
        edge_arr = _as_edge_array(edges)
        mass_arr = np.asarray(masses, dtype=float)
        if mass_arr.shape != (edge_arr.size - 1,):
            raise HistogramError("masses must have one entry per bin")
        if np.any(mass_arr < 0) or not np.all(np.isfinite(mass_arr)):
            raise HistogramError("masses must be finite and non-negative")
        return cls(edge_arr, mass_arr / np.diff(edge_arr))

    @classmethod
    def from_cdf(
        cls,
        cdf,
        lo: float,
        hi: float,
        bins: int,
    ) -> "Histogram":
        """Discretise a cdf callable into ``bins`` equal-width bins.

        The resulting histogram's cdf agrees with ``cdf`` exactly at
        every bin edge; mass inside a bin is spread uniformly.  This is
        how 2-D uncertainty regions are converted to distance
        histograms (Section IV-A notes the 1-D machinery only needs
        distance pdfs/cdfs).
        """
        if bins < 1:
            raise HistogramError("bins must be >= 1")
        edges = np.linspace(lo, hi, bins + 1)
        values = np.asarray([float(cdf(edge)) for edge in edges])
        masses = np.diff(values)
        masses = np.clip(masses, 0.0, None)
        return cls.from_masses(edges, masses)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def edges(self) -> np.ndarray:
        """Bin boundaries (read-only view)."""
        view = self._edges.view()
        view.flags.writeable = False
        return view

    @property
    def densities(self) -> np.ndarray:
        """Per-bin densities (read-only view)."""
        view = self._densities.view()
        view.flags.writeable = False
        return view

    @property
    def nbins(self) -> int:
        return self._densities.size

    @property
    def lo(self) -> float:
        return float(self._edges[0])

    @property
    def hi(self) -> float:
        return float(self._edges[-1])

    @property
    def width(self) -> float:
        return self.hi - self.lo

    @property
    def masses(self) -> np.ndarray:
        """Probability mass inside each bin."""
        return np.diff(self._cdf_knots)

    @property
    def total_mass(self) -> float:
        return float(self._cdf_knots[-1])

    @property
    def cdf_knots(self) -> np.ndarray:
        """Cumulative mass at each edge (piecewise-linear cdf knots)."""
        view = self._cdf_knots.view()
        view.flags.writeable = False
        return view

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Histogram(nbins={self.nbins}, lo={self.lo:.6g}, hi={self.hi:.6g}, "
            f"mass={self.total_mass:.6g})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return np.array_equal(self._edges, other._edges) and np.array_equal(
            self._densities, other._densities
        )

    def __hash__(self) -> int:
        return hash((self._edges.tobytes(), self._densities.tobytes()))

    def is_close(self, other: "Histogram", tol: float = 1e-9) -> bool:
        """Approximate equality on a merged breakpoint grid."""
        grid = _dedupe_edges(np.concatenate((self._edges, other._edges)))
        mids = 0.5 * (grid[:-1] + grid[1:])
        return bool(
            np.allclose(self.pdf(mids), other.pdf(mids), atol=tol)
            and abs(self.lo - other.lo) <= tol
            and abs(self.hi - other.hi) <= tol
        )

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def pdf(self, x: float | np.ndarray) -> np.ndarray | float:
        """Density at ``x`` (0 outside the support).

        At an interior breakpoint the value of the bin to the *right*
        is returned; at ``hi`` the last bin's value is returned.
        """
        arr = np.asarray(x, dtype=float)
        idx = np.searchsorted(self._edges, arr, side="right") - 1
        idx = np.clip(idx, 0, self.nbins - 1)
        values = self._densities[idx]
        inside = (arr >= self._edges[0]) & (arr <= self._edges[-1])
        result = np.where(inside, values, 0.0)
        if np.isscalar(x):
            return float(result)
        return result

    def cdf(self, x: float | np.ndarray) -> np.ndarray | float:
        """Cumulative mass on ``(-inf, x]`` (piecewise linear)."""
        arr = np.asarray(x, dtype=float)
        result = np.interp(
            arr,
            self._edges,
            self._cdf_knots,
            left=0.0,
            right=self._cdf_knots[-1],
        )
        if np.isscalar(x):
            return float(result)
        return result

    def sf(self, x: float | np.ndarray) -> np.ndarray | float:
        """Survival function ``total_mass - cdf(x)``."""
        return self.total_mass - self.cdf(x)

    def ppf(self, u: float | np.ndarray) -> np.ndarray | float:
        """Generalised inverse of the cdf for ``u`` in [0, total_mass]."""
        arr = np.asarray(u, dtype=float)
        if np.any((arr < -1e-12) | (arr > self.total_mass + 1e-12)):
            raise HistogramError("ppf argument outside [0, total_mass]")
        arr = np.clip(arr, 0.0, self.total_mass)
        result = np.interp(arr, self._cdf_knots, self._edges)
        if np.isscalar(u):
            return float(result)
        return result

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` iid samples (inverse-cdf method)."""
        if self.total_mass <= 0:
            raise HistogramError("cannot sample from a zero-mass histogram")
        return np.asarray(self.ppf(rng.uniform(0.0, self.total_mass, size)))

    def mean(self) -> float:
        """First moment (of the normalised density)."""
        if self.total_mass <= 0:
            raise HistogramError("mean of a zero-mass histogram is undefined")
        left, right = self._edges[:-1], self._edges[1:]
        first = np.sum(self._densities * (right**2 - left**2) / 2.0)
        return float(first / self.total_mass)

    def variance(self) -> float:
        """Second central moment (of the normalised density)."""
        if self.total_mass <= 0:
            raise HistogramError("variance of a zero-mass histogram is undefined")
        left, right = self._edges[:-1], self._edges[1:]
        second = np.sum(self._densities * (right**3 - left**3) / 3.0)
        mu = self.mean()
        return float(second / self.total_mass - mu * mu)

    def mass_between(self, a: float, b: float) -> float:
        """Probability mass on the interval [a, b]."""
        if b < a:
            raise HistogramError("mass_between requires a <= b")
        return float(self.cdf(b) - self.cdf(a))

    # ------------------------------------------------------------------
    # Transformations (all exact)
    # ------------------------------------------------------------------

    def normalized(self) -> "Histogram":
        """Scale densities so that the total mass is one."""
        total = self.total_mass
        if total <= 0:
            raise HistogramError("cannot normalise a zero-mass histogram")
        return Histogram._raw(self._edges, self._densities / total)

    def scaled(self, factor: float) -> "Histogram":
        """Multiply all densities by a non-negative ``factor``."""
        if factor < 0:
            raise HistogramError("scale factor must be non-negative")
        return Histogram(self._edges, self._densities * factor)

    def shifted(self, offset: float) -> "Histogram":
        """Translate the support by ``offset``."""
        return Histogram(self._edges + offset, self._densities)

    def reflected(self) -> "Histogram":
        """The histogram of ``-X``."""
        return Histogram(-self._edges[::-1], self._densities[::-1])

    def trimmed(self) -> "Histogram":
        """Drop leading/trailing zero-density bins.

        The *near* and *far* points of a distance pdf (Definition 3)
        are the boundaries of the support where the density is actually
        positive, so zero-density margins must be removed before they
        are read off.
        """
        positive = np.flatnonzero(self._densities > 0)
        if positive.size == 0:
            raise HistogramError("cannot trim a zero-mass histogram")
        first, last = positive[0], positive[-1] + 1
        if first == 0 and last == self._densities.size:
            return self
        return Histogram._raw(
            self._edges[first : last + 1], self._densities[first:last]
        )

    def with_breakpoints(self, points: Iterable[float]) -> "Histogram":
        """Refine the grid to include ``points`` inside the support.

        The represented density function is unchanged; only the bin
        boundaries are subdivided.  Points outside the support are
        ignored.
        """
        extra = np.asarray(list(points), dtype=float)
        if extra.size == 0:
            return self
        extra = extra[(extra > self.lo) & (extra < self.hi)]
        if extra.size == 0:
            return self
        edges = _dedupe_edges(np.concatenate((self._edges, extra)))
        mids = 0.5 * (edges[:-1] + edges[1:])
        return Histogram._raw(edges, self._pdf_values(mids))

    def restricted(self, a: float, b: float) -> "Histogram":
        """The (unnormalised) restriction of the density to [a, b]."""
        if not b > a:
            raise HistogramError("restricted requires b > a")
        a = max(a, self.lo)
        b = min(b, self.hi)
        if not b > a:
            raise HistogramError("restriction interval misses the support")
        refined = self.with_breakpoints([a, b])
        edges = refined._edges
        lo_idx = int(np.searchsorted(edges, a, side="left"))
        hi_idx = int(np.searchsorted(edges, b, side="left"))
        # Guard against tolerance-level mismatches from deduplication.
        lo_idx = min(max(lo_idx, 0), edges.size - 2)
        hi_idx = min(max(hi_idx, lo_idx + 1), edges.size - 1)
        return Histogram(edges[lo_idx : hi_idx + 1], refined._densities[lo_idx:hi_idx])

    def rebinned(self, new_edges: Sequence[float] | np.ndarray) -> "Histogram":
        """Conservative (mass-preserving) rebinning onto ``new_edges``.

        ``new_edges`` must cover the support.  Mass falling into each
        new bin is computed exactly from the piecewise-linear cdf.
        """
        edges = _as_edge_array(new_edges)
        if edges[0] > self.lo + _EDGE_ATOL or edges[-1] < self.hi - _EDGE_ATOL:
            raise HistogramError("new edges must cover the support")
        masses = np.diff(np.asarray(self.cdf(edges)))
        return Histogram.from_masses(edges, np.clip(masses, 0.0, None))

    def fold_abs(self, q: float) -> "Histogram":
        """The exact histogram of the distance ``|X - q|``.

        This implements Figure 6 of the paper: mass on both sides of
        ``q`` is reflected onto the positive half-line and summed.  The
        result's breakpoints are ``{|e - q| : e in edges}`` (plus 0 when
        ``q`` lies inside the support), so the output is exact.
        """
        if self._densities.size == 1:
            # Closed form for the ubiquitous uniform case (Figure 6).
            lo = float(self._edges[0])
            hi = float(self._edges[-1])
            d = float(self._densities[0])
            if q <= lo:
                return Histogram._raw(np.asarray([lo - q, hi - q]), np.asarray([d]))
            if q >= hi:
                return Histogram._raw(np.asarray([q - hi, q - lo]), np.asarray([d]))
            near_side = min(q - lo, hi - q)
            far_side = max(q - lo, hi - q)
            if far_side - near_side <= _EDGE_ATOL + _EDGE_RTOL * max(far_side, 1.0):
                return Histogram._raw(
                    np.asarray([0.0, near_side]), np.asarray([2.0 * d])
                )
            return Histogram._raw(
                np.asarray([0.0, near_side, far_side]), np.asarray([2.0 * d, d])
            )
        candidates = np.abs(self._edges - q)
        if self._edges[0] < q < self._edges[-1]:
            candidates = np.concatenate((candidates, [0.0]))
        new_edges = _dedupe_edges(candidates)
        mids = 0.5 * (new_edges[:-1] + new_edges[1:])
        densities = self._pdf_values(q + mids) + self._pdf_values(q - mids)
        return Histogram._raw(new_edges, densities)

    @staticmethod
    def mixture(
        components: Sequence["Histogram"],
        weights: Sequence[float] | None = None,
    ) -> "Histogram":
        """Weighted pointwise sum of histograms on a merged grid."""
        if not components:
            raise HistogramError("mixture requires at least one component")
        if weights is None:
            weights = [1.0 / len(components)] * len(components)
        if len(weights) != len(components):
            raise HistogramError("one weight per component required")
        if any(w < 0 for w in weights):
            raise HistogramError("weights must be non-negative")
        edges = _dedupe_edges(
            np.concatenate([component._edges for component in components])
        )
        mids = 0.5 * (edges[:-1] + edges[1:])
        densities = np.zeros_like(mids)
        for weight, component in zip(weights, components):
            densities += weight * np.asarray(component.pdf(mids))
        return Histogram(edges, densities)
