"""Uncertain objects in one-dimensional space (the paper's focus).

An :class:`UncertainObject` couples an identifier with an uncertainty
pdf over a closed interval.  It knows how to produce

* its minimum/maximum possible distance from a query point (used by
  R-tree filtering, Section III and [8]), and
* its full :class:`~repro.uncertainty.distance.DistanceDistribution`
  (used by verifiers and refinement).

Two-dimensional objects (disk/segment/rectangle regions) live in
:mod:`repro.uncertainty.twod` and satisfy the same
:class:`SpatialUncertain` protocol, so the whole query pipeline is
dimension-agnostic exactly as Section IV-A claims.
"""

from __future__ import annotations

from typing import Hashable, Protocol, runtime_checkable

from repro.index.geometry import Rect
from repro.uncertainty.distance import DistanceDistribution
from repro.uncertainty.histogram import Histogram
from repro.uncertainty.pdfs import (
    DEFAULT_GAUSSIAN_BARS,
    HistogramPdf,
    TruncatedGaussianPdf,
    UncertaintyPdf,
    UniformPdf,
)

__all__ = ["SpatialUncertain", "UncertainObject"]


@runtime_checkable
class SpatialUncertain(Protocol):
    """What the query pipeline needs from an uncertain object."""

    @property
    def key(self) -> Hashable:
        """Stable identifier reported in query answers."""

    @property
    def mbr(self) -> Rect:
        """Minimum bounding rectangle of the uncertainty region."""

    def mindist(self, q) -> float:
        """Smallest possible distance from the query point."""

    def maxdist(self, q) -> float:
        """Largest possible distance from the query point."""

    def distance_distribution(self, q) -> DistanceDistribution:
        """The exact distribution of ``|X - q|``."""


class UncertainObject:
    """A 1-D uncertain object: an identifier plus an interval pdf."""

    __slots__ = ("_key", "_pdf", "_histogram", "_mbr")

    def __init__(self, key: Hashable, pdf: UncertaintyPdf) -> None:
        self._key = key
        self._pdf = pdf
        self._histogram = pdf.to_histogram().normalized()
        self._mbr: Rect | None = None

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------

    @classmethod
    def uniform(cls, key: Hashable, lo: float, hi: float) -> "UncertainObject":
        """An interval with a uniform pdf (the Long Beach workload)."""
        return cls(key, UniformPdf(lo, hi))

    @classmethod
    def gaussian(
        cls,
        key: Hashable,
        lo: float,
        hi: float,
        mean: float | None = None,
        sigma: float | None = None,
        bars: int = DEFAULT_GAUSSIAN_BARS,
    ) -> "UncertainObject":
        """A truncated-Gaussian object (Section V-B experiment 5)."""
        return cls(key, TruncatedGaussianPdf(lo, hi, mean=mean, sigma=sigma, bars=bars))

    @classmethod
    def from_histogram(cls, key: Hashable, histogram: Histogram) -> "UncertainObject":
        """An object with an arbitrary histogram pdf (Figure 1(b))."""
        return cls(key, HistogramPdf.from_histogram(histogram))

    # ------------------------------------------------------------------

    @property
    def key(self) -> Hashable:
        return self._key

    @property
    def pdf(self) -> UncertaintyPdf:
        return self._pdf

    @property
    def histogram(self) -> Histogram:
        """The normalised histogram form used by the engine."""
        return self._histogram

    @property
    def lo(self) -> float:
        return self._histogram.lo

    @property
    def hi(self) -> float:
        return self._histogram.hi

    @property
    def mbr(self) -> Rect:
        """Degenerate (1-D) bounding rectangle for indexing.

        Built once and cached: the object is immutable, and the
        dynamic-update paths touch ``mbr`` several times per mutation
        (index maintenance, batch-filter rows, cache invalidation).
        """
        if self._mbr is None:
            self._mbr = Rect.interval(self.lo, self.hi)
        return self._mbr

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"UncertainObject(key={self._key!r}, "
            f"[{self.lo:.6g}, {self.hi:.6g}], pdf={type(self._pdf).__name__})"
        )

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------

    def mindist(self, q) -> float:
        """Near distance: 0 when ``q`` is inside the interval."""
        x = _scalar_query(q)
        return max(self.lo - x, x - self.hi, 0.0)

    def maxdist(self, q) -> float:
        """Far distance: distance to the farthest interval end."""
        x = _scalar_query(q)
        return max(x - self.lo, self.hi - x)

    def distance_distribution(self, q) -> DistanceDistribution:
        """Exact fold of the value histogram about ``q`` (Figure 6)."""
        x = _scalar_query(q)
        return DistanceDistribution.from_value_histogram(
            self._histogram, x, key=self._key
        )


def _scalar_query(q) -> float:
    """Accept a bare float or a length-1 sequence as a 1-D query point."""
    if hasattr(q, "__len__"):
        if len(q) != 1:
            raise ValueError("1-D uncertain objects require a 1-D query point")
        return float(q[0])
    return float(q)
