"""Deterministic fault-injection points for the execution substrate.

Robustness code is only as good as its tests, and the failure modes the
engine must survive — a worker killed mid-batch, a reply that never
comes, a shared-memory segment whose name vanished between export and
attach — are all race-shaped.  This module turns them into *scripted*
events: the substrate calls :func:`fire` at a handful of named points,
and a test (or the service-level
:class:`~repro.service.faults.FaultInjector`) installs a handler that
acts at an exact occurrence — kill this process, sleep this long, raise
this error — making every failure deterministic and replayable.

When no handler is installed, :func:`fire` is a single truthiness check
on an empty list — the production hot path pays nothing measurable.

Points currently instrumented (callers pass keyword context):

====================  ==================================================
point                 fired
====================  ==================================================
``executor.dispatch``  before a parallel backend sends a work batch
                       (``backend=``, ``kind=`` ``"pnn"``/``"sweep"``,
                       ``executor=`` the backend instance)
``process.send``       before each per-worker work message
                       (``lane=``, ``kind=``, ``worker=`` the parent-
                       side :class:`_Worker`)
``process.recv``       before the parent waits on a worker's reply
                       (``lane=``, ``worker=``)
``process.attach``     after the coordinate segment is exported, before
                       workers attach (``segment=`` the name)
``shm.attach``         on every parent-side segment attach
                       (``segment=``)
``service.batch``      before the query service executes a coalesced
                       micro-batch (``size=``)
====================  ==================================================

A handler that *raises* injects that exception into the instrumented
code path; a handler that sleeps delays it; a handler that kills a
process referenced by the context simulates a crash.  Handlers run in
installation order.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator

__all__ = ["fire", "handlers", "install", "reset", "uninstall"]

Handler = Callable[[str, dict], None]

_handlers: list[Handler] = []


def fire(point: str, **context) -> None:
    """Invoke every installed handler for ``point``.

    No-op (one list check) when nothing is installed.  Exceptions
    raised by a handler propagate into the caller — that *is* the
    injected fault.
    """
    if not _handlers:
        return
    for handler in list(_handlers):
        handler(point, context)


def install(handler: Handler) -> Handler:
    """Install a handler; returns it so callers can uninstall later."""
    _handlers.append(handler)
    return handler


def uninstall(handler: Handler) -> None:
    """Remove a previously installed handler (idempotent)."""
    try:
        _handlers.remove(handler)
    except ValueError:
        pass


def reset() -> None:
    """Drop every installed handler (test teardown safety net)."""
    _handlers.clear()


@contextmanager
def handlers(*to_install: Handler) -> Iterator[None]:
    """Scope handlers to a ``with`` block (always uninstalled on exit)."""
    for handler in to_install:
        install(handler)
    try:
        yield
    finally:
        for handler in to_install:
            uninstall(handler)
