"""Page-granular LRU buffer pool with fault/eviction accounting.

Grown out of ``repro.core.storage``'s emulated disk pool (paper
§IV-D) into the shared frame cache of the storage substrate.  Two
modes share one accounting surface:

* **dict mode** (no ``loader``) — the pool owns an in-memory "disk"
  dict and callers ``write_page``/``read_page`` byte payloads.  This
  is the paper's emulated page structure, unchanged.
* **loader mode** — the pool caches frames materialised on demand by a
  ``loader(page_id)`` callback (the mmap backend maps a real file
  window) and releases them through ``unloader(page_id, frame)`` on
  eviction, so the number of simultaneously mapped windows — and
  therefore resident address space — is bounded by ``capacity_pages``.

Either way ``stats`` counts logical reads, page faults, evictions and
pages written, exactly what a disk-resident implementation would pay.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.storage.errors import MissingPageError, StorageError

__all__ = ["BufferPool", "PageStats"]


@dataclass
class PageStats:
    """I/O counters maintained by the buffer pool."""

    logical_reads: int = 0
    page_faults: int = 0
    evictions: int = 0
    pages_written: int = 0

    @property
    def hit_rate(self) -> float:
        if self.logical_reads == 0:
            return 1.0
        return 1.0 - self.page_faults / self.logical_reads

    def as_dict(self) -> dict:
        return {
            "logical_reads": self.logical_reads,
            "page_faults": self.page_faults,
            "evictions": self.evictions,
            "pages_written": self.pages_written,
            "hit_rate": self.hit_rate,
        }


class BufferPool:
    """An LRU cache of page frames over a backing page source.

    The backing source stands in for a file; the pool is the only
    component allowed to touch it, so the stats faithfully count what
    a disk-resident implementation would read and write.
    """

    def __init__(
        self,
        capacity_pages: int,
        *,
        backend: str = "dict",
        loader: Callable[[int], object] | None = None,
        unloader: Callable[[int, object], None] | None = None,
    ) -> None:
        if capacity_pages < 1:
            raise ValueError("buffer pool needs at least one frame")
        self._capacity = int(capacity_pages)
        self._backend = str(backend)
        self._loader = loader
        self._unloader = unloader
        self._disk: dict[int, bytes] | None = {} if loader is None else None
        self._frames: OrderedDict[int, object] = OrderedDict()
        self.stats = PageStats()

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def backend(self) -> str:
        return self._backend

    @property
    def resident_pages(self) -> int:
        return len(self._frames)

    @property
    def pages_on_disk(self) -> int:
        return len(self._disk) if self._disk is not None else 0

    def write_page(self, page_id: int, payload: bytes) -> None:
        """Write a fresh page through to disk (dict mode, build-time only)."""
        if self._disk is None:
            raise StorageError(
                "write_page is only supported by dict-backed pools; "
                f"this pool serves a {self._backend} loader"
            )
        self._disk[page_id] = payload
        self.stats.pages_written += 1

    def read_page(self, page_id: int, *, chain: str | None = None):
        """Fetch a page via the pool, faulting it in if necessary.

        ``chain`` is an optional description of the directory chain
        that requested the page; it is attached to the
        :class:`~repro.storage.errors.MissingPageError` raised for a
        page the source never materialised.
        """
        self.stats.logical_reads += 1
        if page_id in self._frames:
            self._frames.move_to_end(page_id)
            return self._frames[page_id]
        self.stats.page_faults += 1
        if self._disk is not None:
            try:
                frame = self._disk[page_id]
            except KeyError:
                raise MissingPageError(
                    page_id, backend=self._backend, chain=chain
                ) from None
        else:
            frame = self._loader(page_id)
        if len(self._frames) >= self._capacity:
            victim_id, victim = self._frames.popitem(last=False)
            self.stats.evictions += 1
            if self._unloader is not None:
                self._unloader(victim_id, victim)
        self._frames[page_id] = frame
        return frame

    def reset_stats(self) -> None:
        self.stats = PageStats()

    def drop_cache(self) -> None:
        """Empty the frames (cold-cache measurements, store close)."""
        if self._unloader is not None:
            for page_id, frame in self._frames.items():
                self._unloader(page_id, frame)
        self._frames.clear()
