"""The mmap backend: pack columns on disk, served through pooled windows.

``MmapStore`` lays a column set out in one file — each column
64-byte-aligned and C-contiguous, the same field table shared-memory
segments use — and serves reads through a page-granular
:class:`~repro.storage.pool.BufferPool` whose frames are real
``mmap.mmap`` windows.  The pool's LRU closes evicted windows, so the
store's resident address space is bounded by
``pool_pages · page_bytes`` no matter how large the file grows: a
dataset 10–100× RAM stays queryable under an ``ulimit -v`` cap.

Reads **copy** the requested byte range out of pooled windows (never
zero-copy views — a view would pin a window across evictions), which
is exactly the contract chunked consumers want: walk the columns in
page-sized blocks, keep only the block resident.

Ownership mirrors shm: the creating store unlinks the file on
``close`` (workers attach first — POSIX keeps the inode alive for
their open maps); attached stores only unmap.  An ``atexit`` net
removes files a crashed owner left behind.

Large column sets can be built without ever materialising the arrays:
:meth:`MmapStore.build` hands the caller a writer that streams row
chunks straight to disk, so the build peak is one chunk, not one
column.
"""

from __future__ import annotations

import atexit
import mmap
import os
import secrets
import tempfile
from typing import Mapping

import numpy as np

from repro.shm import ShmField
from repro.storage.base import ColumnStore, StoreDescriptor
from repro.storage.errors import MissingPageError, StorageError
from repro.storage.pool import BufferPool

__all__ = ["DEFAULT_PAGE_BYTES", "DEFAULT_POOL_PAGES", "MmapStore"]

#: Column offsets are rounded up to this many bytes (any-dtype alignment).
_ALIGN = 64

#: Default window size.  Rounded up to ``mmap.ALLOCATIONGRANULARITY``
#: at construction — window offsets must be granularity-aligned.
DEFAULT_PAGE_BYTES = 1 << 20

#: Default pool capacity (64 windows of 1 MiB = 64 MiB resident).
DEFAULT_POOL_PAGES = 64

#: Every file this module creates is named ``repro_mmap_<token>.cols``
#: so leak checks (and humans inspecting the spill directory) can
#: attribute it.
FILE_PREFIX = "repro_mmap_"

#: Files created (and not yet closed) by this process, for the atexit
#: safety net.  Keyed by path.
_owned_files: set[str] = set()


def _aligned(nbytes: int) -> int:
    return (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN


def _page_bytes(page_bytes: int | None) -> int:
    pb = DEFAULT_PAGE_BYTES if page_bytes is None else int(page_bytes)
    if pb < 1:
        raise ValueError("page_bytes must be positive")
    gran = mmap.ALLOCATIONGRANULARITY
    return (pb + gran - 1) // gran * gran


def _layout(
    specs: Mapping[str, tuple[np.dtype, tuple[int, ...]]],
) -> tuple[tuple[ShmField, ...], int]:
    fields = []
    offset = 0
    for name, (dtype, shape) in specs.items():
        dtype = np.dtype(dtype)
        if not shape:
            raise ValueError(f"column {name!r} must have at least one axis")
        fields.append(ShmField(str(name), dtype.str, tuple(shape), offset))
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        offset = _aligned(offset + nbytes)
    return tuple(fields), max(1, offset)


class MmapStoreWriter:
    """Streams column rows to disk; ``finish()`` yields the store.

    Shapes are declared up front; rows are appended per column in
    order.  The peak memory of a build is one chunk, which is how the
    low-memory smoke constructs packs larger than its address-space
    cap.
    """

    def __init__(
        self,
        specs: Mapping[str, tuple[np.dtype, tuple[int, ...]]],
        *,
        directory: str | None = None,
        page_bytes: int | None = None,
        pool_pages: int | None = None,
    ) -> None:
        self._fields, self._nbytes = _layout(specs)
        self._by_name = {f.name: f for f in self._fields}
        self._filled = {f.name: 0 for f in self._fields}
        self._page_bytes = _page_bytes(page_bytes)
        self._pool_pages = (
            DEFAULT_POOL_PAGES if pool_pages is None else int(pool_pages)
        )
        directory = directory or tempfile.gettempdir()
        self._path = os.path.join(
            directory, FILE_PREFIX + secrets.token_hex(8) + ".cols"
        )
        self._file = open(self._path, "w+b")
        _owned_files.add(self._path)
        self._file.truncate(self._nbytes)
        self._finished = False

    @property
    def path(self) -> str:
        return self._path

    def append(self, name: str, chunk: np.ndarray) -> None:
        """Append ``chunk`` rows to column ``name`` (first axis)."""
        field = self._by_name[name]
        dtype = np.dtype(field.dtype)
        chunk = np.ascontiguousarray(chunk, dtype=dtype)
        if chunk.shape[1:] != field.shape[1:]:
            raise ValueError(
                f"column {name!r} rows have shape {field.shape[1:]}, "
                f"got {chunk.shape[1:]}"
            )
        start = self._filled[name]
        stop = start + chunk.shape[0]
        if stop > field.shape[0]:
            raise ValueError(
                f"column {name!r} declared {field.shape[0]} rows, "
                f"write would reach {stop}"
            )
        row_bytes = int(
            np.prod(field.shape[1:], dtype=np.int64) * dtype.itemsize
        )
        self._file.seek(field.offset + start * row_bytes)
        chunk.tofile(self._file)
        self._filled[name] = stop

    def finish(self) -> "MmapStore":
        """Flush and open the finished file as an owning store."""
        if self._finished:
            raise StorageError("writer already finished")
        short = {
            name: f"{n}/{self._by_name[name].shape[0]}"
            for name, n in self._filled.items()
            if n != self._by_name[name].shape[0]
        }
        if short:
            raise StorageError(f"columns not fully written: {short}")
        self._finished = True
        self._file.flush()
        self._file.close()
        _owned_files.discard(self._path)  # the store takes ownership
        return MmapStore(
            self._path,
            self._fields,
            self._nbytes,
            owner=True,
            page_bytes=self._page_bytes,
            pool_pages=self._pool_pages,
        )

    def abort(self) -> None:
        if not self._finished:
            self._finished = True
            self._file.close()
            _owned_files.discard(self._path)
            try:
                os.unlink(self._path)
            except OSError:  # pragma: no cover - already gone
                pass


class MmapStore(ColumnStore):
    backend = "mmap"
    chunked = True

    def __init__(
        self,
        path: str,
        fields: tuple[ShmField, ...],
        nbytes: int,
        *,
        owner: bool,
        page_bytes: int | None = None,
        pool_pages: int | None = None,
    ) -> None:
        self._path = path
        self._fields = tuple(fields)
        self._by_name = {f.name: f for f in self._fields}
        self._file_nbytes = int(nbytes)
        self._owner = bool(owner)
        self._page_bytes_ = _page_bytes(page_bytes)
        pool_pages = DEFAULT_POOL_PAGES if pool_pages is None else int(pool_pages)
        self._file = open(path, "rb")
        if owner:
            _owned_files.add(path)
        self._pool = BufferPool(
            pool_pages,
            backend="mmap",
            loader=self._map_window,
            unloader=self._close_window,
        )
        self._closed = False

    # -- construction ----------------------------------------------------

    @classmethod
    def create(
        cls,
        arrays: Mapping[str, np.ndarray],
        *,
        directory: str | None = None,
        page_bytes: int | None = None,
        pool_pages: int | None = None,
    ) -> "MmapStore":
        """Write resident ``arrays`` out and open the owning store."""
        if not arrays:
            raise ValueError("a column store needs at least one column")
        specs = {
            name: (np.asarray(arr).dtype, np.asarray(arr).shape)
            for name, arr in arrays.items()
        }
        writer = cls.build(
            specs,
            directory=directory,
            page_bytes=page_bytes,
            pool_pages=pool_pages,
        )
        try:
            for name, arr in arrays.items():
                writer.append(name, np.asarray(arr))
        except BaseException:
            writer.abort()
            raise
        return writer.finish()

    @classmethod
    def build(
        cls,
        specs: Mapping[str, tuple[np.dtype, tuple[int, ...]]],
        *,
        directory: str | None = None,
        page_bytes: int | None = None,
        pool_pages: int | None = None,
    ) -> MmapStoreWriter:
        """A streaming writer for columns too large to materialise."""
        return MmapStoreWriter(
            specs,
            directory=directory,
            page_bytes=page_bytes,
            pool_pages=pool_pages,
        )

    @classmethod
    def attach(
        cls,
        descriptor: StoreDescriptor,
        *,
        page_bytes: int | None = None,
        pool_pages: int | None = None,
    ) -> "MmapStore":
        """Open the file read-only (worker side, never unlinks)."""
        return cls(
            descriptor.location,
            descriptor.fields,
            descriptor.nbytes,
            owner=False,
            page_bytes=page_bytes,
            pool_pages=pool_pages,
        )

    # -- window pool -----------------------------------------------------

    def _map_window(self, page_id: int) -> mmap.mmap:
        start = page_id * self._page_bytes_
        length = min(self._page_bytes_, self._file_nbytes - start)
        if page_id < 0 or length <= 0:
            raise MissingPageError(page_id, backend="mmap")
        return mmap.mmap(
            self._file.fileno(),
            length=length,
            offset=start,
            access=mmap.ACCESS_READ,
        )

    @staticmethod
    def _close_window(page_id: int, window: mmap.mmap) -> None:
        window.close()

    def _read_bytes(self, byte0: int, byte1: int, out: np.ndarray) -> None:
        """Copy file bytes ``[byte0, byte1)`` into ``out`` via the pool."""
        pb = self._page_bytes_
        written = 0
        for page_id in range(byte0 // pb, (byte1 - 1) // pb + 1):
            window = self._pool.read_page(page_id)
            lo = max(byte0 - page_id * pb, 0)
            hi = min(byte1 - page_id * pb, len(window))
            part = np.frombuffer(window, dtype=np.uint8, count=hi - lo, offset=lo)
            out[written : written + (hi - lo)] = part
            del part  # drop the buffer export before any later eviction
            written += hi - lo

    # -- ColumnStore surface --------------------------------------------

    def columns(self) -> tuple[str, ...]:
        return tuple(f.name for f in self._fields)

    def shape(self, name: str) -> tuple[int, ...]:
        return self._by_name[name].shape

    def get(self, name: str) -> np.ndarray:
        return self.read(name, 0, self._by_name[name].shape[0])

    def read(self, name: str, start: int, stop: int) -> np.ndarray:
        field = self._by_name[name]
        if self._closed:
            raise StorageError(f"read from closed store {self._path}")
        start, stop = int(start), int(stop)
        if not 0 <= start <= stop <= field.shape[0]:
            raise ValueError(
                f"rows [{start}, {stop}) out of range for column "
                f"{name!r} with {field.shape[0]} rows"
            )
        dtype = np.dtype(field.dtype)
        row_elems = int(np.prod(field.shape[1:], dtype=np.int64))
        row_bytes = row_elems * dtype.itemsize
        byte0 = field.offset + start * row_bytes
        byte1 = field.offset + stop * row_bytes
        out = np.empty(byte1 - byte0, dtype=np.uint8)
        if byte1 > byte0:
            self._read_bytes(byte0, byte1, out)
        arr = out.view(dtype).reshape((stop - start,) + field.shape[1:])
        arr.flags.writeable = False
        return arr

    def descriptor(self) -> StoreDescriptor:
        return StoreDescriptor(
            backend="mmap",
            location=self._path,
            nbytes=self._file_nbytes,
            fields=self._fields,
        )

    def stats(self) -> dict:
        s = self._pool.stats
        return {
            "backend": self.backend,
            "nbytes": self._file_nbytes,
            "page_bytes": self._page_bytes_,
            "pool_pages": self._pool.capacity,
            "resident_pages": self._pool.resident_pages,
            "resident_bytes": self._pool.resident_pages * self._page_bytes_,
            "logical_reads": s.logical_reads,
            "page_faults": s.page_faults,
            "evictions": s.evictions,
            "hit_rate": s.hit_rate,
        }

    def reset_stats(self) -> None:
        self._pool.reset_stats()

    def drop_cache(self) -> None:
        """Close every pooled window (cold-cache measurements)."""
        self._pool.drop_cache()

    @property
    def path(self) -> str:
        return self._path

    @property
    def page_bytes(self) -> int:
        return self._page_bytes_

    @property
    def pool_pages(self) -> int:
        return self._pool.capacity

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._pool.drop_cache()
        self._file.close()
        if self._owner:
            _owned_files.discard(self._path)
            try:
                os.unlink(self._path)
            except OSError:  # pragma: no cover - already gone
                pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MmapStore(path={self._path!r}, nbytes={self._file_nbytes}, "
            f"owner={self._owner})"
        )


@atexit.register
def _remove_leftovers() -> None:  # pragma: no cover - interpreter exit
    for path in list(_owned_files):
        try:
            os.unlink(path)
        except OSError:
            pass
        _owned_files.discard(path)
