"""The ram backend: plain resident ndarrays, zero overhead.

``RamStore`` exists so every consumer can be written against the
:class:`~repro.storage.base.ColumnStore` interface; hot paths that
never leave the process keep using bare arrays (the engine only
builds a store when the configured backend is not ``'ram'``).

Columns are snapshotted C-contiguous and marked read-only — the
substrate-wide copy-on-write rule: stores are immutable, mutators
copy a column out before the first write.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.shm import ShmField
from repro.storage.base import ColumnStore, StoreDescriptor

__all__ = ["RamStore"]


class RamStore(ColumnStore):
    backend = "ram"
    chunked = False

    def __init__(self, arrays: Mapping[str, np.ndarray]) -> None:
        if not arrays:
            raise ValueError("a column store needs at least one column")
        self._arrays: dict[str, np.ndarray] = {}
        for name, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            if arr.flags.writeable and arr.flags.owndata:
                arr.flags.writeable = False
            elif arr.flags.writeable:
                arr = arr.copy()
                arr.flags.writeable = False
            self._arrays[str(name)] = arr

    def columns(self) -> tuple[str, ...]:
        return tuple(self._arrays)

    def shape(self, name: str) -> tuple[int, ...]:
        return self._arrays[name].shape

    def get(self, name: str) -> np.ndarray:
        return self._arrays[name]

    def read(self, name: str, start: int, stop: int) -> np.ndarray:
        return self._arrays[name][start:stop]

    def descriptor(self) -> StoreDescriptor:
        fields = tuple(
            ShmField(name, arr.dtype.str, tuple(arr.shape), 0)
            for name, arr in self._arrays.items()
        )
        return StoreDescriptor(
            backend="ram",
            location=None,
            nbytes=sum(arr.nbytes for arr in self._arrays.values()),
            fields=fields,
            arrays=dict(self._arrays),
        )

    def close(self) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RamStore(columns={list(self._arrays)})"
