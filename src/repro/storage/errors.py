"""Typed errors for the storage substrate.

Every backend raises the same exception family, so engine code can
catch ``StorageError`` without knowing whether a column set lives in a
dict-backed emulated disk, a shared-memory segment, or an mmap file.

``MissingPageError`` doubles as a ``KeyError``: the dict-backed
:class:`~repro.storage.pool.BufferPool` historically raised a bare
``KeyError`` for pages that were never written, and callers (and
tests) that catch ``KeyError`` keep working unchanged while new code
gets the page id, the subregion chain that requested it, and the
backend name as structured attributes.
"""

from __future__ import annotations

__all__ = ["MissingPageError", "StorageError"]


class StorageError(RuntimeError):
    """Base class for every storage-substrate failure."""


class MissingPageError(StorageError, KeyError):
    """A page was requested that the backing store never materialised.

    Attributes
    ----------
    page_id:
        The faulting page number.
    backend:
        Which store raised (``'dict'``, ``'mmap'``, ...).
    chain:
        Optional description of the directory chain that led to the
        page (e.g. ``'subregion 3, page 2/5'``); ``None`` when the
        page was addressed directly.
    """

    def __init__(
        self,
        page_id: int,
        *,
        backend: str = "dict",
        chain: str | None = None,
    ) -> None:
        self.page_id = int(page_id)
        self.backend = str(backend)
        self.chain = chain
        message = f"page {self.page_id} was never written"
        if chain is not None:
            message += f" (requested via {chain})"
        message += f" [backend={self.backend}]"
        super().__init__(message)

    def __str__(self) -> str:
        # KeyError.__str__ would repr() the message; report it plainly.
        return self.args[0]
