"""The shm backend: one shared-memory segment per column set.

``ShmStore`` subsumes the four per-module ``to_shared``/``from_shared``
pairs that used to call :mod:`repro.shm` directly: the low-level
export/attach/release machinery is unchanged, but there is now exactly
one descriptor type (:class:`~repro.storage.base.StoreDescriptor`) and
one ownership rule (the creating store unlinks on ``close``; attached
stores only unmap).  Views handed out by ``get``/``read`` are
read-only zero-copy maps of the segment — the substrate-wide
copy-on-write rule applies to every consumer.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.shm import (
    ShmDescriptor,
    attach_arrays,
    export_arrays,
    release_segment,
)
from repro.storage.base import ColumnStore, StoreDescriptor

__all__ = ["ShmStore"]


class ShmStore(ColumnStore):
    backend = "shm"
    chunked = False

    def __init__(self, segment, views, descriptor, *, owner: bool) -> None:
        self._segment = segment
        self._views: dict[str, np.ndarray] = views
        self._shm_descriptor: ShmDescriptor = descriptor
        self._owner = bool(owner)
        self._closed = False

    @classmethod
    def create(cls, arrays: Mapping[str, np.ndarray]) -> "ShmStore":
        if not arrays:
            raise ValueError("a column store needs at least one column")
        segment, descriptor = export_arrays(arrays)
        # The owner's views map the segment it already holds — no
        # second attachment, same zero-copy read-only surface the
        # attach path builds.
        views: dict[str, np.ndarray] = {}
        for field in descriptor.fields:
            view = np.ndarray(
                field.shape,
                dtype=np.dtype(field.dtype),
                buffer=segment.buf,
                offset=field.offset,
            )
            view.flags.writeable = False
            views[field.name] = view
        return cls(segment, views, descriptor, owner=True)

    @classmethod
    def attach(cls, descriptor: StoreDescriptor | ShmDescriptor) -> "ShmStore":
        """Map an exported segment (worker side, never unlinks)."""
        shm_descriptor = (
            descriptor
            if isinstance(descriptor, ShmDescriptor)
            else ShmDescriptor(
                segment=descriptor.location,
                nbytes=descriptor.nbytes,
                fields=descriptor.fields,
            )
        )
        shm, views = attach_arrays(shm_descriptor)
        return cls(shm, views, shm_descriptor, owner=False)

    # -- ColumnStore surface --------------------------------------------

    def columns(self) -> tuple[str, ...]:
        return tuple(self._views)

    def shape(self, name: str) -> tuple[int, ...]:
        return self._views[name].shape

    def get(self, name: str) -> np.ndarray:
        return self._views[name]

    def read(self, name: str, start: int, stop: int) -> np.ndarray:
        return self._views[name][start:stop]

    def descriptor(self) -> StoreDescriptor:
        return StoreDescriptor(
            backend="shm",
            location=self._shm_descriptor.segment,
            nbytes=self._shm_descriptor.nbytes,
            fields=self._shm_descriptor.fields,
        )

    def close(self) -> None:
        """Owner: release (close + unlink) the segment.  Attacher: drop
        views and unmap.  Pinned views held by packs keep the mapping
        alive until they are garbage-collected (``close`` degrades to a
        no-op unmap then); the unlink itself never waits."""
        if self._closed:
            return
        self._closed = True
        self._views = {}
        if self._owner:
            release_segment(self._segment)
        else:
            try:
                self._segment.close()
            except BufferError:  # pragma: no cover - views still pinned
                pass

    # -- legacy bridge ---------------------------------------------------

    @property
    def segment(self):
        """The owning ``SharedMemory`` (legacy ``to_shared`` callers
        release this directly; ``close`` stays idempotent after)."""
        return self._segment

    @property
    def shm_descriptor(self) -> ShmDescriptor:
        return self._shm_descriptor

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShmStore(segment={self._shm_descriptor.segment!r}, "
            f"owner={self._owner})"
        )
