"""The pluggable column store: one interface, three backings.

A :class:`ColumnStore` holds a named set of numpy columns (flat or
2-D) behind four operations — ``get`` (whole column), ``read``
(first-axis range), ``descriptor`` (a picklable rehydration recipe),
and ``close`` — plus uniform I/O ``stats``.  Three backends implement
it:

* ``ram`` — plain ndarrays, the zero-overhead default;
* ``shm`` — one ``multiprocessing.shared_memory`` segment
  (:mod:`repro.shm` underneath), zero-copy across process workers;
* ``mmap`` — a 64-byte-aligned on-disk file served through a
  page-granular :class:`~repro.storage.pool.BufferPool` of real mmap
  windows, so column sets larger than RAM stay queryable.

``chunked`` distinguishes the modes of consumption: non-chunked
stores hand out zero-copy views (``ram``/``shm``), chunked stores
(``mmap``) copy the requested range out of pooled windows — callers
that can stream should prefer ``read`` over ``get`` on them.

One descriptor type (:class:`StoreDescriptor`) covers every backend:
a backend tag, a location (segment name or file path), and the same
per-field ``(name, dtype, shape, offset)`` table
:mod:`repro.shm` uses.  ``open_store`` rehydrates it in any process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.shm import ShmField
from repro.storage.errors import StorageError

__all__ = [
    "BACKENDS",
    "ColumnStore",
    "StoreDescriptor",
    "create_store",
    "open_store",
]

#: The recognised backend tags, in documentation order.
BACKENDS = ("ram", "shm", "mmap")


@dataclass(frozen=True)
class StoreDescriptor:
    """A column set's rehydration recipe — cheap to pickle.

    Attributes
    ----------
    backend:
        ``'ram'`` / ``'shm'`` / ``'mmap'``.
    location:
        Segment name (shm), file path (mmap), or ``None`` (ram).
    nbytes:
        Total backing size in bytes.
    fields:
        Per-column layout, the same ``(name, dtype, shape, offset)``
        records shared-memory descriptors use.
    arrays:
        Ram only: the columns themselves.  A ram descriptor pickles
        O(data) — it exists so the API is total, not as a transport;
        processes should ship shm or mmap descriptors.
    """

    backend: str
    location: str | None
    nbytes: int
    fields: tuple[ShmField, ...] = ()
    arrays: dict | None = field(default=None, compare=False)

    def field(self, name: str) -> ShmField:
        for f in self.fields:
            if f.name == name:
                return f
        raise KeyError(name)


class ColumnStore:
    """Abstract base: a named, immutable set of numpy columns."""

    backend: str = "?"
    #: True when ``read`` streams copies out of a bounded pool rather
    #: than slicing resident arrays; consumers should walk chunked
    #: stores in blocks instead of materialising whole columns.
    chunked: bool = False

    # -- required surface ------------------------------------------------

    def columns(self) -> tuple[str, ...]:
        raise NotImplementedError

    def shape(self, name: str) -> tuple[int, ...]:
        raise NotImplementedError

    def get(self, name: str) -> np.ndarray:
        """The whole column (a view for resident backends, a copy for
        chunked ones)."""
        raise NotImplementedError

    def read(self, name: str, start: int, stop: int) -> np.ndarray:
        """Rows ``[start, stop)`` along the column's first axis."""
        raise NotImplementedError

    def descriptor(self) -> StoreDescriptor:
        raise NotImplementedError

    def close(self) -> None:
        """Release the backing (owner semantics are backend-specific:
        the creator unlinks, attachers only unmap).  Idempotent."""

    # -- shared surface --------------------------------------------------

    def stats(self) -> dict:
        """Uniform I/O counters; resident backends report all-hit."""
        return {
            "backend": self.backend,
            "nbytes": self.nbytes,
            "resident_bytes": self.nbytes,
            "logical_reads": 0,
            "page_faults": 0,
            "evictions": 0,
            "hit_rate": 1.0,
        }

    @property
    def nbytes(self) -> int:
        return int(self.descriptor().nbytes)

    def __contains__(self, name: str) -> bool:
        return name in self.columns()

    def __enter__(self) -> "ColumnStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def create_store(
    backend: str, arrays: Mapping[str, np.ndarray], **options
) -> ColumnStore:
    """Build a fresh store of ``backend`` holding ``arrays``.

    ``options`` are backend-specific (the mmap backend accepts
    ``page_bytes``, ``pool_pages`` and ``directory``); backends
    without options reject any.
    """
    from repro.storage.mmapstore import MmapStore
    from repro.storage.ram import RamStore
    from repro.storage.shmstore import ShmStore

    if backend == "ram":
        _reject_options("ram", options)
        return RamStore(arrays)
    if backend == "shm":
        _reject_options("shm", options)
        return ShmStore.create(arrays)
    if backend == "mmap":
        return MmapStore.create(arrays, **options)
    raise StorageError(
        f"unknown storage backend {backend!r}: expected one of {BACKENDS}"
    )


def open_store(descriptor: StoreDescriptor, **options) -> ColumnStore:
    """Rehydrate a store from its descriptor (typically in a worker).

    The returned store never owns the backing: closing it unmaps but
    does not unlink — the creator keeps that responsibility.
    """
    from repro.storage.mmapstore import MmapStore
    from repro.storage.ram import RamStore
    from repro.storage.shmstore import ShmStore

    if descriptor.backend == "ram":
        _reject_options("ram", options)
        return RamStore(descriptor.arrays)
    if descriptor.backend == "shm":
        _reject_options("shm", options)
        return ShmStore.attach(descriptor)
    if descriptor.backend == "mmap":
        return MmapStore.attach(descriptor, **options)
    raise StorageError(
        f"descriptor names unknown backend {descriptor.backend!r}"
    )


def _reject_options(backend: str, options: Mapping) -> None:
    if options:
        raise StorageError(
            f"the {backend} backend takes no options, got {sorted(options)}"
        )
