"""Pluggable column storage: ram / shm / mmap behind one interface.

See DESIGN.md §16.  The substrate in one paragraph: a
:class:`ColumnStore` is a named, immutable set of numpy columns with a
picklable :class:`StoreDescriptor`; ``ram`` holds resident arrays,
``shm`` holds one shared-memory segment (zero-copy across process
workers), ``mmap`` holds a 64-byte-aligned file streamed through a
bounded :class:`BufferPool` of real mmap windows — out-of-core scale
with page-fault/eviction accounting.  Consumers copy before writing
(one copy-on-write rule) and chunked consumers walk ``read`` ranges
instead of materialising columns.
"""

from repro.storage.base import (
    BACKENDS,
    ColumnStore,
    StoreDescriptor,
    create_store,
    open_store,
)
from repro.storage.errors import MissingPageError, StorageError
from repro.storage.mmapstore import (
    DEFAULT_PAGE_BYTES,
    DEFAULT_POOL_PAGES,
    MmapStore,
)
from repro.storage.pool import BufferPool, PageStats
from repro.storage.ram import RamStore
from repro.storage.shmstore import ShmStore

__all__ = [
    "BACKENDS",
    "BufferPool",
    "ColumnStore",
    "DEFAULT_PAGE_BYTES",
    "DEFAULT_POOL_PAGES",
    "MissingPageError",
    "MmapStore",
    "PageStats",
    "RamStore",
    "ShmStore",
    "StorageError",
    "StoreDescriptor",
    "create_store",
    "open_store",
]
