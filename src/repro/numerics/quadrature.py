"""Gauss–Legendre quadrature tuned for the engine's integrands.

Refinement evaluates integrals of the form

    p_ij = ∫_{S_j} d_i(r) · Π_{k≠i} (1 − D_k(r)) dr

where every ``d_i`` is piecewise-constant and every ``D_k`` is
piecewise-linear, and the subregion ``S_j`` lies inside a single piece
of *all* of them.  The integrand is therefore a polynomial of degree at
most ``|C| − 1`` on ``S_j``, and Gauss–Legendre with
``ceil(|C| / 2) + 1`` nodes integrates it *exactly* (an ``n``-node rule
is exact through degree ``2n − 1``).  This turns "numerical
integration" into an exact algorithm for histogram models — the only
approximation in the whole reproduction is the histogram model itself.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "gauss_legendre_nodes",
    "integrate_on_interval",
    "integrate_piecewise",
    "nodes_for_degree",
]


@lru_cache(maxsize=256)
def gauss_legendre_nodes(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Nodes and weights of the ``n``-point rule on [-1, 1] (cached)."""
    if n < 1:
        raise ValueError("need at least one quadrature node")
    nodes, weights = np.polynomial.legendre.leggauss(n)
    nodes.flags.writeable = False
    weights.flags.writeable = False
    return nodes, weights


def nodes_for_degree(degree: int) -> int:
    """Smallest node count integrating polynomials of ``degree`` exactly."""
    if degree < 0:
        raise ValueError("degree must be non-negative")
    return degree // 2 + 1


def integrate_on_interval(
    f: Callable[[np.ndarray], np.ndarray],
    a: float,
    b: float,
    nodes: int,
) -> float:
    """``∫_a^b f`` with an ``nodes``-point Gauss–Legendre rule.

    ``f`` must accept a numpy array of evaluation points.
    """
    if b <= a:
        return 0.0
    xs, ws = gauss_legendre_nodes(nodes)
    mid = 0.5 * (a + b)
    half = 0.5 * (b - a)
    values = np.asarray(f(mid + half * xs), dtype=float)
    return half * float(ws @ values)


def integrate_piecewise(
    f: Callable[[np.ndarray], np.ndarray],
    breakpoints: Sequence[float] | np.ndarray,
    nodes: int,
) -> float:
    """Sum of Gauss–Legendre integrals over consecutive breakpoints.

    Exact when ``f`` restricted to each piece is a polynomial of degree
    at most ``2 * nodes - 1``.
    """
    cuts = np.asarray(breakpoints, dtype=float)
    if cuts.ndim != 1 or cuts.size < 2:
        raise ValueError("need at least two breakpoints")
    if not np.all(np.diff(cuts) >= 0):
        raise ValueError("breakpoints must be non-decreasing")
    total = 0.0
    for a, b in zip(cuts[:-1], cuts[1:]):
        if b > a:
            total += integrate_on_interval(f, float(a), float(b), nodes)
    return total
