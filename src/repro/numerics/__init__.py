"""Shared numerical routines: quadrature and Poisson-binomial DP."""

from repro.numerics.poisson_binomial import (
    poisson_binomial_pmf,
    prob_at_most,
    prob_at_most_vectorized,
)
from repro.numerics.quadrature import (
    gauss_legendre_nodes,
    integrate_on_interval,
    integrate_piecewise,
    nodes_for_degree,
)

__all__ = [
    "gauss_legendre_nodes",
    "integrate_on_interval",
    "integrate_piecewise",
    "nodes_for_degree",
    "poisson_binomial_pmf",
    "prob_at_most",
    "prob_at_most_vectorized",
]
