"""Poisson-binomial probabilities for the k-NN extension.

The paper lists k-NN queries as future work (Section VI).  Our
extension (:mod:`repro.core.knn`) computes the probability that an
object is among the ``k`` nearest neighbours:

    p_i(k) = ∫ d_i(r) · Pr[at most k−1 other objects are closer than r] dr

Conditioned on ``R_i = r``, each other object ``k'`` is independently
closer with probability ``D_{k'}(r)``, so the count of closer objects
is Poisson-binomial; this module supplies the standard O(n·k) dynamic
programme for its pmf/cdf.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["poisson_binomial_pmf", "prob_at_most", "prob_at_most_vectorized"]


def poisson_binomial_pmf(probabilities: Sequence[float] | np.ndarray) -> np.ndarray:
    """The pmf of a sum of independent Bernoulli(p_i) variables.

    Returns an array of length ``n + 1`` whose ``m``-th entry is
    ``Pr[sum == m]``.  Runs the classic forward DP in O(n^2); the
    engine only ever needs prefixes, see :func:`prob_at_most`.
    """
    probs = np.asarray(probabilities, dtype=float)
    if probs.ndim != 1:
        raise ValueError("probabilities must be one-dimensional")
    if np.any((probs < -1e-12) | (probs > 1 + 1e-12)):
        raise ValueError("probabilities must lie in [0, 1]")
    probs = np.clip(probs, 0.0, 1.0)
    pmf = np.zeros(probs.size + 1)
    pmf[0] = 1.0
    for idx, p in enumerate(probs):
        # After idx items, only entries 0..idx are populated.
        upper = idx + 1
        pmf[1 : upper + 1] = pmf[1 : upper + 1] * (1.0 - p) + pmf[:upper] * p
        pmf[0] *= 1.0 - p
    return pmf


def prob_at_most(
    probabilities: Sequence[float] | np.ndarray, threshold: int
) -> float:
    """``Pr[sum of Bernoullis <= threshold]`` in O(n * threshold).

    Only the first ``threshold + 1`` pmf entries are maintained, which
    is all the k-NN integrand needs (``threshold = k - 1``).
    """
    probs = np.asarray(probabilities, dtype=float)
    if threshold < 0:
        return 0.0
    if threshold >= probs.size:
        return 1.0
    probs = np.clip(probs, 0.0, 1.0)
    window = np.zeros(threshold + 1)
    window[0] = 1.0
    for p in probs:
        window[1:] = window[1:] * (1.0 - p) + window[:-1] * p
        window[0] *= 1.0 - p
    return float(window.sum())


def prob_at_most_vectorized(
    prob_matrix: np.ndarray, threshold: int
) -> np.ndarray:
    """Column-wise :func:`prob_at_most` for a (n_objects, n_points) matrix.

    Used by the k-NN integrator to evaluate the Poisson-binomial cdf at
    every quadrature node in one pass.
    """
    if prob_matrix.ndim != 2:
        raise ValueError("prob_matrix must be 2-D")
    n, m = prob_matrix.shape
    if threshold < 0:
        return np.zeros(m)
    if threshold >= n:
        return np.ones(m)
    probs = np.clip(prob_matrix, 0.0, 1.0)
    window = np.zeros((threshold + 1, m))
    window[0] = 1.0
    for row in probs:
        window[1:] = window[1:] * (1.0 - row) + window[:-1] * row
        window[0] *= 1.0 - row
    return window.sum(axis=0)
