"""2-D workload generators (disks, segments, rectangles in a plane).

Used by the 2-D integration tests and the 2-D pipeline bench; mirrors
the moving-object setting of [8] that the paper's Section IV-A
extension targets (disk = dead-reckoned vehicle, segment = object on a
road, rectangle = cloaked location).
"""

from __future__ import annotations

import numpy as np

from repro.uncertainty.twod import (
    UncertainDisk,
    UncertainRectangle,
    UncertainSegment,
)

__all__ = ["planar_mixed_objects", "planar_disks"]


def planar_disks(
    n: int,
    domain: tuple[float, float] = (0.0, 1_000.0),
    max_radius: float = 8.0,
    distance_bins: int = 96,
    rng: np.random.Generator | None = None,
) -> list[UncertainDisk]:
    """``n`` dead-reckoned objects: disks of random radius."""
    rng = rng or np.random.default_rng()
    disks = []
    for i in range(n):
        center = rng.uniform(domain[0], domain[1], 2)
        radius = float(rng.uniform(0.5, max_radius))
        disks.append(
            UncertainDisk(i, center, radius, distance_bins=distance_bins)
        )
    return disks


def planar_mixed_objects(
    n: int,
    domain: tuple[float, float] = (0.0, 1_000.0),
    max_extent: float = 10.0,
    distance_bins: int = 96,
    rng: np.random.Generator | None = None,
) -> list:
    """``n`` objects cycling disk → segment → rectangle."""
    rng = rng or np.random.default_rng()
    objects: list = []
    for i in range(n):
        center = rng.uniform(domain[0], domain[1], 2)
        kind = i % 3
        if kind == 0:
            radius = float(rng.uniform(0.5, max_extent / 2))
            objects.append(
                UncertainDisk(i, center, radius, distance_bins=distance_bins)
            )
        elif kind == 1:
            offset = rng.uniform(0.5, max_extent, 2)
            objects.append(
                UncertainSegment(
                    i, center, center + offset, distance_bins=distance_bins
                )
            )
        else:
            w, h = rng.uniform(0.5, max_extent, 2)
            objects.append(
                UncertainRectangle.from_bounds(
                    i,
                    float(center[0]),
                    float(center[1]),
                    float(center[0] + w),
                    float(center[1] + h),
                    distance_bins=distance_bins,
                )
            )
    return objects
