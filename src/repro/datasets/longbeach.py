"""A statistically matched surrogate of the Long Beach TIGER workload.

The paper (Section V-A): "We use the Long Beach dataset, where the
53,144 intervals, distributed in the x-dimension of 10K units, are
treated as uncertainty regions with uniform pdfs ... On average, the
candidate set has 96 objects."

The original census.gov TIGER file is not available offline, so this
module generates a surrogate with the same externally observable
statistics:

* exactly 53,144 intervals over the domain [0, 10000];
* clustered centers (road segments crowd urbanised strips) with
  right-skewed (exponential) lengths;
* a mean length calibrated (see ``tests/datasets``) so that the
  average candidate-set size over random query points is ≈ 96, the
  quantity that actually drives verifier/refinement cost.

The substitution argument is recorded in DESIGN.md §4.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synthetic import clustered_intervals
from repro.uncertainty.objects import UncertainObject
from repro.uncertainty.pdfs import DEFAULT_GAUSSIAN_BARS

__all__ = ["LONG_BEACH_SIZE", "LONG_BEACH_DOMAIN", "long_beach_surrogate"]

#: Number of intervals in the original Long Beach dataset.
LONG_BEACH_SIZE = 53_144

#: Extent of the x-dimension in the original dataset.
LONG_BEACH_DOMAIN = (0.0, 10_000.0)

#: Mean interval length calibrated for ≈ 96 candidates per query
#: (measured over random query points at the full 53,144 scale).
_CALIBRATED_MEAN_LENGTH = 16.0

#: Cluster structure: many small clusters mimic census block groups.
_N_CLUSTERS = 400
_CLUSTER_SPREAD = 150.0


def long_beach_surrogate(
    n: int = LONG_BEACH_SIZE,
    pdf: str = "uniform",
    bars: int = DEFAULT_GAUSSIAN_BARS,
    mean_length: float = _CALIBRATED_MEAN_LENGTH,
    representation: str = "parametric",
    seed: int = 20080407,
) -> list[UncertainObject]:
    """Generate the Long Beach surrogate workload.

    Parameters
    ----------
    n:
        Number of intervals; defaults to the original 53,144.  Smaller
        values are used by Figure 9's table-size sweep.
    pdf:
        ``'uniform'`` (default, the paper's main setting) or
        ``'gaussian'`` (Figure 14's setting).
    bars:
        Histogram bars per Gaussian (paper: 300).
    mean_length:
        Mean interval length; the default is calibrated for the
        paper's reported average candidate-set size of ≈ 96 at the
        full 53,144-interval scale.
    representation:
        How Gaussian objects are built (ignored for uniform pdfs):
        ``'parametric'`` (default) defers every 300-bar histogram
        behind a closed-form distance law, ``'histogram'`` keeps the
        paper-faithful eager construction — see DESIGN.md §15.
    seed:
        Deterministic by default so experiments are repeatable.
    """
    rng = np.random.default_rng(seed)
    return clustered_intervals(
        n,
        domain=LONG_BEACH_DOMAIN,
        n_clusters=_N_CLUSTERS,
        cluster_spread=_CLUSTER_SPREAD,
        mean_length=mean_length,
        min_length=0.5,
        pdf=pdf,
        bars=bars,
        representation=representation,
        rng=rng,
    )
