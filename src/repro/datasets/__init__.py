"""Workload generators for the experiments of Section V.

The paper evaluates on the Long Beach County TIGER dataset: "53,144
intervals, distributed in the x-dimension of 10K units, treated as
uncertainty regions with uniform pdfs", with randomly generated query
points and an average candidate-set size of 96.  The dataset itself is
a census.gov download that is not available offline, so
:mod:`repro.datasets.longbeach` generates a statistically matched
surrogate (see DESIGN.md §10 for the substitution argument); generic
synthetic workloads live in :mod:`repro.datasets.synthetic`.
"""

from repro.datasets.longbeach import LONG_BEACH_SIZE, long_beach_surrogate
from repro.datasets.planar import planar_disks, planar_mixed_objects
from repro.datasets.queries import random_query_points
from repro.datasets.scenarios import gps_ellipse_objects, sensor_noise_objects
from repro.datasets.synthetic import (
    clustered_intervals,
    interval_objects,
    mixed_pdf_objects,
    uniform_intervals,
)

__all__ = [
    "LONG_BEACH_SIZE",
    "clustered_intervals",
    "gps_ellipse_objects",
    "interval_objects",
    "long_beach_surrogate",
    "mixed_pdf_objects",
    "planar_disks",
    "planar_mixed_objects",
    "random_query_points",
    "sensor_noise_objects",
    "uniform_intervals",
]
