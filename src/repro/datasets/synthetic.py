"""Synthetic interval workloads with controllable overlap structure.

All generators return lists of
:class:`~repro.uncertainty.objects.UncertainObject`; overlap between
uncertainty regions is the primary cost driver for PNN evaluation
(more overlap → larger candidate sets → more verifier/refinement
work), so every generator exposes it directly via interval lengths and
center clustering.
"""

from __future__ import annotations

import numpy as np

from repro.uncertainty.histogram import Histogram
from repro.uncertainty.objects import UncertainObject
from repro.uncertainty.parametric.objects import GaussianObject
from repro.uncertainty.pdfs import DEFAULT_GAUSSIAN_BARS

__all__ = [
    "uniform_intervals",
    "clustered_intervals",
    "interval_objects",
    "mixed_pdf_objects",
]

#: Representations an interval generator can emit for Gaussian pdfs.
REPRESENTATIONS = ("parametric", "histogram")


def _lengths(
    n: int,
    mean_length: float,
    min_length: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Skewed (exponential) interval lengths with a hard minimum.

    Road-segment extents in TIGER files are heavily right-skewed;
    an exponential with a floor is the standard surrogate.
    """
    scale = max(mean_length - min_length, 1e-9)
    return min_length + rng.exponential(scale, n)


def interval_objects(
    centers: np.ndarray,
    lengths: np.ndarray,
    pdf: str = "uniform",
    bars: int = DEFAULT_GAUSSIAN_BARS,
    representation: str = "parametric",
) -> list[UncertainObject]:
    """Materialise interval objects with the requested pdf family.

    ``pdf`` is ``'uniform'`` (the Long Beach treatment) or
    ``'gaussian'`` (Section V-B experiment 5: mean at the centre,
    sigma = width / 6, ``bars``-bar histogram).

    ``representation`` selects how Gaussian objects are built:
    ``'parametric'`` (default) yields
    :class:`~repro.uncertainty.parametric.objects.GaussianObject` —
    closed-form distance law, histogram materialised lazily and
    byte-identically on demand — while ``'histogram'`` keeps the
    paper-faithful eager ``bars``-bar construction.  Uniform objects
    are unaffected (their histogram is a single bar either way).
    """
    if pdf not in ("uniform", "gaussian"):
        raise ValueError("pdf must be 'uniform' or 'gaussian'")
    if representation not in REPRESENTATIONS:
        raise ValueError("representation must be 'parametric' or 'histogram'")
    objects = []
    for i, (center, length) in enumerate(zip(centers, lengths)):
        lo = float(center - length / 2.0)
        hi = float(center + length / 2.0)
        if pdf == "uniform":
            objects.append(UncertainObject.uniform(i, lo, hi))
        elif representation == "parametric":
            objects.append(GaussianObject(i, lo, hi, bars=bars))
        else:
            objects.append(UncertainObject.gaussian(i, lo, hi, bars=bars))
    return objects


def uniform_intervals(
    n: int,
    domain: tuple[float, float] = (0.0, 10_000.0),
    mean_length: float = 10.0,
    min_length: float = 0.5,
    pdf: str = "uniform",
    bars: int = DEFAULT_GAUSSIAN_BARS,
    representation: str = "parametric",
    rng: np.random.Generator | None = None,
) -> list[UncertainObject]:
    """``n`` intervals with uniformly distributed centers."""
    rng = rng or np.random.default_rng()
    centers = rng.uniform(domain[0], domain[1], n)
    lengths = _lengths(n, mean_length, min_length, rng)
    return interval_objects(
        centers, lengths, pdf=pdf, bars=bars, representation=representation
    )


def clustered_intervals(
    n: int,
    domain: tuple[float, float] = (0.0, 10_000.0),
    n_clusters: int = 40,
    cluster_spread: float = 120.0,
    mean_length: float = 10.0,
    min_length: float = 0.5,
    pdf: str = "uniform",
    bars: int = DEFAULT_GAUSSIAN_BARS,
    representation: str = "parametric",
    rng: np.random.Generator | None = None,
) -> list[UncertainObject]:
    """``n`` intervals whose centers cluster around random seeds.

    Mimics geographic data, where road segments crowd urban areas; a
    query landing inside a cluster sees a much denser candidate set
    than one landing between clusters.
    """
    rng = rng or np.random.default_rng()
    seeds = rng.uniform(domain[0], domain[1], n_clusters)
    assignment = rng.integers(0, n_clusters, n)
    centers = seeds[assignment] + rng.normal(0.0, cluster_spread, n)
    centers = np.clip(centers, domain[0], domain[1])
    lengths = _lengths(n, mean_length, min_length, rng)
    return interval_objects(
        centers, lengths, pdf=pdf, bars=bars, representation=representation
    )


def mixed_pdf_objects(
    n: int,
    domain: tuple[float, float] = (0.0, 1_000.0),
    mean_length: float = 20.0,
    min_length: float = 1.0,
    bars: int = 48,
    rng: np.random.Generator | None = None,
) -> list[UncertainObject]:
    """Intervals with a rotating mix of pdf families.

    Cycles uniform → Gaussian → random histogram, exercising the
    "arbitrary pdf" claim of the paper; used by integration and
    property tests.
    """
    rng = rng or np.random.default_rng()
    centers = rng.uniform(domain[0], domain[1], n)
    lengths = _lengths(n, mean_length, min_length, rng)
    objects: list[UncertainObject] = []
    for i, (center, length) in enumerate(zip(centers, lengths)):
        lo = float(center - length / 2.0)
        hi = float(center + length / 2.0)
        family = i % 3
        if family == 0:
            objects.append(UncertainObject.uniform(i, lo, hi))
        elif family == 1:
            objects.append(UncertainObject.gaussian(i, lo, hi, bars=bars))
        else:
            n_bins = int(rng.integers(2, 8))
            edges = np.linspace(lo, hi, n_bins + 1)
            masses = rng.uniform(0.05, 1.0, n_bins)
            masses /= masses.sum()
            histogram = Histogram.from_masses(edges, masses)
            objects.append(UncertainObject.from_histogram(i, histogram))
    return objects
