"""Sensor-noise and GPS-error scenario generators (DESIGN.md §15).

The paper motivates uncertain data with imprecise sensor readings and
location fixes (Section I).  These generators produce the two concrete
flavours the parametric subsystem models in closed form:

* :func:`sensor_noise_objects` — 1-D readings with truncated-Gaussian
  measurement noise; a fraction of the sensors are *bimodal* (a stale
  calibration mode next to the live one), exercising the mixture
  family.
* :func:`gps_ellipse_objects` — 2-D GPS fixes with anisotropic,
  k-sigma-truncated Gaussian error ellipses.

Both are deterministic given a seed and emit parametric objects by
default, so the engine's analytic fast path applies end-to-end with
zero histogram constructions; ``representation='histogram'`` (sensor
scenario only — the ellipse has no histogram twin) materialises the
equivalent eager objects for paper-faithful comparisons.
"""

from __future__ import annotations

import numpy as np

from repro.uncertainty.objects import UncertainObject
from repro.uncertainty.parametric.objects import (
    GaussianMixtureObject,
    GaussianObject,
    GpsEllipseObject,
)
from repro.uncertainty.pdfs import (
    DEFAULT_GAUSSIAN_BARS,
    MixturePdf,
    TruncatedGaussianPdf,
)
from repro.uncertainty.twod import DEFAULT_DISTANCE_BINS

__all__ = ["sensor_noise_objects", "gps_ellipse_objects"]

#: Default deterministic seed (shared with the MC verifier's base).
DEFAULT_SCENARIO_SEED = 20080199


def sensor_noise_objects(
    n: int,
    domain: tuple[float, float] = (0.0, 10_000.0),
    sigma_range: tuple[float, float] = (0.5, 4.0),
    k: float = 3.0,
    bimodal_fraction: float = 0.25,
    bimodal_offset: float = 6.0,
    bars: int = DEFAULT_GAUSSIAN_BARS,
    representation: str = "parametric",
    rng: np.random.Generator | None = None,
) -> list[UncertainObject]:
    """``n`` sensor readings with truncated-Gaussian noise.

    Each sensor reports a value uniform over ``domain`` with noise
    sigma log-uniform over ``sigma_range``, truncated at ``±k·sigma``.
    A ``bimodal_fraction`` of the sensors drift between two
    calibrations: their pdf is a two-component mixture whose second
    mode sits ``bimodal_offset`` sigmas away with 30% of the mass.

    ``representation='parametric'`` (default) returns
    :class:`GaussianObject` / :class:`GaussianMixtureObject` with
    closed-form distance laws; ``'histogram'`` returns the eager
    :class:`UncertainObject` equivalents.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if not 0.0 <= bimodal_fraction <= 1.0:
        raise ValueError("bimodal_fraction must lie in [0, 1]")
    if representation not in ("parametric", "histogram"):
        raise ValueError("representation must be 'parametric' or 'histogram'")
    rng = rng if rng is not None else np.random.default_rng(DEFAULT_SCENARIO_SEED)
    readings = rng.uniform(domain[0], domain[1], n)
    log_lo, log_hi = np.log(sigma_range[0]), np.log(sigma_range[1])
    sigmas = np.exp(rng.uniform(log_lo, log_hi, n))
    bimodal = rng.random(n) < bimodal_fraction
    objects: list[UncertainObject] = []
    for i in range(n):
        center, sigma = float(readings[i]), float(sigmas[i])
        lo, hi = center - k * sigma, center + k * sigma
        if not bimodal[i]:
            if representation == "parametric":
                objects.append(
                    GaussianObject(i, lo, hi, mean=center, sigma=sigma, bars=bars)
                )
            else:
                objects.append(
                    UncertainObject(
                        i,
                        TruncatedGaussianPdf(
                            lo, hi, mean=center, sigma=sigma, bars=bars
                        ),
                    )
                )
            continue
        stale = center + bimodal_offset * sigma
        components = (
            TruncatedGaussianPdf(lo, hi, mean=center, sigma=sigma, bars=bars),
            TruncatedGaussianPdf(
                stale - k * sigma,
                stale + k * sigma,
                mean=stale,
                sigma=sigma,
                bars=bars,
            ),
        )
        weights = (0.7, 0.3)
        if representation == "parametric":
            objects.append(GaussianMixtureObject(i, components, weights))
        else:
            objects.append(UncertainObject(i, MixturePdf(components, weights)))
    return objects


def gps_ellipse_objects(
    n: int,
    extent: tuple[float, float] = (0.0, 1_000.0),
    sigma_range: tuple[float, float] = (1.0, 12.0),
    anisotropy_range: tuple[float, float] = (0.25, 1.0),
    k: float = 3.0,
    distance_bins: int = DEFAULT_DISTANCE_BINS,
    rng: np.random.Generator | None = None,
) -> list[GpsEllipseObject]:
    """``n`` GPS fixes with anisotropic Gaussian error ellipses.

    Centres are uniform over ``extent`` squared; the major-axis sigma
    is log-uniform over ``sigma_range``, the minor axis shrinks it by
    a factor drawn from ``anisotropy_range`` (HDOP along-track vs
    cross-track asymmetry), and the orientation is uniform over
    ``[0, π)``.  Truncation is at ``k`` sigmas.
    """
    if n < 1:
        raise ValueError("n must be positive")
    rng = rng if rng is not None else np.random.default_rng(DEFAULT_SCENARIO_SEED)
    centers = rng.uniform(extent[0], extent[1], size=(n, 2))
    log_lo, log_hi = np.log(sigma_range[0]), np.log(sigma_range[1])
    majors = np.exp(rng.uniform(log_lo, log_hi, n))
    minors = majors * rng.uniform(anisotropy_range[0], anisotropy_range[1], n)
    angles = rng.uniform(0.0, np.pi, n)
    return [
        GpsEllipseObject(
            i,
            centers[i],
            float(majors[i]),
            float(minors[i]),
            angle=float(angles[i]),
            k=k,
            distance_bins=distance_bins,
        )
        for i in range(n)
    ]
