"""Query-point generation (Section V-A: "query points are randomly
generated", each reported number averaging 100 queries)."""

from __future__ import annotations

import numpy as np

__all__ = ["random_query_points"]


def random_query_points(
    n: int,
    domain: tuple[float, float] = (0.0, 10_000.0),
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """``n`` uniform 1-D query points inside ``domain``."""
    if n < 1:
        raise ValueError("need at least one query point")
    rng = rng or np.random.default_rng()
    return rng.uniform(domain[0], domain[1], n)
