"""Shared-memory export/attach for flat numpy column sets.

The process-parallel executor (DESIGN.md §13) moves C-PNN verification
into spawned workers.  Workers must see the same columnar substrate the
parent built — :class:`~repro.uncertainty.columnar.DistributionPack`
columns and :class:`~repro.index.filtering.BatchMbrFilter` coordinate
arrays — without paying a pickle of every float on every batch.  Both
structures are already *flat arrays plus shape metadata*, so they ship
as one ``multiprocessing.shared_memory`` segment per column set:

* :func:`export_arrays` copies a named set of arrays into one segment
  (64-byte aligned, C-contiguous) and returns the segment plus a cheap
  :class:`ShmDescriptor` — segment name and per-field
  ``(name, dtype, shape, offset)`` — that pickles in O(fields), not
  O(elements);
* :func:`attach_arrays` rehydrates the descriptor in another process as
  **zero-copy numpy views** over the mapped segment.

Ownership is creator-unlinks: the exporting process keeps the returned
:class:`~multiprocessing.shared_memory.SharedMemory` and must call
:func:`release_segment` (engine ``close()`` does) — attachers only ever
``close()``.  On Python < 3.13 an attach would also *register* the
segment with the attacher's resource tracker, which then unlinks it at
attacher exit and warns about the "leak"; :func:`attach_arrays`
suppresses that registration (3.13+ passes ``track=False``).  A
module-level ``atexit`` net releases anything a crashed owner left
behind, so a test session can assert ``/dev/shm`` holds no
``repro_shm_*`` entries afterwards.
"""

from __future__ import annotations

import atexit
import secrets
import sys
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Mapping

import numpy as np

from repro import hooks

__all__ = [
    "SEGMENT_PREFIX",
    "ShmDescriptor",
    "ShmField",
    "attach_arrays",
    "export_arrays",
    "release_segment",
]

#: Every segment this module creates is named ``repro_shm_<token>`` so
#: leak checks (and humans inspecting /dev/shm) can attribute it.
SEGMENT_PREFIX = "repro_shm_"

#: Field offsets are rounded up to this many bytes so every view is
#: aligned for any dtype the columns use.
_ALIGN = 64


@dataclass(frozen=True)
class ShmField:
    """One array's rehydration recipe: dtype/shape/offset inside the segment."""

    name: str
    dtype: str
    shape: tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class ShmDescriptor:
    """A segment name plus its field layout — everything a worker needs
    to rebuild zero-copy views, cheap to pickle (no array data)."""

    segment: str
    nbytes: int
    fields: tuple[ShmField, ...]

    def field(self, name: str) -> ShmField:
        for f in self.fields:
            if f.name == name:
                return f
        raise KeyError(name)


def _aligned(nbytes: int) -> int:
    return (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN


#: Segments created (and not yet released) by this process, for the
#: atexit safety net.  Keyed by segment name.
_owned: dict[str, shared_memory.SharedMemory] = {}


def export_arrays(
    arrays: Mapping[str, np.ndarray],
) -> tuple[shared_memory.SharedMemory, ShmDescriptor]:
    """Copy ``arrays`` into one fresh shared-memory segment.

    Returns ``(segment, descriptor)``.  The caller owns the segment and
    must eventually :func:`release_segment` it; the descriptor is what
    crosses the process boundary.
    """
    contiguous = [(name, np.ascontiguousarray(arr)) for name, arr in arrays.items()]
    fields = []
    offset = 0
    for name, arr in contiguous:
        fields.append(ShmField(name, arr.dtype.str, tuple(arr.shape), offset))
        offset = _aligned(offset + arr.nbytes)
    nbytes = max(1, offset)
    segment = SEGMENT_PREFIX + secrets.token_hex(8)
    shm = shared_memory.SharedMemory(create=True, size=nbytes, name=segment)
    for field, (_, arr) in zip(fields, contiguous):
        if arr.size:
            view = np.ndarray(
                field.shape,
                dtype=np.dtype(field.dtype),
                buffer=shm.buf,
                offset=field.offset,
            )
            view[...] = arr
            del view
    _owned[segment] = shm
    return shm, ShmDescriptor(segment=segment, nbytes=nbytes, fields=tuple(fields))


def attach_arrays(
    descriptor: ShmDescriptor, *, writable: bool = False
) -> tuple[shared_memory.SharedMemory, dict[str, np.ndarray]]:
    """Map an exported segment and rebuild zero-copy views per field.

    Views are read-only unless ``writable`` (workers filling a shared
    output buffer pass ``writable=True``).  The attachment is *not*
    registered with this process's resource tracker — only the creator
    unlinks.  Callers must drop every view before ``close()``-ing the
    returned segment (a mapped buffer cannot be closed while exported).
    """
    hooks.fire("shm.attach", segment=descriptor.segment)
    shm = _attach_untracked(descriptor.segment)
    views: dict[str, np.ndarray] = {}
    for field in descriptor.fields:
        view = np.ndarray(
            field.shape,
            dtype=np.dtype(field.dtype),
            buffer=shm.buf,
            offset=field.offset,
        )
        if not writable:
            view.flags.writeable = False
        views[field.name] = view
    return shm, views


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    if sys.version_info >= (3, 13):
        return shared_memory.SharedMemory(name=name, track=False)
    # Pre-3.13 attach registers with the resource tracker as if this
    # process created the segment; the tracker would then unlink it
    # (possibly under the owner) and warn at exit.  Suppress just that
    # registration for the duration of the constructor call.
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def _skip_shared_memory(rname, rtype):
        if rtype != "shared_memory":
            original(rname, rtype)

    resource_tracker.register = _skip_shared_memory
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def release_segment(shm: shared_memory.SharedMemory) -> None:
    """Close and unlink an owned segment (idempotent, never raises for
    an already-released segment)."""
    _owned.pop(getattr(shm, "name", None), None)
    try:
        shm.close()
    except (BufferError, OSError):  # pragma: no cover - platform dependent
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        pass
    except OSError:  # pragma: no cover - platform dependent
        pass


@atexit.register
def _release_leftovers() -> None:  # pragma: no cover - interpreter exit
    for shm in list(_owned.values()):
        release_segment(shm)
